// trace_analyze — read a causal trace (discovery_cli --trace / Perfetto
// JSON) and explain the run: critical path, fan-out, per-type latency,
// and (with --parallelism) the trace-derived concurrency profile that
// sizes the parallel-scheduler work (ROADMAP item 1).
//
//   trace_analyze [options] FILE...
//     --path-lines N   print at most N hops of the critical path (default 24)
//     --quiet          summary lines only (no per-hop path listing)
//     --flight         FILEs are flight-recorder dumps (the last-K-events
//                      ring the runtime health layer writes on a watchdog
//                      trip or checker violation), not causal traces:
//                      prints the event mix, the tail of the ring, and the
//                      cause chain ending at the final event
//     --parallelism    compute the parallelism profile per FILE: width
//                      histogram over virtual-time buckets, total-work /
//                      critical-path ratio (the available speedup), and
//                      per-link lookahead slack — and write the rows as a
//                      bench report (default BENCH_parallelism.json)
//     --bucket N       virtual-time bucket size for --parallelism
//                      (default 1 = exact times)
//     --label NAME     row-label prefix for the next FILE (repeatable, one
//                      per file in order; default: the file's basename)
//     --json PATH      bench-report output path for --parallelism
//     --no-json        skip the bench-report file
//
// The trace is self-contained: every 'X' slice carries its causal record
// (id, cause, release, lamport) in "args", so the genealogy is rebuilt from
// the JSON alone and re-verified here — lamport values must satisfy
// max(parent lamports) + 1.
//
// Exit codes follow json_check's classified convention (see --help):
//   0 ok / 2 usage / 3 io / 4 parse / 5 schema
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_report.h"
#include "common/parse.h"
#include "telemetry/critical_path.h"
#include "telemetry/json.h"
#include "telemetry/parallelism.h"
#include "telemetry/tracer.h"

namespace {

using namespace asyncrd;
using telemetry::json_parse;
using telemetry::json_value;
using telemetry::trace_event;
using telemetry::trace_none;

// Exit codes (also the per-file failure classification), aligned with
// tools/json_check.cpp.
constexpr int exit_ok = 0;
constexpr int exit_usage = 2;
constexpr int exit_io = 3;
constexpr int exit_parse = 4;
constexpr int exit_schema = 5;

std::uint64_t num_or(const json_value& obj, std::string_view key,
                     std::uint64_t fallback) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return static_cast<std::uint64_t>(v->as_number());
}

/// Rebuilds trace events from the 'X' slices of a trace document.
/// Returns a classified exit code (exit_ok on success).
int load_trace(const std::string& path, std::vector<trace_event>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return exit_io;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    std::cerr << path << ": read error\n";
    return exit_io;
  }
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return exit_parse;
  }
  const json_value* evs = doc->find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    std::cerr << path << ": no \"traceEvents\" array (at byte "
              << doc->offset << ")\n";
    return exit_schema;
  }
  for (const json_value& ev : evs->as_array()) {
    const json_value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const json_value* args = ev.find("args");
    const json_value* name = ev.find("name");
    const json_value* cat = ev.find("cat");
    if (args == nullptr || !args->is_object() || name == nullptr ||
        cat == nullptr) {
      std::cerr << path << ": slice without args/name/cat (at byte "
                << ev.offset << ")\n";
      return exit_schema;
    }
    trace_event t;
    t.id = num_or(*args, "id", 0);
    t.cause = num_or(*args, "cause", trace_none);
    t.release = num_or(*args, "release", trace_none);
    t.lamport = num_or(*args, "lamport", 0);
    t.sends = static_cast<std::uint32_t>(num_or(*args, "sends", 0));
    t.at = num_or(ev, "ts", 0);
    t.to = static_cast<node_id>(num_or(ev, "tid", invalid_node));
    if (cat->as_string() == "wake") {
      t.what = trace_event::kind::wake;
    } else {
      t.what = trace_event::kind::deliver;
      t.type = name->as_string();
      t.from = static_cast<node_id>(num_or(*args, "from", invalid_node));
      t.sent_at = num_or(*args, "sent_at", 0);
      t.bits = num_or(*args, "bits", 0);
    }
    out.push_back(std::move(t));
  }
  if (out.empty()) {
    std::cerr << path << ": trace contains no activations\n";
    return exit_schema;
  }
  return exit_ok;
}

/// Recomputes every Lamport timestamp from the parent edges and compares
/// with what the file claims; also recomputes the binding parent.
int verify_and_bind(const std::string& path, std::vector<trace_event>& evs) {
  std::unordered_map<std::uint64_t, const trace_event*> by_id;
  by_id.reserve(evs.size());
  const auto lamport_of = [&](std::uint64_t id) -> std::uint64_t {
    if (id == trace_none) return 0;
    const auto it = by_id.find(id);
    return it == by_id.end() ? 0 : it->second->lamport;
  };
  for (trace_event& e : evs) {
    const std::uint64_t lc = lamport_of(e.cause);
    const std::uint64_t lr = lamport_of(e.release);
    const std::uint64_t want = std::max(lc, lr) + 1;
    if (e.lamport != want) {
      std::cerr << path << ": event " << e.id << " claims lamport "
                << e.lamport << ", causal parents imply " << want << '\n';
      return exit_schema;
    }
    if (e.cause == trace_none && e.release == trace_none)
      e.parent = trace_none;
    else
      e.parent = lc >= lr ? (e.cause != trace_none ? e.cause : e.release)
                          : e.release;
    by_id.emplace(e.id, &e);
  }
  return exit_ok;
}

void print_path(const telemetry::critical_path& cp, std::size_t max_lines) {
  std::cout << "critical path (" << cp.length << " hops, ends at t="
            << cp.makespan << "):\n";
  const std::size_t n = cp.chain.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > max_lines && i == max_lines / 2) {
      std::cout << "  ... (" << n - max_lines << " hops elided) ...\n";
      i = n - (max_lines - max_lines / 2) - 1;
      continue;
    }
    const trace_event& e = cp.chain[i];
    std::cout << "  [" << e.lamport << "] t=" << e.at << ' ';
    if (e.what == trace_event::kind::wake)
      std::cout << "wake    " << e.to;
    else
      std::cout << "deliver " << e.from << " -> " << e.to << ' ' << e.type
                << (e.release != trace_none ? "  (released)" : "");
    std::cout << '\n';
  }
  std::cout << "hops by type:";
  for (const auto& [type, hops] : cp.hops_by_type)
    std::cout << "  " << type << "=" << hops;
  std::cout << '\n';
}

int analyze(const std::string& path, std::size_t path_lines, bool quiet) {
  std::vector<trace_event> evs;
  if (const int code = load_trace(path, evs); code != exit_ok) return code;
  if (const int code = verify_and_bind(path, evs); code != exit_ok)
    return code;

  std::cout << "== " << path << " ==\n";
  std::uint64_t wakes = 0, delivers = 0;
  for (const trace_event& e : evs)
    (e.what == trace_event::kind::wake ? wakes : delivers) += 1;
  std::cout << "activations: " << evs.size() << " (" << wakes << " wakes, "
            << delivers << " deliveries)\n";

  const auto cp = telemetry::extract_critical_path(evs);
  if (quiet)
    std::cout << "critical path: " << cp.length << " hops, ends at t="
              << cp.makespan << '\n';
  else
    print_path(cp, path_lines);

  const auto fan = telemetry::compute_fanout(evs);
  std::cout << "fan-out: mean " << fan.mean_fanout << ", max "
            << fan.max_fanout << " (event " << fan.max_fanout_event
            << "), " << fan.sends << " sends attributed\n";

  std::cout << "latency by type (sim-time units):\n";
  for (const auto& [type, tl] : telemetry::latency_by_type(evs))
    std::cout << "  " << type << ": n=" << tl.count << " mean="
              << tl.mean_delay() << " max=" << tl.max_delay << '\n';
  return exit_ok;
}

/// One --parallelism result, kept for the bench-report emission.
struct parallelism_result {
  std::string label;
  telemetry::parallelism_profile profile;
};

int analyze_parallelism(const std::string& path, const std::string& label,
                        sim::sim_time bucket,
                        std::vector<parallelism_result>& results) {
  std::vector<trace_event> evs;
  if (const int code = load_trace(path, evs); code != exit_ok) return code;
  if (const int code = verify_and_bind(path, evs); code != exit_ok)
    return code;

  const auto p = telemetry::compute_parallelism(evs, bucket);
  std::cout << "== " << path << " (parallelism, label " << label << ") ==\n";
  std::cout << "work: " << p.activations << " activations, critical path "
            << p.critical_path_len << " -> available speedup "
            << p.work_cp_ratio << "x\n";
  std::cout << "width (bucket " << p.bucket << "): mean " << p.mean_width
            << ", p50 " << p.width.p50() << ", p90 " << p.width.p90()
            << ", max " << p.max_width << " over " << p.buckets_occupied
            << " occupied buckets (makespan " << p.makespan << ")\n";
  std::cout << "lookahead: " << p.links << " links, min " << p.lookahead_min
            << ", mean " << p.lookahead_mean << ", max " << p.lookahead_max
            << " (conservative sync window = min)\n";
  results.push_back({label, p});
  return exit_ok;
}

/// Fills the shared bench reporter from the collected profiles: one
/// deterministic (virtual-time-derived) row per metric, plus the width
/// histograms under a "parallelism" extra block.
int emit_parallelism(bench::reporter& rep,
                     std::vector<parallelism_result> results) {
  for (const auto& r : results) {
    const auto& p = r.profile;
    const double n = static_cast<double>(p.activations);
    rep.add(r.label + ".activations", n, n, 0.0);
    rep.add(r.label + ".critical_path", n,
            static_cast<double>(p.critical_path_len), 0.0);
    // Brent: mean width can never beat work/span, so the ratio doubles as
    // the bound the width profile is audited against.
    rep.add(r.label + ".work_cp_ratio", n, p.work_cp_ratio, 0.0);
    rep.add(r.label + ".mean_width", n, p.mean_width, p.work_cp_ratio);
    rep.add(r.label + ".max_width", n, static_cast<double>(p.max_width), 0.0);
    rep.add(r.label + ".lookahead_min", n,
            static_cast<double>(p.lookahead_min), 0.0);
  }
  rep.set_extra([results = std::move(results)](telemetry::json_writer& w) {
    w.key("parallelism").begin_object();
    for (const auto& r : results) {
      const auto& p = r.profile;
      w.key(r.label).begin_object();
      w.kv("bucket", p.bucket);
      w.kv("makespan", p.makespan);
      w.kv("buckets_occupied", p.buckets_occupied);
      w.key("width");
      p.width.write_json(w);
      w.key("lookahead").begin_object();
      w.kv("links", p.links);
      w.kv("min", p.lookahead_min);
      w.kv("mean", p.lookahead_mean);
      w.kv("max", p.lookahead_max);
      w.end_object();
      w.end_object();
    }
    w.end_object();
  });
  return rep.finish(true) == 0 ? exit_ok : exit_io;
}

/// One entry of a flight-recorder dump, as parsed back from the JSON.
struct flight_row {
  std::uint64_t at = 0;
  std::string kind;           // "wake" / "deliver" / "timer"
  std::string type;           // deliver only: dispatch-tag name
  std::uint64_t from = 0, to = 0, node = 0;
  std::uint64_t id = trace_none;     // absent key == none
  std::uint64_t cause = trace_none;  // absent key == none
};

void print_flight_row(const flight_row& r) {
  std::cout << "  t=" << r.at << ' ';
  if (r.kind == "wake")
    std::cout << "wake    " << r.node;
  else if (r.kind == "deliver")
    std::cout << "deliver " << r.from << " -> " << r.to << ' ' << r.type;
  else
    std::cout << "timer   key=" << r.cause;
  if (r.id != trace_none) std::cout << "  id=" << r.id;
  if (r.kind != "timer" && r.cause != trace_none)
    std::cout << " cause=" << r.cause;
  std::cout << '\n';
}

/// Summarizes a flight-recorder dump: header counters, per-kind/per-type
/// event mix, the tail of the ring, and the cause chain that produced the
/// final event — the postmortem view of "what was the run doing when it
/// died".  Exit-0 criterion: the file parses and matches the flight schema.
int analyze_flight(const std::string& path, std::size_t path_lines,
                   bool quiet) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return exit_io;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    std::cerr << path << ": read error\n";
    return exit_io;
  }
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return exit_parse;
  }
  const json_value* dump_kind = doc->find("kind");
  if (dump_kind == nullptr || !dump_kind->is_string() ||
      dump_kind->as_string() != "flight") {
    std::cerr << path << ": not a flight dump (\"kind\" != \"flight\", at byte "
              << doc->offset << ")\n";
    return exit_schema;
  }
  const json_value* evs = doc->find("events");
  if (evs == nullptr || !evs->is_array()) {
    std::cerr << path << ": no \"events\" array (at byte " << doc->offset
              << ")\n";
    return exit_schema;
  }

  std::vector<flight_row> rows;
  rows.reserve(evs->as_array().size());
  std::uint64_t prev_at = 0;
  std::unordered_map<std::string, std::uint64_t> by_kind, by_type;
  for (const json_value& ev : evs->as_array()) {
    const json_value* k = ev.find("kind");
    if (!ev.is_object() || k == nullptr || !k->is_string()) {
      std::cerr << path << ": event without \"kind\" (at byte " << ev.offset
                << ")\n";
      return exit_schema;
    }
    flight_row r;
    r.kind = k->as_string();
    r.at = num_or(ev, "at", 0);
    if (r.at < prev_at) {
      std::cerr << path << ": events out of time order (at byte " << ev.offset
                << ")\n";
      return exit_schema;
    }
    prev_at = r.at;
    r.id = num_or(ev, "id", trace_none);
    r.cause = num_or(ev, "cause", trace_none);
    if (r.kind == "deliver") {
      r.from = num_or(ev, "from", 0);
      r.to = num_or(ev, "to", 0);
      if (const json_value* t = ev.find("type"); t != nullptr && t->is_string())
        r.type = t->as_string();
      ++by_type[r.type];
    } else if (r.kind == "wake") {
      r.node = num_or(ev, "node", 0);
    } else if (r.kind == "timer") {
      r.cause = num_or(ev, "key", trace_none);
    } else {
      std::cerr << path << ": unknown event kind \"" << r.kind
                << "\" (at byte " << ev.offset << ")\n";
      return exit_schema;
    }
    ++by_kind[r.kind];
    rows.push_back(std::move(r));
  }

  std::cout << "== " << path << " (flight dump) ==\n";
  std::cout << "ring: " << num_or(*doc, "recorded", rows.size()) << "/"
            << num_or(*doc, "capacity", 0) << " events, "
            << num_or(*doc, "dropped", 0) << " older events dropped\n";
  if (rows.empty()) {
    std::cout << "(empty ring)\n";
    return exit_ok;
  }
  std::cout << "window: t=" << rows.front().at << " .. t=" << rows.back().at
            << '\n';
  std::cout << "by kind:";
  for (const auto& [k, n] : by_kind) std::cout << "  " << k << "=" << n;
  std::cout << '\n';
  if (!by_type.empty()) {
    std::cout << "deliveries by type:";
    for (const auto& [t, n] : by_type) std::cout << "  " << t << "=" << n;
    std::cout << '\n';
  }
  if (quiet) return exit_ok;

  const std::size_t tail = std::min(path_lines, rows.size());
  std::cout << "last " << tail << " events:\n";
  for (std::size_t i = rows.size() - tail; i < rows.size(); ++i)
    print_flight_row(rows[i]);

  // Walk the cause chain backwards from the final event: which activation
  // genealogy was still live when the recorder stopped.  Ids reference the
  // causal tracer's id space, so ancestors older than the ring are simply
  // absent — the chain ends where the ring's memory does.
  std::unordered_map<std::uint64_t, const flight_row*> by_id;
  for (const flight_row& r : rows)
    if (r.id != trace_none) by_id.emplace(r.id, &r);
  const flight_row* cur = &rows.back();
  std::size_t hops = 0;
  std::cout << "cause chain from final event:\n";
  print_flight_row(*cur);
  while (cur->kind != "timer" && cur->cause != trace_none &&
         hops < path_lines) {
    const auto it = by_id.find(cur->cause);
    if (it == by_id.end()) {
      std::cout << "  (cause " << cur->cause << " older than the ring)\n";
      break;
    }
    cur = it->second;
    print_flight_row(*cur);
    ++hops;
  }
  return exit_ok;
}

std::string basename_label(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

void print_help(std::ostream& os) {
  os << "usage: trace_analyze [options] FILE...\n"
        "\n"
        "Explains a causal trace (discovery_cli --trace) or a flight dump.\n"
        "\n"
        "options:\n"
        "  --path-lines N  print at most N hops of the critical path\n"
        "                  (default 24)\n"
        "  --quiet         summary lines only\n"
        "  --flight        FILEs are flight-recorder dumps\n"
        "  --parallelism   compute the parallelism profile per FILE (width\n"
        "                  histogram per virtual-time bucket, work /\n"
        "                  critical-path ratio, per-link lookahead) and\n"
        "                  write the rows as a bench report\n"
        "  --bucket N      virtual-time bucket size (default 1)\n"
        "  --label NAME    row-label prefix for the next FILE (repeatable;\n"
        "                  default: the file's basename)\n"
        "  --json PATH     bench-report path (default\n"
        "                  BENCH_parallelism.json)\n"
        "  --no-json       skip the bench-report file\n"
        "\n"
        "exit codes (aligned with json_check):\n"
        "  0  every file analyzes cleanly\n"
        "  2  usage error\n"
        "  3  I/O error (file unreadable, report unwritable)\n"
        "  4  parse error (not JSON)\n"
        "  5  schema violation (not a trace / flight dump, or the causal\n"
        "     record is inconsistent: a lamport value contradicts its\n"
        "     parents)\n"
        "With several failing files the exit code is the first failure's;\n"
        "every file is still analyzed and reported.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t path_lines = 24;
  bool quiet = false;
  bool flight = false;
  bool parallelism = false;
  sim::sim_time bucket = 1;
  std::vector<std::string> files;
  std::vector<std::string> labels;  // parallel to files; "" = basename
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--path-lines" && i + 1 < argc) {
      const auto v = asyncrd::parse_u64(argv[++i]);
      if (!v) {
        std::cerr << "trace_analyze: --path-lines: expected a non-negative "
                     "integer, got '"
                  << argv[i] << "'\n";
        return exit_usage;
      }
      path_lines = static_cast<std::size_t>(*v);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--flight") {
      flight = true;
    } else if (a == "--parallelism") {
      parallelism = true;
    } else if (a == "--bucket" && i + 1 < argc) {
      const auto v = asyncrd::parse_u64(argv[++i]);
      if (!v || *v == 0) {
        std::cerr << "trace_analyze: --bucket: expected a positive integer, "
                     "got '"
                  << argv[i] << "'\n";
        return exit_usage;
      }
      bucket = *v;
    } else if (a == "--label" && i + 1 < argc) {
      labels.resize(files.size());
      labels.push_back(argv[++i]);
    } else if (a == "--json" && i + 1 < argc) {
      ++i;  // consumed by bench::reporter
    } else if (a == "--no-json") {
      // consumed by bench::reporter
    } else if (a == "--help" || a == "-h") {
      print_help(std::cout);
      return exit_ok;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "trace_analyze: unknown option " << a << '\n';
      print_help(std::cerr);
      return exit_usage;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty() || (flight && parallelism)) {
    print_help(std::cerr);
    return exit_usage;
  }
  labels.resize(files.size());

  int first_failure = exit_ok;
  const auto classify = [&](int code) {
    if (code != exit_ok && first_failure == exit_ok) first_failure = code;
  };
  std::vector<parallelism_result> results;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string label =
        labels[i].empty() ? basename_label(files[i]) : labels[i];
    if (flight)
      classify(analyze_flight(files[i], path_lines, quiet));
    else if (parallelism)
      classify(analyze_parallelism(files[i], label, bucket, results));
    else
      classify(analyze(files[i], path_lines, quiet));
  }
  if (parallelism && first_failure == exit_ok && !results.empty()) {
    bench::reporter rep("parallelism", argc, argv);
    classify(emit_parallelism(rep, std::move(results)));
  }
  return first_failure;
}
