// trace_analyze — read a causal trace (discovery_cli --trace / Perfetto
// JSON) and explain the run: critical path, fan-out, per-type latency.
//
//   trace_analyze [options] FILE...
//     --path-lines N   print at most N hops of the critical path (default 24)
//     --quiet          summary lines only (no per-hop path listing)
//
// The trace is self-contained: every 'X' slice carries its causal record
// (id, cause, release, lamport) in "args", so the genealogy is rebuilt from
// the JSON alone and re-verified here — lamport values must satisfy
// max(parent lamports) + 1.  Exit 0 iff every file parses, reconstructs,
// and passes the consistency checks.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/critical_path.h"
#include "telemetry/json.h"
#include "telemetry/tracer.h"

namespace {

using namespace asyncrd;
using telemetry::json_parse;
using telemetry::json_value;
using telemetry::trace_event;
using telemetry::trace_none;

std::uint64_t num_or(const json_value& obj, std::string_view key,
                     std::uint64_t fallback) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return static_cast<std::uint64_t>(v->as_number());
}

/// Rebuilds trace events from the 'X' slices of a trace document.
/// Returns false (with a message) if the file is not a usable trace.
bool load_trace(const std::string& path, std::vector<trace_event>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return false;
  }
  const json_value* evs = doc->find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    std::cerr << path << ": no \"traceEvents\" array (at byte "
              << doc->offset << ")\n";
    return false;
  }
  for (const json_value& ev : evs->as_array()) {
    const json_value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const json_value* args = ev.find("args");
    const json_value* name = ev.find("name");
    const json_value* cat = ev.find("cat");
    if (args == nullptr || !args->is_object() || name == nullptr ||
        cat == nullptr) {
      std::cerr << path << ": slice without args/name/cat (at byte "
                << ev.offset << ")\n";
      return false;
    }
    trace_event t;
    t.id = num_or(*args, "id", 0);
    t.cause = num_or(*args, "cause", trace_none);
    t.release = num_or(*args, "release", trace_none);
    t.lamport = num_or(*args, "lamport", 0);
    t.sends = static_cast<std::uint32_t>(num_or(*args, "sends", 0));
    t.at = num_or(ev, "ts", 0);
    t.to = static_cast<node_id>(num_or(ev, "tid", invalid_node));
    if (cat->as_string() == "wake") {
      t.what = trace_event::kind::wake;
    } else {
      t.what = trace_event::kind::deliver;
      t.type = name->as_string();
      t.from = static_cast<node_id>(num_or(*args, "from", invalid_node));
      t.sent_at = num_or(*args, "sent_at", 0);
      t.bits = num_or(*args, "bits", 0);
    }
    out.push_back(std::move(t));
  }
  if (out.empty()) {
    std::cerr << path << ": trace contains no activations\n";
    return false;
  }
  return true;
}

/// Recomputes every Lamport timestamp from the parent edges and compares
/// with what the file claims; also recomputes the binding parent.
bool verify_and_bind(const std::string& path, std::vector<trace_event>& evs) {
  std::unordered_map<std::uint64_t, const trace_event*> by_id;
  by_id.reserve(evs.size());
  const auto lamport_of = [&](std::uint64_t id) -> std::uint64_t {
    if (id == trace_none) return 0;
    const auto it = by_id.find(id);
    return it == by_id.end() ? 0 : it->second->lamport;
  };
  for (trace_event& e : evs) {
    const std::uint64_t lc = lamport_of(e.cause);
    const std::uint64_t lr = lamport_of(e.release);
    const std::uint64_t want = std::max(lc, lr) + 1;
    if (e.lamport != want) {
      std::cerr << path << ": event " << e.id << " claims lamport "
                << e.lamport << ", causal parents imply " << want << '\n';
      return false;
    }
    if (e.cause == trace_none && e.release == trace_none)
      e.parent = trace_none;
    else
      e.parent = lc >= lr ? (e.cause != trace_none ? e.cause : e.release)
                          : e.release;
    by_id.emplace(e.id, &e);
  }
  return true;
}

void print_path(const telemetry::critical_path& cp, std::size_t max_lines) {
  std::cout << "critical path (" << cp.length << " hops, ends at t="
            << cp.makespan << "):\n";
  const std::size_t n = cp.chain.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > max_lines && i == max_lines / 2) {
      std::cout << "  ... (" << n - max_lines << " hops elided) ...\n";
      i = n - (max_lines - max_lines / 2) - 1;
      continue;
    }
    const trace_event& e = cp.chain[i];
    std::cout << "  [" << e.lamport << "] t=" << e.at << ' ';
    if (e.what == trace_event::kind::wake)
      std::cout << "wake    " << e.to;
    else
      std::cout << "deliver " << e.from << " -> " << e.to << ' ' << e.type
                << (e.release != trace_none ? "  (released)" : "");
    std::cout << '\n';
  }
  std::cout << "hops by type:";
  for (const auto& [type, hops] : cp.hops_by_type)
    std::cout << "  " << type << "=" << hops;
  std::cout << '\n';
}

bool analyze(const std::string& path, std::size_t path_lines, bool quiet) {
  std::vector<trace_event> evs;
  if (!load_trace(path, evs)) return false;
  if (!verify_and_bind(path, evs)) return false;

  std::cout << "== " << path << " ==\n";
  std::uint64_t wakes = 0, delivers = 0;
  for (const trace_event& e : evs)
    (e.what == trace_event::kind::wake ? wakes : delivers) += 1;
  std::cout << "activations: " << evs.size() << " (" << wakes << " wakes, "
            << delivers << " deliveries)\n";

  const auto cp = telemetry::extract_critical_path(evs);
  if (quiet)
    std::cout << "critical path: " << cp.length << " hops, ends at t="
              << cp.makespan << '\n';
  else
    print_path(cp, path_lines);

  const auto fan = telemetry::compute_fanout(evs);
  std::cout << "fan-out: mean " << fan.mean_fanout << ", max "
            << fan.max_fanout << " (event " << fan.max_fanout_event
            << "), " << fan.sends << " sends attributed\n";

  std::cout << "latency by type (sim-time units):\n";
  for (const auto& [type, tl] : telemetry::latency_by_type(evs))
    std::cout << "  " << type << ": n=" << tl.count << " mean="
              << tl.mean_delay() << " max=" << tl.max_delay << '\n';
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t path_lines = 24;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--path-lines" && i + 1 < argc) {
      path_lines = std::stoull(argv[++i]);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "usage: trace_analyze [--path-lines N] [--quiet] FILE...\n";
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: trace_analyze [--path-lines N] [--quiet] FILE...\n";
    return 2;
  }
  bool all_ok = true;
  for (const std::string& f : files)
    all_ok = analyze(f, path_lines, quiet) && all_ok;
  return all_ok ? 0 : 1;
}
