// trace_analyze — read a causal trace (discovery_cli --trace / Perfetto
// JSON) and explain the run: critical path, fan-out, per-type latency.
//
//   trace_analyze [options] FILE...
//     --path-lines N   print at most N hops of the critical path (default 24)
//     --quiet          summary lines only (no per-hop path listing)
//     --flight         FILEs are flight-recorder dumps (the last-K-events
//                      ring the runtime health layer writes on a watchdog
//                      trip or checker violation), not causal traces:
//                      prints the event mix, the tail of the ring, and the
//                      cause chain ending at the final event
//
// The trace is self-contained: every 'X' slice carries its causal record
// (id, cause, release, lamport) in "args", so the genealogy is rebuilt from
// the JSON alone and re-verified here — lamport values must satisfy
// max(parent lamports) + 1.  Exit 0 iff every file parses, reconstructs,
// and passes the consistency checks.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/critical_path.h"
#include "telemetry/json.h"
#include "telemetry/tracer.h"

namespace {

using namespace asyncrd;
using telemetry::json_parse;
using telemetry::json_value;
using telemetry::trace_event;
using telemetry::trace_none;

std::uint64_t num_or(const json_value& obj, std::string_view key,
                     std::uint64_t fallback) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return static_cast<std::uint64_t>(v->as_number());
}

/// Rebuilds trace events from the 'X' slices of a trace document.
/// Returns false (with a message) if the file is not a usable trace.
bool load_trace(const std::string& path, std::vector<trace_event>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return false;
  }
  const json_value* evs = doc->find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    std::cerr << path << ": no \"traceEvents\" array (at byte "
              << doc->offset << ")\n";
    return false;
  }
  for (const json_value& ev : evs->as_array()) {
    const json_value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const json_value* args = ev.find("args");
    const json_value* name = ev.find("name");
    const json_value* cat = ev.find("cat");
    if (args == nullptr || !args->is_object() || name == nullptr ||
        cat == nullptr) {
      std::cerr << path << ": slice without args/name/cat (at byte "
                << ev.offset << ")\n";
      return false;
    }
    trace_event t;
    t.id = num_or(*args, "id", 0);
    t.cause = num_or(*args, "cause", trace_none);
    t.release = num_or(*args, "release", trace_none);
    t.lamport = num_or(*args, "lamport", 0);
    t.sends = static_cast<std::uint32_t>(num_or(*args, "sends", 0));
    t.at = num_or(ev, "ts", 0);
    t.to = static_cast<node_id>(num_or(ev, "tid", invalid_node));
    if (cat->as_string() == "wake") {
      t.what = trace_event::kind::wake;
    } else {
      t.what = trace_event::kind::deliver;
      t.type = name->as_string();
      t.from = static_cast<node_id>(num_or(*args, "from", invalid_node));
      t.sent_at = num_or(*args, "sent_at", 0);
      t.bits = num_or(*args, "bits", 0);
    }
    out.push_back(std::move(t));
  }
  if (out.empty()) {
    std::cerr << path << ": trace contains no activations\n";
    return false;
  }
  return true;
}

/// Recomputes every Lamport timestamp from the parent edges and compares
/// with what the file claims; also recomputes the binding parent.
bool verify_and_bind(const std::string& path, std::vector<trace_event>& evs) {
  std::unordered_map<std::uint64_t, const trace_event*> by_id;
  by_id.reserve(evs.size());
  const auto lamport_of = [&](std::uint64_t id) -> std::uint64_t {
    if (id == trace_none) return 0;
    const auto it = by_id.find(id);
    return it == by_id.end() ? 0 : it->second->lamport;
  };
  for (trace_event& e : evs) {
    const std::uint64_t lc = lamport_of(e.cause);
    const std::uint64_t lr = lamport_of(e.release);
    const std::uint64_t want = std::max(lc, lr) + 1;
    if (e.lamport != want) {
      std::cerr << path << ": event " << e.id << " claims lamport "
                << e.lamport << ", causal parents imply " << want << '\n';
      return false;
    }
    if (e.cause == trace_none && e.release == trace_none)
      e.parent = trace_none;
    else
      e.parent = lc >= lr ? (e.cause != trace_none ? e.cause : e.release)
                          : e.release;
    by_id.emplace(e.id, &e);
  }
  return true;
}

void print_path(const telemetry::critical_path& cp, std::size_t max_lines) {
  std::cout << "critical path (" << cp.length << " hops, ends at t="
            << cp.makespan << "):\n";
  const std::size_t n = cp.chain.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > max_lines && i == max_lines / 2) {
      std::cout << "  ... (" << n - max_lines << " hops elided) ...\n";
      i = n - (max_lines - max_lines / 2) - 1;
      continue;
    }
    const trace_event& e = cp.chain[i];
    std::cout << "  [" << e.lamport << "] t=" << e.at << ' ';
    if (e.what == trace_event::kind::wake)
      std::cout << "wake    " << e.to;
    else
      std::cout << "deliver " << e.from << " -> " << e.to << ' ' << e.type
                << (e.release != trace_none ? "  (released)" : "");
    std::cout << '\n';
  }
  std::cout << "hops by type:";
  for (const auto& [type, hops] : cp.hops_by_type)
    std::cout << "  " << type << "=" << hops;
  std::cout << '\n';
}

bool analyze(const std::string& path, std::size_t path_lines, bool quiet) {
  std::vector<trace_event> evs;
  if (!load_trace(path, evs)) return false;
  if (!verify_and_bind(path, evs)) return false;

  std::cout << "== " << path << " ==\n";
  std::uint64_t wakes = 0, delivers = 0;
  for (const trace_event& e : evs)
    (e.what == trace_event::kind::wake ? wakes : delivers) += 1;
  std::cout << "activations: " << evs.size() << " (" << wakes << " wakes, "
            << delivers << " deliveries)\n";

  const auto cp = telemetry::extract_critical_path(evs);
  if (quiet)
    std::cout << "critical path: " << cp.length << " hops, ends at t="
              << cp.makespan << '\n';
  else
    print_path(cp, path_lines);

  const auto fan = telemetry::compute_fanout(evs);
  std::cout << "fan-out: mean " << fan.mean_fanout << ", max "
            << fan.max_fanout << " (event " << fan.max_fanout_event
            << "), " << fan.sends << " sends attributed\n";

  std::cout << "latency by type (sim-time units):\n";
  for (const auto& [type, tl] : telemetry::latency_by_type(evs))
    std::cout << "  " << type << ": n=" << tl.count << " mean="
              << tl.mean_delay() << " max=" << tl.max_delay << '\n';
  return true;
}

/// One entry of a flight-recorder dump, as parsed back from the JSON.
struct flight_row {
  std::uint64_t at = 0;
  std::string kind;           // "wake" / "deliver" / "timer"
  std::string type;           // deliver only: dispatch-tag name
  std::uint64_t from = 0, to = 0, node = 0;
  std::uint64_t id = trace_none;     // absent key == none
  std::uint64_t cause = trace_none;  // absent key == none
};

void print_flight_row(const flight_row& r) {
  std::cout << "  t=" << r.at << ' ';
  if (r.kind == "wake")
    std::cout << "wake    " << r.node;
  else if (r.kind == "deliver")
    std::cout << "deliver " << r.from << " -> " << r.to << ' ' << r.type;
  else
    std::cout << "timer   key=" << r.cause;
  if (r.id != trace_none) std::cout << "  id=" << r.id;
  if (r.kind != "timer" && r.cause != trace_none)
    std::cout << " cause=" << r.cause;
  std::cout << '\n';
}

/// Summarizes a flight-recorder dump: header counters, per-kind/per-type
/// event mix, the tail of the ring, and the cause chain that produced the
/// final event — the postmortem view of "what was the run doing when it
/// died".  Exit-0 criterion: the file parses and matches the flight schema.
bool analyze_flight(const std::string& path, std::size_t path_lines,
                    bool quiet) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return false;
  }
  const json_value* dump_kind = doc->find("kind");
  if (dump_kind == nullptr || !dump_kind->is_string() ||
      dump_kind->as_string() != "flight") {
    std::cerr << path << ": not a flight dump (\"kind\" != \"flight\", at byte "
              << doc->offset << ")\n";
    return false;
  }
  const json_value* evs = doc->find("events");
  if (evs == nullptr || !evs->is_array()) {
    std::cerr << path << ": no \"events\" array (at byte " << doc->offset
              << ")\n";
    return false;
  }

  std::vector<flight_row> rows;
  rows.reserve(evs->as_array().size());
  std::uint64_t prev_at = 0;
  std::unordered_map<std::string, std::uint64_t> by_kind, by_type;
  for (const json_value& ev : evs->as_array()) {
    const json_value* k = ev.find("kind");
    if (!ev.is_object() || k == nullptr || !k->is_string()) {
      std::cerr << path << ": event without \"kind\" (at byte " << ev.offset
                << ")\n";
      return false;
    }
    flight_row r;
    r.kind = k->as_string();
    r.at = num_or(ev, "at", 0);
    if (r.at < prev_at) {
      std::cerr << path << ": events out of time order (at byte " << ev.offset
                << ")\n";
      return false;
    }
    prev_at = r.at;
    r.id = num_or(ev, "id", trace_none);
    r.cause = num_or(ev, "cause", trace_none);
    if (r.kind == "deliver") {
      r.from = num_or(ev, "from", 0);
      r.to = num_or(ev, "to", 0);
      if (const json_value* t = ev.find("type"); t != nullptr && t->is_string())
        r.type = t->as_string();
      ++by_type[r.type];
    } else if (r.kind == "wake") {
      r.node = num_or(ev, "node", 0);
    } else if (r.kind == "timer") {
      r.cause = num_or(ev, "key", trace_none);
    } else {
      std::cerr << path << ": unknown event kind \"" << r.kind
                << "\" (at byte " << ev.offset << ")\n";
      return false;
    }
    ++by_kind[r.kind];
    rows.push_back(std::move(r));
  }

  std::cout << "== " << path << " (flight dump) ==\n";
  std::cout << "ring: " << num_or(*doc, "recorded", rows.size()) << "/"
            << num_or(*doc, "capacity", 0) << " events, "
            << num_or(*doc, "dropped", 0) << " older events dropped\n";
  if (rows.empty()) {
    std::cout << "(empty ring)\n";
    return true;
  }
  std::cout << "window: t=" << rows.front().at << " .. t=" << rows.back().at
            << '\n';
  std::cout << "by kind:";
  for (const auto& [k, n] : by_kind) std::cout << "  " << k << "=" << n;
  std::cout << '\n';
  if (!by_type.empty()) {
    std::cout << "deliveries by type:";
    for (const auto& [t, n] : by_type) std::cout << "  " << t << "=" << n;
    std::cout << '\n';
  }
  if (quiet) return true;

  const std::size_t tail = std::min(path_lines, rows.size());
  std::cout << "last " << tail << " events:\n";
  for (std::size_t i = rows.size() - tail; i < rows.size(); ++i)
    print_flight_row(rows[i]);

  // Walk the cause chain backwards from the final event: which activation
  // genealogy was still live when the recorder stopped.  Ids reference the
  // causal tracer's id space, so ancestors older than the ring are simply
  // absent — the chain ends where the ring's memory does.
  std::unordered_map<std::uint64_t, const flight_row*> by_id;
  for (const flight_row& r : rows)
    if (r.id != trace_none) by_id.emplace(r.id, &r);
  const flight_row* cur = &rows.back();
  std::size_t hops = 0;
  std::cout << "cause chain from final event:\n";
  print_flight_row(*cur);
  while (cur->kind != "timer" && cur->cause != trace_none &&
         hops < path_lines) {
    const auto it = by_id.find(cur->cause);
    if (it == by_id.end()) {
      std::cout << "  (cause " << cur->cause << " older than the ring)\n";
      break;
    }
    cur = it->second;
    print_flight_row(*cur);
    ++hops;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t path_lines = 24;
  bool quiet = false;
  bool flight = false;
  std::vector<std::string> files;
  constexpr const char* usage =
      "usage: trace_analyze [--path-lines N] [--quiet] [--flight] FILE...\n";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--path-lines" && i + 1 < argc) {
      path_lines = std::stoull(argv[++i]);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--flight") {
      flight = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << usage;
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << usage;
    return 2;
  }
  bool all_ok = true;
  for (const std::string& f : files)
    all_ok = (flight ? analyze_flight(f, path_lines, quiet)
                     : analyze(f, path_lines, quiet)) &&
             all_ok;
  return all_ok ? 0 : 1;
}
