// loadgen — spawns and drives a service-mode discovery cluster on loopback.
//
//   loadgen --gen KIND:N[:EXTRA[:SEED]] [--variant V] [--procs P]
//           [--seed S] [--garbage K] [--report PREFIX] [--timeout SEC]
//           [--daemon PATH] [--json PATH | --no-json]
//
// The full service-mode acceptance path in one binary:
//
//   1. fork/exec P discoveryd processes (found next to this binary unless
//      --daemon overrides), each hosting the nodes {v : v mod P == i} of
//      the generated topology;
//   2. collect dg_hello announcements to learn each child's data port,
//      then broadcast dg_portmap + dg_start (re-sent until status answers
//      flow — the control plane is idempotent over lossy UDP);
//   3. optionally blast --garbage K malformed datagrams at every data port
//      from an untrusted socket (they must be *counted* as decode drops,
//      never crash a child or stall convergence);
//   4. poll dg_status_req until the cluster converges: every process
//      reports zero outstanding work and cluster-wide progress is
//      unchanged across two consecutive complete rounds;
//   5. dg_finalize: collect every node's member_state and verify the
//      discovery result with core::check_membership — the same paper
//      properties (exactly one leader per weak component, complete done
//      set, routed non-leaders, no parked work) sim tests assert;
//   6. run the in-process simulator twin (same graph, same variant, wire
//      codec armed) and emit BENCH_service_loopback.json comparing
//      convergence time, messages, and wire bytes;
//   7. dg_stop everything and reap; any child exiting nonzero fails the
//      run.
//
// Exit codes: 0 verified convergence, 1 failure (timeout, checker
// violation, child crash), 2 usage.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/parse.h"
#include "common/rng.h"
#include "core/checker.h"
#include "core/runner.h"
#include "net/envelope.h"
#include "net/genspec.h"
#include "net/udp.h"
#include "sim/scheduler.h"
#include "sim/wire.h"
#include "telemetry/report.h"

namespace {

using namespace asyncrd;
using clock_t_ = std::chrono::steady_clock;

constexpr int exit_usage = 2;

[[noreturn]] void usage(const char* err) {
  if (err != nullptr) std::cerr << "loadgen: " << err << "\n\n";
  std::cerr <<
      "usage: loadgen --gen KIND:N[:EXTRA[:SEED]] [options]\n"
      "  --variant generic|bounded|adhoc  algorithm variant (default generic)\n"
      "  --procs P        discoveryd processes to spawn (default 4)\n"
      "  --seed S         link seed (default 1)\n"
      "  --garbage K      inject K malformed datagrams per data port\n"
      "  --report PREFIX  children write PREFIX.<i>.json run reports\n"
      "  --timeout SEC    overall deadline (default 120)\n"
      "  --daemon PATH    discoveryd binary (default: next to loadgen)\n"
      "  --json PATH      bench output (default BENCH_service_loopback.json)\n"
      "  --no-json        skip the bench file\n";
  std::exit(exit_usage);
}

std::uint64_t num_u64(const std::string& flag, const std::string& text) {
  const auto v = parse_u64(text);
  if (!v)
    usage((flag + ": expected a non-negative integer, got '" + text + "'")
              .c_str());
  return *v;
}

/// Directory of the running binary, from /proc/self/exe.
std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

struct child {
  pid_t pid = -1;
  net::endpoint data;     ///< learned from dg_hello's source address
  bool known = false;     ///< hello received
  bool answered = false;  ///< at least one dg_status received
  std::uint64_t progress = 0;
  std::uint64_t outstanding = ~0ull;
  std::uint64_t decode_errors = 0;
  bool state_end = false;
  std::uint64_t total_messages = 0;
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t final_decode_errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string gen_spec, variant_name = "generic", report_prefix, daemon_path;
  std::uint64_t procs = 4, seed = 1, garbage = 0, timeout_s = 120;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--gen") gen_spec = next();
    else if (a == "--variant") variant_name = next();
    else if (a == "--procs") procs = num_u64(a, next());
    else if (a == "--seed") seed = num_u64(a, next());
    else if (a == "--garbage") garbage = num_u64(a, next());
    else if (a == "--report") report_prefix = next();
    else if (a == "--timeout") timeout_s = num_u64(a, next());
    else if (a == "--daemon") daemon_path = next();
    else if (a == "--json") { ++i; }       // consumed by bench::reporter
    else if (a == "--no-json") {}          // consumed by bench::reporter
    else if (a == "--help" || a == "-h") usage(nullptr);
    else usage(("unknown flag " + a).c_str());
  }
  if (gen_spec.empty()) usage("--gen is required");
  if (procs == 0 || procs > 256) usage("--procs must be in 1..256");

  core::config cfg;
  if (variant_name == "generic") cfg.algo = core::variant::generic;
  else if (variant_name == "bounded") cfg.algo = core::variant::bounded;
  else if (variant_name == "adhoc") cfg.algo = core::variant::adhoc;
  else usage("unknown --variant");

  const net::genspec_result gen = net::parse_genspec(gen_spec);
  if (!gen.ok()) usage(gen.error.c_str());
  const graph::digraph& g = gen.graph;
  const std::size_t n = g.node_count();

  bench::reporter rep("service_loopback", argc, argv);
  std::vector<child> kids(procs);
  const auto deadline = clock_t_::now() + std::chrono::seconds(timeout_s);

  const auto kill_all = [&kids]() {
    for (child& c : kids)
      if (c.pid > 0) ::kill(c.pid, SIGKILL);
    for (child& c : kids) {
      if (c.pid > 0) ::waitpid(c.pid, nullptr, 0);
      c.pid = -1;
    }
  };
  const auto fail = [&](const std::string& why) -> int {
    std::cerr << "loadgen: FAIL: " << why << "\n";
    kill_all();
    rep.note("failed", 1.0);
    return rep.finish(false) == 0 ? 1 : 1;
  };

  try {
    net::udp_socket control;
    control.bind_loopback();

    // --- 1. spawn -------------------------------------------------------
    const std::string daemon =
        daemon_path.empty() ? self_dir() + "/discoveryd" : daemon_path;
    for (std::uint64_t i = 0; i < procs; ++i) {
      const pid_t pid = ::fork();
      if (pid < 0) return fail("fork failed");
      if (pid == 0) {
        ::execl(daemon.c_str(), daemon.c_str(), "--gen", gen_spec.c_str(),
                "--variant", variant_name.c_str(), "--procs",
                std::to_string(procs).c_str(), "--index",
                std::to_string(i).c_str(), "--seed",
                std::to_string(seed).c_str(), "--control",
                std::to_string(control.port()).c_str(), "--quiet",
                report_prefix.empty() ? nullptr : "--json",
                report_prefix.empty()
                    ? nullptr
                    : (report_prefix + "." + std::to_string(i) + ".json")
                          .c_str(),
                nullptr);
        std::perror("loadgen: execl discoveryd");
        std::_Exit(127);
      }
      kids[i].pid = pid;
    }

    std::vector<std::uint8_t> out, in(net::max_datagram);
    net::endpoint from;
    const auto send_to_all = [&](const std::vector<std::uint8_t>& d) {
      for (const child& c : kids)
        if (c.known) control.send_to(c.data, d.data(), d.size());
    };
    const auto check_children_alive = [&]() -> bool {
      for (child& c : kids) {
        if (c.pid <= 0) continue;
        int status = 0;
        if (::waitpid(c.pid, &status, WNOHANG) == c.pid) {
          c.pid = -1;
          return false;  // a child died before dg_stop
        }
      }
      return true;
    };

    // Drains pending control-socket datagrams into the child table.
    std::vector<core::member_state> members;
    const auto drain = [&]() {
      for (;;) {
        const std::ptrdiff_t got =
            control.recv_from(from, in.data(), in.size());
        if (got < 0) break;
        if (got == 0) continue;
        try {
          sim::wire::reader r(in.data() + 1, static_cast<std::size_t>(got) - 1);
          switch (in[0]) {
            case net::dg_hello: {
              const std::uint64_t idx = r.varint();
              r.expect_end();
              if (idx >= procs) break;
              kids[idx].data = from;
              kids[idx].known = true;
              break;
            }
            case net::dg_status: {
              const std::uint64_t idx = r.varint();
              if (idx >= procs) break;
              child& c = kids[idx];
              c.progress = r.varint();
              c.outstanding = r.varint();
              c.decode_errors = r.varint();
              r.expect_end();
              c.answered = true;
              break;
            }
            case net::dg_state: {
              core::member_state m;
              const std::uint64_t idx = r.varint();
              if (idx >= procs) break;
              m.id = static_cast<node_id>(r.varint());
              m.status = static_cast<core::status_t>(r.byte());
              const std::uint8_t flags = r.byte();
              m.has_deferred = (flags & net::state_flag_deferred) != 0;
              m.has_pending = (flags & net::state_flag_pending) != 0;
              m.more_empty = (flags & net::state_flag_more_empty) != 0;
              m.unaware_empty = (flags & net::state_flag_unaware_empty) != 0;
              m.next = static_cast<node_id>(r.varint());
              const auto done = sim::wire::id_set_view::parse(r);
              r.expect_end();
              for (const std::uint64_t v : done)
                m.done.push_back(static_cast<node_id>(v));
              // Idempotent finalize: children re-send on every dg_finalize.
              const auto dup = std::find_if(
                  members.begin(), members.end(),
                  [&](const core::member_state& e) { return e.id == m.id; });
              if (dup == members.end()) members.push_back(std::move(m));
              break;
            }
            case net::dg_state_end: {
              const std::uint64_t idx = r.varint();
              if (idx >= procs) break;
              child& c = kids[idx];
              c.total_messages = r.varint();
              c.wire_frames = r.varint();
              c.wire_bytes = r.varint();
              c.final_decode_errors = r.varint();
              r.varint();  // virtual completion time (per-proc, unused)
              r.expect_end();
              c.state_end = true;
              break;
            }
            default:
              break;  // stray datagram on the control socket: ignore
          }
        } catch (const sim::wire::decode_error&) {
          // Malformed control traffic: ignore (children are trusted, UDP
          // is not; the next idempotent round recovers).
        }
      }
    };

    // --- 2. hello -> portmap -> start -----------------------------------
    while (clock_t_::now() < deadline) {
      drain();
      if (std::all_of(kids.begin(), kids.end(),
                      [](const child& c) { return c.known; }))
        break;
      if (!check_children_alive()) return fail("a child exited during hello");
      net::wait_readable(control.fd(), 50);
    }
    if (!std::all_of(kids.begin(), kids.end(),
                     [](const child& c) { return c.known; }))
      return fail("timed out waiting for dg_hello from every child");

    out.clear();
    out.push_back(net::dg_portmap);
    sim::wire::put_varint(out, procs);
    for (const child& c : kids) sim::wire::put_varint(out, c.data.port);
    const std::vector<std::uint8_t> portmap = out;
    const std::vector<std::uint8_t> start = {net::dg_start};
    const std::vector<std::uint8_t> status_req = {net::dg_status_req};

    const auto started_at = clock_t_::now();
    send_to_all(portmap);
    send_to_all(start);

    // --- 3. garbage injection (from an *untrusted* socket) ---------------
    if (garbage > 0) {
      net::udp_socket garbage_sock;
      garbage_sock.bind_loopback();
      rng grng(seed ^ 0x6A72'6261'6765ull);
      std::vector<std::uint8_t> junk;
      for (const child& c : kids) {
        for (std::uint64_t k = 0; k < garbage; ++k) {
          junk.clear();
          // Rotate through the datagram planes: raw noise, truncated
          // data-plane envelopes, and control-plane tags from this
          // unknown endpoint.  All must be counted, none may crash.
          const std::uint64_t kind = k % 3;
          if (kind == 0) junk.push_back(static_cast<std::uint8_t>(grng.next()));
          else if (kind == 1) junk.push_back(net::dg_data);
          else junk.push_back(net::dg_status_req);
          const std::uint64_t len = grng.below(48);
          for (std::uint64_t b = 0; b < len; ++b)
            junk.push_back(static_cast<std::uint8_t>(grng.next()));
          garbage_sock.send_to(c.data, junk.data(), junk.size());
        }
      }
    }

    // --- 4. convergence polling ------------------------------------------
    bool converged = false;
    double convergence_ms = 0.0;
    std::uint64_t last_progress_sum = ~0ull;
    while (clock_t_::now() < deadline) {
      for (child& c : kids) c.answered = false;
      send_to_all(status_req);
      // A child that never answered may have lost portmap/start: re-send.
      const auto round_end = clock_t_::now() + std::chrono::milliseconds(60);
      while (clock_t_::now() < round_end) {
        net::wait_readable(control.fd(), 20);
        drain();
        if (std::all_of(kids.begin(), kids.end(),
                        [](const child& c) { return c.answered; }))
          break;
      }
      if (!check_children_alive())
        return fail("a child exited during convergence");
      if (!std::all_of(kids.begin(), kids.end(),
                       [](const child& c) { return c.answered; })) {
        send_to_all(portmap);
        send_to_all(start);
        continue;
      }
      std::uint64_t outstanding_sum = 0, progress_sum = 0;
      for (const child& c : kids) {
        outstanding_sum += c.outstanding;
        progress_sum += c.progress;
      }
      if (outstanding_sum == 0 && progress_sum == last_progress_sum) {
        converged = true;
        convergence_ms = std::chrono::duration<double, std::milli>(
                             clock_t_::now() - started_at)
                             .count();
        break;
      }
      last_progress_sum = progress_sum;
    }
    if (!converged) return fail("cluster did not converge before --timeout");

    // --- 5. finalize + membership check ----------------------------------
    const std::vector<std::uint8_t> finalize = [] {
      std::vector<std::uint8_t> d{net::dg_finalize};
      sim::wire::put_varint(d, net::finalize_magic);
      return d;
    }();
    while (clock_t_::now() < deadline) {
      send_to_all(finalize);
      const auto round_end = clock_t_::now() + std::chrono::milliseconds(100);
      while (clock_t_::now() < round_end) {
        net::wait_readable(control.fd(), 25);
        drain();
        if (std::all_of(kids.begin(), kids.end(),
                        [](const child& c) { return c.state_end; }))
          break;
      }
      if (std::all_of(kids.begin(), kids.end(),
                      [](const child& c) { return c.state_end; }))
        break;
    }
    if (!std::all_of(kids.begin(), kids.end(),
                     [](const child& c) { return c.state_end; }))
      return fail("timed out collecting final state");
    if (members.size() != n)
      return fail("collected " + std::to_string(members.size()) +
                  " member states for " + std::to_string(n) + " nodes");

    const core::check_report verdict =
        core::check_membership(members, g.weak_components(), cfg.algo);
    if (!verdict.ok())
      return fail("membership check:\n" + verdict.to_string());

    std::uint64_t svc_messages = 0, svc_frames = 0, svc_bytes = 0,
                  svc_decode_errors = 0;
    for (const child& c : kids) {
      svc_messages += c.total_messages;
      svc_frames += c.wire_frames;
      svc_bytes += c.wire_bytes;
      svc_decode_errors += c.final_decode_errors;
    }
    if (garbage > 0 && svc_decode_errors == 0)
      return fail("--garbage was injected but no decode drops were counted");

    // --- 6. simulator twin + bench report --------------------------------
    sim::unit_delay_scheduler sched;
    core::discovery_run twin(g, cfg, sched);
    twin.enable_wire();
    twin.wake_all();
    const sim::run_result twin_res = twin.run();
    const core::check_report twin_verdict = core::check_final_state(twin, g);
    if (!twin_res.completed || !twin_verdict.ok())
      return fail("simulator twin failed its own checker");
    const std::uint64_t sim_messages = twin.net().statistics().total_messages();
    const std::uint64_t sim_bytes = twin.net().wire_bytes_sent();

    const double dn = static_cast<double>(n);
    rep.add("convergence_ms", dn, convergence_ms, 0.0);
    rep.add("service_messages", dn, static_cast<double>(svc_messages), 0.0);
    rep.add("service_wire_frames", dn, static_cast<double>(svc_frames), 0.0);
    rep.add("service_wire_bytes", dn, static_cast<double>(svc_bytes), 0.0);
    rep.add("sim_messages", dn, static_cast<double>(sim_messages), 0.0);
    rep.add("sim_wire_bytes", dn, static_cast<double>(sim_bytes), 0.0);
    rep.merge_stats(twin.net().statistics());
    rep.note("procs", static_cast<double>(procs));
    rep.note("seed", static_cast<double>(seed));
    rep.note("garbage_per_port", static_cast<double>(garbage));
    rep.note("decode_errors", static_cast<double>(svc_decode_errors));
    rep.note("service_vs_sim_messages",
             sim_messages > 0 ? static_cast<double>(svc_messages) /
                                    static_cast<double>(sim_messages)
                              : 0.0);
    rep.note("service_vs_sim_bytes",
             sim_bytes > 0 ? static_cast<double>(svc_bytes) /
                                 static_cast<double>(sim_bytes)
                           : 0.0);

    // --- 7. stop + reap ---------------------------------------------------
    send_to_all({net::dg_stop});
    bool clean = true;
    for (child& c : kids) {
      if (c.pid <= 0) continue;
      int status = 0;
      const auto stop_deadline = clock_t_::now() + std::chrono::seconds(5);
      for (;;) {
        const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
        if (r == c.pid) break;
        if (clock_t_::now() > stop_deadline) {
          // dg_stop lost repeatedly or the child wedged: re-send, then kill.
          control.send_to(c.data, out.data(), 0);
          const std::vector<std::uint8_t> stop_dg = {net::dg_stop};
          control.send_to(c.data, stop_dg.data(), stop_dg.size());
          ::kill(c.pid, SIGKILL);
          ::waitpid(c.pid, &status, 0);
          clean = false;
          break;
        }
        const std::vector<std::uint8_t> stop_dg = {net::dg_stop};
        control.send_to(c.data, stop_dg.data(), stop_dg.size());
        net::wait_readable(control.fd(), 50);
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) clean = false;
      c.pid = -1;
    }
    if (!clean) return fail("a child did not exit cleanly");

    std::cout << "loadgen: " << variant_name << " cluster of " << n
              << " nodes over " << procs << " processes converged in "
              << convergence_ms << " ms (" << svc_messages << " messages, "
              << svc_bytes << " wire bytes, " << svc_decode_errors
              << " decode drops); membership verified\n";
    return rep.finish(true);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
