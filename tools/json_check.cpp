// json_check — validates telemetry JSON emitted by benches and the CLI.
//
//   json_check FILE...            each FILE must be a bench report with the
//                                 keys {bench, ok, wall_ms, n_values,
//                                 measured, predicted_bound,
//                                 messages_by_type}
//   json_check --report FILE...   each FILE must be a run report with the
//                                 keys {label, variant, nodes,
//                                 total_messages, messages_by_type, wall_ms,
//                                 load, transitions}
//   json_check --trace FILE...    each FILE must be a Chrome trace-event /
//                                 Perfetto trace (discovery_cli --trace):
//                                 top-level {traceEvents, displayTimeUnit},
//                                 well-formed events, balanced s/f flow
//                                 pairs (see docs/OBSERVABILITY.md)
//
// Every failure names the offending byte offset: parse errors carry the
// parser's position, semantic errors the offset of the bad (sub)value.
// Exit 0 iff every file validates.  CI runs this over the bench-smoke and
// trace outputs; ctest runs it over discovery_cli emissions (see
// tests/CMakeLists.txt).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace {

using asyncrd::telemetry::json_parse;
using asyncrd::telemetry::json_value;

const std::vector<std::string> bench_keys = {
    "bench",    "ok",       "wall_ms",         "n_values",
    "measured", "predicted_bound", "messages_by_type"};

const std::vector<std::string> report_keys = {
    "label",          "variant", "nodes",   "total_messages",
    "messages_by_type", "wall_ms", "load",  "chaos", "transitions"};

bool complain(const std::string& path, std::size_t offset,
              const std::string& what) {
  std::cerr << path << ": " << what << " (at byte " << offset << ")\n";
  return false;
}

bool check_keys(const std::string& path, const json_value& doc,
                const std::vector<std::string>& keys) {
  bool ok = true;
  for (const std::string& k : keys) {
    if (doc.find(k) == nullptr)
      ok = complain(path, doc.offset, "missing required key \"" + k + "\"");
  }
  return ok;
}

/// One trace event: an object with name/ph/pid/tid, plus the per-phase
/// requirements ('X' slices need ts+dur+args, flows need ts+id).
bool check_trace_event(const std::string& path, const json_value& ev,
                       std::size_t idx,
                       std::map<double, int>& open_flows) {
  const std::string where = "traceEvents[" + std::to_string(idx) + "]";
  if (!ev.is_object())
    return complain(path, ev.offset, where + " is not an object");
  bool ok = true;
  for (const char* k : {"name", "ph", "pid", "tid"}) {
    if (ev.find(k) == nullptr)
      ok = complain(path, ev.offset,
                    where + " missing key \"" + std::string(k) + "\"");
  }
  const json_value* ph = ev.find("ph");
  if (ph == nullptr || !ph->is_string()) return false;
  const std::string& phase = ph->as_string();
  if (phase == "M") return ok;  // metadata: no timestamp required
  const json_value* ts = ev.find("ts");
  if (ts == nullptr || !ts->is_number())
    ok = complain(path, ev.offset, where + " missing numeric \"ts\"");
  if (phase == "X") {
    if (const json_value* dur = ev.find("dur");
        dur == nullptr || !dur->is_number())
      ok = complain(path, ev.offset, where + " slice missing numeric \"dur\"");
    if (const json_value* args = ev.find("args");
        args == nullptr || !args->is_object()) {
      ok = complain(path, ev.offset, where + " slice missing \"args\" object");
    } else {
      for (const char* k : {"id", "lamport"}) {
        if (args->find(k) == nullptr)
          ok = complain(path, args->offset,
                        where + " args missing \"" + std::string(k) + "\"");
      }
    }
  } else if (phase == "s" || phase == "f") {
    const json_value* id = ev.find("id");
    if (id == nullptr || !id->is_number()) {
      ok = complain(path, ev.offset, where + " flow missing numeric \"id\"");
    } else {
      open_flows[id->as_number()] += phase == "s" ? 1 : -1;
    }
  }
  return ok;
}

bool check_trace(const std::string& path, const json_value& doc) {
  bool ok = check_keys(path, doc, {"traceEvents", "displayTimeUnit"});
  const json_value* evs = doc.find("traceEvents");
  if (evs == nullptr) return false;
  if (!evs->is_array())
    return complain(path, evs->offset, "\"traceEvents\" is not an array");
  std::map<double, int> open_flows;  // flow id -> starts minus finishes
  for (std::size_t i = 0; i < evs->as_array().size(); ++i)
    ok = check_trace_event(path, evs->as_array()[i], i, open_flows) && ok;
  for (const auto& [id, balance] : open_flows) {
    if (balance != 0)
      ok = complain(path, evs->offset,
                    "flow id " + std::to_string(static_cast<long long>(id)) +
                        " has unbalanced s/f events (" +
                        std::to_string(balance) + ")");
  }
  return ok;
}

enum class mode { bench, report, trace };

bool check_file(const std::string& path, mode m) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return false;
  }
  if (!doc->is_object())
    return complain(path, doc->offset, "top-level value is not an object");
  bool ok = true;
  switch (m) {
    case mode::bench: ok = check_keys(path, *doc, bench_keys); break;
    case mode::report: ok = check_keys(path, *doc, report_keys); break;
    case mode::trace: ok = check_trace(path, *doc); break;
  }
  if (ok) std::cout << path << ": OK\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  mode m = mode::bench;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--report") {
      m = mode::report;
    } else if (a == "--bench") {
      m = mode::bench;
    } else if (a == "--trace") {
      m = mode::trace;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: json_check [--report|--bench|--trace] FILE...\n";
    return 2;
  }
  bool all_ok = true;
  for (const std::string& f : files) all_ok = check_file(f, m) && all_ok;
  return all_ok ? 0 : 1;
}
