// json_check — validates telemetry JSON emitted by benches and the CLI.
//
//   json_check FILE...            each FILE must be a bench report with the
//                                 keys {bench, ok, wall_ms, n_values,
//                                 measured, predicted_bound,
//                                 messages_by_type}
//   json_check --report FILE...   each FILE must be a run report with the
//                                 keys {label, variant, nodes,
//                                 total_messages, messages_by_type, wall_ms,
//                                 load, transitions}
//
// Exit 0 iff every file parses and carries its required keys.  CI runs this
// over the bench-smoke outputs; ctest runs it over a discovery_cli --json
// report and a real bench emission (see tests/CMakeLists.txt).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace {

using asyncrd::telemetry::json_parse;
using asyncrd::telemetry::json_value;

const std::vector<std::string> bench_keys = {
    "bench",    "ok",       "wall_ms",         "n_values",
    "measured", "predicted_bound", "messages_by_type"};

const std::vector<std::string> report_keys = {
    "label",          "variant", "nodes",   "total_messages",
    "messages_by_type", "wall_ms", "load",  "transitions"};

bool check_file(const std::string& path, const std::vector<std::string>& keys) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return false;
  }
  if (!doc->is_object()) {
    std::cerr << path << ": top-level value is not an object\n";
    return false;
  }
  bool ok = true;
  for (const std::string& k : keys) {
    if (doc->find(k) == nullptr) {
      std::cerr << path << ": missing required key \"" << k << "\"\n";
      ok = false;
    }
  }
  if (ok) std::cout << path << ": OK\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool report_mode = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--report") {
      report_mode = true;
    } else if (a == "--bench") {
      report_mode = false;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: json_check [--report|--bench] FILE...\n";
    return 2;
  }
  bool all_ok = true;
  for (const std::string& f : files)
    all_ok = check_file(f, report_mode ? report_keys : bench_keys) && all_ok;
  return all_ok ? 0 : 1;
}
