// json_check — validates telemetry JSON emitted by benches and the CLI.
//
//   json_check FILE...            each FILE must be a bench report with the
//                                 keys {bench, ok, wall_ms, n_values,
//                                 measured, predicted_bound,
//                                 messages_by_type, provenance}
//   json_check --report FILE...   each FILE must be a run report:
//                                 report_version must be a known version,
//                                 required keys {label, variant, nodes,
//                                 total_messages, messages_by_type, wall_ms,
//                                 load, chaos, series, watchdog,
//                                 transitions}; "series" sample times must
//                                 be strictly increasing and every column
//                                 must match their length; "watchdog" must
//                                 carry an "armed" bool and a "trips" array
//   json_check --trace FILE...    each FILE must be a Chrome trace-event /
//                                 Perfetto trace (discovery_cli --trace):
//                                 top-level {traceEvents, displayTimeUnit},
//                                 well-formed events, balanced s/f flow
//                                 pairs (see docs/OBSERVABILITY.md)
//
// Every failure names the offending byte offset: parse errors carry the
// parser's position, semantic errors the offset of the bad (sub)value.
//
// Exit codes (documented in --help):
//   0  every file validates
//   2  usage error
//   3  I/O error (a file could not be opened/read)
//   4  parse error (a file is not JSON)
//   5  schema violation (valid JSON, wrong shape/version)
// With several failing files the exit code is the first failure's; every
// file is still checked and reported.  CI runs this over the bench-smoke,
// run-report, and trace outputs; ctest runs it over discovery_cli
// emissions (see tests/CMakeLists.txt).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace {

using asyncrd::telemetry::json_parse;
using asyncrd::telemetry::json_value;

// Exit codes (also the per-file failure classification).
constexpr int exit_ok = 0;
constexpr int exit_usage = 2;
constexpr int exit_io = 3;
constexpr int exit_parse = 4;
constexpr int exit_schema = 5;

/// Report schema versions this binary understands.
constexpr std::uint64_t min_report_version = 2;
constexpr std::uint64_t max_report_version = 3;

const std::vector<std::string> bench_keys = {
    "bench",    "ok",       "wall_ms",         "n_values",
    "measured", "predicted_bound", "messages_by_type", "provenance"};

const std::vector<std::string> report_keys = {
    "label",    "variant",  "nodes", "total_messages", "messages_by_type",
    "wall_ms",  "load",     "chaos", "series",         "watchdog",
    "transitions"};

bool complain(const std::string& path, std::size_t offset,
              const std::string& what) {
  std::cerr << path << ": " << what << " (at byte " << offset << ")\n";
  return false;
}

bool check_keys(const std::string& path, const json_value& doc,
                const std::vector<std::string>& keys) {
  bool ok = true;
  for (const std::string& k : keys) {
    if (doc.find(k) == nullptr)
      ok = complain(path, doc.offset, "missing required key \"" + k + "\"");
  }
  return ok;
}

/// report_version must be present, integral, and a version this binary
/// knows — otherwise a schema change would silently diff wrong.
bool check_report_version(const std::string& path, const json_value& doc) {
  const json_value* v = doc.find("report_version");
  if (v == nullptr)
    return complain(path, doc.offset, "missing required key \"report_version\"");
  if (!v->is_number())
    return complain(path, v->offset, "\"report_version\" is not a number");
  const double raw = v->as_number();
  const auto ver = static_cast<std::uint64_t>(raw);
  if (raw != static_cast<double>(ver))
    return complain(path, v->offset, "\"report_version\" is not an integer");
  if (ver < min_report_version || ver > max_report_version)
    return complain(path, v->offset,
                    "unknown report_version " + std::to_string(ver) +
                        " (this validator understands " +
                        std::to_string(min_report_version) + ".." +
                        std::to_string(max_report_version) + ")");
  return true;
}

/// "series": {"interval", "stride", "recorded", "t": [...], "cols": {...}}
/// with strictly increasing sample times and every column as long as t.
bool check_series(const std::string& path, const json_value& series) {
  if (!series.is_object())
    return complain(path, series.offset, "\"series\" is not an object");
  bool ok = true;
  for (const char* k : {"interval", "stride", "recorded"}) {
    const json_value* v = series.find(k);
    if (v == nullptr || !v->is_number())
      ok = complain(path, series.offset,
                    "series missing numeric \"" + std::string(k) + "\"");
  }
  const json_value* t = series.find("t");
  if (t == nullptr || !t->is_array())
    return complain(path, series.offset, "series missing \"t\" array");
  double prev = -1.0;
  for (const json_value& v : t->as_array()) {
    if (!v.is_number())
      return complain(path, v.offset, "series time is not a number");
    if (v.as_number() <= prev)
      ok = complain(path, v.offset, "series times are not strictly increasing");
    prev = v.as_number();
  }
  const json_value* cols = series.find("cols");
  if (cols == nullptr || !cols->is_object())
    return complain(path, series.offset, "series missing \"cols\" object");
  const std::size_t n = t->as_array().size();
  for (const auto& [name, col] : cols->as_object()) {
    if (!col.is_array()) {
      ok = complain(path, col.offset,
                    "series column \"" + name + "\" is not an array");
      continue;
    }
    if (col.as_array().size() != n)
      ok = complain(path, col.offset,
                    "series column \"" + name + "\" has " +
                        std::to_string(col.as_array().size()) +
                        " values for " + std::to_string(n) + " sample times");
  }
  return ok;
}

/// "watchdog": {"armed": bool, "window", "trips": [{...}, ...]}
bool check_watchdog(const std::string& path, const json_value& wd) {
  if (!wd.is_object())
    return complain(path, wd.offset, "\"watchdog\" is not an object");
  bool ok = true;
  const json_value* armed = wd.find("armed");
  if (armed == nullptr || !armed->is_bool())
    ok = complain(path, wd.offset, "watchdog missing \"armed\" bool");
  if (const json_value* v = wd.find("window"); v == nullptr || !v->is_number())
    ok = complain(path, wd.offset, "watchdog missing numeric \"window\"");
  const json_value* trips = wd.find("trips");
  if (trips == nullptr || !trips->is_array())
    return complain(path, wd.offset, "watchdog missing \"trips\" array");
  for (const json_value& trip : trips->as_array()) {
    if (!trip.is_object()) {
      ok = complain(path, trip.offset, "watchdog trip is not an object");
      continue;
    }
    for (const char* k : {"at", "last_progress_at", "in_flight",
                          "arq_outstanding"}) {
      const json_value* v = trip.find(k);
      if (v == nullptr || !v->is_number())
        ok = complain(path, trip.offset,
                      "watchdog trip missing numeric \"" + std::string(k) +
                          "\"");
    }
  }
  return ok;
}

/// "profile" (report_version >= 3): {"armed": bool, "loop_ticks",
/// "attributed_fraction", "phases": [...], "tags": [...]} with every
/// bucket entry carrying {name, count, ticks, ns}.
bool check_profile(const std::string& path, const json_value& prof) {
  if (!prof.is_object())
    return complain(path, prof.offset, "\"profile\" is not an object");
  bool ok = true;
  const json_value* armed = prof.find("armed");
  if (armed == nullptr || !armed->is_bool())
    ok = complain(path, prof.offset, "profile missing \"armed\" bool");
  for (const char* k : {"ticks_per_ns", "loop_ticks", "loop_ns", "events",
                        "sampled_events", "sample_every",
                        "attributed_fraction"}) {
    const json_value* v = prof.find(k);
    if (v == nullptr || !v->is_number())
      ok = complain(path, prof.offset,
                    "profile missing numeric \"" + std::string(k) + "\"");
  }
  for (const char* list : {"phases", "tags"}) {
    const json_value* arr = prof.find(list);
    if (arr == nullptr || !arr->is_array()) {
      ok = complain(path, prof.offset,
                    "profile missing \"" + std::string(list) + "\" array");
      continue;
    }
    for (const json_value& e : arr->as_array()) {
      if (!e.is_object()) {
        ok = complain(path, e.offset, "profile bucket is not an object");
        continue;
      }
      if (const json_value* n = e.find("name");
          n == nullptr || !n->is_string())
        ok = complain(path, e.offset, "profile bucket missing \"name\"");
      for (const char* k : {"count", "ticks", "ns"}) {
        const json_value* v = e.find(k);
        if (v == nullptr || !v->is_number())
          ok = complain(path, e.offset,
                        "profile bucket missing numeric \"" + std::string(k) +
                            "\"");
      }
    }
  }
  return ok;
}

/// "wire" (optional; present when the binary codec was armed):
/// {"enabled": bool, "bytes_sent", "frames", "by_type": {type: {"count",
/// "bytes"}, ...}} — non-negative numerics, every per-type byte total at
/// least its frame count (each frame carries >= 1 header byte), and when
/// the same type appears in messages_by_type its wire frame count must not
/// exceed the recorded message count (chaos duplicates re-record stats but
/// not wire frames; they are never lower).
bool check_wire(const std::string& path, const json_value& wire,
                const json_value* messages_by_type) {
  if (!wire.is_object())
    return complain(path, wire.offset, "\"wire\" is not an object");
  bool ok = true;
  if (const json_value* v = wire.find("enabled"); v == nullptr || !v->is_bool())
    ok = complain(path, wire.offset, "wire missing \"enabled\" bool");
  for (const char* k : {"bytes_sent", "frames"}) {
    const json_value* v = wire.find(k);
    if (v == nullptr || !v->is_number()) {
      ok = complain(path, wire.offset,
                    "wire missing numeric \"" + std::string(k) + "\"");
    } else if (v->as_number() < 0.0) {
      ok = complain(path, v->offset,
                    "wire \"" + std::string(k) + "\" is negative");
    }
  }
  // "decode_errors" (service mode): optional, numeric, non-negative.  It
  // counts malformed frames *dropped at receive*, so it is deliberately
  // not part of the frames/bytes_sent sums checked below.
  if (const json_value* v = wire.find("decode_errors")) {
    if (!v->is_number())
      ok = complain(path, v->offset, "wire \"decode_errors\" is not a number");
    else if (v->as_number() < 0.0)
      ok = complain(path, v->offset, "wire \"decode_errors\" is negative");
  }
  const json_value* by_type = wire.find("by_type");
  if (by_type == nullptr || !by_type->is_object())
    return complain(path, wire.offset, "wire missing \"by_type\" object");
  double frames_sum = 0.0, bytes_sum = 0.0;
  for (const auto& [type, entry] : by_type->as_object()) {
    if (!entry.is_object()) {
      ok = complain(path, entry.offset,
                    "wire type \"" + type + "\" is not an object");
      continue;
    }
    double count = -1.0, bytes = -1.0;
    for (const char* k : {"count", "bytes"}) {
      const json_value* v = entry.find(k);
      if (v == nullptr || !v->is_number()) {
        ok = complain(path, entry.offset,
                      "wire type \"" + type + "\" missing numeric \"" +
                          std::string(k) + "\"");
      } else if (v->as_number() < 0.0) {
        ok = complain(path, v->offset,
                      "wire type \"" + type + "\" has negative \"" +
                          std::string(k) + "\"");
      } else {
        (k[0] == 'c' ? count : bytes) = v->as_number();
      }
    }
    if (count >= 0.0 && bytes >= 0.0 && bytes < count)
      ok = complain(path, entry.offset,
                    "wire type \"" + type + "\" has fewer bytes than frames");
    if (count >= 0.0) frames_sum += count;
    if (bytes >= 0.0) bytes_sum += bytes;
    if (count >= 0.0 && messages_by_type != nullptr &&
        messages_by_type->is_object()) {
      if (const json_value* m = messages_by_type->find(type)) {
        const json_value* mc = m->find("count");
        if (mc != nullptr && mc->is_number() && count > mc->as_number())
          ok = complain(path, entry.offset,
                        "wire type \"" + type +
                            "\" counts more frames than messages_by_type");
      }
    }
  }
  const json_value* frames = wire.find("frames");
  if (frames != nullptr && frames->is_number() &&
      frames->as_number() != frames_sum)
    ok = complain(path, frames->offset,
                  "wire \"frames\" does not equal the by_type sum");
  const json_value* bytes = wire.find("bytes_sent");
  if (bytes != nullptr && bytes->is_number() &&
      bytes->as_number() != bytes_sum)
    ok = complain(path, bytes->offset,
                  "wire \"bytes_sent\" does not equal the by_type sum");
  return ok;
}

/// "provenance": {"schema", "git_sha", "build_type", "compiler", "host"} —
/// the shared stamp bench_report.h writes into every BENCH_*.json.
bool check_provenance(const std::string& path, const json_value& prov) {
  if (!prov.is_object())
    return complain(path, prov.offset, "\"provenance\" is not an object");
  bool ok = true;
  if (const json_value* v = prov.find("schema"); v == nullptr || !v->is_number())
    ok = complain(path, prov.offset, "provenance missing numeric \"schema\"");
  for (const char* k : {"git_sha", "build_type", "compiler", "host"}) {
    const json_value* v = prov.find(k);
    if (v == nullptr || !v->is_string())
      ok = complain(path, prov.offset,
                    "provenance missing string \"" + std::string(k) + "\"");
  }
  return ok;
}

bool check_bench(const std::string& path, const json_value& doc) {
  bool ok = check_keys(path, doc, bench_keys);
  if (const json_value* prov = doc.find("provenance"))
    ok = check_provenance(path, *prov) && ok;
  return ok;
}

bool check_report(const std::string& path, const json_value& doc) {
  bool ok = check_report_version(path, doc);
  ok = check_keys(path, doc, report_keys) && ok;
  if (const json_value* series = doc.find("series"))
    ok = check_series(path, *series) && ok;
  if (const json_value* wd = doc.find("watchdog"))
    ok = check_watchdog(path, *wd) && ok;
  // "profile" exists from version 3 on; at v2 its absence is fine.
  const json_value* ver = doc.find("report_version");
  const bool v3 = ver != nullptr && ver->is_number() && ver->as_number() >= 3;
  const json_value* prof = doc.find("profile");
  if (v3 && prof == nullptr)
    ok = complain(path, doc.offset, "missing required key \"profile\"");
  if (prof != nullptr) ok = check_profile(path, *prof) && ok;
  // "wire" is optional at every version (emitted only when the codec was
  // armed), but when present its shape must be right.
  if (const json_value* wire = doc.find("wire"))
    ok = check_wire(path, *wire, doc.find("messages_by_type")) && ok;
  return ok;
}

/// One trace event: an object with name/ph/pid/tid, plus the per-phase
/// requirements ('X' slices need ts+dur+args, flows need ts+id).
bool check_trace_event(const std::string& path, const json_value& ev,
                       std::size_t idx,
                       std::map<double, int>& open_flows) {
  const std::string where = "traceEvents[" + std::to_string(idx) + "]";
  if (!ev.is_object())
    return complain(path, ev.offset, where + " is not an object");
  bool ok = true;
  for (const char* k : {"name", "ph", "pid", "tid"}) {
    if (ev.find(k) == nullptr)
      ok = complain(path, ev.offset,
                    where + " missing key \"" + std::string(k) + "\"");
  }
  const json_value* ph = ev.find("ph");
  if (ph == nullptr || !ph->is_string()) return false;
  const std::string& phase = ph->as_string();
  if (phase == "M") return ok;  // metadata: no timestamp required
  const json_value* ts = ev.find("ts");
  if (ts == nullptr || !ts->is_number())
    ok = complain(path, ev.offset, where + " missing numeric \"ts\"");
  if (phase == "X") {
    if (const json_value* dur = ev.find("dur");
        dur == nullptr || !dur->is_number())
      ok = complain(path, ev.offset, where + " slice missing numeric \"dur\"");
    if (const json_value* args = ev.find("args");
        args == nullptr || !args->is_object()) {
      ok = complain(path, ev.offset, where + " slice missing \"args\" object");
    } else {
      for (const char* k : {"id", "lamport"}) {
        if (args->find(k) == nullptr)
          ok = complain(path, args->offset,
                        where + " args missing \"" + std::string(k) + "\"");
      }
    }
  } else if (phase == "s" || phase == "f") {
    const json_value* id = ev.find("id");
    if (id == nullptr || !id->is_number()) {
      ok = complain(path, ev.offset, where + " flow missing numeric \"id\"");
    } else {
      open_flows[id->as_number()] += phase == "s" ? 1 : -1;
    }
  } else if (phase == "C") {
    // Counter track sample (runtime health series): value in args.
    if (const json_value* args = ev.find("args");
        args == nullptr || !args->is_object() ||
        args->find("value") == nullptr)
      ok = complain(path, ev.offset,
                    where + " counter missing args.\"value\"");
  }
  return ok;
}

bool check_trace(const std::string& path, const json_value& doc) {
  bool ok = check_keys(path, doc, {"traceEvents", "displayTimeUnit"});
  const json_value* evs = doc.find("traceEvents");
  if (evs == nullptr) return false;
  if (!evs->is_array())
    return complain(path, evs->offset, "\"traceEvents\" is not an array");
  std::map<double, int> open_flows;  // flow id -> starts minus finishes
  for (std::size_t i = 0; i < evs->as_array().size(); ++i)
    ok = check_trace_event(path, evs->as_array()[i], i, open_flows) && ok;
  for (const auto& [id, balance] : open_flows) {
    if (balance != 0)
      ok = complain(path, evs->offset,
                    "flow id " + std::to_string(static_cast<long long>(id)) +
                        " has unbalanced s/f events (" +
                        std::to_string(balance) + ")");
  }
  return ok;
}

enum class mode { bench, report, trace };

/// Returns an exit_* classification for one file (exit_ok on success).
int check_file(const std::string& path, mode m) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return exit_io;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    std::cerr << path << ": read error\n";
    return exit_io;
  }
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << path << ": parse error: " << err << '\n';
    return exit_parse;
  }
  if (!doc->is_object()) {
    complain(path, doc->offset, "top-level value is not an object");
    return exit_schema;
  }
  bool ok = true;
  switch (m) {
    case mode::bench: ok = check_bench(path, *doc); break;
    case mode::report: ok = check_report(path, *doc); break;
    case mode::trace: ok = check_trace(path, *doc); break;
  }
  if (ok) std::cout << path << ": OK\n";
  return ok ? exit_ok : exit_schema;
}

void print_help(std::ostream& os) {
  os << "usage: json_check [--report|--bench|--trace] FILE...\n"
        "\n"
        "Validates telemetry JSON (see docs/OBSERVABILITY.md):\n"
        "  --bench   bench reports (default): required key set plus the\n"
        "            provenance stamp {schema, git_sha, build_type,\n"
        "            compiler, host}\n"
        "  --report  run reports: known report_version, required keys,\n"
        "            series sample times strictly increasing with\n"
        "            equal-length columns, watchdog shape, profile shape\n"
        "            (required from report_version 3 on), and the optional\n"
        "            wire block (per-type byte counters consistent with\n"
        "            messages_by_type)\n"
        "  --trace   Chrome trace-event / Perfetto traces: well-formed\n"
        "            events, balanced s/f flow pairs, counter values\n"
        "\n"
        "exit codes:\n"
        "  0  every file validates\n"
        "  2  usage error\n"
        "  3  I/O error (file unreadable)\n"
        "  4  parse error (not JSON)\n"
        "  5  schema violation (valid JSON, wrong shape or unknown\n"
        "     report_version)\n"
        "With several failing files, the exit code is the first failure's;\n"
        "every file is checked and reported either way.\n";
}

}  // namespace

int main(int argc, char** argv) {
  mode m = mode::bench;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--report") {
      m = mode::report;
    } else if (a == "--bench") {
      m = mode::bench;
    } else if (a == "--trace") {
      m = mode::trace;
    } else if (a == "--help" || a == "-h") {
      print_help(std::cout);
      return exit_ok;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "json_check: unknown option " << a << '\n';
      print_help(std::cerr);
      return exit_usage;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    print_help(std::cerr);
    return exit_usage;
  }
  int first_failure = exit_ok;
  for (const std::string& f : files) {
    const int code = check_file(f, m);
    if (code != exit_ok && first_failure == exit_ok) first_failure = code;
  }
  return first_failure;
}
