// bench_diff — regression gate over BENCH_*.json files.
//
//   bench_diff [options] BASELINE CURRENT
//   bench_diff [options] --dir CURRENT_DIR BASELINE...
//
// Two-file mode compares one bench report against its baseline.  Directory
// mode takes the committed baselines as positional arguments and looks for
// a file of the same basename under CURRENT_DIR — how CI gates a fresh
// bench run against the repository's committed BENCH_*.json set.
//
// What is checked, per row (rows are matched by label; "n" must agree):
//   * measured vs baseline measured, within a relative tolerance
//     (two-sided: silent speedups distort later diffs as much as
//     regressions, and a "faster" virtual-time metric means the workload
//     changed, not that the code got better);
//   * measured <= predicted_bound whenever the current row carries a
//     positive bound (absolute, tolerance-free: the bound is the paper's
//     complexity envelope, not a noisy host measurement);
//   * the current file's "ok" verdict must be true.
// Rows present only in the baseline are failures (a metric disappeared);
// rows present only in the current file are reported but pass (new
// metrics are allowed to land before their baseline does).
//
// Tolerances (relative, e.g. 0.10 = ±10%), most specific wins:
//   --tol LABEL=F           exact row label
//   --tol-pattern SUBSTR=F  any label containing SUBSTR
//   --default-tol F         everything else (default 0.10)
// Wall-clock-ish metrics on shared CI hosts want generous patterns
// (e.g. --tol-pattern events_per_sec=0.9); virtual-time metrics are
// deterministic and keep the tight default.
//
// Exit codes follow json_check's classified convention, plus 1:
//   0 ok / 1 regression / 2 usage / 3 io / 4 parse / 5 schema
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace {

using asyncrd::telemetry::json_parse;
using asyncrd::telemetry::json_value;

constexpr int exit_ok = 0;
constexpr int exit_regression = 1;
constexpr int exit_usage = 2;
constexpr int exit_io = 3;
constexpr int exit_parse = 4;
constexpr int exit_schema = 5;

struct bench_row {
  double n = 0.0;
  double measured = 0.0;
  double bound = 0.0;
};

struct bench_file {
  std::string bench;
  bool ok = false;
  /// Label -> row, in file order for stable reporting.
  std::vector<std::pair<std::string, bench_row>> rows;
  std::string git_sha, build_type, compiler, host;
};

struct tolerances {
  double fallback = 0.10;
  std::map<std::string, double> by_label;
  std::vector<std::pair<std::string, double>> by_pattern;

  double for_label(const std::string& label) const {
    if (const auto it = by_label.find(label); it != by_label.end())
      return it->second;
    for (const auto& [pat, tol] : by_pattern)
      if (label.find(pat) != std::string::npos) return tol;
    return fallback;
  }
};

/// Loads and shape-checks one bench report.  On failure stores a
/// classified exit code in `code`.
std::optional<bench_file> load(const std::string& path, int& code) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: " << path << ": cannot open\n";
    code = exit_io;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    std::cerr << "bench_diff: " << path << ": read error\n";
    code = exit_io;
    return std::nullopt;
  }
  std::string err;
  const auto doc = json_parse(buf.str(), &err);
  if (!doc.has_value()) {
    std::cerr << "bench_diff: " << path << ": parse error: " << err << '\n';
    code = exit_parse;
    return std::nullopt;
  }
  const auto bad = [&](const std::string& what) {
    std::cerr << "bench_diff: " << path << ": " << what << '\n';
    code = exit_schema;
    return std::nullopt;
  };
  if (!doc->is_object()) return bad("top-level value is not an object");
  bench_file f;
  const json_value* bench = doc->find("bench");
  if (bench == nullptr || !bench->is_string())
    return bad("missing string \"bench\"");
  f.bench = bench->as_string();
  const json_value* okv = doc->find("ok");
  if (okv == nullptr || !okv->is_bool()) return bad("missing bool \"ok\"");
  f.ok = okv->as_bool();
  const json_value* rows = doc->find("rows");
  if (rows == nullptr || !rows->is_array())
    return bad("missing \"rows\" array");
  for (const json_value& r : rows->as_array()) {
    const json_value* label = r.find("label");
    const json_value* n = r.find("n");
    const json_value* measured = r.find("measured");
    const json_value* bound = r.find("predicted_bound");
    if (!r.is_object() || label == nullptr || !label->is_string() ||
        n == nullptr || !n->is_number() || measured == nullptr ||
        !measured->is_number() || bound == nullptr || !bound->is_number())
      return bad("row missing label/n/measured/predicted_bound");
    // NaN/inf metric values (a wall-clock of 0 turned into an inf rate, a
    // 0/0 ratio, a "null" the parser mapped to a non-finite number) would
    // sail through every tolerance comparison below — NaN compares false
    // against anything, so a NaN regression would PASS.  Classify them as
    // schema failures instead of letting them leak into the gate.
    if (!std::isfinite(n->as_number()) ||
        !std::isfinite(measured->as_number()) ||
        !std::isfinite(bound->as_number()))
      return bad("row \"" + label->as_string() +
                 "\" has a non-finite n/measured/predicted_bound");
    f.rows.emplace_back(label->as_string(),
                        bench_row{n->as_number(), measured->as_number(),
                                  bound->as_number()});
  }
  if (const json_value* prov = doc->find("provenance");
      prov != nullptr && prov->is_object()) {
    const auto str = [&](const char* k) {
      const json_value* v = prov->find(k);
      return v != nullptr && v->is_string() ? v->as_string() : std::string();
    };
    f.git_sha = str("git_sha");
    f.build_type = str("build_type");
    f.compiler = str("compiler");
    f.host = str("host");
  }
  return f;
}

/// Compares one pair of loaded files; returns a classified exit code.
int diff(const std::string& base_path, const bench_file& base,
         const std::string& cur_path, const bench_file& cur,
         const tolerances& tol) {
  std::cout << "== " << base.bench << ": " << base_path << " -> " << cur_path
            << " ==\n";
  if (base.git_sha != cur.git_sha || base.build_type != cur.build_type ||
      base.compiler != cur.compiler) {
    std::cout << "provenance: " << base.git_sha << "/" << base.build_type
              << "/" << base.compiler << " -> " << cur.git_sha << "/"
              << cur.build_type << "/" << cur.compiler << '\n';
  }
  bool ok = true;
  if (base.bench != cur.bench) {
    std::cout << "FAIL: bench name changed: \"" << base.bench << "\" -> \""
              << cur.bench << "\"\n";
    ok = false;
  }
  if (!cur.ok) {
    std::cout << "FAIL: current file reports ok=false\n";
    ok = false;
  }

  // Rows are identified by (label, n): sweep benches legitimately repeat a
  // label across sweep sizes, so the label alone is not a key.
  const auto row_key = [](const std::string& label, double n) {
    std::ostringstream k;
    k << label << " (n=" << n << ")";
    return k.str();
  };
  std::map<std::string, const bench_row*> cur_rows;
  for (const auto& [label, row] : cur.rows)
    cur_rows.emplace(row_key(label, row.n), &row);

  for (const auto& [label, b] : base.rows) {
    const std::string key = row_key(label, b.n);
    const auto it = cur_rows.find(key);
    if (it == cur_rows.end()) {
      std::cout << "FAIL: row \"" << key << "\" disappeared\n";
      ok = false;
      continue;
    }
    const bench_row& c = *it->second;
    cur_rows.erase(it);
    const double t = tol.for_label(label);
    // Relative change against the baseline; a zero baseline only matches
    // a zero measurement (any appearance from zero is a real change).
    const double denom = std::abs(b.measured);
    const double rel = denom == 0.0
                           ? (c.measured == 0.0 ? 0.0 : HUGE_VAL)
                           : std::abs(c.measured - b.measured) / denom;
    const bool within = rel <= t;
    const bool bound_ok = c.bound <= 0.0 || c.measured <= c.bound;
    if (!within) {
      std::cout << "FAIL: row \"" << key << "\": measured " << b.measured
                << " -> " << c.measured << " (" << rel * 100.0
                << "% change, tolerance " << t * 100.0 << "%)\n";
      ok = false;
    }
    if (!bound_ok) {
      std::cout << "FAIL: row \"" << key << "\": measured " << c.measured
                << " exceeds predicted_bound " << c.bound << '\n';
      ok = false;
    }
    if (within && bound_ok)
      std::cout << "  ok: " << key << " " << b.measured << " -> "
                << c.measured << " (" << rel * 100.0 << "% <= " << t * 100.0
                << "%)\n";
  }
  for (const auto& [label, row] : cur_rows)
    std::cout << "  new row \"" << label << "\" (no baseline yet): measured "
              << row->measured << '\n';
  std::cout << (ok ? "PASS" : "FAIL") << ": " << base.bench << '\n';
  return ok ? exit_ok : exit_regression;
}

/// CURRENT_DIR/<basename of baseline_path>.
std::string current_for(const std::string& dir,
                        const std::string& baseline_path) {
  const std::size_t slash = baseline_path.find_last_of('/');
  const std::string base = slash == std::string::npos
                               ? baseline_path
                               : baseline_path.substr(slash + 1);
  return dir + "/" + base;
}

void print_help(std::ostream& os) {
  os << "usage: bench_diff [options] BASELINE CURRENT\n"
        "       bench_diff [options] --dir CURRENT_DIR BASELINE...\n"
        "\n"
        "Compares bench reports (BENCH_*.json) row by row (matched by\n"
        "label) and fails on out-of-tolerance changes, exceeded\n"
        "predicted bounds, vanished rows, or ok=false.  Directory mode\n"
        "pairs each committed BASELINE with CURRENT_DIR/<same basename>.\n"
        "\n"
        "options:\n"
        "  --default-tol F         relative tolerance (default 0.10)\n"
        "  --tol LABEL=F           per-row tolerance (exact label)\n"
        "  --tol-pattern SUBSTR=F  tolerance for labels containing SUBSTR\n"
        "                          (first matching pattern wins)\n"
        "\n"
        "exit codes:\n"
        "  0  all comparisons pass\n"
        "  1  regression (out of tolerance / bound exceeded / row lost)\n"
        "  2  usage error\n"
        "  3  I/O error (file unreadable)\n"
        "  4  parse error (not JSON)\n"
        "  5  schema violation (not a bench report)\n"
        "With several failing pairs the exit code is the first failure's;\n"
        "every pair is still compared and reported.\n";
}

/// Parses "KEY=F"; returns false on malformed input.
bool parse_tol_arg(const std::string& arg, std::string& key, double& tol) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = arg.substr(0, eq);
  try {
    std::size_t used = 0;
    tol = std::stod(arg.substr(eq + 1), &used);
    if (used != arg.size() - eq - 1) return false;
  } catch (...) {
    return false;
  }
  return tol >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  tolerances tol;
  std::string dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto missing = [&](const char* what) {
      std::cerr << "bench_diff: " << a << " requires " << what << '\n';
      return exit_usage;
    };
    if (a == "--help" || a == "-h") {
      print_help(std::cout);
      return exit_ok;
    } else if (a == "--dir") {
      if (i + 1 >= argc) return missing("a directory");
      dir = argv[++i];
    } else if (a == "--default-tol") {
      if (i + 1 >= argc) return missing("a number");
      try {
        tol.fallback = std::stod(argv[++i]);
      } catch (...) {
        return missing("a number");
      }
    } else if (a == "--tol" || a == "--tol-pattern") {
      if (i + 1 >= argc) return missing("KEY=F");
      std::string key;
      double t = 0.0;
      if (!parse_tol_arg(argv[++i], key, t)) return missing("KEY=F");
      if (a == "--tol")
        tol.by_label[key] = t;
      else
        tol.by_pattern.emplace_back(key, t);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "bench_diff: unknown option " << a << '\n';
      print_help(std::cerr);
      return exit_usage;
    } else {
      files.push_back(a);
    }
  }

  std::vector<std::pair<std::string, std::string>> pairs;  // baseline, current
  if (dir.empty()) {
    if (files.size() != 2) {
      print_help(std::cerr);
      return exit_usage;
    }
    pairs.emplace_back(files[0], files[1]);
  } else {
    if (files.empty()) {
      print_help(std::cerr);
      return exit_usage;
    }
    for (const std::string& f : files) pairs.emplace_back(f, current_for(dir, f));
  }

  int first_failure = exit_ok;
  const auto classify = [&](int code) {
    if (code != exit_ok && first_failure == exit_ok) first_failure = code;
  };
  for (const auto& [base_path, cur_path] : pairs) {
    int code = exit_ok;
    const auto base = load(base_path, code);
    if (!base.has_value()) {
      classify(code);
      continue;
    }
    const auto cur = load(cur_path, code);
    if (!cur.has_value()) {
      classify(code);
      continue;
    }
    classify(diff(base_path, *base, cur_path, *cur, tol));
  }
  return first_failure;
}
