// discoveryd — one OS process's share of a service-mode discovery cluster.
//
//   discoveryd --gen KIND:N[:EXTRA[:SEED]] --procs P --index I
//              --control PORT [--variant generic|bounded|adhoc]
//              [--seed S] [--json PATH] [--quiet]
//
// Runs the nodes {v : v mod P == I} of the generated topology over real
// UDP loopback sockets (src/net/node_host.h) and speaks the control plane
// of net/envelope.h with the orchestrator listening on 127.0.0.1:PORT
// (tools/loadgen.cpp, or anything else that implements it):
//
//   1. announce the data socket by sending dg_hello from it (repeated
//      until dg_portmap arrives — the control plane rides the same lossy
//      UDP as the data plane and is loss-tolerant by idempotence);
//   2. accept dg_portmap (node -> port routing) and dg_start (wake the
//      local nodes), then serve discovery traffic;
//   3. answer dg_status_req with progress/outstanding/decode-error
//      counters (the orchestrator's convergence detector);
//   4. on dg_finalize, report every local node's checkable final state
//      (core::check_membership's member_state, one dg_state each) and the
//      process totals (dg_state_end), and write the --json run report —
//      the same schema simulation runs emit, json_check --report valid;
//   5. exit 0 on dg_stop.
//
// Trust: control datagrams are honored only from the --control endpoint;
// anything else that looks like control — or any datagram that fails the
// wire-frame grammar — is counted as a decode drop and otherwise ignored
// (the garbage-injection tests drive this path).
//
// Exit codes: 0 stopped cleanly, 1 runtime failure (socket error, orphaned
// by the orchestrator), 2 usage.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/parse.h"
#include "core/node.h"
#include "net/envelope.h"
#include "net/genspec.h"
#include "net/node_host.h"
#include "sim/wire.h"

namespace {

using namespace asyncrd;

constexpr int exit_usage = 2;

[[noreturn]] void usage(const char* err) {
  if (err != nullptr) std::cerr << "discoveryd: " << err << "\n\n";
  std::cerr <<
      "usage: discoveryd --gen KIND:N[:EXTRA[:SEED]] --procs P --index I\n"
      "                  --control PORT [options]\n"
      "  --variant generic|bounded|adhoc   algorithm variant (default generic)\n"
      "  --seed S          link seed for ARQ retransmit jitter (default 1)\n"
      "  --json PATH       write the run report (json_check --report valid)\n"
      "  --idle-timeout S  exit 1 after S seconds without control traffic\n"
      "                    (default 120; orphan protection)\n"
      "  --quiet           suppress the start/stop log lines\n";
  std::exit(exit_usage);
}

std::uint64_t num_u64(const std::string& flag, const std::string& text) {
  const auto v = parse_u64(text);
  if (!v)
    usage((flag + ": expected a non-negative integer, got '" + text + "'")
              .c_str());
  return *v;
}

/// Sorted strictly-increasing copy of a node id set (put_id_set precondition).
template <typename Range>
std::vector<node_id> sorted_ids(const Range& ids) {
  std::vector<node_id> v(ids.begin(), ids.end());
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string gen_spec, variant_name = "generic", json_path;
  std::uint64_t procs = 0, index = 0, seed = 1, control_port = 0;
  std::uint64_t idle_timeout_s = 120;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--gen") gen_spec = next();
    else if (a == "--variant") variant_name = next();
    else if (a == "--procs") procs = num_u64(a, next());
    else if (a == "--index") index = num_u64(a, next());
    else if (a == "--seed") seed = num_u64(a, next());
    else if (a == "--control") control_port = num_u64(a, next());
    else if (a == "--json") json_path = next();
    else if (a == "--idle-timeout") idle_timeout_s = num_u64(a, next());
    else if (a == "--quiet") quiet = true;
    else if (a == "--help" || a == "-h") usage(nullptr);
    else usage(("unknown flag " + a).c_str());
  }
  if (gen_spec.empty()) usage("--gen is required");
  if (procs == 0) usage("--procs must be >= 1");
  if (index >= procs) usage("--index must be < --procs");
  if (control_port == 0 || control_port > 0xFFFF)
    usage("--control needs a port in 1..65535");

  core::config cfg;
  if (variant_name == "generic") cfg.algo = core::variant::generic;
  else if (variant_name == "bounded") cfg.algo = core::variant::bounded;
  else if (variant_name == "adhoc") cfg.algo = core::variant::adhoc;
  else usage("unknown --variant");

  const net::genspec_result gen = net::parse_genspec(gen_spec);
  if (!gen.ok()) usage(gen.error.c_str());

  try {
    net::node_host host(gen.graph, cfg, static_cast<std::size_t>(index),
                        static_cast<std::size_t>(procs), seed);
    const net::endpoint control_ep =
        net::loopback(static_cast<std::uint16_t>(control_port));

    if (!quiet)
      std::cerr << "discoveryd[" << index << "/" << procs << "]: "
                << host.local_nodes().size() << " nodes on port "
                << host.port() << "\n";

    bool portmapped = false;
    bool report_written = false;
    bool stop = false;
    std::vector<std::uint8_t> out;
    // Control replies ride the data socket; loss is fine — every exchange
    // is re-driven by the orchestrator until answered.
    const auto reply = [&]() {
      host.send_control(control_ep, out.data(), out.size());
    };

    const auto send_states = [&]() {
      for (const node_id v : host.local_nodes()) {
        const core::node& nd = host.at(v);
        out.clear();
        out.push_back(net::dg_state);
        sim::wire::put_varint(out, index);
        sim::wire::put_varint(out, v);
        out.push_back(static_cast<std::uint8_t>(nd.status()));
        std::uint8_t flags = 0;
        if (nd.has_deferred()) flags |= net::state_flag_deferred;
        if (nd.pending_queue_depth() != 0) flags |= net::state_flag_pending;
        if (nd.more().empty()) flags |= net::state_flag_more_empty;
        if (nd.unaware().empty()) flags |= net::state_flag_unaware_empty;
        out.push_back(flags);
        sim::wire::put_varint(out, nd.next());
        sim::wire::put_id_set(out, sorted_ids(nd.done()));
        reply();
      }
      out.clear();
      out.push_back(net::dg_state_end);
      sim::wire::put_varint(out, index);
      sim::wire::put_varint(out, host.net().statistics().total_messages());
      sim::wire::put_varint(out, host.net().wire_frames());
      sim::wire::put_varint(out, host.net().wire_bytes_sent());
      sim::wire::put_varint(out, host.decode_errors());
      sim::wire::put_varint(out, host.net().now());
      reply();
    };

    auto last_control = std::chrono::steady_clock::now();

    host.set_control([&](const net::endpoint& from, const std::uint8_t* p,
                         std::size_t n) -> bool {
      if (from != control_ep) return false;  // untrusted source
      try {
        sim::wire::reader r(p + 1, n - 1);
        switch (p[0]) {
          case net::dg_portmap: {
            const std::uint64_t count = r.varint();
            if (count != procs)
              throw sim::wire::decode_error("portmap: wrong process count");
            std::vector<std::uint16_t> ports;
            ports.reserve(count);
            for (std::uint64_t k = 0; k < count; ++k) {
              const std::uint64_t port = r.varint();
              if (port == 0 || port > 0xFFFF)
                throw sim::wire::decode_error("portmap: bad port");
              ports.push_back(static_cast<std::uint16_t>(port));
            }
            r.expect_end();
            if (!portmapped) {
              host.set_peers(std::move(ports));
              portmapped = true;
            }
            break;
          }
          case net::dg_start:
            r.expect_end();
            // Before the portmap arrives there is nowhere to route; the
            // orchestrator re-sends both until status answers flow.
            if (portmapped) host.start();
            break;
          case net::dg_status_req:
            r.expect_end();
            out.clear();
            out.push_back(net::dg_status);
            sim::wire::put_varint(out, index);
            sim::wire::put_varint(out, host.progress());
            sim::wire::put_varint(out, host.outstanding());
            sim::wire::put_varint(out, host.decode_errors());
            reply();
            break;
          case net::dg_finalize: {
            const std::uint64_t magic = r.varint();
            r.expect_end();
            if (magic != net::finalize_magic)
              throw sim::wire::decode_error("finalize: bad magic");
            send_states();
            if (!json_path.empty() && !report_written) {
              const telemetry::run_report rep =
                  host.report(host.outstanding() == 0);
              std::ofstream f(json_path);
              f << rep.to_json();
              report_written = f.good();
            }
            break;
          }
          case net::dg_stop:
            r.expect_end();
            stop = true;
            break;
          default:
            return false;
        }
      } catch (const sim::wire::decode_error&) {
        return false;  // malformed control: counted as a decode drop
      }
      last_control = std::chrono::steady_clock::now();
      return true;
    });

    while (!stop) {
      if (!portmapped) {
        // Announce the data endpoint until the orchestrator maps us.
        out.clear();
        out.push_back(net::dg_hello);
        sim::wire::put_varint(out, index);
        reply();
      }
      host.poll_once(50);
      const auto idle = std::chrono::steady_clock::now() - last_control;
      if (idle > std::chrono::seconds(idle_timeout_s)) {
        std::cerr << "discoveryd[" << index
                  << "]: no control traffic for " << idle_timeout_s
                  << "s; orphaned — exiting\n";
        return 1;
      }
    }

    if (!quiet)
      std::cerr << "discoveryd[" << index << "]: stopped ("
                << host.net().statistics().total_messages() << " messages, "
                << host.decode_errors() << " decode drops)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "discoveryd: " << e.what() << "\n";
    return 1;
  }
}
