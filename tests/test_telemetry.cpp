// Telemetry subsystem: histogram buckets and quantiles, the JSON
// writer/parser pair, the network's multi-observer fan-out, the metrics
// registry, and run_report determinism on a fixed seed/topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_report.h"
#include "common/rng.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "telemetry/histogram.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"

namespace asyncrd {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 = {0}; bucket k = [2^(k-1), 2^k - 1].
  EXPECT_EQ(telemetry::histogram::bucket_of(0), 0u);
  EXPECT_EQ(telemetry::histogram::bucket_of(1), 1u);
  EXPECT_EQ(telemetry::histogram::bucket_of(2), 2u);
  EXPECT_EQ(telemetry::histogram::bucket_of(3), 2u);
  EXPECT_EQ(telemetry::histogram::bucket_of(4), 3u);
  EXPECT_EQ(telemetry::histogram::bucket_of(7), 3u);
  EXPECT_EQ(telemetry::histogram::bucket_of(8), 4u);
  EXPECT_EQ(telemetry::histogram::bucket_of(UINT64_MAX), 64u);

  for (std::size_t b = 0; b < telemetry::histogram::bucket_count; ++b) {
    EXPECT_EQ(telemetry::histogram::bucket_of(telemetry::histogram::bucket_lower(b)), b);
    EXPECT_EQ(telemetry::histogram::bucket_of(telemetry::histogram::bucket_upper(b)), b);
  }
  EXPECT_EQ(telemetry::histogram::bucket_lower(1), 1u);
  EXPECT_EQ(telemetry::histogram::bucket_upper(1), 1u);
  EXPECT_EQ(telemetry::histogram::bucket_lower(4), 8u);
  EXPECT_EQ(telemetry::histogram::bucket_upper(4), 15u);
}

TEST(Histogram, CountsSumsMinMaxMean) {
  telemetry::histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  for (const std::uint64_t v : {5u, 0u, 17u, 5u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 27u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 17u);
  EXPECT_DOUBLE_EQ(h.mean(), 27.0 / 4.0);
  EXPECT_EQ(h.bucket(0), 1u);                             // the 0
  EXPECT_EQ(h.bucket(telemetry::histogram::bucket_of(5)), 2u);   // both 5s
  EXPECT_EQ(h.bucket(telemetry::histogram::bucket_of(17)), 1u);  // the 17
}

TEST(Histogram, QuantilesClampedToObservedRange) {
  telemetry::histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);    // exact min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);  // exact max
  // Mid quantiles are bucket-resolution approximations: within a factor
  // of 2 of the true value.
  EXPECT_GE(h.p50(), 25.0);
  EXPECT_LE(h.p50(), 100.0);
  EXPECT_GE(h.p90(), 45.0);
  EXPECT_LE(h.p90(), 100.0);
  // Single-value histogram: every quantile is that value.
  telemetry::histogram one;
  one.record(42);
  EXPECT_DOUBLE_EQ(one.quantile(0.25), 42.0);
  EXPECT_DOUBLE_EQ(one.p99(), 42.0);
}

TEST(Histogram, QuantileEstimateStaysInsideItsOwnBucket) {
  // Regression pin: {0, 16, 17, 18, 19}, q = 0.1.  The global fractional
  // rank (0.4) falls below the selected bucket's first rank (1), so the
  // unclamped interpolation lands at 13 — below the [16, 31] bucket every
  // sample it claims to describe lives in.  The old global [min, max]
  // clamp (here [0, 19]) let that 13 escape.
  telemetry::histogram h;
  for (const std::uint64_t v : {0u, 16u, 17u, 18u, 19u}) h.record(v);
  const double est = h.quantile(0.1);
  EXPECT_GE(est, 16.0) << "estimate escaped below its bucket";
  EXPECT_LE(est, 19.0);
}

TEST(Histogram, QuantilePropertyAgainstSortedReference) {
  // Property checked against the exact sorted sample: for every q, the
  // estimate must lie inside the log-bucket of the exact order statistic
  // at ceil(rank) — tightened by the true extremes — and estimates must be
  // monotone in q.  Random samples across magnitudes, deterministic seed.
  rng r(2026);
  for (int trial = 0; trial < 50; ++trial) {
    telemetry::histogram h;
    std::vector<std::uint64_t> xs(1 + r.below(200));
    for (auto& x : xs) {
      // Spread magnitudes so many buckets (including empty gaps) occur.
      x = r.below(std::uint64_t{1} << (1 + r.below(40)));
      h.record(x);
    }
    std::sort(xs.begin(), xs.end());

    double prev = -1.0;
    for (const double q :
         {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      const double rank = q * static_cast<double>(xs.size() - 1);
      const std::uint64_t pivot =
          xs[static_cast<std::size_t>(std::ceil(rank))];
      const std::size_t b = telemetry::histogram::bucket_of(pivot);
      const double lo =
          std::max(static_cast<double>(telemetry::histogram::bucket_lower(b)),
                   static_cast<double>(xs.front()));
      const double hi =
          std::min(static_cast<double>(telemetry::histogram::bucket_upper(b)),
                   static_cast<double>(xs.back()));
      const double est = h.quantile(q);
      EXPECT_GE(est, lo) << "trial " << trial << " q " << q;
      EXPECT_LE(est, hi) << "trial " << trial << " q " << q;
      EXPECT_GE(est, prev) << "non-monotone at trial " << trial << " q " << q;
      prev = est;
    }
  }
}

TEST(Histogram, MergeAndReset) {
  telemetry::histogram a, b;
  a.record(3);
  a.record(100);
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 110u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 100u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

// --------------------------------------------------------------------- json

TEST(Json, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(telemetry::json_escape("plain"), "plain");
  EXPECT_EQ(telemetry::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(telemetry::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, WriterProducesValidNestedDocument) {
  telemetry::json_writer w;
  w.begin_object();
  w.kv("name", "x -> y");
  w.kv("ok", true);
  w.kv("n", std::uint64_t{42});
  w.kv("ratio", 1.5);
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested").begin_object();
  w.kv("deep", -7);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\"name\":\"x -> y\",\"ok\":true,\"n\":42,\"ratio\":1.5,"
            "\"list\":[1,2,3],\"nested\":{\"deep\":-7}}");
}

TEST(Json, WriterRoundTripsThroughParser) {
  telemetry::json_writer w;
  w.begin_object();
  w.kv("text", "quote \" backslash \\ newline \n unicode \xc3\xa9");
  w.kv("tiny", 0.001);
  w.kv("big", 1e18);
  w.kv("neg", std::int64_t{-123});
  w.key("null_here").null();
  w.end_object();

  std::string err;
  const auto parsed = telemetry::json_parse(w.take(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("text")->as_string(),
            "quote \" backslash \\ newline \n unicode \xc3\xa9");
  EXPECT_DOUBLE_EQ(parsed->find("tiny")->as_number(), 0.001);
  EXPECT_DOUBLE_EQ(parsed->find("big")->as_number(), 1e18);
  EXPECT_DOUBLE_EQ(parsed->find("neg")->as_number(), -123.0);
  EXPECT_TRUE(parsed->find("null_here")->is_null());
  EXPECT_EQ(parsed->find("absent"), nullptr);
}

TEST(Json, IntegralDoublesSerializeWithoutExponent) {
  // Regression: the shortest-round-trip loop accepted "%.1g" for 1000.0,
  // emitting "1e+03" — bench params like n then reached consumers as
  // scientific notation.  Integral doubles within 2^53 must print as plain
  // integers; genuine fractions and huge magnitudes keep the old behavior.
  const auto emit = [](double v) {
    telemetry::json_writer w;
    w.begin_object();
    w.kv("v", v);
    w.end_object();
    return w.take();
  };
  EXPECT_EQ(emit(1000.0), "{\"v\":1000}");
  EXPECT_EQ(emit(0.0), "{\"v\":0}");
  EXPECT_EQ(emit(-250000.0), "{\"v\":-250000}");
  EXPECT_EQ(emit(9007199254740992.0), "{\"v\":9007199254740992}");  // 2^53
  EXPECT_EQ(emit(0.5), "{\"v\":0.5}");
  EXPECT_EQ(emit(1e18), "{\"v\":1e+18}");  // integral but above 2^53

  // Full-precision round-trip must survive for true doubles.
  for (const double v : {1000.0, 352957.97, 0.1 + 0.2, 1.0 / 3.0, -1e-9,
                         9007199254740992.0, 1e18}) {
    telemetry::json_writer w;
    w.begin_object();
    w.kv("v", v);
    w.end_object();
    const auto parsed = telemetry::json_parse(w.take());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("v")->as_number(), v);
  }
}

TEST(BenchReport, IntegralParamsSerializeAsIntegersAndRoundTrip) {
  // End-to-end pin through the bench reporter: n / measured columns carry
  // integral doubles, which must reach the file as plain integers (the bug
  // emitted "1e+03" for n=1000), while fractional bounds keep full
  // precision.
  const std::string path = "BENCH_fmt_roundtrip_test.json";
  {
    bench::reporter rep("fmt_roundtrip_test");
    rep.add("row_a", 1000.0, 250000.0, 352957.97);
    rep.add("row_b", 100000.0, 0.0, 0.0);
    rep.note("cells", 64.0);
    ASSERT_EQ(rep.finish(true), 0);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"n_values\":[1000,100000]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"measured\":[250000,0]"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("1e+03"), std::string::npos) << doc;

  const auto parsed = telemetry::json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  const auto& bounds = parsed->find("predicted_bound")->as_array();
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0].as_number(), 352957.97);
  const auto& notes = parsed->find("notes")->as_object();
  EXPECT_EQ(notes.at("cells").as_number(), 64.0);
  std::remove(path.c_str());
}

TEST(Json, ParserHandlesEscapesAndRejectsGarbage) {
  const auto ok = telemetry::json_parse(
      R"({"s":"tab\t quote\" uA pair😀","a":[true,false,null]})");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->find("s")->as_string(), "tab\t quote\" uA pair\xF0\x9F\x98\x80");
  EXPECT_EQ(ok->find("a")->as_array().size(), 3u);

  std::string err;
  EXPECT_FALSE(telemetry::json_parse("{", &err).has_value());
  EXPECT_FALSE(telemetry::json_parse("[1,]", &err).has_value());
  EXPECT_FALSE(telemetry::json_parse("{\"a\":1} trailing", &err).has_value());
  EXPECT_FALSE(telemetry::json_parse("", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------ metrics

TEST(Metrics, RegistryInstrumentsAreStableAndResettable) {
  telemetry::registry reg;
  auto& c = reg.get_counter("net.sends");
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.get_counter("net.sends").value(), 5u);
  EXPECT_EQ(&reg.get_counter("net.sends"), &c);  // stable address

  reg.get_gauge("queue.depth").set(3.5);
  reg.get_gauge("queue.depth").add(0.5);
  EXPECT_DOUBLE_EQ(reg.get_gauge("queue.depth").value(), 4.0);

  reg.get_histogram("lat").record(9);
  EXPECT_EQ(reg.get_histogram("lat").count(), 1u);

  reg.reset();
  EXPECT_EQ(reg.get_counter("net.sends").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.get_gauge("queue.depth").value(), 0.0);
  EXPECT_EQ(reg.get_histogram("lat").count(), 0u);
  EXPECT_EQ(reg.counters().size(), 1u);  // names survive reset

  telemetry::json_writer w;
  reg.write_json(w);
  const auto parsed = telemetry::json_parse(w.take());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(parsed->find("counters"), nullptr);
  EXPECT_NE(parsed->find("gauges"), nullptr);
  EXPECT_NE(parsed->find("histograms"), nullptr);
}

// ----------------------------------------------------- multi-observer

/// Appends "<tag><event>" markers so tests can assert fan-out order.
class tagging_observer final : public sim::observer {
 public:
  tagging_observer(std::string tag, std::vector<std::string>& sink)
      : tag_(std::move(tag)), sink_(&sink) {}

  void on_send(sim::sim_time, node_id, node_id, const sim::message&) override {
    sink_->push_back(tag_ + ":send");
  }
  void on_deliver(sim::sim_time, node_id, node_id, const sim::message&) override {
    sink_->push_back(tag_ + ":deliver");
  }
  void on_wake(sim::sim_time, node_id v) override {
    sink_->push_back(tag_ + ":wake" + std::to_string(v));
  }

 private:
  std::string tag_;
  std::vector<std::string>* sink_;
};

TEST(MultiObserver, FansOutInRegistrationOrder) {
  std::vector<std::string> calls;
  tagging_observer a("a", calls), b("b", calls);
  sim::multi_observer fan;
  EXPECT_TRUE(fan.empty());
  fan.add(&a);
  fan.add(&b);
  EXPECT_EQ(fan.size(), 2u);

  fan.on_wake(0, 7);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], "a:wake7");  // registration order
  EXPECT_EQ(calls[1], "b:wake7");

  calls.clear();
  fan.remove(&a);
  fan.on_wake(1, 8);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], "b:wake8");

  fan.clear();
  EXPECT_TRUE(fan.empty());
}

TEST(MultiObserver, NetworkDispatchesToEveryAttachedObserver) {
  const auto g = graph::directed_path(4);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);

  std::vector<std::string> calls;
  tagging_observer first("1", calls), second("2", calls);
  run.net().add_observer(&first);
  run.net().add_observer(&second);
  run.wake_all();
  run.run();
  run.net().remove_observer(&first);
  run.net().remove_observer(&second);

  ASSERT_FALSE(calls.empty());
  ASSERT_EQ(calls.size() % 2, 0u);
  std::size_t firsts = 0, seconds = 0;
  for (std::size_t i = 0; i < calls.size(); i += 2) {
    // Each event reaches both observers back to back, first one first.
    EXPECT_EQ(calls[i].substr(1), calls[i + 1].substr(1));
    EXPECT_EQ(calls[i][0], '1');
    EXPECT_EQ(calls[i + 1][0], '2');
    ++firsts;
    ++seconds;
  }
  EXPECT_EQ(firsts, seconds);
}

TEST(MultiObserver, LegacySetObserverStillWorks) {
  const auto g = graph::directed_path(3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  std::vector<std::string> calls;
  tagging_observer only("x", calls);
  run.net().set_observer(&only);
  run.wake_all();
  run.run();
  EXPECT_FALSE(calls.empty());
  const std::size_t seen = calls.size();
  run.net().set_observer(nullptr);  // detaches
  run.net().wake(0);
  run.net().run_to_quiescence();
  EXPECT_EQ(calls.size(), seen);
}

// ---------------------------------------------------------- run_report

TEST(RunReport, CollectsEveryMeasuredDimension) {
  const auto g = graph::random_weakly_connected(50, 80, 11);
  sim::random_delay_scheduler sched(11);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::run_recorder rec(run);
  run.wake_all();
  const auto result = run.run();

  auto rep = rec.report(result);
  rep.label = "unit";
  rep.variant = "generic";
  rep.seed = 11;
  rep.edges = g.edge_count();

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.nodes, 50u);
  EXPECT_EQ(rep.leaders, 1u);
  EXPECT_GT(rep.events_processed, 0u);
  EXPECT_GT(rep.completion_time, 0u);
  EXPECT_GT(rep.total_messages, 0u);
  EXPECT_GT(rep.total_bits, rep.total_messages);
  EXPECT_FALSE(rep.messages_by_type.empty());
  EXPECT_EQ(rep.load.count(), 50u);  // one load sample per node
  EXPECT_EQ(rep.load.max(), rep.max_load);
  EXPECT_NE(rep.hottest, invalid_node);
  EXPECT_FALSE(rep.transitions.empty());
  // Every node leaves asleep exactly once.
  EXPECT_EQ(rep.transitions.at("asleep -> explore"), 50u);
  EXPECT_GE(rep.events_per_sec, 0.0);

  // Registry picked up the same event stream the stats did.
  EXPECT_EQ(rec.metrics().get_counter("net.sends").value(), rep.total_messages);
  EXPECT_EQ(rec.metrics().get_counter("net.delivers").value(),
            rep.total_messages);
  EXPECT_EQ(rec.metrics().get_counter("net.wakes").value(), 50u);
}

TEST(RunReport, JsonHasRequiredKeysAndParses) {
  const auto g = graph::directed_path(6);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::run_recorder rec(run);
  run.wake_all();
  auto rep = rec.report(run.run());
  rep.label = "schema";
  rep.variant = "generic";
  rep.extra["custom_metric"] = 1.25;

  std::string err;
  const auto parsed = telemetry::json_parse(rep.to_json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  for (const char* k :
       {"label", "variant", "seed", "nodes", "edges", "completed", "leaders",
        "events_processed", "completion_time", "wall_ms", "events_per_sec",
        "total_messages", "total_bits", "messages_by_type", "load",
        "max_load", "transitions", "extra"}) {
    EXPECT_NE(parsed->find(k), nullptr) << "missing key " << k;
  }
  EXPECT_DOUBLE_EQ(parsed->find("extra")->find("custom_metric")->as_number(),
                   1.25);
  const auto* load = parsed->find("load");
  EXPECT_NE(load->find("p50"), nullptr);
  EXPECT_NE(load->find("buckets"), nullptr);
}

/// Golden determinism: identical seed/topology => identical report JSON,
/// modulo the host-clock fields.
TEST(RunReport, DeterministicAcrossRunsUpToWallClock) {
  const auto once = [] {
    const auto g = graph::random_weakly_connected(30, 45, 9);
    sim::random_delay_scheduler sched(9);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    telemetry::run_recorder rec(run);
    run.wake_all();
    auto rep = rec.report(run.run());
    rep.label = "golden";
    rep.variant = "generic";
    rep.seed = 9;
    rep.edges = g.edge_count();
    // Host timing differs run to run; zero it before comparing.
    rep.wall_ms = 0.0;
    rep.events_per_sec = 0.0;
    return rep.to_json();
  };
  const std::string a = once();
  const std::string b = once();
  EXPECT_EQ(a, b);
  ASSERT_TRUE(telemetry::json_parse(a).has_value());
}

TEST(RunRecorder, DetachesOnDestruction) {
  const auto g = graph::directed_path(3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  {
    telemetry::run_recorder rec(run);
    run.wake_all();
    run.run();
    EXPECT_GT(rec.load().loads().size(), 0u);
  }
  // After the recorder is gone the network must be observer-free: another
  // run segment must not touch freed memory (asan-visible if it did).
  run.net().wake(0);
  run.net().run_to_quiescence();
  SUCCEED();
}

}  // namespace
}  // namespace asyncrd
