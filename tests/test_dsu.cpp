#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "unionfind/dsu.h"

namespace asyncrd {
namespace {

using uf::compress_policy;
using uf::dsu;
using uf::link_policy;
using uf::uf_op;

TEST(Dsu, InitiallyAllSingletons) {
  dsu d(5);
  EXPECT_EQ(d.component_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(d.find(i), i);
}

TEST(Dsu, UniteMergesAndIsIdempotent) {
  dsu d(4);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_FALSE(d.unite(0, 1));
  EXPECT_TRUE(d.same(0, 1));
  EXPECT_FALSE(d.same(0, 2));
  EXPECT_EQ(d.component_count(), 3u);
}

TEST(Dsu, TransitivityAcrossChains) {
  dsu d(6);
  d.unite(0, 1);
  d.unite(2, 3);
  d.unite(1, 2);
  EXPECT_TRUE(d.same(0, 3));
  EXPECT_FALSE(d.same(0, 4));
}

/// Brute-force oracle: component labels via repeated relabeling.
class oracle {
 public:
  explicit oracle(std::size_t n) : label_(n) {
    for (std::size_t i = 0; i < n; ++i) label_[i] = i;
  }
  void unite(std::size_t a, std::size_t b) {
    const std::size_t la = label_[a], lb = label_[b];
    if (la == lb) return;
    for (auto& l : label_)
      if (l == la) l = lb;
  }
  bool same(std::size_t a, std::size_t b) const {
    return label_[a] == label_[b];
  }

 private:
  std::vector<std::size_t> label_;
};

class DsuPolicies
    : public ::testing::TestWithParam<std::pair<link_policy, compress_policy>> {
};

TEST_P(DsuPolicies, AgreesWithBruteForceOracle) {
  const auto [lp, cp] = GetParam();
  const std::size_t n = 120;
  dsu d(n, lp, cp);
  oracle o(n);
  rng r(2024);
  for (int step = 0; step < 3000; ++step) {
    const auto a = static_cast<std::size_t>(r.below(n));
    const auto b = static_cast<std::size_t>(r.below(n));
    if (r.chance(0.4)) {
      EXPECT_EQ(d.unite(a, b), !o.same(a, b));
      o.unite(a, b);
    } else {
      EXPECT_EQ(d.same(a, b), o.same(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicyCombos, DsuPolicies,
    ::testing::Values(
        std::make_pair(link_policy::by_rank, compress_policy::full),
        std::make_pair(link_policy::by_rank, compress_policy::none),
        std::make_pair(link_policy::naive, compress_policy::full),
        std::make_pair(link_policy::naive, compress_policy::none)));

TEST(Dsu, PathCompressionReducesFindSteps) {
  // Build a long naive chain (0 -> 1 -> ... -> n-1: unite(i, i+1) links the
  // current root i under i+1), then probe the deep end repeatedly.
  const std::size_t n = 4096;
  dsu with(n, link_policy::naive, compress_policy::full);
  dsu without(n, link_policy::naive, compress_policy::none);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    with.unite(i, i + 1);
    without.unite(i, i + 1);
  }
  const auto base_with = with.find_steps();
  const auto base_without = without.find_steps();
  for (int probes = 0; probes < 100; ++probes) {
    with.find(0);
    without.find(0);
  }
  // Compressed: the first probe pays n-1 hops, the rest are one hop each.
  EXPECT_LT(with.find_steps() - base_with, 2 * n);
  EXPECT_EQ(without.find_steps() - base_without, 100 * (n - 1));
}

TEST(Dsu, UnionByRankBoundsTreeDepth) {
  const std::size_t n = 1 << 12;
  dsu d(n, link_policy::by_rank, compress_policy::none);
  // Binomial merge: adversarial for naive linking, fine for rank linking.
  for (std::size_t w = 1; w < n; w *= 2)
    for (std::size_t b = 0; b + w < n; b += 2 * w) d.unite(b, b + w);
  const auto steps_before = d.find_steps();
  d.find(0);
  // Depth <= log2(n) = 12.
  EXPECT_LE(d.find_steps() - steps_before, 12u);
}

TEST(DsuSchedule, RandomScheduleShape) {
  const auto sched = uf::random_schedule(50, 30, 99);
  std::size_t unites = 0, finds = 0;
  dsu check(50);
  for (const auto& op : sched) {
    if (op.op == uf_op::kind::unite) {
      ++unites;
      // Every scheduled unite joins two currently-distinct sets.
      EXPECT_FALSE(check.same(op.a, op.b));
      check.unite(op.a, op.b);
    } else {
      ++finds;
      EXPECT_LT(op.a, 50u);
    }
  }
  EXPECT_EQ(unites, 49u);
  EXPECT_EQ(finds, 30u);
  EXPECT_EQ(check.component_count(), 1u);
}

TEST(DsuSchedule, RandomScheduleDeterministic) {
  const auto a = uf::random_schedule(30, 10, 5);
  const auto b = uf::random_schedule(30, 10, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
  }
}

TEST(DsuSchedule, AdversarialScheduleMergesEverything) {
  const auto sched = uf::adversarial_schedule(64, 64);
  dsu check(64);
  std::size_t finds = 0;
  for (const auto& op : sched) {
    if (op.op == uf_op::kind::unite)
      check.unite(op.a, op.b);
    else
      ++finds;
  }
  EXPECT_EQ(check.component_count(), 1u);
  EXPECT_GE(finds, 64u);
}

}  // namespace
}  // namespace asyncrd
