// Baseline algorithms: flooding, Name-Dropper, pointer-doubling, DFS
// election — convergence, correctness, and expected cost shapes.
#include <gtest/gtest.h>

#include "baselines/absorption.h"
#include "baselines/dfs_election.h"
#include "baselines/flooding.h"
#include "baselines/name_dropper.h"
#include "baselines/pointer_doubling.h"
#include "common/bitmath.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

TEST(Flooding, ConvergesOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::random_weakly_connected(30, 40, seed);
    const auto r = baselines::run_flooding(g, seed);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    EXPECT_GT(r.messages, 0u);
  }
}

TEST(Flooding, HandlesMultiComponent) {
  const auto g = graph::multi_component(3, 8, 4, 5);
  const auto r = baselines::run_flooding(g, 2);
  EXPECT_TRUE(r.converged);
}

TEST(Flooding, SingletonNeedsNoMessages) {
  graph::digraph g;
  g.add_node(0);
  const auto r = baselines::run_flooding(g, 1);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Flooding, CostGrowsSuperlinearlyOnDenseGraphs) {
  const auto small = baselines::run_flooding(
      graph::random_weakly_connected(32, 64, 3), 1);
  const auto large = baselines::run_flooding(
      graph::random_weakly_connected(128, 256, 3), 1);
  // 4x nodes should cost clearly more than 4x messages (flooding is
  // superlinear) — this is the contrast the paper's algorithms remove.
  EXPECT_GT(large.messages, 6 * small.messages);
}

TEST(NameDropper, ConvergesWithinPolylogRounds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::random_weakly_connected(64, 64, seed);
    const auto r = baselines::run_name_dropper(g, seed);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    const double log_n = static_cast<double>(ceil_log2(64));
    EXPECT_LE(static_cast<double>(r.rounds), 12.0 * log_n * log_n)
        << "seed " << seed;
  }
}

TEST(NameDropper, OneMessagePerNodePerRound) {
  const auto g = graph::random_weakly_connected(40, 40, 7);
  const auto r = baselines::run_name_dropper(g, 7);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.messages, r.rounds * 40);
}

TEST(NameDropper, RoundCapReportsNonConvergence) {
  const auto g = graph::random_weakly_connected(64, 64, 1);
  const auto r = baselines::run_name_dropper(g, 1, /*max_rounds=*/1);
  EXPECT_FALSE(r.converged);
}

TEST(Absorption, ConvergesWithinLogRounds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::random_weakly_connected(128, 128, seed);
    const auto r = baselines::run_absorption(g, seed);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    // O(log n) rounds w.h.p.; generous audit constant.
    EXPECT_LE(r.rounds, 20u * ceil_log2(128)) << "seed " << seed;
  }
}

TEST(Absorption, HandlesMultiComponent) {
  const auto g = graph::multi_component(3, 12, 6, 9);
  const auto r = baselines::run_absorption(g, 4);
  EXPECT_TRUE(r.converged);
}

TEST(Absorption, SingletonIsTrivial) {
  graph::digraph g;
  g.add_node(0);
  const auto r = baselines::run_absorption(g, 1);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Absorption, MessageCountNearNLogN) {
  const std::size_t n = 512;
  const auto g = graph::random_weakly_connected(n, n, 3);
  const auto r = baselines::run_absorption(g, 3);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(static_cast<double>(r.messages),
            12.0 * n_log_n(static_cast<double>(n)));
}

TEST(PointerDoubling, ConvergesDeterministically) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = graph::random_weakly_connected(50, 70, seed);
    const auto a = baselines::run_pointer_doubling(g);
    const auto b = baselines::run_pointer_doubling(g);
    EXPECT_TRUE(a.converged) << "seed " << seed;
    EXPECT_EQ(a.messages, b.messages);  // deterministic
    EXPECT_EQ(a.rounds, b.rounds);
  }
}

TEST(PointerDoubling, RoundsTrackDiameterOnPaths) {
  const auto short_path = baselines::run_pointer_doubling(graph::directed_path(8));
  const auto long_path = baselines::run_pointer_doubling(graph::directed_path(64));
  EXPECT_TRUE(short_path.converged);
  EXPECT_TRUE(long_path.converged);
  EXPECT_GT(long_path.rounds, short_path.rounds);
}

TEST(DfsElection, WorksOnStronglyConnectedGraphs) {
  const auto ring = baselines::run_dfs_election(graph::ring(20));
  EXPECT_TRUE(ring.converged);
  const auto cl = baselines::run_dfs_election(graph::clique(10));
  EXPECT_TRUE(cl.converged);
}

TEST(DfsElection, TokenCostBoundedByEdges) {
  const auto g = graph::clique(12);
  const auto r = baselines::run_dfs_election(g);
  EXPECT_TRUE(r.converged);
  // <= 2 messages per tree edge + notifications.
  EXPECT_LE(r.messages, 2 * g.node_count() + g.node_count());
}

TEST(DfsElection, RejectsWeaklyConnectedInput) {
  const auto r = baselines::run_dfs_election(graph::directed_path(6));
  EXPECT_FALSE(r.converged);
}

TEST(Comparison, PaperAlgorithmBeatsFloodingOnMessages) {
  // The §1.1 story: on dense weakly connected graphs the paper's algorithm
  // sends O(n log n) messages while flooding pays per-edge-per-id.
  const std::size_t n = 96;
  const auto g = graph::random_weakly_connected(n, 8 * n, 11);
  const auto ours = core::run_discovery(g, core::variant::generic, 1);
  const auto flood = baselines::run_flooding(g, 1);
  EXPECT_TRUE(flood.converged);
  EXPECT_LT(ours.messages, flood.messages / 2);
}

TEST(Comparison, AdhocBeatsGenericOnMessages) {
  const std::size_t n = 512;
  const auto g = graph::random_weakly_connected(n, n, 13);
  const auto generic = core::run_discovery(g, core::variant::generic, 1);
  const auto adhoc = core::run_discovery(g, core::variant::adhoc, 1);
  EXPECT_LT(adhoc.messages, generic.messages);
}

}  // namespace
}  // namespace asyncrd
