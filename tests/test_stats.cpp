#include <gtest/gtest.h>

#include "common/table.h"
#include "core/messages.h"
#include "sim/stats.h"

#include <sstream>

namespace asyncrd {
namespace {

using core::query_msg;
using core::release_msg;
using core::search_msg;

TEST(Stats, RecordsCountsAndBits) {
  sim::stats st;
  st.set_id_bits(10);
  const search_msg s(1, 1, 2, false);
  st.record(s);
  st.record(s);
  // search: 2 id fields + 1 int field = 3 * 10 bits, + 1 flag + 4 header.
  EXPECT_EQ(st.messages_of("search"), 2u);
  EXPECT_EQ(st.bits_of("search"), 2u * (3 * 10 + 1 + 4));
  EXPECT_EQ(st.total_messages(), 2u);
  EXPECT_EQ(st.total_bits(), st.bits_of("search"));
}

TEST(Stats, UnknownTypeIsZero) {
  sim::stats st;
  EXPECT_EQ(st.messages_of("nonexistent"), 0u);
  EXPECT_EQ(st.bits_of("nonexistent"), 0u);
}

TEST(Stats, MessagesOfAnySums) {
  sim::stats st;
  st.set_id_bits(8);
  st.record(search_msg(1, 1, 2, false));
  st.record(release_msg(3, 1, release_msg::answer_t::abort, 1));
  st.record(release_msg(3, 1, release_msg::answer_t::merge, 1));
  EXPECT_EQ(st.messages_of_any({"search", "release"}), 3u);
  EXPECT_EQ(st.messages_of_any({"search"}), 1u);
}

TEST(Stats, ResetClearsEverything) {
  sim::stats st;
  st.set_id_bits(8);
  st.record(query_msg(5));
  st.reset();
  EXPECT_EQ(st.total_messages(), 0u);
  EXPECT_EQ(st.total_bits(), 0u);
  EXPECT_TRUE(st.by_type().empty());
}

TEST(MessageBits, QueryReplyScalesWithPayload) {
  sim::stats st;
  st.set_id_bits(16);
  st.record(core::query_reply_msg({1, 2, 3}, true));
  EXPECT_EQ(st.bits_of("query_reply"), 3u * 16 + 1 + 4);
}

TEST(MessageBits, InfoCountsAllFourSets) {
  const core::info_msg m(2, {1, 2}, {3}, {4, 5, 6}, {7});
  EXPECT_EQ(m.id_fields(), 7u);
  EXPECT_EQ(m.int_fields(), 1u);
  EXPECT_EQ(m.bits(10), (7 + 1) * 10 + 0 + 4u);
}

TEST(MessageBits, MergeFailIsConstantSize) {
  const core::merge_fail_msg m;
  EXPECT_EQ(m.bits(32), core::merge_fail_msg::header_bits);
}

TEST(TextTable, AlignsAndCounts) {
  text_table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(10.0, 4.0, 1), "2.5");
  EXPECT_EQ(fmt_ratio(1.0, 0.0), "n/a");
}

TEST(TextTable, CsvOutputPlain) {
  text_table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesSpecialCells) {
  text_table t({"name", "note"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "name,note\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

}  // namespace
}  // namespace asyncrd
