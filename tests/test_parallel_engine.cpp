// Parallel single-run engine (sim/parallel_engine.h): the acceptance bar is
// byte-identical replay — run_parallel(s) must reproduce run() exactly for
// every shard count, down to activation ids, RNG draws, trace genealogy and
// chaos counters.  Plus the satellite cross-check: the telemetry
// parallelism profile's predicted speedup vs the speedup actually measured.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/runner.h"
#include "graph/topology.h"
#include "sim/parallel_engine.h"
#include "telemetry/parallelism.h"
#include "telemetry/report.h"
#include "telemetry/tracer.h"

namespace asyncrd {
namespace {

constexpr std::size_t kShardMatrix[] = {1, 2, 4, 8};

// Everything observable about a finished run except host wall-clock: the
// aggregate stats, per-type breakdown, leaders, merge accounting, and the
// full causal trace flattened field-by-field.
struct run_fingerprint {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t events = 0;
  sim::sim_time completion_time = 0;
  bool completed = false;
  std::vector<node_id> leaders;
  std::uint64_t merges = 0;
  sim::sim_time last_merge_at = 0;
  std::map<std::string, std::uint64_t> by_type;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, int, node_id, node_id, sim::sim_time,
                         sim::sim_time, std::uint64_t, std::uint64_t,
                         std::uint32_t, std::string>>
      trace;

  bool operator==(const run_fingerprint&) const = default;
};

run_fingerprint fingerprint(core::discovery_run& run, sim::run_result r,
                            const telemetry::tracer& tr) {
  run_fingerprint fp;
  fp.messages = run.statistics().total_messages();
  fp.bits = run.statistics().total_bits();
  fp.events = r.events_processed;
  fp.completion_time = run.net().now();
  fp.completed = r.completed;
  fp.leaders = run.leaders();
  fp.merges = run.merges();
  fp.last_merge_at = run.last_merge_at();
  for (const auto& [k, v] : run.statistics().by_type())
    fp.by_type[k] = v.count;
  fp.trace.reserve(tr.events().size());
  for (const auto& e : tr.events())
    fp.trace.emplace_back(e.id, e.cause, e.release, e.parent,
                          static_cast<int>(e.what), e.from, e.to, e.at,
                          e.sent_at, e.lamport, e.bits, e.sends, e.type);
  return fp;
}

// One full traced execution of the generic variant; shards == SIZE_MAX
// selects the serial event loop (network::run).
run_fingerprint run_traced(const graph::digraph& g, std::uint64_t seed,
                           std::size_t shards) {
  sim::unit_delay_scheduler unit;
  sim::random_delay_scheduler random(seed);
  sim::scheduler& sched = seed == 0 ? static_cast<sim::scheduler&>(unit)
                                    : static_cast<sim::scheduler&>(random);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  const sim::run_result r =
      shards == SIZE_MAX ? run.run() : run.run_parallel(shards);
  EXPECT_TRUE(r.completed);
  return fingerprint(run, r, tr);
}

TEST(ParallelEngine, ShardMatrixReplaysSerialByteForByte) {
  // Shard-count x seed determinism matrix: every cell must equal the serial
  // execution bit for bit, including the causal trace (activation ids,
  // parents, Lamport stamps) — the strongest observable we have.
  const auto g = graph::random_weakly_connected(60, 140, 11);
  for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{7},
                                   std::uint64_t{21}}) {
    const run_fingerprint serial = run_traced(g, seed, SIZE_MAX);
    EXPECT_EQ(serial.leaders.size(), 1u) << "seed " << seed;
    for (const std::size_t shards : kShardMatrix) {
      const run_fingerprint par = run_traced(g, seed, shards);
      EXPECT_EQ(par, serial) << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ParallelEngine, ShardCountZeroPicksHardwareConcurrency) {
  const auto g = graph::random_weakly_connected(40, 90, 5);
  const run_fingerprint serial = run_traced(g, 3, SIZE_MAX);
  EXPECT_EQ(run_traced(g, 3, 0), serial);
}

TEST(ParallelEngine, ChaosRunsReplayByteForByteAtEveryShardCount) {
  // The hard case: lossy transport + ARQ.  Acks are barrier-replayed and
  // every fault/jitter RNG draw happens at the barrier in serial order, so
  // drops, duplicates, retransmissions and RTO backoffs must all match.
  const auto g = graph::random_weakly_connected(40, 80, 21);
  const auto run_once = [&](std::size_t shards) {
    sim::random_delay_scheduler sched(21);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    sim::fault_plan plan;
    plan.seed = 21;
    plan.drop = 0.2;
    plan.duplicate = 0.1;
    plan.reorder_slack = 24;
    plan.outage_period = 256;
    plan.outage_duration = 32;
    run.enable_chaos(plan);
    telemetry::tracer tr(run.net());
    run.net().add_observer(&tr);
    run.wake_all();
    const sim::run_result r =
        shards == SIZE_MAX ? run.run() : run.run_parallel(shards);
    EXPECT_TRUE(r.completed);
    const auto& f = run.net().faults();
    const sim::reliable_link_stats rl = run.reliable_links()->stats();
    return std::tuple{fingerprint(run, r, tr),
                      f.transmissions,
                      f.drops,
                      f.outage_drops,
                      f.duplicates,
                      f.reorder_delay,
                      rl.data_sent,
                      rl.retransmits,
                      rl.acks_sent,
                      rl.dup_suppressed,
                      rl.timer_fires,
                      rl.rto_backoffs,
                      rl.max_rto};
  };
  const auto serial = run_once(SIZE_MAX);
  for (const std::size_t shards : kShardMatrix)
    EXPECT_EQ(run_once(shards), serial) << "shards " << shards;
}

TEST(ParallelEngine, RunReportsIdenticalAcrossShardCounts) {
  // The telemetry report (minus host wall-clock) is the artifact benches
  // diff; sharding must not perturb a single stable field in it.
  const auto g = graph::random_weakly_connected(50, 110, 13);
  const auto report_once = [&](std::size_t shards) {
    sim::random_delay_scheduler sched(13);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    const sim::run_result r =
        shards == SIZE_MAX ? run.run() : run.run_parallel(shards);
    telemetry::run_report rep = telemetry::collect_run_report(run, r);
    rep.wall_ms = 0.0;  // host clock: the only legitimately volatile fields
    rep.events_per_sec = 0.0;
    return rep.to_json();
  };
  const std::string serial = report_once(SIZE_MAX);
  for (const std::size_t shards : kShardMatrix)
    EXPECT_EQ(report_once(shards), serial) << "shards " << shards;
}

TEST(ParallelEngine, WireRunReportsIdenticalAcrossShardCountsAndModes) {
  // Wire mode rides the same send choke point the parallel replay funnels
  // through, so two properties must hold at once: (a) a wire-mode report —
  // including the wire.* byte counters — is identical at every shard count,
  // and (b) with the wire block excluded it is identical to the struct-mode
  // serial report.
  const auto g = graph::random_weakly_connected(50, 110, 13);
  const auto report_once = [&](std::size_t shards, bool wire,
                               bool strip_wire) {
    sim::random_delay_scheduler sched(13);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    if (wire) run.enable_wire();
    run.wake_all();
    const sim::run_result r =
        shards == SIZE_MAX ? run.run() : run.run_parallel(shards);
    telemetry::run_report rep = telemetry::collect_run_report(run, r);
    rep.wall_ms = 0.0;
    rep.events_per_sec = 0.0;
    if (strip_wire) rep.wire = {};
    return rep.to_json();
  };
  const std::string wire_serial = report_once(SIZE_MAX, true, false);
  EXPECT_NE(wire_serial.find("\"wire\""), std::string::npos);
  for (const std::size_t shards : kShardMatrix)
    EXPECT_EQ(report_once(shards, true, false), wire_serial)
        << "shards " << shards;
  EXPECT_EQ(report_once(SIZE_MAX, true, true),
            report_once(SIZE_MAX, false, true));
}

TEST(ParallelEngine, WireChaosReplaysByteForByteAtEveryShardCount) {
  // Frames under a lossy transport, replayed in parallel: the wire byte
  // counters join the fault and ARQ counters in the fingerprint.
  const auto g = graph::random_weakly_connected(40, 80, 29);
  const auto run_once = [&](std::size_t shards) {
    sim::random_delay_scheduler sched(29);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.enable_wire();
    sim::fault_plan plan;
    plan.seed = 29;
    plan.drop = 0.15;
    plan.duplicate = 0.1;
    plan.reorder_slack = 16;
    run.enable_chaos(plan);
    telemetry::tracer tr(run.net());
    run.net().add_observer(&tr);
    run.wake_all();
    const sim::run_result r =
        shards == SIZE_MAX ? run.run() : run.run_parallel(shards);
    EXPECT_TRUE(r.completed);
    const auto& f = run.net().faults();
    return std::tuple{fingerprint(run, r, tr),
                      f.transmissions,
                      f.drops,
                      f.duplicates,
                      run.net().wire_bytes_sent(),
                      run.net().wire_frames()};
  };
  const auto serial = run_once(SIZE_MAX);
  EXPECT_GT(std::get<4>(serial), 0u);
  for (const std::size_t shards : kShardMatrix)
    EXPECT_EQ(run_once(shards), serial) << "shards " << shards;
}

TEST(ParallelEngine, EngineAccountsWindowsAndRejectsManualMode) {
  const auto g = graph::random_weakly_connected(200, 500, 17);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  sim::parallel_config pcfg;
  pcfg.shards = 2;
  sim::parallel_engine engine(run.net(), pcfg);
  EXPECT_EQ(engine.shards(), 2u);
  const sim::run_result r = engine.run();
  EXPECT_TRUE(r.completed);
  const sim::parallel_run_stats& st = engine.run_stats();
  EXPECT_GT(st.windows, 0u);
  EXPECT_EQ(st.parallel_windows + st.serial_windows, st.windows);
  // 200 simultaneous wakes dwarf the serial-window threshold: the pool must
  // actually have been exercised.
  EXPECT_GT(st.parallel_windows, 0u);
  EXPECT_GE(st.max_window_events, 200u);
  EXPECT_GT(st.deferred_records, 0u);

  sim::unit_delay_scheduler msched;
  sim::network manual(msched);
  manual.set_manual_mode();
  sim::parallel_engine bad(manual, pcfg);
  EXPECT_THROW(bad.run(), std::logic_error);
}

TEST(ParallelEngine, PredictedSpeedupCrossChecksMeasured) {
  // Satellite cross-check: telemetry::compute_parallelism predicts the
  // available-width ceiling; clamped by the host's core count it becomes a
  // speedup prediction the engine must realize at least half of.  On a
  // single-core host the clamp is 1.0, so this degenerates to "the window
  // protocol costs at most 2x over the serial loop" — still a real bound.
  const auto g = graph::random_weakly_connected(1200, 4800, 3);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Predicted: width profile of the (deterministic) execution, traced once.
  sim::unit_delay_scheduler tsched;
  core::config tcfg;
  core::discovery_run traced(g, tcfg, tsched);
  telemetry::tracer tr(traced.net());
  traced.net().add_observer(&tr);
  traced.wake_all();
  ASSERT_TRUE(traced.run().completed);
  const telemetry::parallelism_profile prof =
      telemetry::compute_parallelism(tr.events());
  ASSERT_GE(prof.work_cp_ratio, 1.0);
  const double predicted =
      std::min(prof.work_cp_ratio, static_cast<double>(hw));

  // Measured: best-of-3 untraced wall times, serial vs hw-shard parallel.
  const auto wall_ms = [&](std::size_t shards) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      sim::unit_delay_scheduler sched;
      core::config cfg;
      core::discovery_run run(g, cfg, sched);
      run.wake_all();
      const auto t0 = std::chrono::steady_clock::now();
      const sim::run_result r =
          shards == SIZE_MAX ? run.run() : run.run_parallel(shards);
      const auto t1 = std::chrono::steady_clock::now();
      EXPECT_TRUE(r.completed);
      best = std::min(
          best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  };
  const double serial_ms = wall_ms(SIZE_MAX);
  const double parallel_ms = wall_ms(hw);
  ASSERT_GT(serial_ms, 0.0);
  ASSERT_GT(parallel_ms, 0.0);
  const double measured = serial_ms / parallel_ms;
  EXPECT_GE(measured, 0.5 * predicted)
      << "predicted " << predicted << "x (width " << prof.work_cp_ratio
      << ", " << hw << " cores), measured " << measured << "x (serial "
      << serial_ms << " ms, parallel " << parallel_ms << " ms)";
}

}  // namespace
}  // namespace asyncrd
