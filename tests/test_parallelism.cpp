// Parallelism-profile tests: the analytical cases (a chain has width 1 and
// no speedup; a star has width n-1 and full speedup), a brute-force
// reference computation cross-checked on a real traced run, and bucket
// grouping.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/runner.h"
#include "graph/topology.h"
#include "telemetry/parallelism.h"
#include "telemetry/tracer.h"

namespace asyncrd {
namespace {

using telemetry::compute_parallelism;
using telemetry::parallelism_profile;
using telemetry::trace_event;
using telemetry::trace_none;

trace_event wake(std::uint64_t id, node_id v, sim::sim_time at,
                 std::uint64_t lamport) {
  trace_event e;
  e.id = id;
  e.what = trace_event::kind::wake;
  e.to = v;
  e.at = at;
  e.lamport = lamport;
  return e;
}

trace_event deliver(std::uint64_t id, std::uint64_t cause, node_id from,
                    node_id to, sim::sim_time sent_at, sim::sim_time at,
                    std::uint64_t lamport) {
  trace_event e;
  e.id = id;
  e.what = trace_event::kind::deliver;
  e.cause = cause;
  e.from = from;
  e.to = to;
  e.sent_at = sent_at;
  e.at = at;
  e.lamport = lamport;
  e.type = "msg";
  return e;
}

/// Brute-force reference: widths by sorting activations into buckets.
std::map<std::uint64_t, std::uint64_t> brute_widths(
    const std::vector<trace_event>& evs, sim::sim_time bucket) {
  std::map<std::uint64_t, std::uint64_t> w;
  for (const trace_event& e : evs) w[e.at / bucket] += 1;
  return w;
}

TEST(Parallelism, EmptyTraceIsAllZero) {
  const parallelism_profile p = compute_parallelism({});
  EXPECT_EQ(p.activations, 0u);
  EXPECT_EQ(p.critical_path_len, 0u);
  EXPECT_EQ(p.work_cp_ratio, 0.0);
  EXPECT_EQ(p.links, 0u);
}

TEST(Parallelism, ChainHasWidthOneAndNoSpeedup) {
  // Hand-built chain: wake, then n-1 sequential unit-delay deliveries —
  // the fully serial execution.
  constexpr std::uint64_t n = 16;
  std::vector<trace_event> evs;
  evs.push_back(wake(1, 0, 0, 1));
  for (std::uint64_t i = 1; i < n; ++i)
    evs.push_back(deliver(i + 1, i, static_cast<node_id>(i - 1),
                          static_cast<node_id>(i), i - 1, i, i + 1));

  const parallelism_profile p = compute_parallelism(evs);
  EXPECT_EQ(p.activations, n);
  EXPECT_EQ(p.critical_path_len, n);  // max lamport
  EXPECT_DOUBLE_EQ(p.work_cp_ratio, 1.0);
  EXPECT_EQ(p.max_width, 1u);
  EXPECT_DOUBLE_EQ(p.mean_width, 1.0);
  EXPECT_EQ(p.buckets_occupied, n);
  EXPECT_EQ(p.width.count(), n);  // one sample per occupied bucket
  EXPECT_EQ(p.makespan, n - 1);
  // Each chain hop is its own link with exactly one unit-delay delivery.
  EXPECT_EQ(p.links, n - 1);
  EXPECT_EQ(p.lookahead_min, 1u);
  EXPECT_EQ(p.lookahead_max, 1u);
  EXPECT_DOUBLE_EQ(p.lookahead_mean, 1.0);
}

TEST(Parallelism, StarHasWidthNMinusOne) {
  // Root wakes at t=0 and sends to n-1 spokes, all delivered at t=1: the
  // fully parallel execution.
  constexpr std::uint64_t n = 12;
  std::vector<trace_event> evs;
  evs.push_back(wake(1, 0, 0, 1));
  for (std::uint64_t i = 1; i < n; ++i)
    evs.push_back(deliver(i + 1, 1, 0, static_cast<node_id>(i), 0, 1, 2));

  const parallelism_profile p = compute_parallelism(evs);
  EXPECT_EQ(p.activations, n);
  EXPECT_EQ(p.critical_path_len, 2u);
  EXPECT_DOUBLE_EQ(p.work_cp_ratio, static_cast<double>(n) / 2.0);
  EXPECT_EQ(p.max_width, n - 1);
  EXPECT_EQ(p.buckets_occupied, 2u);  // t=0 (the wake) and t=1 (the burst)
  EXPECT_DOUBLE_EQ(p.mean_width, static_cast<double>(n) / 2.0);
  EXPECT_EQ(p.links, n - 1);
  EXPECT_EQ(p.lookahead_min, 1u);
}

TEST(Parallelism, BucketGroupingMergesNeighbours) {
  // Chain again, but bucketed by 4: ceil(16/4) = 4 occupied buckets of
  // width 4 each.
  constexpr std::uint64_t n = 16;
  std::vector<trace_event> evs;
  evs.push_back(wake(1, 0, 0, 1));
  for (std::uint64_t i = 1; i < n; ++i)
    evs.push_back(deliver(i + 1, i, static_cast<node_id>(i - 1),
                          static_cast<node_id>(i), i - 1, i, i + 1));

  const parallelism_profile p = compute_parallelism(evs, 4);
  EXPECT_EQ(p.bucket, 4u);
  EXPECT_EQ(p.buckets_occupied, 4u);
  EXPECT_EQ(p.max_width, 4u);
  EXPECT_DOUBLE_EQ(p.mean_width, 4.0);
  // The critical path is bucket-independent.
  EXPECT_EQ(p.critical_path_len, n);
}

TEST(Parallelism, ZeroBucketFallsBackToOne) {
  std::vector<trace_event> evs{wake(1, 0, 0, 1)};
  const parallelism_profile p = compute_parallelism(evs, 0);
  EXPECT_EQ(p.bucket, 1u);
  EXPECT_EQ(p.activations, 1u);
}

TEST(Parallelism, MatchesBruteForceOnTracedRun) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  const auto g = graph::random_weakly_connected(120, 150, 9);
  core::discovery_run run(g, cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);
  run.net().remove_observer(&tr);
  const std::vector<trace_event>& evs = tr.events();
  ASSERT_FALSE(evs.empty());

  for (const sim::sim_time bucket : {sim::sim_time{1}, sim::sim_time{8}}) {
    const parallelism_profile p = compute_parallelism(evs, bucket);
    const auto ref = brute_widths(evs, bucket);

    EXPECT_EQ(p.activations, evs.size());
    EXPECT_EQ(p.critical_path_len, tr.max_lamport());
    EXPECT_EQ(p.buckets_occupied, ref.size());
    std::uint64_t ref_max = 0, ref_sum = 0;
    for (const auto& [b, wdt] : ref) {
      ref_max = std::max(ref_max, wdt);
      ref_sum += wdt;
    }
    EXPECT_EQ(p.max_width, ref_max);
    EXPECT_EQ(ref_sum, p.activations);
    EXPECT_DOUBLE_EQ(p.mean_width, static_cast<double>(ref_sum) /
                                       static_cast<double>(ref.size()));
    EXPECT_EQ(p.width.count(), ref.size());
    EXPECT_EQ(p.width.max(), ref_max);

    // Unit delays: every delivery takes exactly one tick, so every link's
    // lookahead is 1.
    EXPECT_EQ(p.lookahead_min, 1u);
    EXPECT_EQ(p.lookahead_max, 1u);

    // Brent sanity at exact times: a causal chain's activations sit at
    // strictly increasing times, so occupied buckets >= critical path and
    // mean width never exceeds work / critical-path.  (Coarser buckets
    // shrink the denominator and void the comparison.)
    if (bucket == 1) {
      EXPECT_LE(p.mean_width, p.work_cp_ratio + 1e-9);
    }
  }
}

TEST(Parallelism, WakesDoNotContributeLinks) {
  std::vector<trace_event> evs{wake(1, 0, 0, 1), wake(2, 1, 0, 1)};
  const parallelism_profile p = compute_parallelism(evs);
  EXPECT_EQ(p.links, 0u);
  EXPECT_EQ(p.lookahead_min, 0u);
  EXPECT_EQ(p.max_width, 2u);  // both wakes at t=0
}

}  // namespace
}  // namespace asyncrd
