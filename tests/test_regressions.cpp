// Regression tests encoding the protocol-level bugs found while building
// this reproduction.  Each one corresponds to a subtle requirement of the
// paper's model that a naive transcription of the pseudocode misses; they
// are pinned here with the exact workloads that exposed them.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::variant;

void expect_ok(const graph::digraph& g, variant algo, std::uint64_t seed) {
  std::unique_ptr<sim::scheduler> sched;
  if (seed == 0)
    sched = std::make_unique<sim::unit_delay_scheduler>();
  else
    sched = std::make_unique<sim::random_delay_scheduler>(seed);
  core::config cfg;
  cfg.algo = algo;
  core::discovery_run run(g, cfg, *sched);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// Bug 1: testing "u already knows v" against everything-ever-known instead
// of the literal `local` set.  Fig 5's "v.id ∉ local" is load-bearing:
// after v loses a duel and goes passive, re-injecting v's id into the
// target's *unreported* pool is the only way the surviving leader can
// rediscover v (the bidirectional-edge argument in Lemma 5.4's proof).
// With the over-eager check, these seeds left passive nodes stranded.
TEST(Regression, PassiveRediscoveryNeedsLiteralLocalCheck) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::random_weakly_connected(40, 80, seed);
    expect_ok(g, variant::generic, seed);
    expect_ok(g, variant::adhoc, seed + 200);
  }
}

// Bug 2: a refused merge loses the offerer's id.  When leader l offers to
// merge into v (release-merge) but v was itself conquered meanwhile, v
// answers merge-fail; if v drops l's id on the floor, l goes passive and
// no leader ever learns it exists — the run quiesces with a stranded
// passive node and a leader whose census misses it.  The knowledge-graph
// model ("E grows each time a node receives an id") requires v to retain
// l.  These multi-component workloads reliably produced the triple duel
// that exposes it.
TEST(Regression, RefusedMergeMustRetainOffererId) {
  const auto g1 = graph::multi_component(3, 15, 10, 42);
  expect_ok(g1, variant::generic, 9);
  expect_ok(g1, variant::bounded, 10);
  expect_ok(g1, variant::adhoc, 11);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::random_weakly_connected(45, 90, seed * 13);
    expect_ok(g, variant::generic, seed);
  }
}

// Bug 3: a node whose unreported pool regrew after it had emptied must
// ship itself in `more`, not `done`, when conquered — otherwise the new
// leader never queries it and the re-injected ids are dead knowledge.
// Exercised by workloads with heavy duel traffic (many new-flag
// re-injections racing conquests).
TEST(Regression, RegrownLocalShipsAsMore) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::random_weakly_connected(60, 150, seed * 31 + 7);
    expect_ok(g, variant::adhoc, seed);
    expect_ok(g, variant::bounded, seed + 50);
  }
}

// Bug 4 (test-suite level): the Lemma 5.7 constant.  The paper caps
// merge_accept + merge_fail + info at 2n; real executions exceed it
// because passive nodes can offer to merge repeatedly.  Keep one workload
// where the measured count exceeds 2n, so the corrected 3n-2 audit (and
// the EXPERIMENTS.md note) stays honest.
TEST(Regression, Lemma57PaperConstantIsExceeded) {
  const std::size_t n = 256;
  const auto g = graph::random_weakly_connected(n, n, 1);
  sim::random_delay_scheduler sched(1);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto merge_msgs =
      run.statistics().messages_of_any({"merge_accept", "merge_fail", "info"});
  EXPECT_GT(merge_msgs, 2 * n) << "workload no longer exercises the "
                                  "Lemma 5.7 counting slip";
  EXPECT_LE(merge_msgs, 3 * n - 2);
}

// Bug 5: an out-of-work waiting leader must resume EXPLORE when a search's
// new flag (or a §6 report) repopulates `more`.  A leader parked in WAIT
// forever deadlocks the component.  Paths with unit delays drive leaders
// into WAIT-idle before stragglers report.
TEST(Regression, IdleWaitingLeaderResumesOnNewWork) {
  for (std::size_t n : {5u, 9u, 17u, 33u}) {
    expect_ok(graph::directed_path(n), variant::generic, 0);
    expect_ok(graph::directed_path(n), variant::adhoc, 0);
  }
}

}  // namespace
}  // namespace asyncrd
