#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace asyncrd {
namespace {

using graph::digraph;

TEST(Digraph, AddNodesAndEdges) {
  digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_node(3));
  EXPECT_FALSE(g.has_node(4));
}

TEST(Digraph, SelfLoopsIgnored) {
  digraph g;
  g.add_edge(1, 1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, DuplicateEdgesIgnored) {
  digraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, OutNeighborhood) {
  digraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.out(1).size(), 2u);
  EXPECT_TRUE(g.out(1).contains(3));
  EXPECT_TRUE(g.out(2).empty());
  EXPECT_TRUE(g.out(99).empty());  // unknown node: empty view
}

TEST(Digraph, WeakComponentsIgnoreDirection) {
  digraph g;
  g.add_edge(1, 2);
  g.add_edge(3, 2);  // 1,2,3 weakly connected despite opposing arrows
  g.add_edge(4, 5);
  g.add_node(6);
  const auto comps = g.weak_components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<node_id>{1, 2, 3}));
  EXPECT_EQ(comps[1], (std::vector<node_id>{4, 5}));
  EXPECT_EQ(comps[2], (std::vector<node_id>{6}));
}

TEST(Digraph, IsWeaklyConnected) {
  digraph g;
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_weakly_connected());
  g.add_node(9);
  EXPECT_FALSE(g.is_weakly_connected());
  digraph empty;
  EXPECT_TRUE(empty.is_weakly_connected());
}

TEST(Digraph, StrongComponentsCycleVsDag) {
  digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);  // 1-2-3 cycle
  g.add_edge(3, 4);  // 4 hangs off
  const auto sccs = g.strong_components();
  ASSERT_EQ(sccs.size(), 2u);
  bool found_cycle = false;
  for (const auto& c : sccs)
    if (c == std::vector<node_id>{1, 2, 3}) found_cycle = true;
  EXPECT_TRUE(found_cycle);
  EXPECT_FALSE(g.is_strongly_connected());
}

TEST(Digraph, StronglyConnectedRing) {
  digraph g;
  for (node_id v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);
  EXPECT_TRUE(g.is_strongly_connected());
}

TEST(Digraph, WeakComponentSizes) {
  digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_node(7);
  const auto sizes = g.weak_component_sizes();
  EXPECT_EQ(sizes.at(1), 3u);
  EXPECT_EQ(sizes.at(3), 3u);
  EXPECT_EQ(sizes.at(7), 1u);
}

TEST(Digraph, LargeSccIterativeTarjanDoesNotOverflow) {
  // A long path with a back edge: one big SCC; exercises the iterative
  // implementation with deep nesting.
  digraph g;
  const node_id n = 50'000;
  for (node_id v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(n - 1, 0);
  EXPECT_TRUE(g.is_strongly_connected());
}

}  // namespace
}  // namespace asyncrd
