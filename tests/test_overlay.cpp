// The ring overlay (src/overlay): the downstream consumer of a discovery
// census.  Correctness of successor arithmetic, finger tables, and Chord
// routing, including the end-to-end pipeline discovery -> census -> ring.
#include <gtest/gtest.h>

#include "common/bitmath.h"
#include "common/rng.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "overlay/ring.h"

namespace asyncrd {
namespace {

using overlay::key_t;
using overlay::ring_overlay;

TEST(Overlay, BuildsSortedDedupedRing) {
  ring_overlay ring({5, 1, 9, 5, 3});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.members(), (std::vector<node_id>{1, 3, 5, 9}));
  EXPECT_TRUE(ring.contains(3));
  EXPECT_FALSE(ring.contains(4));
}

TEST(Overlay, SuccessorOfKeyWrapsAround) {
  ring_overlay ring({10, 20, 30});
  EXPECT_EQ(ring.successor_of(5), 10u);
  EXPECT_EQ(ring.successor_of(10), 10u);  // exact member owns its own key
  EXPECT_EQ(ring.successor_of(11), 20u);
  EXPECT_EQ(ring.successor_of(25), 30u);
  EXPECT_EQ(ring.successor_of(31), 10u);  // wrap
  EXPECT_EQ(ring.successor_of(0xFFFFFFFFu), 10u);
}

TEST(Overlay, RingNeighbors) {
  ring_overlay ring({10, 20, 30});
  EXPECT_EQ(ring.successor(10), 20u);
  EXPECT_EQ(ring.successor(30), 10u);
  EXPECT_EQ(ring.predecessor(10), 30u);
  EXPECT_EQ(ring.predecessor(20), 10u);
  EXPECT_THROW(ring.successor(99), std::invalid_argument);
}

TEST(Overlay, SingleMemberOwnsEverything) {
  ring_overlay ring({7});
  EXPECT_EQ(ring.successor_of(0), 7u);
  EXPECT_EQ(ring.successor_of(1u << 31), 7u);
  EXPECT_EQ(ring.successor(7), 7u);
  const auto res = ring.lookup(7, 12345);
  EXPECT_EQ(res.home, 7u);
  EXPECT_EQ(res.hops(), 0u);
}

TEST(Overlay, FingerTableTargetsAreSuccessors) {
  rng r(4);
  std::vector<node_id> ids;
  for (int i = 0; i < 50; ++i) ids.push_back(static_cast<node_id>(r.next()));
  ring_overlay ring(ids);
  const auto ft = ring.fingers_of(ring.members().front());
  ASSERT_EQ(ft.fingers.size(), 32u);
  for (std::size_t k = 0; k < 32; ++k) {
    const key_t target = static_cast<key_t>(
        ft.owner + (static_cast<std::uint64_t>(1) << k));
    EXPECT_EQ(ft.fingers[k], ring.successor_of(target)) << "finger " << k;
  }
}

TEST(Overlay, LookupAlwaysLandsOnTheHome) {
  rng r(9);
  std::vector<node_id> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(static_cast<node_id>(r.next()));
  ring_overlay ring(ids);
  for (int trial = 0; trial < 500; ++trial) {
    const key_t key = static_cast<key_t>(r.next());
    const node_id from =
        ring.members()[static_cast<std::size_t>(r.below(ring.size()))];
    const auto res = ring.lookup(from, key);
    EXPECT_EQ(res.home, ring.successor_of(key));
    ASSERT_FALSE(res.path.empty());
    EXPECT_EQ(res.path.front(), from);
    EXPECT_EQ(res.path.back(), res.home);
  }
}

TEST(Overlay, LookupHopsAreLogarithmic) {
  rng r(13);
  std::vector<node_id> ids;
  for (int i = 0; i < 1024; ++i) ids.push_back(static_cast<node_id>(r.next()));
  ring_overlay ring(ids);
  std::size_t worst = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const key_t key = static_cast<key_t>(r.next());
    const node_id from =
        ring.members()[static_cast<std::size_t>(r.below(ring.size()))];
    worst = std::max(worst, ring.lookup(from, key).hops());
  }
  // Chord: O(log n) hops; allow 2x slack over log2(1024) = 10.
  EXPECT_LE(worst, 2 * ceil_log2(ring.size()));
}

TEST(Overlay, DeterministicFunctionOfCensus) {
  // Two peers holding the same census must compute identical overlays —
  // the property that makes the discovery census sufficient coordination.
  std::vector<node_id> census{42, 7, 999, 100000, 5};
  ring_overlay a(census);
  std::reverse(census.begin(), census.end());
  ring_overlay b(census);
  EXPECT_EQ(a.members(), b.members());
  EXPECT_EQ(a.fingers_of(42).fingers, b.fingers_of(42).fingers);
}

TEST(Overlay, EndToEndFromDiscoveryCensus) {
  // The full pipeline: discovery -> leader census -> ring -> lookups.
  const auto g = graph::random_weakly_connected(100, 150, 21);
  sim::random_delay_scheduler sched(3);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const node_id leader = run.leaders().front();
  const auto& done = run.at(leader).done();
  ring_overlay ring({done.begin(), done.end()});
  EXPECT_EQ(ring.size(), 100u);
  rng r(5);
  for (int trial = 0; trial < 100; ++trial) {
    const key_t key = static_cast<key_t>(r.next());
    const auto res = ring.lookup(leader, key);
    EXPECT_EQ(res.home, ring.successor_of(key));
  }
}

TEST(Overlay, RebuildAfterDynamicJoin) {
  const auto g = graph::random_weakly_connected(20, 20, 8);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  run.probe(3);
  run.net().run_to_quiescence();
  ring_overlay ring(run.at(3).last_census()->ids);
  EXPECT_EQ(ring.size(), 20u);

  run.add_node_dynamic(500, {3});
  run.run();
  run.probe(3);
  run.net().run_to_quiescence();
  ring.rebuild(run.at(3).last_census()->ids);
  EXPECT_EQ(ring.size(), 21u);
  EXPECT_TRUE(ring.contains(500));
}

TEST(Overlay, EmptyRingBehaves) {
  ring_overlay ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.successor_of(1), std::logic_error);
  const auto res = ring.lookup(0, 1);
  EXPECT_EQ(res.home, invalid_node);
}

}  // namespace
}  // namespace asyncrd
