// calendar_queue: the simulator's event queue.  The contract the dense-core
// rewrite must keep is exact (at, seq) lexicographic pop order — byte-equal
// to the binary heap it replaced — including events that overflow the
// near-future ring into the far-future heap and migrate back as the window
// slides.
#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "sim/scheduler.h"

namespace asyncrd {
namespace {

struct ev {
  sim::sim_time at;
  std::uint64_t seq;
};

struct after {
  bool operator()(const ev& a, const ev& b) const noexcept {
    return std::tie(a.at, a.seq) > std::tie(b.at, b.seq);
  }
};

using queue_t = sim::calendar_queue<ev, after>;
using ref_t = std::priority_queue<ev, std::vector<ev>, after>;

TEST(CalendarQueue, StartsEmpty) {
  queue_t q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.overflowed(), 0u);
}

TEST(CalendarQueue, SameTickPopsInSeqOrder) {
  queue_t q;
  for (std::uint64_t s = 0; s < 100; ++s) q.push({5, s});
  EXPECT_EQ(q.size(), 100u);
  for (std::uint64_t s = 0; s < 100; ++s) {
    const ev e = q.pop();
    EXPECT_EQ(e.at, 5u);
    EXPECT_EQ(e.seq, s);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarFutureEventsOverflowAndComeBack) {
  queue_t q(/*window_log2=*/4);  // 16-tick window: easy to overflow
  q.push({2, 0});
  q.push({1'000'000, 1});  // way past the window: parks in the heap
  q.push({3, 2});
  EXPECT_EQ(q.overflowed(), 1u);
  EXPECT_EQ(q.pop().at, 2u);
  EXPECT_EQ(q.pop().at, 3u);
  // Ring drained: pop jumps straight to the far-future event.
  const ev e = q.pop();
  EXPECT_EQ(e.at, 1'000'000u);
  EXPECT_EQ(e.seq, 1u);
  EXPECT_EQ(q.overflowed(), 0u);
  EXPECT_TRUE(q.empty());
}

// The load-bearing property: any interleaving of pushes (never in the past)
// and pops yields exactly the order a binary heap on (at, seq) yields.
TEST(CalendarQueue, MatchesHeapOrderUnderRandomizedWorkload) {
  queue_t q(/*window_log2=*/6);  // small window: overflow path exercised
  ref_t ref;
  rng r(1234);
  sim::sim_time now = 0;
  std::uint64_t seq = 0;
  int pops = 0;
  for (int step = 0; step < 20'000; ++step) {
    const bool push = ref.empty() || r.below(100) < 55;
    if (push) {
      // Mostly small delays (the simulator's regime), occasionally a
      // heavy-tail straggler far beyond the ring window.
      const sim::sim_time d = r.below(20) == 0
                                  ? 1 + r.below(10000)
                                  : 1 + r.below(8);
      const ev e{now + d, seq++};
      q.push(e);
      ref.push(e);
    } else {
      const ev expect = ref.top();
      ref.pop();
      const ev got = q.pop();
      ASSERT_EQ(got.at, expect.at) << "pop " << pops;
      ASSERT_EQ(got.seq, expect.seq) << "pop " << pops;
      now = got.at;  // simulated time advances to the popped event
      ++pops;
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) {
    const ev expect = ref.top();
    ref.pop();
    const ev got = q.pop();
    ASSERT_EQ(got.at, expect.at);
    ASSERT_EQ(got.seq, expect.seq);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_GT(pops, 1000);
}

TEST(CalendarQueue, WindowSlideMigratesHeapEventsBeforeTheirTick) {
  queue_t q(/*window_log2=*/3);  // 8-tick window
  // One event per tick so popping slides the window one tick at a time.
  for (std::uint64_t t = 0; t < 8; ++t) q.push({t, t});
  q.push({9, 100});   // just outside [0, 8): overflows
  q.push({20, 101});  // far outside: overflows
  EXPECT_EQ(q.overflowed(), 2u);
  for (std::uint64_t t = 0; t < 8; ++t) EXPECT_EQ(q.pop().at, t);
  // Sliding past tick 1 brought {9} into the ring before it was popped.
  EXPECT_EQ(q.pop().at, 9u);
  EXPECT_EQ(q.pop().at, 20u);
  EXPECT_TRUE(q.empty());
}

// Regression: push() used to *assert* (compiled away under NDEBUG) that an
// event is not scheduled in the past.  The ring is modular, so a past-time
// event would land in a future bucket and pop out of order up to a whole
// window late — silent (at, seq) order corruption.  The check is now an
// always-on ASYNCRD_CHECK and must abort in every build type.
TEST(CalendarQueueDeathTest, PushIntoThePastAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  queue_t q;
  for (std::uint64_t t = 0; t < 10; ++t) q.push({t, t});
  while (!q.empty() && q.pop().at < 5) {
  }
  // base_ has advanced past tick 5; tick 2 is in the past.
  EXPECT_DEATH(q.push({2, 999}), "scheduled in the past");
}

TEST(CalendarQueue, PeekTimeReportsEarliestTickWithoutPopping) {
  queue_t q;
  q.push({7, 0});
  q.push({3, 1});
  q.push({3, 2});
  EXPECT_EQ(q.peek_time(), 3u);
  EXPECT_EQ(q.size(), 3u);  // nothing consumed
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.peek_time(), 7u);
}

TEST(CalendarQueue, DrainNextRemovesWholeTickInSeqOrder) {
  queue_t q;
  q.push({5, 10});
  q.push({5, 11});
  q.push({6, 12});
  q.push({5, 13});
  std::vector<ev> out;
  EXPECT_EQ(q.drain_next(out), 5u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 10u);
  EXPECT_EQ(out[1].seq, 11u);
  EXPECT_EQ(out[2].seq, 13u);
  EXPECT_EQ(q.size(), 1u);
  out.clear();
  EXPECT_EQ(q.drain_next(out), 6u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 12u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, DrainNextAfterPartialPopYieldsTheRemainder) {
  queue_t q;
  for (std::uint64_t s = 0; s < 4; ++s) q.push({9, s});
  EXPECT_EQ(q.pop().seq, 0u);  // partial consumption of the tick
  std::vector<ev> out;
  EXPECT_EQ(q.drain_next(out), 9u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[2].seq, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, DrainNextMigratesOverflowedEventsFirst) {
  queue_t q(/*window_log2=*/3);  // 8-tick window
  q.push({0, 0});
  q.push({20, 1});  // far future: parks in the heap
  q.push({20, 2});
  EXPECT_EQ(q.overflowed(), 2u);
  std::vector<ev> out;
  EXPECT_EQ(q.drain_next(out), 0u);
  out.clear();
  // Ring drained: settle jumps to the heap events and drains the full tick.
  EXPECT_EQ(q.drain_next(out), 20u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace asyncrd
