#include <gtest/gtest.h>

#include "common/bitmath.h"

namespace asyncrd {
namespace {

TEST(Bitmath, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(7), 2u);
  EXPECT_EQ(floor_log2(8), 3u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(std::uint64_t{1} << 62), 62u);
}

TEST(Bitmath, CeilLog2SmallValuesAreOneBit) {
  // An id field never costs zero bits.
  EXPECT_EQ(ceil_log2(1), 1u);
  EXPECT_EQ(ceil_log2(2), 1u);
}

TEST(Bitmath, CeilLog2ExactPowers) {
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
}

TEST(Bitmath, CeilLog2RoundsUp) {
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bitmath, CeilVsFloorRelation) {
  for (std::uint64_t x = 3; x < 5000; ++x) {
    const auto f = floor_log2(x);
    const auto c = ceil_log2(x);
    EXPECT_TRUE(c == f || c == f + 1) << x;
    EXPECT_GE(std::uint64_t{1} << c, x) << x;
  }
}

TEST(Bitmath, NLogN) {
  EXPECT_DOUBLE_EQ(n_log_n(0.0), 0.0);
  EXPECT_DOUBLE_EQ(n_log_n(1.0), 1.0);
  EXPECT_DOUBLE_EQ(n_log_n(2.0), 2.0);
  EXPECT_DOUBLE_EQ(n_log_n(8.0), 24.0);
  EXPECT_NEAR(n_log_n(1024.0), 10240.0, 1e-9);
}

}  // namespace
}  // namespace asyncrd
