// Critical-path extraction on known topologies.  The load-bearing claim:
// when every delivery delay is one time unit — the unit-delay scheduler,
// Theorem 1's staged-release adversary, Lemma 3.1's sequential wake-up —
// the extracted causal depth equals the network's final sim_time, i.e. the
// genealogy reproduces the execution's time complexity hop for hop.
#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "telemetry/critical_path.h"
#include "telemetry/tracer.h"

namespace asyncrd {
namespace {

using telemetry::critical_path;
using telemetry::trace_event;
using telemetry::trace_none;

struct traced_result {
  critical_path cp;
  sim::sim_time final_time = 0;
  std::uint64_t max_lamport = 0;
};

traced_result trace_run(const graph::digraph& g, sim::scheduler& sched,
                        core::staged_release_scheduler* to_arm = nullptr) {
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  if (to_arm != nullptr) to_arm->arm(run.net());
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  return {telemetry::extract_critical_path(tr.events()), run.net().now(),
          tr.max_lamport()};
}

void expect_chain_is_causal(const critical_path& cp) {
  for (std::size_t i = 0; i + 1 < cp.chain.size(); ++i)
    EXPECT_EQ(cp.chain[i + 1].parent, cp.chain[i].id);
  for (std::size_t i = 0; i < cp.chain.size(); ++i)
    EXPECT_EQ(cp.chain[i].lamport, i + 1);
  std::uint64_t hop_sum = 0;
  for (const auto& [type, hops] : cp.hops_by_type) hop_sum += hops;
  EXPECT_EQ(hop_sum, cp.length);
  EXPECT_EQ(cp.length, cp.chain.size());
}

TEST(CriticalPath, DirectedLineDepthEqualsSimTime) {
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    sim::unit_delay_scheduler sched;
    const auto t = trace_run(graph::directed_path(n), sched);
    EXPECT_EQ(t.cp.length, t.final_time) << "line n=" << n;
    // The line forces sequential conquest: depth grows at least linearly.
    EXPECT_GE(t.cp.length, static_cast<std::uint64_t>(n)) << "line n=" << n;
    expect_chain_is_causal(t.cp);
  }
}

TEST(CriticalPath, StarDepthEqualsSimTimeAndExposesSequentialConquest) {
  // The center knows every spoke up front, but the protocol conquers one
  // candidate at a time (search, await the response, move on), so even the
  // star's causal depth is linear in n — the critical path makes the
  // sequential search loop visible.  Empirically depth ≈ 8n; we only pin
  // the linear lower bound and the time equality.
  for (const std::size_t n : {16u, 64u, 256u}) {
    sim::unit_delay_scheduler sched;
    const auto t = trace_run(graph::star_out(n), sched);
    EXPECT_EQ(t.cp.length, t.final_time) << "star n=" << n;
    EXPECT_GE(t.cp.length, static_cast<std::uint64_t>(n)) << "star n=" << n;
    expect_chain_is_causal(t.cp);
  }
}

TEST(CriticalPath, Theorem1TreeUnderStallingAdversary) {
  // Theorem 1's adversary stalls senders until quiescence; the release is a
  // causal edge (the adversary observed the network drain), so the depth
  // still accounts for every time unit of the stretched execution.
  for (std::size_t levels = 2; levels <= 6; ++levels) {
    const auto g = graph::directed_binary_tree(levels);
    core::staged_release_scheduler sched(
        graph::binary_tree_internal_postorder(levels));
    const auto t = trace_run(g, sched, &sched);
    EXPECT_EQ(t.cp.length, t.final_time) << "T(" << levels << ")";
    expect_chain_is_causal(t.cp);
    // The stretched run is strictly deeper than the n-node blob would be
    // without the adversary; sanity-check the path uses release edges.
    bool saw_release = false;
    for (const auto& e : t.cp.chain)
      saw_release |= e.release != trace_none;
    if (levels >= 3) {
      EXPECT_TRUE(saw_release) << "T(" << levels << ")";
    }
  }
}

TEST(CriticalPath, SequentialWakeupDepthEqualsSimTime) {
  // Lemma 3.1's driver wakes one node per quiescence point; wake injections
  // are release-anchored, so depth tracks the summed stage times.
  const auto g = graph::random_weakly_connected(15, 10, 2);
  core::sequential_wakeup_scheduler sched(g.nodes());
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.net().wake(g.nodes().front());
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  const auto cp = telemetry::extract_critical_path(tr.events());
  EXPECT_EQ(cp.length, run.net().now());
  expect_chain_is_causal(cp);
}

TEST(CriticalPath, RandomDelaysAreBoundedBySimTime) {
  // With delays > 1 a causal hop can span many time units, so depth is a
  // lower bound on virtual time, never more.
  for (const std::uint64_t seed : {1u, 9u, 23u}) {
    sim::random_delay_scheduler sched(seed);
    const auto t = trace_run(graph::random_weakly_connected(24, 30, seed),
                             sched);
    EXPECT_LE(t.cp.length, t.final_time);
    EXPECT_GE(t.cp.length, 2u);
    expect_chain_is_causal(t.cp);
  }
}

TEST(CriticalPath, ExtractionMatchesTracerMaxLamport) {
  sim::unit_delay_scheduler sched;
  const auto t = trace_run(graph::random_weakly_connected(30, 45, 11), sched);
  EXPECT_EQ(t.cp.length, t.max_lamport);
  EXPECT_EQ(t.cp.chain.back().lamport, t.max_lamport);
  EXPECT_EQ(t.cp.makespan, t.final_time);
}

TEST(CriticalPath, EmptyTraceYieldsEmptyPath) {
  const auto cp = telemetry::extract_critical_path({});
  EXPECT_EQ(cp.length, 0u);
  EXPECT_TRUE(cp.chain.empty());
  EXPECT_TRUE(cp.hops_by_type.empty());
}

TEST(CriticalPath, FanoutAndLatencyAnalytics) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(graph::star_out(12), cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  run.run();

  const auto fan = telemetry::compute_fanout(tr.events());
  EXPECT_EQ(fan.activations, tr.events().size());
  // The protocol probes sequentially, so per-activation fan-out is small —
  // but the totals must reconcile exactly with the run statistics.
  EXPECT_GE(fan.max_fanout, 1u);
  EXPECT_NE(fan.max_fanout_event, trace_none);
  EXPECT_GT(fan.mean_fanout, 0.0);
  EXPECT_EQ(fan.sends, run.statistics().total_messages());

  const auto lat = telemetry::latency_by_type(tr.events());
  ASSERT_FALSE(lat.empty());
  std::uint64_t count = 0;
  for (const auto& [type, tl] : lat) {
    count += tl.count;
    EXPECT_GE(tl.max_delay, 1u);          // unit delays
    EXPECT_DOUBLE_EQ(tl.mean_delay(), 1.0);
  }
  EXPECT_EQ(count, run.statistics().total_messages());
}

}  // namespace
}  // namespace asyncrd
