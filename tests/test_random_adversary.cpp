// Randomized blocking adversary sweeps: whole nodes freeze for arbitrary
// stretches of the execution, then thaw one quiescence point at a time.
// Every variant must stay correct under every such schedule — this is the
// widest net the test suite casts over asynchronous interleavings.
#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::variant;

void run_with_freezes(const graph::digraph& g, variant algo,
                      std::uint64_t seed, double fraction) {
  core::random_staged_scheduler sched(seed, g.nodes(), fraction);
  core::config cfg;
  cfg.algo = algo;
  core::discovery_run run(g, cfg, sched);
  sched.arm(run.net());
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed) << "event cap exceeded";
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << "seed " << seed << ":\n" << rep.to_string();
}

using param = std::tuple<int /*variant*/, std::uint64_t /*seed*/>;

class FreezeSweep : public ::testing::TestWithParam<param> {};

TEST_P(FreezeSweep, RandomGraphStaysCorrectUnderFreezes) {
  const auto [vi, seed] = GetParam();
  const auto algo = static_cast<variant>(vi);
  const auto g = graph::random_weakly_connected(40, 80, seed * 7 + 1);
  run_with_freezes(g, algo, seed, 0.35);
}

TEST_P(FreezeSweep, TreeStaysCorrectUnderFreezes) {
  const auto [vi, seed] = GetParam();
  const auto algo = static_cast<variant>(vi);
  run_with_freezes(graph::directed_binary_tree(5), algo, seed, 0.5);
}

TEST_P(FreezeSweep, MultiComponentStaysCorrectUnderFreezes) {
  const auto [vi, seed] = GetParam();
  const auto algo = static_cast<variant>(vi);
  run_with_freezes(graph::multi_component(3, 10, 5, seed), algo, seed, 0.4);
}

std::string freeze_param_name(const ::testing::TestParamInfo<param>& info) {
  static const char* names[] = {"generic", "bounded", "adhoc"};
  return std::string(names[std::get<0>(info.param)]) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FreezeSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 4, 5, 6)),
    freeze_param_name);

TEST(FreezeAdversary, HeavyFreezeEverythingBlocked) {
  // Extreme case: every node frozen; progress happens only through the
  // staged thaw.  (fraction 1.0 blocks all senders.)
  const auto g = graph::random_weakly_connected(20, 30, 5);
  core::random_staged_scheduler sched(3, g.nodes(), 1.0);
  EXPECT_EQ(sched.blocked_count(), 20u);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sched.arm(run.net());
  run.wake_all();
  ASSERT_TRUE(run.run().completed);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(FreezeAdversary, ZeroFractionBlocksNobody) {
  const auto g = graph::directed_path(6);
  core::random_staged_scheduler sched(3, g.nodes(), 0.0);
  EXPECT_EQ(sched.blocked_count(), 0u);
}

}  // namespace
}  // namespace asyncrd
