// Randomized blocking adversary sweeps: whole nodes freeze for arbitrary
// stretches of the execution, then thaw one quiescence point at a time.
// Every variant must stay correct under every such schedule — this is the
// widest net the test suite casts over asynchronous interleavings.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/sweep.h"

namespace asyncrd {
namespace {

using core::variant;

void run_with_freezes(const graph::digraph& g, variant algo,
                      std::uint64_t seed, double fraction) {
  core::random_staged_scheduler sched(seed, g.nodes(), fraction);
  core::config cfg;
  cfg.algo = algo;
  core::discovery_run run(g, cfg, sched);
  sched.arm(run.net());
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed) << "event cap exceeded";
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << "seed " << seed << ":\n" << rep.to_string();
}

using param = std::tuple<int /*variant*/, std::uint64_t /*seed*/>;

class FreezeSweep : public ::testing::TestWithParam<param> {};

TEST_P(FreezeSweep, RandomGraphStaysCorrectUnderFreezes) {
  const auto [vi, seed] = GetParam();
  const auto algo = static_cast<variant>(vi);
  const auto g = graph::random_weakly_connected(40, 80, seed * 7 + 1);
  run_with_freezes(g, algo, seed, 0.35);
}

TEST_P(FreezeSweep, TreeStaysCorrectUnderFreezes) {
  const auto [vi, seed] = GetParam();
  const auto algo = static_cast<variant>(vi);
  run_with_freezes(graph::directed_binary_tree(5), algo, seed, 0.5);
}

TEST_P(FreezeSweep, MultiComponentStaysCorrectUnderFreezes) {
  const auto [vi, seed] = GetParam();
  const auto algo = static_cast<variant>(vi);
  run_with_freezes(graph::multi_component(3, 10, 5, seed), algo, seed, 0.4);
}

std::string freeze_param_name(const ::testing::TestParamInfo<param>& info) {
  static const char* names[] = {"generic", "bounded", "adhoc"};
  return std::string(names[std::get<0>(info.param)]) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FreezeSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 4, 5, 6)),
    freeze_param_name);

// The wide net: 3 variants x 16 seeds of freeze schedules, fanned across
// sim::parallel_sweep workers.  Each job is a fully independent simulation
// writing into its own slot; failures are reported afterwards in job order,
// so the output (and any failure message) is identical on 1 core or 16.
TEST(FreezeSweepParallel, WideSeedGridAllVariantsAllCores) {
  constexpr std::uint64_t kSeeds = 16;
  constexpr int kVariants = 3;
  struct outcome {
    bool completed = false;
    bool ok = false;
    std::string report;
  };
  std::vector<outcome> results(kSeeds * kVariants);

  const auto sw = sim::parallel_sweep(
      results.size(), [&](std::size_t job, std::size_t /*worker*/) {
        const auto algo = static_cast<variant>(job % kVariants);
        const std::uint64_t seed = 11 + job / kVariants;
        const auto g = graph::random_weakly_connected(40, 80, seed * 13 + 5);
        core::random_staged_scheduler sched(seed, g.nodes(), 0.35);
        core::config cfg;
        cfg.algo = algo;
        core::discovery_run run(g, cfg, sched);
        sched.arm(run.net());
        run.wake_all();
        outcome& o = results[job];
        o.completed = run.run().completed;
        if (!o.completed) return;
        const auto rep = core::check_final_state(run, g);
        o.ok = rep.ok();
        if (!o.ok) o.report = rep.to_string();
      });
  EXPECT_EQ(sw.jobs, results.size());
  EXPECT_GE(sw.workers, 1u);

  // Deterministic merge: assert in job-index order, never completion order.
  for (std::size_t job = 0; job < results.size(); ++job) {
    const outcome& o = results[job];
    EXPECT_TRUE(o.completed) << "job " << job << ": event cap exceeded";
    EXPECT_TRUE(o.ok) << "job " << job << ":\n" << o.report;
  }
}

TEST(FreezeAdversary, HeavyFreezeEverythingBlocked) {
  // Extreme case: every node frozen; progress happens only through the
  // staged thaw.  (fraction 1.0 blocks all senders.)
  const auto g = graph::random_weakly_connected(20, 30, 5);
  core::random_staged_scheduler sched(3, g.nodes(), 1.0);
  EXPECT_EQ(sched.blocked_count(), 20u);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sched.arm(run.net());
  run.wake_all();
  ASSERT_TRUE(run.run().completed);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(FreezeAdversary, ZeroFractionBlocksNobody) {
  const auto g = graph::directed_path(6);
  core::random_staged_scheduler sched(3, g.nodes(), 0.0);
  EXPECT_EQ(sched.blocked_count(), 0u);
}

}  // namespace
}  // namespace asyncrd
