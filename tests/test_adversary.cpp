// The lower-bound adversaries: Theorem 1's stalling adversary on directed
// binary trees and the sequential wake-up driver.
#include <gtest/gtest.h>

#include "common/bitmath.h"
#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

/// Runs the Generic algorithm on T(levels) under the Theorem 1 adversary;
/// returns total messages.
std::uint64_t adversarial_tree_run(std::size_t levels, bool check = true) {
  const auto g = graph::directed_binary_tree(levels);
  core::staged_release_scheduler sched(
      graph::binary_tree_internal_postorder(levels));
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sched.arm(run.net());
  run.wake_all();
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  if (check) {
    const auto rep = core::check_final_state(run, g);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
  }
  return run.statistics().total_messages();
}

TEST(AdversaryTree, AllInternalNodesReleased) {
  const std::size_t levels = 4;
  const auto g = graph::directed_binary_tree(levels);
  core::staged_release_scheduler sched(
      graph::binary_tree_internal_postorder(levels));
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sched.arm(run.net());
  run.wake_all();
  run.run();
  EXPECT_EQ(sched.released(),
            graph::binary_tree_internal_postorder(levels).size());
  EXPECT_TRUE(run.net().channels_empty());
}

TEST(AdversaryTree, Theorem1LowerBoundHolds) {
  // Theorem 1: on T(i) with n = 2^i - 1 the adversary forces at least
  // i * 2^(i-1) - 2 >= 0.5 n log n - 2 messages.
  for (std::size_t i = 2; i <= 9; ++i) {
    const double bound =
        static_cast<double>(i) * static_cast<double>(1ull << (i - 1)) - 2.0;
    const auto measured = adversarial_tree_run(i);
    EXPECT_GE(static_cast<double>(measured), bound) << "T(" << i << ")";
  }
}

TEST(AdversaryTree, StillWithinUpperBound) {
  // The adversary makes the algorithm pay, but Theorem 5's O(n log n)
  // upper bound must still hold.
  const std::size_t i = 9;
  const std::size_t n = (1u << i) - 1;
  const auto measured = adversarial_tree_run(i);
  EXPECT_LE(static_cast<double>(measured),
            8.0 * n_log_n(static_cast<double>(n)));
}

TEST(SequentialWakeup, DrivesAllNodesEventually) {
  const auto g = graph::random_weakly_connected(15, 10, 2);
  core::sequential_wakeup_scheduler sched(g.nodes());
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.net().wake(g.nodes().front());
  run.run();
  for (const node_id v : run.ids()) EXPECT_TRUE(run.net().is_awake(v));
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(SequentialWakeup, SkipsAlreadyAwakeNodes) {
  // Message-induced wakes must not confuse the driver.
  const auto g = graph::star_out(10);  // center wakes everyone via searches
  core::sequential_wakeup_scheduler sched(g.nodes());
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.net().wake(0);
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

}  // namespace
}  // namespace asyncrd
