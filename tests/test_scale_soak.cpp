// Scale checks and a randomized soak: large single runs stay within their
// asymptotic envelopes, and a long randomized sequence of mixed operations
// (partial executions, probes, dynamic joins and links) never violates the
// spec at any quiescence point.
#include <gtest/gtest.h>

#include "asyncrd.h"

namespace asyncrd {
namespace {

TEST(Scale, TenThousandNodesAdhoc) {
  const std::size_t n = 10'000;
  const auto g = graph::random_weakly_connected(n, n, 99);
  const auto s = core::run_discovery(g, core::variant::adhoc, 1);
  ASSERT_TRUE(s.completed);
  EXPECT_EQ(s.leaders.size(), 1u);
  // O(n alpha): stay under a generous linear envelope.
  EXPECT_LE(s.messages, 16u * n);
}

TEST(Scale, TenThousandNodesGenericWithinNLogN) {
  const std::size_t n = 10'000;
  const auto g = graph::random_weakly_connected(n, n, 7);
  const auto s = core::run_discovery(g, core::variant::generic, 1);
  ASSERT_TRUE(s.completed);
  EXPECT_EQ(s.leaders.size(), 1u);
  EXPECT_LE(static_cast<double>(s.messages),
            6.0 * n_log_n(static_cast<double>(n)));
}

TEST(Scale, DeepPathDoesNotOverflowAnything) {
  // 20k-node directed path: maximal discovery chain depth; exercises the
  // iterative (non-recursive) paths through the engine and simulator.
  const auto g = graph::directed_path(20'000);
  const auto s = core::run_discovery(g, core::variant::bounded, 0);
  ASSERT_TRUE(s.completed);
  EXPECT_EQ(s.leaders.size(), 1u);
}

TEST(Soak, MixedOperationsLongSequence) {
  rng r(20260708);
  graph::digraph g = graph::random_weakly_connected(25, 30, 1);
  sim::random_delay_scheduler sched(5);
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  node_id next_id = 1000;
  for (int step = 0; step < 120; ++step) {
    const auto ids = run.ids();
    switch (r.below(4)) {
      case 0: {  // dynamic node join
        const node_id peer = ids[static_cast<std::size_t>(r.below(ids.size()))];
        run.add_node_dynamic(next_id, {peer});
        g.add_edge(next_id, peer);
        ++next_id;
        break;
      }
      case 1: {  // dynamic link
        const node_id a = ids[static_cast<std::size_t>(r.below(ids.size()))];
        const node_id b = ids[static_cast<std::size_t>(r.below(ids.size()))];
        if (a != b) {
          run.add_link_dynamic(a, b);
          g.add_edge(a, b);
        }
        break;
      }
      case 2: {  // probe from a random node
        run.probe(ids[static_cast<std::size_t>(r.below(ids.size()))]);
        break;
      }
      case 3: {  // partial execution slice before the next operation
        run.net().run_to_quiescence(/*max_events=*/25);
        break;
      }
    }
    if (step % 10 == 9) {
      // Settle fully and check the complete spec.
      const auto res = run.run();
      ASSERT_TRUE(res.completed) << "step " << step;
      const auto rep = core::check_final_state(run, g);
      ASSERT_TRUE(rep.ok()) << "step " << step << ":\n" << rep.to_string();
    }
  }
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(Soak, RepeatedRegroupWaves) {
  // Waves of failure and regroup: kill a third, regroup, re-add fresh
  // nodes, repeat.  Models the paper's "repairing damaged peer to peer
  // systems" loop.
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  rng r(31337);

  auto g = graph::random_weakly_connected(45, 60, 2);
  auto sched = std::make_unique<sim::random_delay_scheduler>(1);
  auto run = std::make_unique<core::discovery_run>(g, cfg, *sched);
  run->wake_all();
  run->run();

  for (int wave = 0; wave < 4; ++wave) {
    const auto ids = run->ids();
    std::set<node_id> removed;
    while (removed.size() < ids.size() / 3)
      removed.insert(ids[static_cast<std::size_t>(r.below(ids.size()))]);

    auto next_sched =
        std::make_unique<sim::random_delay_scheduler>(100 + wave);
    auto next =
        core::regroup_after_removal(*run, removed, cfg, *next_sched);
    const auto survivors = core::surviving_knowledge(*run, removed);
    const auto rep = core::check_final_state(*next, survivors);
    ASSERT_TRUE(rep.ok()) << "wave " << wave << ":\n" << rep.to_string();

    run = std::move(next);
    sched = std::move(next_sched);
    // Refill with newcomers so later waves have material.
    for (int j = 0; j < 8; ++j) {
      const auto cur = run->ids();
      const node_id peer = cur[static_cast<std::size_t>(r.below(cur.size()))];
      run->add_node_dynamic(static_cast<node_id>(5000 + wave * 100 + j),
                            {peer});
      run->run();
    }
  }
  // 45 initial - 4 waves of 1/3 attrition + 8 rejoins per wave.
  EXPECT_GE(run->ids().size(), 25u);
}

TEST(LoadObserver, CountsMatchGlobalStats) {
  const auto g = graph::random_weakly_connected(30, 40, 3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sim::load_observer load;
  run.net().set_observer(&load);
  run.wake_all();
  run.run();
  std::uint64_t sent = 0, received = 0;
  for (const node_id v : run.ids()) {
    sent += load.sent_by(v);
    received += load.received_by(v);
  }
  EXPECT_EQ(sent, run.statistics().total_messages());
  EXPECT_EQ(received, run.statistics().total_messages());
  EXPECT_NE(load.hottest(), invalid_node);
  EXPECT_GE(load.max_load(), load.load_of(run.leaders().front()) > 0
                                 ? load.load_of(run.ids().front())
                                 : 0);
}

TEST(UmbrellaHeader, CompilesAndExposesEverything) {
  // Touch one symbol from each sub-library through the umbrella header.
  EXPECT_EQ(uf::inverse_ackermann(64, 64), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  overlay::ring_overlay ring({1, 2, 3});
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(core::to_string(core::variant::generic), "generic");
  EXPECT_TRUE(graph::directed_path(3).is_weakly_connected());
}

}  // namespace
}  // namespace asyncrd
