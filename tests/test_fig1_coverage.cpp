// Figure 1 coverage: a curated set of workloads must exercise EVERY arrow
// of the state diagram — evidence that the test suite reaches each
// protocol corner, not just the happy path.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/trace.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::status_t;
using core::transition_recorder;

TEST(Fig1Coverage, EveryDiagramEdgeIsExercised) {
  transition_recorder rec;

  // Random asynchronous duels: explore/wait/conquered/conqueror/passive
  // cycles, merge failures, passive re-conquests.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    core::run_discovery(graph::random_weakly_connected(50, 100, seed),
                        core::variant::generic, seed, &rec);
    core::run_discovery(graph::multi_component(3, 12, 8, seed),
                        core::variant::adhoc, seed, &rec);
  }
  // Bounded termination, both flavors: out of EXPLORE (after draining the
  // last query) and straight out of a final conquest.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    core::run_discovery(graph::random_weakly_connected(30, 30, seed),
                        core::variant::bounded, seed, &rec);
    core::run_discovery(graph::star_in(20), core::variant::bounded, seed,
                        &rec);
    core::run_discovery(graph::directed_binary_tree(4),
                        core::variant::bounded, seed, &rec);
  }

  EXPECT_TRUE(rec.illegal_edges().empty());
  for (const auto& e : transition_recorder::legal_edges()) {
    EXPECT_TRUE(rec.edges().contains(e))
        << "diagram edge never exercised: " << core::edge_to_string(e);
  }
}

TEST(Fig1Coverage, PassiveReconquestPathObserved) {
  // The subtlest loop: wait -> conquered -> passive -> conquered ->
  // inactive (a node whose first merge offer fails and whose second
  // succeeds).  Multi-leader duels on dense graphs produce it.
  transition_recorder rec;
  for (std::uint64_t seed = 1; seed <= 30 &&
                               !rec.edges().contains(
                                   {status_t::conquered, status_t::passive});
       ++seed) {
    core::run_discovery(graph::random_weakly_connected(60, 200, seed * 3),
                        core::variant::generic, seed, &rec);
  }
  EXPECT_TRUE(rec.edges().contains({status_t::conquered, status_t::passive}));
  EXPECT_TRUE(rec.edges().contains({status_t::passive, status_t::conquered}));
}

}  // namespace
}  // namespace asyncrd
