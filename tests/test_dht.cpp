// The message-passing Chord DHT (overlay/dht.h): distributed lookups,
// late joins with ring healing, and the discovery -> DHT pipeline.
#include <gtest/gtest.h>

#include "common/bitmath.h"
#include "common/rng.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "overlay/dht.h"
#include "overlay/ring.h"

namespace asyncrd {
namespace {

using overlay::dht_node;
using overlay::key_t;

std::vector<node_id> spaced_census(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  std::set<node_id> ids;
  while (ids.size() < n) ids.insert(static_cast<node_id>(r.next()));
  return {ids.begin(), ids.end()};
}

dht_node& at(sim::network& net, node_id v) {
  auto* p = dynamic_cast<dht_node*>(net.find(v));
  EXPECT_NE(p, nullptr);
  return *p;
}

TEST(Dht, FullCensusNodesAgreeWithLocalRing) {
  const auto census = spaced_census(40, 3);
  sim::unit_delay_scheduler sched;
  auto net = overlay::make_dht_network(census, sched);
  net->run();
  const overlay::ring_overlay ring(census);
  for (const node_id v : census) {
    EXPECT_EQ(at(*net, v).successor(), ring.successor(v));
    EXPECT_EQ(at(*net, v).predecessor(), ring.predecessor(v));
  }
}

TEST(Dht, DistributedLookupsLandOnTheRightHome) {
  const auto census = spaced_census(64, 7);
  sim::random_delay_scheduler sched(9);
  auto net = overlay::make_dht_network(census, sched);
  net->run();
  const overlay::ring_overlay ring(census);

  rng r(21);
  std::vector<std::pair<node_id, key_t>> issued;
  for (int i = 0; i < 80; ++i) {
    const node_id from = census[static_cast<std::size_t>(r.below(census.size()))];
    const key_t key = static_cast<key_t>(r.next());
    at(*net, from).start_lookup(*net, key);
    issued.emplace_back(from, key);
  }
  net->run();

  // Asynchrony reorders completions; match results to requests by key.
  for (const auto& [from, key] : issued) {
    const auto& results = at(*net, from).lookups();
    const auto it =
        std::find_if(results.begin(), results.end(),
                     [key = key](const auto& res) { return res.key == key; });
    ASSERT_NE(it, results.end()) << "lookup lost at node " << from;
    EXPECT_EQ(it->home, ring.successor_of(key));
  }
}

TEST(Dht, LookupHopsAreLogarithmic) {
  const auto census = spaced_census(256, 5);
  sim::unit_delay_scheduler sched;
  auto net = overlay::make_dht_network(census, sched);
  net->run();
  rng r(4);
  std::size_t worst = 0;
  for (int i = 0; i < 60; ++i) {
    const node_id from = census[static_cast<std::size_t>(r.below(census.size()))];
    at(*net, from).start_lookup(*net, static_cast<key_t>(r.next()));
  }
  net->run();
  for (const node_id v : census)
    for (const auto& res : at(*net, v).lookups())
      worst = std::max(worst, res.hops);
  EXPECT_LE(worst, 2 * ceil_log2(census.size()) + 2);
  EXPECT_GT(worst, 1u);  // distributed, not oracle
}

TEST(Dht, LateJoinHealsTheRing) {
  auto census = spaced_census(32, 11);
  sim::unit_delay_scheduler sched;
  auto net = overlay::make_dht_network(census, sched, /*maintenance=*/4);
  net->run();

  // A newcomer knowing a single member (as §6's dynamic joiner would after
  // probing its discovery leader).
  rng r(2);
  node_id fresh = static_cast<node_id>(r.next());
  while (std::find(census.begin(), census.end(), fresh) != census.end())
    fresh = static_cast<node_id>(r.next());
  net->add_node(fresh, std::make_unique<dht_node>(fresh, census.front(),
                                                  /*maintenance=*/12));
  net->wake(fresh);
  net->run();

  ASSERT_TRUE(at(*net, fresh).joined());
  // The healed ring must place the newcomer between its true neighbors.
  census.push_back(fresh);
  const overlay::ring_overlay ring(census);
  EXPECT_EQ(at(*net, fresh).successor(), ring.successor(fresh));
  EXPECT_EQ(at(*net, ring.predecessor(fresh)).successor(), fresh);
  EXPECT_EQ(at(*net, fresh).predecessor(), ring.predecessor(fresh));
  EXPECT_EQ(at(*net, ring.successor(fresh)).predecessor(), fresh);
}

TEST(Dht, LookupsIssuedBeforeJoinCompleteAfterwards) {
  const auto census = spaced_census(16, 13);
  sim::unit_delay_scheduler sched;
  auto net = overlay::make_dht_network(census, sched, 2);
  net->run();
  const node_id fresh = 1234567;
  net->add_node(fresh, std::make_unique<dht_node>(fresh, census.front(), 8));
  at(*net, fresh).start_lookup(*net, 42);  // queued: not yet woken/joined
  net->wake(fresh);
  net->run();
  ASSERT_EQ(at(*net, fresh).lookups().size(), 1u);
  // The queued lookup fires the moment the join completes; the ring may
  // still be healing, so either the pre-join or post-join home is a valid
  // linearization.
  std::vector<node_id> grown = census;
  grown.push_back(fresh);
  const node_id home = at(*net, fresh).lookups().front().home;
  EXPECT_TRUE(home == overlay::ring_overlay(grown).successor_of(42) ||
              home == overlay::ring_overlay(census).successor_of(42))
      << "home " << home;
}

TEST(Dht, PipelineDiscoveryToDistributedLookup) {
  // discovery on a knowledge graph -> leader census -> DHT network ->
  // distributed lookups: the full story of the paper's introduction.
  const auto g = graph::random_weakly_connected(48, 70, 31);
  sim::random_delay_scheduler dsched(2);
  core::config cfg;
  core::discovery_run run(g, cfg, dsched);
  run.wake_all();
  run.run();
  const auto& done = run.at(run.leaders().front()).done();
  const std::vector<node_id> census(done.begin(), done.end());

  sim::random_delay_scheduler osched(3);
  auto net = overlay::make_dht_network(census, osched);
  net->run();
  at(*net, census[5]).start_lookup(*net, 777);
  net->run();
  ASSERT_EQ(at(*net, census[5]).lookups().size(), 1u);
  EXPECT_EQ(at(*net, census[5]).lookups().front().home,
            overlay::ring_overlay(census).successor_of(777));
}

TEST(Dht, SingleNodeOwnsEverything) {
  sim::unit_delay_scheduler sched;
  auto net = overlay::make_dht_network({42}, sched);
  net->run();
  at(*net, 42).start_lookup(*net, 0xDEADBEEF);
  net->run();
  ASSERT_EQ(at(*net, 42).lookups().size(), 1u);
  EXPECT_EQ(at(*net, 42).lookups().front().home, 42u);
  EXPECT_EQ(at(*net, 42).lookups().front().hops, 0u);
}

TEST(Dht, MaintenanceTrafficQuiesces) {
  // Tick budgets guarantee quiescence even with maintenance enabled.
  const auto census = spaced_census(24, 17);
  sim::unit_delay_scheduler sched;
  auto net = overlay::make_dht_network(census, sched, /*maintenance=*/16);
  const auto r = net->run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(net->channels_empty());
}

}  // namespace
}  // namespace asyncrd
