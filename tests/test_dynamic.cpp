// §6: node and link additions while (and after) the Ad-hoc algorithm runs.
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "test_util.h"

namespace asyncrd {
namespace {

using core::variant;

TEST(Dynamic, LinkAdditionMergesTwoComponents) {
  // Two settled components; a new link (u -> v) across them must trigger a
  // report, re-exploration, and a merge into a single leader.
  graph::digraph g = graph::multi_component(2, 10, 6, 21);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  EXPECT_EQ(run.leaders().size(), 2u);

  run.add_link_dynamic(3, 13);  // crosses the components
  g.add_edge(3, 13);
  run.run();
  EXPECT_EQ(run.leaders().size(), 1u);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Dynamic, NodeAdditionJoinsComponent) {
  graph::digraph g = graph::random_weakly_connected(15, 15, 8);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  // "there is no difference between a node joining the system at a certain
  // time and a node that wakes up at that time."
  run.add_node_dynamic(100, {3, 7});
  g.add_edge(100, 3);
  g.add_edge(100, 7);
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(Dynamic, ManySequentialAdditionsStaySafe) {
  graph::digraph g = graph::random_weakly_connected(10, 10, 30);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  rng r(55);
  node_id next_id = 200;
  for (int i = 0; i < 20; ++i) {
    if (r.chance(0.5)) {
      // new node knowing two random existing nodes
      const auto ids = run.ids();
      const node_id a = ids[static_cast<std::size_t>(r.below(ids.size()))];
      const node_id b = ids[static_cast<std::size_t>(r.below(ids.size()))];
      run.add_node_dynamic(next_id, {a, b});
      g.add_edge(next_id, a);
      g.add_edge(next_id, b);
      ++next_id;
    } else {
      const auto ids = run.ids();
      const node_id a = ids[static_cast<std::size_t>(r.below(ids.size()))];
      const node_id b = ids[static_cast<std::size_t>(r.below(ids.size()))];
      if (a != b) {
        run.add_link_dynamic(a, b);
        g.add_edge(a, b);
      }
    }
    run.run();
    const auto rep = core::check_final_state(run, g);
    ASSERT_TRUE(rep.ok()) << "after addition " << i << ":\n" << rep.to_string();
  }
}

TEST(Dynamic, LinkAdditionDuringExecutionIsSafe) {
  // Inject links while the initial discovery is still in flight.
  graph::digraph g = graph::multi_component(2, 12, 6, 99);
  sim::random_delay_scheduler sched(7);
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  // Run a bounded slice of events, then add the cross link mid-flight.
  run.net().run_to_quiescence(/*max_events=*/40);
  run.add_link_dynamic(2, 17);
  g.add_edge(2, 17);
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Dynamic, DuplicateLinkAdditionIsFree) {
  graph::digraph g;
  g.add_edge(0, 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto before = run.statistics().total_messages();
  run.add_link_dynamic(0, 1);  // edge already existed in E0
  run.run();
  EXPECT_EQ(run.statistics().total_messages(), before);
}

TEST(Dynamic, IncrementalCostBeatsFromScratch) {
  // Theorem 8's point: absorbing n_hat additions costs far less than
  // re-running discovery on the grown network.
  const std::size_t n = 120;
  graph::digraph g = graph::random_weakly_connected(n, n, 77);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto base_msgs = run.statistics().total_messages();

  graph::digraph grown = g;
  rng r(31);
  for (int i = 0; i < 12; ++i) {
    const node_id fresh = static_cast<node_id>(1000 + i);
    const node_id peer = static_cast<node_id>(r.below(n));
    run.add_node_dynamic(fresh, {peer});
    grown.add_edge(fresh, peer);
    run.run();
  }
  const auto incremental = run.statistics().total_messages() - base_msgs;
  const auto rep = core::check_final_state(run, grown);
  ASSERT_TRUE(rep.ok()) << rep.to_string();

  const auto scratch = core::run_discovery(grown, variant::adhoc, 0);
  EXPECT_LT(incremental, scratch.messages / 2)
      << "incremental " << incremental << " vs scratch " << scratch.messages;
}

TEST(Dynamic, GenericVariantAlsoAbsorbsAdditions) {
  // §6 is stated for Ad-hoc, but the report machinery is variant-agnostic;
  // the Generic algorithm must stay correct under additions too.
  graph::digraph g = graph::random_weakly_connected(12, 12, 3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::generic;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  run.add_node_dynamic(500, {4});
  g.add_edge(500, 4);
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

}  // namespace
}  // namespace asyncrd
