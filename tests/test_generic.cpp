// The Generic (Oblivious) algorithm: detailed behavior tests plus a broad
// property sweep over topology x size x schedule seeds.
#include <gtest/gtest.h>

#include "common/bitmath.h"
#include "core/adversary.h"
#include "graph/topology.h"
#include "test_util.h"

namespace asyncrd {
namespace {

using core::variant;
using testing::run_instrumented;

// ---------------------------------------------------------------------------
// micro-scenarios
// ---------------------------------------------------------------------------

TEST(Generic, TwoNodesOneDirectedEdgeBothOrders) {
  // The discovery dance: 0 knows 1.  Whoever has the higher id must win.
  {
    graph::digraph g;
    g.add_edge(0, 1);  // lower knows higher
    sim::unit_delay_scheduler sched;
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    EXPECT_EQ(run.leaders(), (std::vector<node_id>{1}));
    EXPECT_EQ(run.at(0).next(), 1u);
  }
  {
    graph::digraph g;
    g.add_edge(1, 0);  // higher knows lower
    sim::unit_delay_scheduler sched;
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    EXPECT_EQ(run.leaders(), (std::vector<node_id>{1}));
    EXPECT_EQ(run.at(0).next(), 1u);
  }
}

TEST(Generic, MutualEdgePairAgrees) {
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto r = run_instrumented(g, variant::generic, 0);
  EXPECT_EQ(r.summary.leaders.size(), 1u);
}

TEST(Generic, LeaderDoneSetIsExactlyComponent) {
  const auto g = graph::random_weakly_connected(30, 30, 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto leaders = run.leaders();
  ASSERT_EQ(leaders.size(), 1u);
  EXPECT_EQ(run.at(leaders.front()).done().size(), 30u);
  EXPECT_TRUE(run.at(leaders.front()).more().empty());
  EXPECT_TRUE(run.at(leaders.front()).unexplored().empty());
}

TEST(Generic, AllNonLeadersPointDirectlyAtLeader) {
  // Property (3) of full resource discovery: direct knowledge of the leader.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::random_weakly_connected(25, 50, seed);
    sim::random_delay_scheduler sched(seed);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    const auto leaders = run.leaders();
    ASSERT_EQ(leaders.size(), 1u) << "seed " << seed;
    for (const node_id v : run.ids())
      if (v != leaders.front())
        EXPECT_EQ(run.at(v).next(), leaders.front()) << "seed " << seed;
  }
}

TEST(Generic, PhaseNeverExceedsLogN) {
  // The phase plays the role of a union-by-rank rank: "the maximum phase of
  // any leader is log n" (Lemma 5.8's proof).
  const std::size_t n = 128;
  const auto g = graph::random_weakly_connected(n, 2 * n, 77);
  sim::random_delay_scheduler sched(5);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  for (const node_id v : run.ids())
    EXPECT_LE(run.at(v).phase(), ceil_log2(n) + 1) << "node " << v;
}

TEST(Generic, SingletonComponentIsItsOwnLeader) {
  graph::digraph g;
  g.add_node(42);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  EXPECT_EQ(run.leaders(), (std::vector<node_id>{42}));
  EXPECT_EQ(run.statistics().total_messages(), 0u);
}

TEST(Generic, StaggeredWakeupsStillConverge) {
  // No global initialization time: wake nodes one quiescence apart.
  const auto g = graph::random_weakly_connected(20, 25, 3);
  auto order = g.nodes();
  core::sequential_wakeup_scheduler sched(order);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  // Wake only the first node; the scheduler staggers the rest.
  run.net().wake(order.front());
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Generic, HighestIdAlwaysSurvivesAsLeaderOnCliques) {
  for (std::size_t n : {2u, 3u, 5u, 9u}) {
    const auto g = graph::clique(n);
    sim::random_delay_scheduler sched(n);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    // On a clique the max id can never be conquered before conquering:
    // ties in phase resolve by id and every node can reach it.
    const auto leaders = run.leaders();
    ASSERT_EQ(leaders.size(), 1u);
  }
}

TEST(Generic, MessageCountWithinNLogNConstant) {
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const auto g = graph::random_weakly_connected(n, n, n);
    const auto r = run_instrumented(g, variant::generic, 1);
    const double cap = 8.0 * n_log_n(static_cast<double>(n)) + 64;
    EXPECT_LE(static_cast<double>(r.summary.messages), cap) << "n=" << n;
  }
}

TEST(Generic, BitComplexityWithinTheorem7Envelope) {
  // O(|E0| log n + n log^2 n) with an explicit audit constant.
  for (const std::size_t n : {128u, 512u}) {
    const auto g = graph::random_weakly_connected(n, 4 * n, n + 9);
    const auto r = run_instrumented(g, variant::generic, 2);
    const double log_n = static_cast<double>(ceil_log2(n));
    const double cap =
        16.0 * (static_cast<double>(g.edge_count()) * log_n +
                static_cast<double>(n) * log_n * log_n) + 1024;
    EXPECT_LE(static_cast<double>(r.summary.bits), cap) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// property sweep: topology family x n x seed
// ---------------------------------------------------------------------------

enum class family { random_sparse, random_dense, path, star_in, star_out,
                    tree, pref_attach, erdos, hypercube, grid, dag, bowtie };

graph::digraph make_family(family f, std::size_t n, std::uint64_t seed) {
  switch (f) {
    case family::random_sparse:
      return graph::random_weakly_connected(n, n / 2, seed);
    case family::random_dense:
      return graph::random_weakly_connected(n, 4 * n, seed);
    case family::path: return graph::directed_path(n);
    case family::star_in: return graph::star_in(n);
    case family::star_out: return graph::star_out(n);
    case family::tree:
      return graph::directed_binary_tree(ceil_log2(n + 1));
    case family::pref_attach:
      return graph::preferential_attachment(n, 3, seed);
    case family::erdos: return graph::erdos_renyi_connected(n, 4.0 / static_cast<double>(n), seed);
    case family::hypercube: return graph::hypercube(ceil_log2(n + 1), seed);
    case family::grid: return graph::grid(n / 8 + 1, 8);
    case family::dag: return graph::layered_dag(n / 8 + 1, 8, 2, seed);
    case family::bowtie: return graph::bowtie(n / 2 + 1);
  }
  return {};
}

const char* family_name(family f) {
  switch (f) {
    case family::random_sparse: return "random_sparse";
    case family::random_dense: return "random_dense";
    case family::path: return "path";
    case family::star_in: return "star_in";
    case family::star_out: return "star_out";
    case family::tree: return "tree";
    case family::pref_attach: return "pref_attach";
    case family::erdos: return "erdos";
    case family::hypercube: return "hypercube";
    case family::grid: return "grid";
    case family::dag: return "dag";
    case family::bowtie: return "bowtie";
  }
  return "?";
}

using sweep_param = std::tuple<family, std::size_t, std::uint64_t>;

class GenericSweep : public ::testing::TestWithParam<sweep_param> {};

TEST_P(GenericSweep, SafetyLivenessBoundsAndFig1) {
  const auto [f, n, seed] = GetParam();
  const auto g = make_family(f, n, seed);
  SCOPED_TRACE(std::string(family_name(f)) + " n=" + std::to_string(n) +
               " seed=" + std::to_string(seed));
  run_instrumented(g, variant::generic, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, GenericSweep,
    ::testing::Combine(
        ::testing::Values(family::random_sparse, family::random_dense,
                          family::path, family::star_in, family::star_out,
                          family::tree, family::pref_attach, family::erdos,
                          family::hypercube, family::grid, family::dag,
                          family::bowtie),
        ::testing::Values(8, 33, 90),
        ::testing::Values(1, 7, 1234)),
    [](const ::testing::TestParamInfo<sweep_param>& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace asyncrd
