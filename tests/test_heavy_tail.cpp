// Heavy-tailed delivery delays: the model only promises *finite* delays,
// so correctness and the message-count bounds must be delay-distribution
// independent.  (Message counts may differ per schedule; the caps may
// not.)
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

TEST(HeavyTail, SamplerProducesTailAndFloor) {
  sim::heavy_tail_delay_scheduler sched(7);
  sim::sim_time max_seen = 0;
  std::uint64_t small = 0;
  const int draws = 20'000;
  for (int i = 0; i < draws; ++i) {
    const auto d = sched.delay(0, 1, core::query_msg(1));
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, 100'000u);
    max_seen = std::max(max_seen, d);
    if (d <= 3) ++small;
  }
  EXPECT_GT(max_seen, 100u);               // the tail is real
  EXPECT_GT(small, draws / 2u);            // but most messages are fast
}

class HeavyTailSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeavyTailSweep, AllVariantsStayCorrect) {
  const std::uint64_t seed = GetParam();
  const auto g = graph::random_weakly_connected(35, 70, seed * 11 + 2);
  for (const auto v : {core::variant::generic, core::variant::bounded,
                       core::variant::adhoc}) {
    sim::heavy_tail_delay_scheduler sched(seed);
    core::config cfg;
    cfg.algo = v;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    const auto r = run.run();
    ASSERT_TRUE(r.completed);
    const auto rep = core::check_final_state(run, g);
    EXPECT_TRUE(rep.ok()) << core::to_string(v) << " seed " << seed << ":\n"
                          << rep.to_string();
    for (const auto& row : core::check_message_bounds(run.statistics(),
                                                      g.node_count(), v)) {
      EXPECT_TRUE(row.ok()) << row.name << " under heavy-tail delays";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavyTailSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(HeavyTail, ExtremeTailStillQuiesces) {
  // alpha just above 1: very heavy tail, stragglers up to the cap.
  const auto g = graph::random_weakly_connected(25, 40, 3);
  sim::heavy_tail_delay_scheduler sched(5, /*tail_alpha=*/1.05);
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(core::check_final_state(run, g).ok());
}

}  // namespace
}  // namespace asyncrd
