// The verification layer itself: it must flag broken outcomes, not just
// bless correct ones.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

TEST(Checker, FlagsSleepingNodes) {
  const auto g = graph::directed_path(4);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  // Wake only node 0; 1..3 are woken transitively by searches — but node 3
  // receives nothing if we never run.  Run nothing at all:
  const auto rep = core::check_final_state(run, g);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("never woke up"), std::string::npos);
}

TEST(Checker, FlagsMultipleLeaders) {
  // Two isolated nodes reported as one component: two leaders detected.
  graph::digraph g;
  g.add_node(0);
  g.add_node(1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto rep =
      core::check_final_state(run, {{0, 1}});  // lie about the components
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("2 leaders"), std::string::npos);
}

TEST(Checker, AcceptsHonestRun) {
  const auto g = graph::random_weakly_connected(20, 20, 6);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  EXPECT_TRUE(core::check_final_state(run, g).ok());
}

TEST(Checker, MessageBoundRowsCoverAllLemmas) {
  sim::stats st;
  st.set_id_bits(8);
  const auto rows = core::check_message_bounds(st, 100, core::variant::generic);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_TRUE(row.ok());  // zero traffic: all ok
}

TEST(Checker, AdhocConquerCapIsZero) {
  sim::stats st;
  st.set_id_bits(8);
  st.record(core::conquer_msg(1, 1));
  const auto rows = core::check_message_bounds(st, 100, core::variant::adhoc);
  bool found = false;
  for (const auto& row : rows) {
    if (row.name.find("conquer") != std::string::npos) {
      found = true;
      EXPECT_FALSE(row.ok());  // any conquer message violates the Ad-hoc cap
    }
  }
  EXPECT_TRUE(found);
}

TEST(Checker, LivenessMonitorQuietOnCorrectRun) {
  const auto g = graph::random_weakly_connected(15, 20, 8);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  core::liveness_monitor mon(run, g.weak_components());
  run.net().set_observer(&mon);
  run.wake_all();
  run.run();
  EXPECT_TRUE(mon.ok());
}

TEST(Checker, ReportToStringListsEachViolation) {
  core::check_report rep;
  rep.violations = {"a", "b"};
  EXPECT_EQ(rep.to_string(), "a\nb\n");
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace asyncrd
