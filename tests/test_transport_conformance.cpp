// Transport conformance battery: the reliable-link ARQ must rebuild the
// paper's reliable-FIFO contract (§1.2) over EVERY driver that implements
// the sim::transport seam.  The same assertions run against both
// implementations:
//
//   * sim::network with a seeded fault_plan (virtual time, deterministic
//     chaos) — the configuration every chaos test and bench runs;
//   * net::udp_transport over two real loopback sockets (wall-clock tick
//     timers, software fault injection) — the service-mode configuration
//     (src/net/node_host.h) with the discovery engine removed, so a
//     conformance failure points at the transport, not the algorithm.
//
// Battery: in-order release under drops + duplicates (both directions on a
// crossing channel pair), duplicate suppression accounting, recovery after
// a total outage/blackhole, and drained-protocol stats (all_acked, zero
// outstanding).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/messages.h"
#include "net/clock.h"
#include "net/udp.h"
#include "net/udp_transport.h"
#include "sim/network.h"
#include "sim/reliable_link.h"
#include "sim/scheduler.h"
#include "sim/wire.h"

namespace asyncrd {
namespace {

/// Both harnesses carry core::search_msg frames whose `initiator` field is
/// the test's sequence value: the sim driver delivers the struct, the UDP
/// driver delivers the decoded-on-arrival wire_msg, and this reads the
/// value from either representation.
std::uint64_t value_of(const sim::message& m) {
  if ((m.dispatch_tag() & sim::wire::wire_bit) != 0) {
    const auto& w = static_cast<const sim::wire_msg&>(m);
    sim::wire::reader r(w.payload(), w.payload_size());
    return r.varint();  // initiator is the first field
  }
  return static_cast<const core::search_msg&>(m).initiator;
}

sim::message_ptr test_payload(std::uint64_t value) {
  return sim::make_message<core::search_msg>(static_cast<node_id>(value), 1,
                                             0, false);
}

using received_log = std::vector<std::pair<node_id, std::uint64_t>>;

// ---------------------------------------------------------------------------
// Harness 1: simulator network + fault plan
// ---------------------------------------------------------------------------

class sink_process final : public sim::process {
 public:
  explicit sink_process(received_log& log) : log_(&log) {}
  void on_wake(sim::context&) override {}
  void on_message(sim::context&, node_id from,
                  const sim::message_ptr& m) override {
    log_->emplace_back(from, value_of(*m));
  }

 private:
  received_log* log_;
};

class sim_harness {
 public:
  explicit sim_harness(const sim::fault_plan& plan)
      : net_(sched_), arq_(net_) {
    net_.add_node(0, std::make_unique<sink_process>(at_[0]));
    net_.add_node(1, std::make_unique<sink_process>(at_[1]));
    net_.set_fault_plan(plan);
    net_.set_link_adapter(&arq_);
    net_.wake(0);
    net_.wake(1);
    net_.run_to_quiescence();
  }

  void send(node_id from, node_id to, std::uint64_t value) {
    arq_.app_send(from, to, test_payload(value));
  }

  /// Virtual time: one run() drains everything, retransmit timers included
  /// (a timer firing with nothing unacked does not re-arm).
  bool drive() {
    net_.run();
    return arq_.all_acked();
  }

  const received_log& received(node_id at) const { return at_[at]; }
  sim::reliable_link_stats stats() const { return arq_.stats(); }
  const sim::reliable_link_layer& arq() const { return arq_; }

 private:
  sim::unit_delay_scheduler sched_;
  sim::network net_;
  sim::reliable_link_layer arq_;
  received_log at_[2];
};

// ---------------------------------------------------------------------------
// Harness 2: two UDP loopback endpoints, manually pumped
// ---------------------------------------------------------------------------

class udp_harness {
 public:
  explicit udp_harness(const net::udp_transport::fault_profile& faults) {
    for (int side = 0; side < 2; ++side) {
      sock_[side].bind_loopback();
      tp_[side].emplace(sock_[side], /*seed=*/7);
      arq_[side].emplace(*tp_[side]);
    }
    for (int side = 0; side < 2; ++side) {
      const int other = 1 - side;
      tp_[side]->set_adapter(&*arq_[side]);
      tp_[side]->set_frame_hooks(&core::wire::validate_frame,
                                 &core::wire::tag_name);
      tp_[side]->set_local(
          [side](node_id v) { return v == static_cast<node_id>(side); });
      tp_[side]->set_route([this, other](node_id) {
        return net::loopback(sock_[other].port());
      });
      tp_[side]->set_deliver(
          [this, side](node_id, node_id from, const sim::message_ptr& m) {
            at_[side].emplace_back(from, value_of(*m));
          });
      tp_[side]->set_faults(faults);
    }
  }

  /// Sends ride as real wire frames — the UDP data plane only transports
  /// encoded datagrams (net/envelope.h), exactly like service mode.
  void send(node_id from, node_id to, std::uint64_t value) {
    const sim::message_ptr inner = test_payload(value);
    std::vector<std::uint8_t> frame;
    core::wire::codec().encode[inner->dispatch_tag()](*inner, frame);
    arq_[from]->app_send(
        from, to,
        sim::make_message<sim::wire_msg>(*inner, frame.data(), frame.size()));
  }

  void pump() {
    for (int side = 0; side < 2; ++side) {
      tp_[side]->advance_to(clock_.ticks());
      net::endpoint from;
      for (;;) {
        const std::ptrdiff_t got =
            sock_[side].recv_from(from, rx_, sizeof(rx_));
        if (got < 0) break;
        tp_[side]->on_datagram(rx_, static_cast<std::size_t>(got));
      }
    }
  }

  /// Wall clock: pump both endpoints until the protocol drains or 30s pass
  /// (generous; a healthy run drains in well under a second).
  bool drive() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      pump();
      if (arq_[0]->all_acked() && arq_[1]->all_acked()) return true;
      net::wait_readable(sock_[0].fd(), 2);
    }
    return false;
  }

  /// Drives for a fixed wall-clock window regardless of protocol state
  /// (blackhole phases, where all_acked can not become true).
  void drive_for_ms(int ms) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
      pump();
      net::wait_readable(sock_[0].fd(), 2);
    }
  }

  void set_blackhole(node_id at, bool on) { tp_[at]->set_blackhole(on); }

  const received_log& received(node_id at) const { return at_[at]; }
  sim::reliable_link_stats stats() const {
    sim::reliable_link_stats sum = arq_[0]->stats();
    const sim::reliable_link_stats b = arq_[1]->stats();
    sum.data_sent += b.data_sent;
    sum.retransmits += b.retransmits;
    sum.acks_sent += b.acks_sent;
    sum.dup_suppressed += b.dup_suppressed;
    sum.buffered_ooo += b.buffered_ooo;
    sum.timer_fires += b.timer_fires;
    return sum;
  }
  const net::udp_transport& transport(node_id at) const { return *tp_[at]; }
  std::uint64_t outstanding() const {
    return arq_[0]->outstanding() + arq_[1]->outstanding();
  }

 private:
  net::tick_clock clock_;
  net::udp_socket sock_[2];
  std::optional<net::udp_transport> tp_[2];
  std::optional<sim::reliable_link_layer> arq_[2];
  received_log at_[2];
  std::uint8_t rx_[net::max_datagram];
};

// ---------------------------------------------------------------------------
// The battery (shared assertions)
// ---------------------------------------------------------------------------

/// Crossing bursts: 0 -> 1 values [0, fwd) and 1 -> 0 values [0, rev), then
/// drive to drain and require exact in-order release on both sides.
template <typename Harness>
void run_fifo_battery(Harness& h, std::uint64_t fwd, std::uint64_t rev) {
  for (std::uint64_t i = 0; i < fwd; ++i) h.send(0, 1, i);
  for (std::uint64_t i = 0; i < rev; ++i) h.send(1, 0, i);
  ASSERT_TRUE(h.drive()) << "protocol failed to drain";

  ASSERT_EQ(h.received(1).size(), fwd);
  for (std::uint64_t i = 0; i < fwd; ++i) {
    EXPECT_EQ(h.received(1)[i].first, 0u);
    EXPECT_EQ(h.received(1)[i].second, i) << "out of order at " << i;
  }
  ASSERT_EQ(h.received(0).size(), rev);
  for (std::uint64_t i = 0; i < rev; ++i) {
    EXPECT_EQ(h.received(0)[i].first, 1u);
    EXPECT_EQ(h.received(0)[i].second, i) << "out of order at " << i;
  }

  const sim::reliable_link_stats st = h.stats();
  EXPECT_EQ(st.data_sent, fwd + rev);
  EXPECT_GT(st.acks_sent, 0u);
}

TEST(TransportConformance, SimCleanLinkFifo) {
  sim_harness h(sim::fault_plan{});
  run_fifo_battery(h, 64, 48);
  // A clean virtual-time link never times out: retransmits would mean the
  // RTO is mis-tuned against the scheduler's round trip.
  EXPECT_EQ(h.stats().retransmits, 0u);
  EXPECT_EQ(h.stats().dup_suppressed, 0u);
}

TEST(TransportConformance, UdpCleanLinkFifo) {
  udp_harness h(net::udp_transport::fault_profile{});
  run_fifo_battery(h, 64, 48);
  EXPECT_EQ(h.outstanding(), 0u);
  EXPECT_GE(h.transport(0).stats().datagrams_sent, 64u);
  EXPECT_EQ(h.transport(0).stats().decode_errors, 0u);
  EXPECT_EQ(h.transport(1).stats().decode_errors, 0u);
}

TEST(TransportConformance, SimFifoUnderDropAndDuplicate) {
  sim::fault_plan plan;
  plan.seed = 11;
  plan.drop = 0.25;
  plan.duplicate = 0.25;
  sim_harness h(plan);
  run_fifo_battery(h, 80, 60);
  EXPECT_GT(h.stats().retransmits, 0u);    // drops force timeouts
  EXPECT_GT(h.stats().dup_suppressed, 0u); // duplicates are discarded
}

TEST(TransportConformance, UdpFifoUnderDropAndDuplicate) {
  net::udp_transport::fault_profile faults;
  faults.seed = 11;
  faults.drop = 0.25;
  faults.duplicate = 0.25;
  udp_harness h(faults);
  run_fifo_battery(h, 80, 60);
  EXPECT_GT(h.stats().retransmits, 0u);
  EXPECT_GT(h.stats().dup_suppressed, 0u);
  EXPECT_GT(h.transport(0).stats().fault_drops +
                h.transport(1).stats().fault_drops,
            0u);
  EXPECT_EQ(h.outstanding(), 0u);
}

TEST(TransportConformance, SimRecoversFromLinkOutages) {
  // Short periodic blackouts on every link: transmissions inside a window
  // are lost wholesale; retransmit backoff + jitter must ride them out.
  sim::fault_plan plan;
  plan.seed = 3;
  plan.outage_period = 64;
  plan.outage_duration = 16;
  sim_harness h(plan);
  run_fifo_battery(h, 50, 50);
}

TEST(TransportConformance, UdpRecoversFromBlackhole) {
  udp_harness h(net::udp_transport::fault_profile{});

  // Total outage: nothing side 0 puts on the wire (initial transmissions
  // and retransmits alike) leaves the process.  The blackhole must be up
  // before the sends — app_send puts the first copy on the socket
  // synchronously.
  h.set_blackhole(0, true);
  for (std::uint64_t i = 0; i < 20; ++i) h.send(0, 1, i);
  h.drive_for_ms(120);
  EXPECT_TRUE(h.received(1).empty());
  EXPECT_EQ(h.outstanding(), 20u);
  EXPECT_GT(h.transport(0).stats().fault_drops, 0u);

  // Outage ends; the pending retransmit timers re-offer every envelope.
  h.set_blackhole(0, false);
  ASSERT_TRUE(h.drive());
  ASSERT_EQ(h.received(1).size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i)
    EXPECT_EQ(h.received(1)[i].second, i);
  EXPECT_GT(h.stats().retransmits, 0u);
  EXPECT_EQ(h.outstanding(), 0u);
}

TEST(TransportConformance, UdpGarbageDatagramsAreCountedDrops) {
  udp_harness h(net::udp_transport::fault_profile{});
  for (std::uint64_t i = 0; i < 10; ++i) h.send(0, 1, i);
  ASSERT_TRUE(h.drive());

  // Hand the receiving transport a corpus of malformed datagrams directly:
  // every one must be rejected-and-counted, and the drained protocol state
  // must be untouched.
  const std::vector<std::vector<std::uint8_t>> corpus = {
      {},                              // empty
      {0x00},                          // unknown tag
      {0xE7},                          // data envelope, no fields
      {0xE7, 0x00, 0x01, 0x00},        // data for us, empty frame
      {0xE7, 0x00, 0x01, 0x00, 0x7F},  // data for us, frame w/o wire bit
      {0xE7, 0x01, 0x00, 0x00, 0x81},  // data for a node we do not host
      {0xE8, 0x01},                    // truncated ack
      {0xFF, 0xFF, 0xFF},              // noise
  };
  auto& tp = const_cast<net::udp_transport&>(h.transport(1));
  for (const auto& d : corpus)
    EXPECT_FALSE(tp.on_datagram(d.data(), d.size()));
  EXPECT_EQ(h.transport(1).stats().decode_errors, corpus.size());
  EXPECT_EQ(h.received(1).size(), 10u);
  EXPECT_EQ(h.outstanding(), 0u);
}

}  // namespace
}  // namespace asyncrd
