// Bounded model checking: enumerate EVERY wake/delivery interleaving the
// asynchronous adversary can produce on small systems, and verify the full
// specification at each quiescent outcome.  This is far stronger than any
// number of random-seed sweeps on the same graphs.
#include <gtest/gtest.h>

#include <memory>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/explore.h"

namespace asyncrd {
namespace {

using core::variant;

/// System-under-test factory bundle for the explorer.
struct sut {
  std::unique_ptr<sim::unit_delay_scheduler> sched;
  std::unique_ptr<core::discovery_run> run;
  const graph::digraph* g = nullptr;
  core::config cfg;

  sim::network* reset(const graph::digraph& graph, variant algo) {
    sched = std::make_unique<sim::unit_delay_scheduler>();
    cfg.algo = algo;
    g = &graph;
    run = std::make_unique<core::discovery_run>(graph, cfg, *sched);
    run->net().set_manual_mode();
    run->wake_all();
    return &run->net();
  }

  std::string check() const {
    const auto rep = core::check_final_state(*run, *g);
    return rep.ok() ? std::string{} : rep.to_string();
  }
};

sim::explore_result explore_graph(const graph::digraph& g, variant algo,
                                  std::uint64_t max_exec = 2'000'000) {
  sut s;
  sim::explore_limits lim;
  lim.max_executions = max_exec;
  return sim::explore_interleavings(
      [&]() { return s.reset(g, algo); }, [&]() { return s.check(); }, lim);
}

TEST(Exhaustive, TwoNodesOneEdgeAllVariants) {
  graph::digraph g;
  g.add_edge(0, 1);
  for (const auto v : {variant::generic, variant::bounded, variant::adhoc}) {
    const auto res = explore_graph(g, v);
    EXPECT_TRUE(res.complete) << core::to_string(v);
    EXPECT_TRUE(res.ok()) << core::to_string(v) << ": "
                          << res.violations.front();
    EXPECT_GT(res.executions, 1u);
  }
}

TEST(Exhaustive, TwoNodesMutualEdges) {
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  for (const auto v : {variant::generic, variant::bounded, variant::adhoc}) {
    const auto res = explore_graph(g, v);
    EXPECT_TRUE(res.complete) << core::to_string(v);
    EXPECT_TRUE(res.ok()) << core::to_string(v) << ": "
                          << res.violations.front();
  }
}

TEST(Exhaustive, ThreeNodeLine) {
  // 0 -> 1 -> 2: duels can race along the line.
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto res = explore_graph(g, variant::generic);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.ok()) << res.violations.front();
  EXPECT_GT(res.executions, 100u);
}

TEST(Exhaustive, ThreeNodeFork) {
  // 1 <- 0 -> 2 plus 2 -> 1: the middle id gets attacked from both sides.
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  const auto res = explore_graph(g, variant::generic);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.ok()) << res.violations.front();
}

TEST(Exhaustive, ThreeNodeInStar) {
  // 1 -> 0 <- 2: the classic both-leaders-search-the-same-target race —
  // the scenario behind the merge-fail knowledge-retention regression.
  graph::digraph g;
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  for (const auto v : {variant::generic, variant::adhoc}) {
    const auto res = explore_graph(g, v);
    EXPECT_TRUE(res.complete) << core::to_string(v);
    EXPECT_TRUE(res.ok()) << core::to_string(v) << ": "
                          << res.violations.front();
  }
}

TEST(Exhaustive, ThreeNodeLineDescendingIds) {
  // 2 -> 1 -> 0: searches flow toward ever-lower ids, maximizing aborts.
  graph::digraph g;
  g.add_edge(2, 1);
  g.add_edge(1, 0);
  const auto res = explore_graph(g, variant::generic);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.ok()) << res.violations.front();
}

TEST(Exhaustive, FourNodePairOfPairsBounded) {
  // Two 2-cliques bridged by one edge; bounded termination must be correct
  // under every schedule.  Kept small enough to stay exhaustive.
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 2);
  const auto res = explore_graph(g, variant::bounded, 400'000);
  EXPECT_TRUE(res.ok()) << res.violations.front();
  // Completeness is budget-dependent here; require substantial coverage.
  EXPECT_GT(res.executions, 10'000u);
}

TEST(Exhaustive, ManualModeBasics) {
  // The stepping substrate itself: options are deterministic and FIFO per
  // channel is preserved (only channel heads are ever offered).
  graph::digraph g;
  g.add_edge(0, 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.net().set_manual_mode();
  run.wake_all();
  auto opts = run.net().manual_options();
  ASSERT_EQ(opts.size(), 2u);  // two pending wakes
  EXPECT_TRUE(opts[0].is_wake);
  run.net().take_step(opts[0]);
  EXPECT_THROW(run.net().take_step(opts[0]), std::invalid_argument);
  while (!(opts = run.net().manual_options()).empty())
    run.net().take_step(opts.front());
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

}  // namespace
}  // namespace asyncrd
