// Pooled message allocation: make_message routes control block + payload
// through a thread-local size-classed free list.  The properties under test:
// blocks recycle instead of returning to the heap, trim() releases them, the
// oversize path falls back to the heap cleanly, and pooled messages behave
// like ordinary shared_ptrs (aliasing, cross-thread release).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/messages.h"
#include "sim/message.h"

namespace asyncrd {
namespace {

TEST(MessagePool, FreedBlocksAreCachedAndReused) {
  sim::pool_detail::trim();
  {
    const auto m = sim::make_message<core::search_msg>(1, 2, 3, true);
    EXPECT_EQ(m->type_name(), "search");
  }
  // The drop parked the block in the thread-local cache...
  const std::size_t cached = sim::pool_detail::cached_blocks();
  EXPECT_GE(cached, 1u);
  // ...and the next same-class allocation consumes it rather than growing
  // the cache further.
  const auto m2 = sim::make_message<core::search_msg>(4, 5, 6, false);
  EXPECT_EQ(sim::pool_detail::cached_blocks(), cached - 1);
  EXPECT_EQ(static_cast<const core::search_msg&>(*m2).initiator, 4u);
}

TEST(MessagePool, TrimReleasesEverything) {
  {
    const auto m = sim::make_message<core::release_msg>(
        1, 2, core::release_msg::answer_t::merge, 3);
  }
  EXPECT_GE(sim::pool_detail::cached_blocks(), 1u);
  sim::pool_detail::trim();
  EXPECT_EQ(sim::pool_detail::cached_blocks(), 0u);
}

TEST(MessagePool, OversizeAllocationsBypassThePool) {
  sim::pool_detail::trim();
  // Way above the largest size class: straight operator new/delete.
  void* p = sim::pool_detail::allocate(1 << 16);
  ASSERT_NE(p, nullptr);
  sim::pool_detail::deallocate(p, 1 << 16);
  EXPECT_EQ(sim::pool_detail::cached_blocks(), 0u);
}

TEST(MessagePool, PooledMessagesSurviveSharing) {
  // A parked copy (the simulator holds messages in channel queues) keeps
  // the block alive through the pool allocator exactly like the heap would.
  sim::message_ptr held;
  {
    const auto m = sim::make_message<core::info_msg>(
        1, std::vector<node_id>{1, 2}, std::vector<node_id>{3},
        std::vector<node_id>{}, std::vector<node_id>{4});
    held = m;
  }
  EXPECT_EQ(held->type_name(), "info");
  EXPECT_EQ(held->id_fields(), 4u);
}

TEST(MessagePool, CrossThreadFreeMigratesNotCorrupts) {
  // Allocate on this thread, release on another: the block simply joins the
  // other thread's pool (memory is plain operator-new memory).  A burst of
  // such messages must not corrupt either pool.
  std::vector<sim::message_ptr> batch;
  batch.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    batch.push_back(sim::make_message<core::search_msg>(
        static_cast<node_id>(i), 1, static_cast<node_id>(i + 1), false));
  std::thread t([moved = std::move(batch)]() mutable { moved.clear(); });
  t.join();
  // This thread's pool still works.
  const auto m = sim::make_message<core::search_msg>(9, 9, 9, true);
  EXPECT_EQ(static_cast<const core::search_msg&>(*m).initiator, 9u);
}

TEST(MessagePool, DispatchTagsSurvivePooledConstruction) {
  // The dense receive path switches on dispatch_tag; pooled construction
  // must deliver fully-constructed tagged messages.
  const auto q = sim::make_message<core::query_msg>(2);
  const auto s = sim::make_message<core::search_msg>(1, 2, 3, true);
  EXPECT_EQ(q->dispatch_tag(), core::tag_of(core::msg_kind::query));
  EXPECT_EQ(s->dispatch_tag(), core::tag_of(core::msg_kind::search));
  EXPECT_NE(q->dispatch_tag(), s->dispatch_tag());
  EXPECT_NE(q->dispatch_tag(), 0);  // 0 is reserved for untagged/foreign
}

}  // namespace
}  // namespace asyncrd
