// Pooled message allocation: make_message routes control block + payload
// through a thread-local size-classed free list.  The properties under test:
// blocks recycle instead of returning to the heap, trim() releases them, the
// oversize path falls back to the heap cleanly, and pooled messages behave
// like ordinary shared_ptrs (aliasing, cross-thread release).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/messages.h"
#include "sim/message.h"
#include "telemetry/metrics.h"

namespace asyncrd {
namespace {

TEST(MessagePool, FreedBlocksAreCachedAndReused) {
  sim::pool_detail::trim();
  {
    const auto m = sim::make_message<core::search_msg>(1, 2, 3, true);
    EXPECT_EQ(m->type_name(), "search");
  }
  // The drop parked the block in the thread-local cache...
  const std::size_t cached = sim::pool_detail::cached_blocks();
  EXPECT_GE(cached, 1u);
  // ...and the next same-class allocation consumes it rather than growing
  // the cache further.
  const auto m2 = sim::make_message<core::search_msg>(4, 5, 6, false);
  EXPECT_EQ(sim::pool_detail::cached_blocks(), cached - 1);
  EXPECT_EQ(static_cast<const core::search_msg&>(*m2).initiator, 4u);
}

TEST(MessagePool, TrimReleasesEverything) {
  {
    const auto m = sim::make_message<core::release_msg>(
        1, 2, core::release_msg::answer_t::merge, 3);
  }
  EXPECT_GE(sim::pool_detail::cached_blocks(), 1u);
  sim::pool_detail::trim();
  EXPECT_EQ(sim::pool_detail::cached_blocks(), 0u);
}

TEST(MessagePool, OversizeAllocationsBypassThePool) {
  sim::pool_detail::trim();
  // Way above the largest size class: straight operator new/delete.
  void* p = sim::pool_detail::allocate(1 << 16);
  ASSERT_NE(p, nullptr);
  sim::pool_detail::deallocate(p, 1 << 16);
  EXPECT_EQ(sim::pool_detail::cached_blocks(), 0u);
}

TEST(MessagePool, PooledMessagesSurviveSharing) {
  // A parked copy (the simulator holds messages in channel queues) keeps
  // the block alive through the pool allocator exactly like the heap would.
  sim::message_ptr held;
  {
    const auto m = sim::make_message<core::info_msg>(
        1, core::id_vec{1, 2}, core::id_vec{3}, core::id_vec{},
        core::id_vec{4});
    held = m;
  }
  EXPECT_EQ(held->type_name(), "info");
  EXPECT_EQ(held->id_fields(), 4u);
}

TEST(MessagePool, CrossThreadFreeMigratesNotCorrupts) {
  // Allocate on this thread, release on another: the block simply joins the
  // other thread's pool (memory is plain operator-new memory).  A burst of
  // such messages must not corrupt either pool.
  std::vector<sim::message_ptr> batch;
  batch.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    batch.push_back(sim::make_message<core::search_msg>(
        static_cast<node_id>(i), 1, static_cast<node_id>(i + 1), false));
  std::thread t([moved = std::move(batch)]() mutable { moved.clear(); });
  t.join();
  // This thread's pool still works.
  const auto m = sim::make_message<core::search_msg>(9, 9, 9, true);
  EXPECT_EQ(static_cast<const core::search_msg&>(*m).initiator, 9u);
}

TEST(MessagePool, ThreadByteCapSpillsOverflowToGlobalReclaim) {
  // Regression for the parallel engine's one-way free flow: without the
  // per-thread byte cap the freeing thread's cache grew without bound.
  sim::pool_detail::trim();
  sim::pool_detail::trim_global();
  constexpr std::size_t block = 512;  // largest size class
  constexpr std::size_t n = 3000;     // 1.5 MiB > the 1 MiB thread cap
  const std::uint64_t donations_before =
      sim::pool_detail::stats().reclaim_donations;
  std::vector<void*> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    blocks.push_back(sim::pool_detail::allocate(block));
  for (void* p : blocks) sim::pool_detail::deallocate(p, block);
  const auto st = sim::pool_detail::stats();
  EXPECT_LE(st.thread_cached_bytes, std::size_t{1} << 20);
  EXPECT_GT(st.reclaim_donations, donations_before);
  EXPECT_GT(st.global_cached_blocks, 0u);
  sim::pool_detail::trim();
  sim::pool_detail::trim_global();
}

TEST(MessagePool, LocalMissRefillsFromGlobalInBatches) {
  sim::pool_detail::trim();
  sim::pool_detail::trim_global();
  constexpr std::size_t block = 512;
  // Seed the global list by overflowing the thread byte cap (1 MiB of
  // 512-byte blocks is 2048; everything past that spills), then trim the
  // local cache so only the global copies remain.
  std::vector<void*> blocks;
  blocks.reserve(3000);
  for (std::size_t i = 0; i < 3000; ++i)
    blocks.push_back(sim::pool_detail::allocate(block));
  for (void* p : blocks) sim::pool_detail::deallocate(p, block);
  sim::pool_detail::trim();
  ASSERT_GE(sim::pool_detail::stats().global_cached_blocks, 64u);
  const std::uint64_t grabs_before = sim::pool_detail::stats().reclaim_grabs;
  // One allocation on an empty local cache pulls a whole batch across.
  void* p = sim::pool_detail::allocate(block);
  ASSERT_NE(p, nullptr);
  const auto st = sim::pool_detail::stats();
  EXPECT_EQ(st.reclaim_grabs, grabs_before + 64);
  EXPECT_EQ(st.thread_cached_blocks, 63u);  // batch minus the one returned
  sim::pool_detail::deallocate(p, block);
  sim::pool_detail::trim();
  sim::pool_detail::trim_global();
  EXPECT_EQ(sim::pool_detail::stats().global_cached_blocks, 0u);
}

TEST(MessagePool, RecordPoolExposesReclaimTelemetry) {
  telemetry::registry reg;
  sim::pool_detail::pool_stats ps;
  ps.thread_cached_blocks = 7;
  ps.thread_cached_bytes = 4096;
  ps.global_cached_blocks = 3;
  ps.reclaim_donations = 11;
  ps.reclaim_grabs = 5;
  telemetry::record_pool(reg, "pool", ps);
  EXPECT_EQ(reg.gauges().at("pool.thread_cached_blocks").value(), 7.0);
  EXPECT_EQ(reg.gauges().at("pool.thread_cached_bytes").value(), 4096.0);
  EXPECT_EQ(reg.gauges().at("pool.global_cached_blocks").value(), 3.0);
  EXPECT_EQ(reg.gauges().at("pool.reclaim_donations").value(), 11.0);
  EXPECT_EQ(reg.gauges().at("pool.reclaim_grabs").value(), 5.0);
}

TEST(MessagePool, DispatchTagsSurvivePooledConstruction) {
  // The dense receive path switches on dispatch_tag; pooled construction
  // must deliver fully-constructed tagged messages.
  const auto q = sim::make_message<core::query_msg>(2);
  const auto s = sim::make_message<core::search_msg>(1, 2, 3, true);
  EXPECT_EQ(q->dispatch_tag(), core::tag_of(core::msg_kind::query));
  EXPECT_EQ(s->dispatch_tag(), core::tag_of(core::msg_kind::search));
  EXPECT_NE(q->dispatch_tag(), s->dispatch_tag());
  EXPECT_NE(q->dispatch_tag(), 0);  // 0 is reserved for untagged/foreign
}

}  // namespace
}  // namespace asyncrd
