// Service-mode integration tests, in one process: several net::node_host
// shards wired through real UDP loopback sockets run the discovery
// algorithms to completion, and the result is verified with
// core::check_membership — the same checker the loadgen orchestrator uses
// against out-of-process clusters.  Running the shards in-process keeps the
// failure surface inspectable (no fork/exec) while exercising the entire
// service data path: gateway egress, wire frames over real sockets, ARQ
// reassembly, inject_remote re-entry, wall-clock retransmit timers.
//
// Also covered here: the garbage-datagram contract (malformed and
// misaddressed datagrams are counted decode drops and never disturb
// convergence) and the run-report shape service shards emit.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/checker.h"
#include "graph/digraph.h"
#include "net/envelope.h"
#include "net/genspec.h"
#include "net/node_host.h"
#include "net/udp.h"
#include "telemetry/report.h"

namespace asyncrd {
namespace {

/// Builds P hosts over `g`, exchanges port maps, and starts every shard.
struct cluster {
  cluster(const graph::digraph& g, const core::config& cfg, std::size_t procs,
          std::uint64_t seed) {
    for (std::size_t p = 0; p < procs; ++p)
      hosts.push_back(std::make_unique<net::node_host>(g, cfg, p, procs, seed));
    std::vector<std::uint16_t> ports;
    for (const auto& h : hosts) ports.push_back(h->port());
    for (const auto& h : hosts) h->set_peers(ports);
    for (const auto& h : hosts) h->start();
  }

  /// Pumps every shard until cluster-wide quiescence (zero outstanding and
  /// progress stable across two consecutive rounds) — the same convergence
  /// predicate loadgen evaluates over the control plane.  False on timeout.
  bool converge(int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::uint64_t last_progress = ~0ull;
    while (std::chrono::steady_clock::now() < deadline) {
      for (const auto& h : hosts) h->poll_once(1);
      std::uint64_t outstanding = 0, progress = 0;
      for (const auto& h : hosts) {
        outstanding += h->outstanding();
        progress += h->progress();
      }
      if (outstanding == 0 && progress == last_progress) return true;
      last_progress = progress;
    }
    return false;
  }

  /// Snapshots every node exactly as discoveryd serializes it (dg_state).
  std::vector<core::member_state> members() const {
    std::vector<core::member_state> out;
    for (const auto& h : hosts) {
      for (const node_id v : h->local_nodes()) {
        const core::node& nd = h->at(v);
        core::member_state m;
        m.id = v;
        m.status = nd.status();
        m.next = nd.next();
        m.has_deferred = nd.has_deferred();
        m.has_pending = nd.pending_queue_depth() != 0;
        m.more_empty = nd.more().empty();
        m.unaware_empty = nd.unaware().empty();
        m.done.assign(nd.done().begin(), nd.done().end());
        out.push_back(std::move(m));
      }
    }
    return out;
  }

  std::uint64_t decode_errors() const {
    std::uint64_t sum = 0;
    for (const auto& h : hosts) sum += h->decode_errors();
    return sum;
  }

  std::vector<std::unique_ptr<net::node_host>> hosts;
};

void run_and_verify(core::variant algo, const char* spec, std::size_t procs,
                    std::uint64_t seed) {
  const net::genspec_result gen = net::parse_genspec(spec);
  ASSERT_TRUE(gen.ok()) << gen.error;
  core::config cfg;
  cfg.algo = algo;
  cluster c(gen.graph, cfg, procs, seed);
  ASSERT_TRUE(c.converge()) << "cluster did not converge";
  const core::check_report verdict = core::check_membership(
      c.members(), gen.graph.weak_components(), algo);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
  EXPECT_EQ(c.decode_errors(), 0u);
}

TEST(ServiceLoopback, GenericConvergesAcrossThreeShards) {
  run_and_verify(core::variant::generic, "random:24:36:5", 3, 7);
}

TEST(ServiceLoopback, BoundedConvergesAcrossThreeShards) {
  run_and_verify(core::variant::bounded, "random:24:36:5", 3, 7);
}

TEST(ServiceLoopback, AdhocConvergesAcrossThreeShards) {
  run_and_verify(core::variant::adhoc, "random:24:36:5", 3, 7);
}

TEST(ServiceLoopback, DisconnectedComponentsElectOneLeaderEach) {
  // Two disjoint cliques generated as one spec would be nicer, but the
  // generators emit connected shapes — so build the forest by hand.
  graph::digraph g;
  for (node_id v = 0; v < 6; ++v)
    for (node_id u = 0; u < 6; ++u)
      if (u != v) g.add_edge(v, u);
  for (node_id v = 6; v < 12; ++v) g.add_edge(v, 6 + (v - 5) % 6);
  core::config cfg;
  cfg.algo = core::variant::generic;
  cluster c(g, cfg, 2, 3);
  ASSERT_TRUE(c.converge());
  const auto verdict =
      core::check_membership(c.members(), g.weak_components(),
                             core::variant::generic);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

TEST(ServiceLoopback, GarbageDatagramsAreCountedAndHarmless) {
  const net::genspec_result gen = net::parse_genspec("random:20:30:9");
  ASSERT_TRUE(gen.ok());
  core::config cfg;
  cfg.algo = core::variant::generic;
  cluster c(gen.graph, cfg, 2, 5);

  // Blast junk at both shards' data ports mid-run from a foreign socket:
  // random noise, truncated ARQ envelopes, and control-plane tags (no
  // control callback is installed, and the source is untrusted anyway).
  net::udp_socket junk_sock;
  junk_sock.bind_loopback();
  rng grng(0xBADC0FFEEull);
  std::vector<std::uint8_t> junk;
  std::uint64_t sent = 0;
  for (int round = 0; round < 25; ++round) {
    for (const auto& h : c.hosts) {
      junk.clear();
      switch (round % 3) {
        case 0: junk.push_back(static_cast<std::uint8_t>(grng.next())); break;
        case 1: junk.push_back(0xE7); break;           // truncated data
        case 2: junk.push_back(net::dg_status_req); break;  // stray control
      }
      const std::uint64_t pad = grng.below(24);
      for (std::uint64_t b = 0; b < pad; ++b)
        junk.push_back(static_cast<std::uint8_t>(grng.next()));
      if (junk_sock.send_to(net::loopback(h->port()), junk.data(),
                            junk.size()))
        ++sent;
    }
    for (const auto& h : c.hosts) h->poll_once(1);
  }
  ASSERT_GT(sent, 0u);

  ASSERT_TRUE(c.converge()) << "garbage stalled the cluster";
  const auto verdict = core::check_membership(
      c.members(), gen.graph.weak_components(), core::variant::generic);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
  // Every junk datagram that reached a socket before convergence must be
  // counted; none may be silently absorbed as protocol traffic.
  EXPECT_EQ(c.decode_errors(), sent);
}

TEST(ServiceLoopback, ShardReportCarriesServiceCounters) {
  const net::genspec_result gen = net::parse_genspec("tree:15:2:3");
  ASSERT_TRUE(gen.ok());
  core::config cfg;
  cfg.algo = core::variant::generic;
  cluster c(gen.graph, cfg, 2, 11);
  ASSERT_TRUE(c.converge());

  const telemetry::run_report rep = c.hosts[0]->report(true);
  EXPECT_EQ(rep.label, "discoveryd");
  EXPECT_EQ(rep.nodes, c.hosts[0]->local_nodes().size());
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.wire.enabled);
  EXPECT_GT(rep.wire.frames, 0u);
  EXPECT_GT(rep.wire.bytes_sent, 0u);
  EXPECT_EQ(rep.wire.decode_errors, 0u);
  // Chaos block carries the UDP/ARQ counters in service mode.
  EXPECT_TRUE(rep.chaos.enabled);
  EXPECT_GT(rep.chaos.transmissions, 0u);
  // The JSON must serialize without throwing and carry the wire block
  // (json_check --report validation runs in the ctest loadgen fixtures).
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"decode_errors\""), std::string::npos);
  EXPECT_NE(json.find("\"wire\""), std::string::npos);
}

}  // namespace
}  // namespace asyncrd
