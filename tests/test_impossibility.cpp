// §1.2's impossibility argument, demonstrated on the real implementation:
//
// "Suppose a leader election algorithm has a terminating execution on a
//  network G, then combine two G's and a single node u.  Add a directed
//  edge from u to both copies of G.  Now wake up all nodes except node u.
//  Each copy of G will elect a leader and terminate.  This will cause a
//  termination with two leaders."
//
// Consequence: Oblivious/Ad-hoc algorithms must NOT detect termination —
// and indeed, after the two copies quiesce with two leaders, waking u
// forces further messages that merge everything.  (The Bounded model
// escapes the argument because u's existence changes every node's known
// component size.)
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

graph::digraph two_copies_plus_u() {
  // Copy A: ids 0..9, copy B: ids 10..19, hidden node u = 20.
  graph::digraph g;
  const auto part = graph::random_weakly_connected(10, 12, 5);
  for (const node_id v : part.nodes())
    for (const node_id w : part.out(v)) {
      g.add_edge(v, w);
      g.add_edge(v + 10, w + 10);
    }
  g.add_edge(20, 0);
  g.add_edge(20, 10);
  return g;
}

TEST(Impossibility, TwoIdenticalCopiesQuiesceWithTwoLeaders) {
  const auto g = two_copies_plus_u();
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  for (const node_id v : run.ids())
    if (v != 20) run.net().wake(v);
  run.run();

  // The two copies each elected a leader; u is still asleep.  From any
  // local observer's view both copies look "done" — exactly why explicit
  // termination detection is impossible in the Oblivious model.
  const auto leaders = run.leaders();  // includes asleep u (a leader-to-be)
  std::size_t awake_leaders = 0;
  for (const node_id v : leaders)
    if (run.net().is_awake(v)) ++awake_leaders;
  EXPECT_EQ(awake_leaders, 2u);
  EXPECT_TRUE(run.net().channels_empty());

  // Waking u must trigger new traffic and collapse to a single leader.
  const auto msgs_before = run.statistics().total_messages();
  run.net().wake(20);
  run.run();
  EXPECT_GT(run.statistics().total_messages(), msgs_before);
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(Impossibility, BoundedModelSidestepsTheArgument) {
  // In the Bounded model the component includes u, so no copy can reach
  // |done| = n while u sleeps: nobody terminates prematurely.
  const auto g = two_copies_plus_u();
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::bounded;
  core::discovery_run run(g, cfg, sched);
  for (const node_id v : run.ids())
    if (v != 20) run.net().wake(v);
  run.run();
  for (const node_id v : run.ids())
    EXPECT_NE(run.at(v).status(), core::status_t::terminated)
        << "node " << v << " terminated while node 20 was still asleep";

  run.net().wake(20);
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  // Now exactly one termination-detecting leader exists.
  const auto leaders = run.leaders();
  ASSERT_EQ(leaders.size(), 1u);
  EXPECT_EQ(run.at(leaders.front()).status(), core::status_t::terminated);
}

}  // namespace
}  // namespace asyncrd
