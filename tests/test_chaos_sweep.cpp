// Chaos acceptance sweep: every algorithm variant must survive a lossy
// transport when the reliable-link adapter is layered underneath it.
//
// The grid covers drop rates x duplication x outage windows x topologies
// for Generic, Bounded, and Ad-hoc, fanned across threads with
// sim::parallel_sweep.  Every cell runs the *full* final-state checker —
// the paper's algorithms are used unmodified, so any reliability leak in
// the adapter (lost, duplicated, or reordered application message) shows
// up as a safety violation here.  A second pass replays two cells and
// requires byte-identical executions per seed.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/network.h"
#include "sim/reliable_link.h"
#include "sim/scheduler.h"
#include "sim/sweep.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"

namespace asyncrd {
namespace {

using core::variant;

struct chaos_cell {
  variant algo;
  int topology;  // 0 = random, 1 = binary tree, 2 = directed path
  double drop;
  bool duplicate;
  bool outage;
};

graph::digraph make_topology(int which) {
  switch (which) {
    case 0:
      return graph::random_weakly_connected(24, 48, 7);
    case 1:
      return graph::directed_binary_tree(5);  // 31 nodes
    default:
      return graph::directed_path(16);
  }
}

sim::fault_plan make_plan(const chaos_cell& c, std::uint64_t seed) {
  sim::fault_plan plan;
  plan.seed = seed;
  plan.drop = c.drop;
  plan.duplicate = c.duplicate ? 0.10 : 0.0;
  plan.reorder_slack = 32;
  if (c.outage) {
    plan.outage_period = 512;
    plan.outage_duration = 64;
  }
  return plan;
}

/// One chaos execution end to end; returns the checker verdict ("" = ok).
std::string run_cell(const chaos_cell& c, std::uint64_t seed,
                     core::run_summary* out = nullptr,
                     sim::fault_stats* faults = nullptr) {
  const auto g = make_topology(c.topology);
  sim::random_delay_scheduler sched(seed);
  core::config cfg;
  cfg.algo = c.algo;
  core::discovery_run run(g, cfg, sched);
  run.enable_chaos(make_plan(c, seed));
  run.wake_all();
  const sim::run_result r = run.run();
  if (!r.completed) return "event cap hit (livelock?)";
  if (!run.reliable_links()->all_acked())
    return "reliable link not drained at quiescence";
  const auto rep = core::check_final_state(run, g);
  if (!rep.ok()) return rep.to_string();
  if (out != nullptr) {
    out->messages = run.statistics().total_messages();
    out->bits = run.statistics().total_bits();
    out->events = r.events_processed;
    out->completion_time = run.net().now();
    out->by_type = run.statistics().by_type();
    out->leaders = run.leaders();
    out->completed = r.completed;
  }
  if (faults != nullptr) *faults = run.net().faults();
  return {};
}

TEST(ChaosSweep, AllVariantsSurviveTheFaultGrid) {
  std::vector<chaos_cell> cells;
  for (const variant v : {variant::generic, variant::bounded, variant::adhoc})
    for (int topo = 0; topo < 3; ++topo)
      for (const double drop : {0.05, 0.15, 0.3})
        for (const bool dup : {false, true})
          for (const bool outage : {false, true})
            cells.push_back({v, topo, drop, dup, outage});
  ASSERT_EQ(cells.size(), 108u);

  std::vector<std::string> verdicts(cells.size());
  std::atomic<std::uint64_t> total_drops{0};
  const sim::sweep_result sw =
      sim::parallel_sweep(cells.size(), [&](std::size_t job, std::size_t) {
        sim::fault_stats fs;
        verdicts[job] = run_cell(cells[job], 1000 + job, nullptr, &fs);
        total_drops.fetch_add(fs.drops + fs.outage_drops,
                              std::memory_order_relaxed);
      });
  EXPECT_EQ(sw.jobs_completed, cells.size());
  EXPECT_EQ(sw.jobs_skipped, 0u);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const chaos_cell& c = cells[i];
    EXPECT_TRUE(verdicts[i].empty())
        << "cell " << i << " (variant=" << static_cast<int>(c.algo)
        << " topo=" << c.topology << " drop=" << c.drop
        << " dup=" << c.duplicate << " outage=" << c.outage
        << "): " << verdicts[i];
  }
  // The grid must actually have exercised the fault paths.
  EXPECT_GT(total_drops.load(), 0u);
}

TEST(ChaosSweep, ExecutionsAreByteIdenticalPerSeed) {
  // The strongest replay check we can state: every observable of the run —
  // message/bit totals, per-type counts, event count, completion time,
  // leaders, and all fault counters — identical across two executions.
  const chaos_cell cell{variant::generic, 0, 0.3, true, true};
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    core::run_summary a, b;
    sim::fault_stats fa, fb;
    ASSERT_EQ(run_cell(cell, seed, &a, &fa), "");
    ASSERT_EQ(run_cell(cell, seed, &b, &fb), "");
    EXPECT_EQ(a.messages, b.messages) << "seed " << seed;
    EXPECT_EQ(a.bits, b.bits) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.completion_time, b.completion_time) << "seed " << seed;
    EXPECT_EQ(a.leaders, b.leaders) << "seed " << seed;
    for (const auto& [type, st] : a.by_type) {
      EXPECT_EQ(st.count, b.by_type.at(type).count) << type << " " << seed;
      EXPECT_EQ(st.bits, b.by_type.at(type).bits) << type << " " << seed;
    }
    EXPECT_EQ(fa.transmissions, fb.transmissions) << "seed " << seed;
    EXPECT_EQ(fa.drops, fb.drops) << "seed " << seed;
    EXPECT_EQ(fa.outage_drops, fb.outage_drops) << "seed " << seed;
    EXPECT_EQ(fa.duplicates, fb.duplicates) << "seed " << seed;
    EXPECT_EQ(fa.reorder_delay, fb.reorder_delay) << "seed " << seed;
  }
}

TEST(ChaosSweep, RunReportCarriesChaosCounters) {
  const auto g = make_topology(0);
  sim::random_delay_scheduler sched(5);
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sim::fault_plan plan;
  plan.seed = 5;
  plan.drop = 0.2;
  plan.duplicate = 0.1;
  run.enable_chaos(plan);
  telemetry::run_recorder rec(run);
  run.wake_all();
  const auto rep = rec.report(run.run());

  EXPECT_TRUE(rep.chaos.enabled);
  EXPECT_GT(rep.chaos.transmissions, 0u);
  EXPECT_GT(rep.chaos.drops, 0u);
  EXPECT_GT(rep.chaos.retransmits, 0u);
  EXPECT_GT(rep.chaos.acks_sent, 0u);
  EXPECT_EQ(rep.chaos.data_sent, run.reliable_links()->stats().data_sent);

  // The JSON document exposes the same counters under "chaos".
  std::string err;
  const auto parsed = telemetry::json_parse(rep.to_json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const auto* chaos = parsed->find("chaos");
  ASSERT_NE(chaos, nullptr);
  EXPECT_NE(chaos->find("drops"), nullptr);
  EXPECT_NE(chaos->find("retransmits"), nullptr);
  EXPECT_DOUBLE_EQ(chaos->find("retransmits")->as_number(),
                   static_cast<double>(rep.chaos.retransmits));

  // record_chaos folds the same numbers into a metrics registry.
  telemetry::registry reg;
  const sim::reliable_link_stats rls = run.reliable_links()->stats();
  telemetry::record_chaos(reg, "chaos", run.net().faults(), &rls);
  EXPECT_EQ(reg.get_counter("chaos.drops").value(), rep.chaos.drops);
  EXPECT_EQ(reg.get_counter("chaos.retransmits").value(),
            rep.chaos.retransmits);
}

TEST(ChaosSweep, CleanRunReportsChaosDisabled) {
  const auto g = graph::directed_path(6);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::run_recorder rec(run);
  run.wake_all();
  const auto rep = rec.report(run.run());
  EXPECT_FALSE(rep.chaos.enabled);
  EXPECT_EQ(rep.chaos.transmissions, 0u);
  EXPECT_EQ(rep.chaos.retransmits, 0u);
}

}  // namespace
}  // namespace asyncrd
