#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.h"

namespace asyncrd {
namespace {

TEST(Rng, DeterministicPerSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    EXPECT_LT(r.below(1), 1u);
  }
}

TEST(Rng, BelowHitsAllResidues) {
  rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = r.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  rng r(13);
  int hits = 0;
  const int trials = 40'000;
  for (int i = 0; i < trials; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  rng r(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  r.shuffle(w);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), w.begin()));
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
}

TEST(Rng, ForkProducesIndependentStream) {
  rng a(77);
  rng b = a.fork();
  // The fork must not replay the parent's stream.
  rng a2(77);
  a2.next();  // advance past the fork draw
  EXPECT_NE(b.next(), a2.next());
}

}  // namespace
}  // namespace asyncrd
