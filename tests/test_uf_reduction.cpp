// Lemma 3.1: the Union-Find reduction.  The distributed Ad-hoc execution,
// driven by the lemma's wake-up sequence, must behave exactly like a
// sequential Union-Find structure.
#include <gtest/gtest.h>

#include "core/uf_reduction.h"
#include "graph/topology.h"
#include "unionfind/ackermann.h"

namespace asyncrd {
namespace {

TEST(UfReduction, NetworkSizeMatchesLemma) {
  // n sets, n-1 unions, m finds -> 2n - 1 + m nodes.
  const std::size_t n = 16, finds = 10;
  const auto sched = uf::random_schedule(n, finds, 3);
  core::uf_reduction red(n, sched);
  EXPECT_EQ(red.network_size(), 2 * n - 1 + finds);
}

TEST(UfReduction, SingleUnion) {
  std::vector<uf::uf_op> ops{{uf::uf_op::kind::unite, 0, 1}};
  core::uf_reduction red(2, ops);
  EXPECT_TRUE(red.execute()) << red.errors().front();
  EXPECT_EQ(red.leader_of(0), red.leader_of(1));
}

TEST(UfReduction, FindsReachTheLeader) {
  std::vector<uf::uf_op> ops{
      {uf::uf_op::kind::unite, 0, 1},
      {uf::uf_op::kind::find, 0, 0},
      {uf::uf_op::kind::unite, 1, 2},
      {uf::uf_op::kind::find, 2, 0},
  };
  core::uf_reduction red(3, ops);
  EXPECT_TRUE(red.execute()) << (red.errors().empty() ? "" : red.errors().front());
}

class UfReductionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(UfReductionSweep, AgreesWithSequentialUnionFind) {
  const auto [n, seed] = GetParam();
  const auto sched = uf::random_schedule(n, n, seed);
  core::uf_reduction red(n, sched);
  EXPECT_TRUE(red.execute())
      << (red.errors().empty() ? "" : red.errors().front());
  // After all n-1 unions every set shares one leader.
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_EQ(red.leader_of(0), red.leader_of(i)) << "set " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UfReductionSweep,
    ::testing::Combine(::testing::Values(4, 12, 32, 64),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(UfReduction, AdversarialScheduleStaysNearLinear) {
  // Theorem 2 / 6 sandwich: message count is Omega(N alpha) and O(N alpha)
  // for N = network size; audit the upper envelope with a generous constant.
  const std::size_t n = 128;
  const auto sched = uf::adversarial_schedule(n, n);
  core::uf_reduction red(n, sched);
  ASSERT_TRUE(red.execute())
      << (red.errors().empty() ? "" : red.errors().front());
  const auto total = red.statistics().total_messages();
  const double big_n = static_cast<double>(red.network_size());
  const double alpha = uf::inverse_ackermann(red.network_size(),
                                             red.network_size());
  EXPECT_LE(static_cast<double>(total), 16.0 * big_n * alpha);
  EXPECT_GE(total, red.network_size() - 1);  // someone must talk to everyone
}

TEST(UfReduction, GenericVariantAlsoPassesTheWorkload) {
  const std::size_t n = 24;
  const auto sched = uf::random_schedule(n, n / 2, 9);
  core::uf_reduction red(n, sched, core::variant::generic);
  EXPECT_TRUE(red.execute())
      << (red.errors().empty() ? "" : red.errors().front());
}

}  // namespace
}  // namespace asyncrd
