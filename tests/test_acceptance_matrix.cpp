// Pins the engine's selective-receive policy: which message types each
// node status consumes immediately versus defers.  This matrix IS the
// translation of the paper's blocking "wait for message" loops; changing
// a cell changes the protocol, so any edit must be deliberate.
//
// Driven through the public API: we park a node in each status via small
// crafted executions, deliver one message of each type, and observe
// whether it was consumed (state/effect changed or reply sent) or parked
// in the deferred queue.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::status_t;

/// Builds a settled 3-node adhoc run: leader 2, inactives 0 and 1.
struct settled {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  std::unique_ptr<core::discovery_run> run;

  explicit settled(core::variant v = core::variant::adhoc) {
    graph::digraph g;
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    cfg.algo = v;
    run = std::make_unique<core::discovery_run>(g, cfg, sched);
    run->wake_all();
    run->run();
  }
};

TEST(AcceptanceMatrix, InactiveConsumesQueries) {
  settled s;
  const node_id leader = s.run->leaders().front();
  const node_id member = leader == 0 ? 1 : 0;
  ASSERT_EQ(s.run->at(member).status(), status_t::inactive);
  // A query from the harness (impersonating the leader) must be answered
  // immediately, not deferred.
  sim::context ctx(s.run->net(), leader);
  ctx.send(member, sim::make_message<core::query_msg>(3));
  s.run->net().run_to_quiescence();
  EXPECT_FALSE(s.run->at(member).has_deferred());
  EXPECT_GT(s.run->statistics().messages_of("query_reply"), 0u);
}

TEST(AcceptanceMatrix, InactiveRoutesSearchImmediately) {
  settled s;
  const node_id leader = s.run->leaders().front();
  // Pick two distinct inactive members: `sender` initiates a (stale, lower
  // key) search targeted at `member`; the member must forward it along its
  // next pointer right away (queue head goes straight out), and the
  // leader's abort must come back and unwind the queue completely.
  node_id member = invalid_node, sender = invalid_node;
  for (const node_id v : s.run->ids())
    if (v != leader) (member == invalid_node ? member : sender) = v;
  ASSERT_NE(sender, invalid_node);
  const auto before = s.run->statistics().messages_of("search");
  sim::context ctx(s.run->net(), sender);
  ctx.send(member,
           sim::make_message<core::search_msg>(sender, 1, member, false));
  s.run->net().run_to_quiescence();
  EXPECT_GT(s.run->statistics().messages_of("search"), before);
  EXPECT_EQ(s.run->at(member).pending_queue_depth(), 0u);
  EXPECT_FALSE(s.run->at(member).has_deferred());
}

TEST(AcceptanceMatrix, LeaderInWaitAnswersSearch) {
  settled s;
  const node_id leader = s.run->leaders().front();
  ASSERT_EQ(s.run->at(leader).status(), status_t::wait);
  const auto before = s.run->statistics().messages_of("release");
  sim::context ctx(s.run->net(), leader == 2 ? 0 : 2);
  // A search from a lower key must be aborted via a release.
  ctx.send(leader, sim::make_message<core::search_msg>(
                       0, 1, leader, false));
  s.run->net().run_to_quiescence();
  EXPECT_GT(s.run->statistics().messages_of("release"), before);
  EXPECT_TRUE(s.run->at(leader).is_leader());  // lower key cannot conquer
}

TEST(AcceptanceMatrix, LeaderInWaitDefersNothingAtQuiescence) {
  settled s;
  for (const node_id v : s.run->ids())
    EXPECT_FALSE(s.run->at(v).has_deferred()) << "node " << v;
}

TEST(AcceptanceMatrix, TerminatedLeaderAnswersStragglerSearch) {
  settled s(core::variant::bounded);
  const node_id leader = s.run->leaders().front();
  ASSERT_EQ(s.run->at(leader).status(), status_t::terminated);
  const auto before = s.run->statistics().messages_of("release");
  sim::context ctx(s.run->net(), leader == 2 ? 0 : 2);
  ctx.send(leader,
           sim::make_message<core::search_msg>(0, 1, leader, false));
  s.run->net().run_to_quiescence();
  EXPECT_GT(s.run->statistics().messages_of("release"), before);
  EXPECT_EQ(s.run->at(leader).status(), status_t::terminated);
  EXPECT_FALSE(s.run->at(leader).has_deferred());
}

TEST(AcceptanceMatrix, TerminatedLeaderAcksReports) {
  settled s(core::variant::bounded);
  const node_id leader = s.run->leaders().front();
  const node_id member = leader == 0 ? 1 : 0;
  const auto before = s.run->statistics().messages_of("report_ack");
  sim::context ctx(s.run->net(), member);
  ctx.send(leader, sim::make_message<core::report_msg>(member));
  s.run->net().run_to_quiescence();
  EXPECT_GT(s.run->statistics().messages_of("report_ack"), before);
  // The terminated census must be untouched (done == component).
  EXPECT_EQ(s.run->at(leader).done().size(), 3u);
}

TEST(AcceptanceMatrix, LeaderAnswersProbeInWait) {
  settled s;
  const node_id leader = s.run->leaders().front();
  const node_id member = leader == 0 ? 1 : 0;
  sim::context ctx(s.run->net(), member);
  ctx.send(leader, sim::make_message<core::probe_msg>(member));
  s.run->net().run_to_quiescence();
  ASSERT_TRUE(s.run->at(member).last_census().has_value());
  EXPECT_EQ(s.run->at(member).last_census()->leader, leader);
}

TEST(AcceptanceMatrix, MemberReplyIgnoredWhenStale) {
  // A stray more/done reply must not corrupt a settled leader.
  settled s(core::variant::generic);
  const node_id leader = s.run->leaders().front();
  const node_id member = leader == 0 ? 1 : 0;
  const auto done_before = s.run->at(leader).done().size();
  sim::context ctx(s.run->net(), member);
  ctx.send(leader, sim::make_message<core::member_reply_msg>(true));
  s.run->net().run_to_quiescence();
  // Generic leader sits in WAIT: the reply is deferred (harmless) or
  // ignored — either way its sets must be unchanged.
  EXPECT_EQ(s.run->at(leader).done().size(), done_before);
  EXPECT_TRUE(s.run->at(leader).more().empty());
}

}  // namespace
}  // namespace asyncrd
