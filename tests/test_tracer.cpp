// The causal tracer: genealogy integrity, Lamport timestamps, fan-out
// accounting, and the Perfetto export schema.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.h"
#include "graph/topology.h"
#include "telemetry/critical_path.h"
#include "telemetry/json.h"
#include "telemetry/perfetto.h"
#include "telemetry/tracer.h"

namespace asyncrd {
namespace {

using telemetry::trace_event;
using telemetry::trace_none;

struct traced_run {
  std::vector<trace_event> events;
  sim::sim_time final_time = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t sends_observed = 0;
};

traced_run run_traced(const graph::digraph& g, sim::scheduler& sched) {
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  return {tr.events(), run.net().now(), run.statistics().total_messages(),
          tr.sends_observed()};
}

TEST(Tracer, EveryDeliveryHasAGenealogyBackToARoot) {
  sim::unit_delay_scheduler sched;
  const auto t = run_traced(graph::directed_path(5), sched);
  ASSERT_FALSE(t.events.empty());

  std::set<std::uint64_t> seen;
  for (const trace_event& e : t.events) {
    // Parents always precede children (causes complete before effects).
    if (e.cause != trace_none) {
      EXPECT_TRUE(seen.contains(e.cause));
    }
    if (e.release != trace_none) {
      EXPECT_TRUE(seen.contains(e.release));
    }
    EXPECT_TRUE(seen.insert(e.id).second) << "duplicate activation id";
    if (e.what == trace_event::kind::deliver) {
      // Every delivery was caused by the send inside some activation
      // (wake_all runs have no driver sends).
      EXPECT_NE(e.cause, trace_none);
      EXPECT_FALSE(e.type.empty());
      EXPECT_LT(e.sent_at, e.at);  // delays are >= 1
      EXPECT_GT(e.bits, 0u);
    } else {
      // Initial wakes are causal roots.
      EXPECT_EQ(e.cause, trace_none);
      EXPECT_EQ(e.lamport, 1u);
    }
  }
}

TEST(Tracer, LamportIsParentDepthPlusOne) {
  sim::random_delay_scheduler sched(7);
  const auto t = run_traced(graph::random_weakly_connected(12, 14, 7), sched);
  std::map<std::uint64_t, std::uint64_t> depth;
  for (const trace_event& e : t.events) {
    const auto parent_depth = [&](std::uint64_t id) -> std::uint64_t {
      return id == trace_none ? 0 : depth.at(id);
    };
    EXPECT_EQ(e.lamport,
              std::max(parent_depth(e.cause), parent_depth(e.release)) + 1);
    // One causal hop costs at least one sim-time unit, so causal depth
    // never exceeds virtual time.
    EXPECT_LE(e.lamport, e.at);
    depth[e.id] = e.lamport;
  }
}

TEST(Tracer, CountsMatchTheRunStatistics) {
  sim::unit_delay_scheduler sched;
  const auto t = run_traced(graph::random_weakly_connected(20, 25, 3), sched);

  std::uint64_t wakes = 0, delivers = 0, fanout_sum = 0;
  for (const trace_event& e : t.events) {
    (e.what == trace_event::kind::wake ? wakes : delivers) += 1;
    fanout_sum += e.sends;
  }
  EXPECT_EQ(wakes, 20u);
  // Reliable network + quiescence: every sent message was delivered, and
  // every send happened inside some traced activation.
  EXPECT_EQ(delivers, t.total_messages);
  EXPECT_EQ(t.sends_observed, t.total_messages);
  EXPECT_EQ(fanout_sum, t.total_messages);
}

TEST(Tracer, FindAndClear) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(graph::directed_path(3), cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  run.run();
  ASSERT_FALSE(tr.events().empty());
  const trace_event& first = tr.events().front();
  ASSERT_NE(tr.find(first.id), nullptr);
  EXPECT_EQ(tr.find(first.id)->id, first.id);
  EXPECT_EQ(tr.find(~0ull - 1), nullptr);
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.max_lamport(), 0u);
}

TEST(Tracer, PerfettoExportIsWellFormed) {
  sim::unit_delay_scheduler sched;
  const auto t = run_traced(graph::random_weakly_connected(10, 12, 5), sched);
  const std::string doc =
      telemetry::perfetto_trace_json(t.events, "unit_test");

  std::string err;
  const auto parsed = telemetry::json_parse(doc, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  ASSERT_TRUE(parsed->is_object());
  const auto* evs = parsed->find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());
  EXPECT_NE(parsed->find("displayTimeUnit"), nullptr);

  std::size_t slices = 0, flow_s = 0, flow_f = 0, thread_names = 0;
  std::set<double> tracks;
  for (const auto& ev : evs->as_array()) {
    ASSERT_TRUE(ev.is_object());
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string& phase = ph->as_string();
    if (phase == "X") {
      ++slices;
      tracks.insert(ev.find("tid")->as_number());
      ASSERT_NE(ev.find("args"), nullptr);
      EXPECT_NE(ev.find("args")->find("lamport"), nullptr);
    } else if (phase == "s") {
      ++flow_s;
    } else if (phase == "f") {
      ++flow_f;
    } else if (phase == "M" &&
               ev.find("name")->as_string() == "thread_name") {
      ++thread_names;
    }
  }
  EXPECT_EQ(slices, t.events.size());
  // One flow arrow (s/f pair) per traced message delivery.
  std::size_t delivers = 0;
  for (const auto& e : t.events)
    if (e.what == trace_event::kind::deliver) ++delivers;
  EXPECT_EQ(flow_s, delivers);
  EXPECT_EQ(flow_f, delivers);
  // One named track per node.
  EXPECT_EQ(thread_names, 10u);
  EXPECT_EQ(tracks.size(), 10u);
}

TEST(Tracer, DriverSendsAfterQuiescenceAreReleaseAnchored) {
  // A probe issued between runs is a driver action: its deliveries carry a
  // release edge to the last completed activation, not a genealogy cause.
  const auto g = graph::random_weakly_connected(8, 10, 2);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  run.run();
  const std::size_t before = tr.events().size();
  ASSERT_GT(before, 0u);
  run.probe(g.nodes().front());
  run.net().run_to_quiescence();
  ASSERT_GT(tr.events().size(), before);
  const trace_event& first_probe_hop = tr.events()[before];
  EXPECT_EQ(first_probe_hop.cause, trace_none);
  EXPECT_NE(first_probe_hop.release, trace_none);
}

}  // namespace
}  // namespace asyncrd
