// Node removals (§7's open problem, treated as crash-stop + regroup; see
// core/regroup.h).
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/regroup.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::variant;

TEST(Regroup, SurvivingKnowledgeIsRicherThanE0) {
  // After discovery, survivors know far more than their initial edges:
  // every member knows the leader, the leader knows everyone.
  const auto g = graph::directed_path(10);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto sk = core::surviving_knowledge(run, {});
  EXPECT_EQ(sk.node_count(), 10u);
  EXPECT_GT(sk.edge_count(), g.edge_count());
  EXPECT_TRUE(sk.is_weakly_connected());
}

TEST(Regroup, RemovingTheLeaderStillRegroups) {
  const auto g = graph::random_weakly_connected(30, 40, 3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const node_id old_leader = run.leaders().front();

  sim::unit_delay_scheduler sched2;
  auto after = core::regroup_after_removal(run, {old_leader}, cfg, sched2);
  const auto survivors = core::surviving_knowledge(run, {old_leader});
  const auto rep = core::check_final_state(*after, survivors);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(after->leaders().size(), 1u);
  EXPECT_NE(after->leaders().front(), old_leader);
  EXPECT_EQ(after->ids().size(), 29u);
}

TEST(Regroup, MassiveFailureStillRegroupsRemainder) {
  // Kill two thirds of the system (the paper's "many of the nodes were
  // reset or totally removed" scenario).
  const auto g = graph::random_weakly_connected(60, 120, 9);
  sim::random_delay_scheduler sched(4);
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  std::set<node_id> removed;
  for (node_id v = 0; v < 40; ++v) removed.insert(v);
  sim::random_delay_scheduler sched2(5);
  auto after = core::regroup_after_removal(run, removed, cfg, sched2);
  const auto survivors = core::surviving_knowledge(run, removed);
  const auto rep = core::check_final_state(*after, survivors);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(after->ids().size(), 20u);
}

TEST(Regroup, SurvivorsMayFragmentIntoComponents) {
  // Removals can disconnect the survivors' knowledge graph; regroup then
  // legitimately yields one leader per surviving component.
  graph::digraph g;  // a path 0-1-2-3-4; removing 2 can split knowledge
  for (node_id v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  // After full discovery everyone knows the leader, so survivors usually
  // stay connected — the leader is the hub.  Remove leader AND node 2:
  const node_id leader = run.leaders().front();
  std::set<node_id> removed{leader, 2};
  sim::unit_delay_scheduler sched2;
  auto after = core::regroup_after_removal(run, removed, cfg, sched2);
  const auto survivors = core::surviving_knowledge(run, removed);
  const auto rep = core::check_final_state(*after, survivors);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(after->leaders().size(), survivors.weak_components().size());
}

TEST(Regroup, RegroupCostComparableToFreshDiscovery) {
  const auto g = graph::random_weakly_connected(80, 120, 13);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  std::set<node_id> removed;
  for (node_id v = 0; v < 20; ++v) removed.insert(v);
  sim::unit_delay_scheduler sched2;
  auto after = core::regroup_after_removal(run, removed, cfg, sched2);
  // Survivors' knowledge is denser than E0, but the regroup must stay in
  // the same near-linear regime (O(n alpha) messages with our constants).
  EXPECT_LE(after->statistics().total_messages(), 20u * 60u);
}

TEST(Regroup, ForestDotRendersLeadersAndPointers) {
  const auto g = graph::directed_path(5);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const std::string dot = core::forest_to_dot(run);
  EXPECT_NE(dot.find("digraph discovery_forest"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the leader
  // Every non-leader contributes one pointer edge.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1))
    ++arrows;
  EXPECT_EQ(arrows, 4u);
}

TEST(Regroup, EmptyRemovalIsAFreshRunOverLearnedKnowledge) {
  const auto g = graph::star_out(12);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  sim::unit_delay_scheduler sched2;
  auto again = core::regroup_after_removal(run, {}, cfg, sched2);
  EXPECT_EQ(again->leaders().size(), 1u);
  EXPECT_EQ(again->ids().size(), 12u);
}

}  // namespace
}  // namespace asyncrd
