// The wake-up model (§1.2): "There is no global initialization time; nodes
// begin asynchronously and may wake-up nearby neighbors.  Thus the wake-up
// time complexity is Ω(n)."
//
// These tests pin the model's reachability semantics: messages wake their
// receivers, so a single explicit wake cascades along knowledge edges —
// but only along them.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

TEST(WakeupModel, SingleWakeCascadesAlongOutEdges) {
  // star_out: the center knows everyone; waking only the center must wake
  // (and fully discover) the entire component.
  const auto g = graph::star_out(15);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.net().wake(0);
  run.run();
  for (const node_id v : run.ids()) EXPECT_TRUE(run.net().is_awake(v));
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(WakeupModel, SingleWakeCannotReachUnknownNodes) {
  // star_in: leaves know the center but nobody knows the leaves.  Waking
  // one leaf reaches the center, but the other leaves stay asleep — the
  // model's liveness property is conditioned on "when all nodes are
  // awake" precisely because of executions like this.
  const auto g = graph::star_in(10);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.net().wake(1);
  run.run();
  EXPECT_TRUE(run.net().is_awake(1));
  EXPECT_TRUE(run.net().is_awake(0));  // woken by 1's search
  for (node_id v = 2; v < 10; ++v)
    EXPECT_FALSE(run.net().is_awake(v)) << "node " << v;

  // Waking the stragglers completes discovery normally.
  for (node_id v = 2; v < 10; ++v) run.net().wake(v);
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(WakeupModel, PathWakeCascadeTakesLinearTime) {
  // Wake only the head of a directed path: the cascade must traverse all n
  // hops, so quiescence time grows linearly — the Ω(n) wake-up bound.
  const auto t = [](std::size_t n) {
    const auto g = graph::directed_path(n);
    sim::unit_delay_scheduler sched;
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.net().wake(0);
    run.run();
    // The path points away from 0, so the cascade reaches everyone.
    for (const node_id v : run.net().node_ids())
      EXPECT_TRUE(run.net().is_awake(v)) << v;
    return run.net().now();
  };
  const auto t32 = t(32);
  const auto t128 = t(128);
  EXPECT_GE(t128, 3 * t32);  // superlinear in no case; ~4x expected
}

TEST(WakeupModel, LateWakersJoinCleanly) {
  // Half the nodes wake at t=0, the rest only after the first half has
  // fully quiesced; the final state must still satisfy the spec.
  const auto g = graph::random_weakly_connected(30, 45, 6);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  const auto ids = run.ids();
  for (std::size_t i = 0; i < ids.size() / 2; ++i) run.net().wake(ids[i]);
  run.run();
  for (std::size_t i = ids.size() / 2; i < ids.size(); ++i)
    if (!run.net().is_awake(ids[i])) run.net().wake(ids[i]);
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(WakeupModel, EveryPermutationOfAFixedSmallGraphConverges) {
  // Exhaustive wake-order sweep on a 5-node graph: all 120 permutations.
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 3);
  std::vector<node_id> order{0, 1, 2, 3, 4};
  do {
    core::sequential_wakeup_scheduler sched(order);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.net().wake(order.front());
    run.run();
    const auto rep = core::check_final_state(run, g);
    ASSERT_TRUE(rep.ok()) << "order " << order[0] << order[1] << order[2]
                          << order[3] << order[4] << ":\n"
                          << rep.to_string();
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace asyncrd
