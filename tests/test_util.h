// Shared helpers for the algorithm test suites: run one execution with full
// instrumentation (final-state checker, Lemma 5.1 liveness monitor, Figure 1
// transition recorder, knowledge-graph discipline audit) and assert all of
// it inside gtest.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/checker.h"
#include "core/runner.h"
#include "core/trace.h"
#include "graph/digraph.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace asyncrd::testing {

/// Audits the knowledge-graph discipline: every send must target a node the
/// sender has already learned about.  Chained behind the liveness monitor.
class knowledge_audit final : public sim::observer {
 public:
  knowledge_audit(const core::discovery_run& run, sim::observer* chain)
      : run_(&run), chain_(chain) {}

  void on_send(sim::sim_time t, node_id from, node_id to,
               const sim::message& m) override {
    if (!run_->at(from).knows_id(to)) {
      ++violations_;
      if (detail_.empty())
        detail_ = std::to_string(from) + " -> " + std::to_string(to) + " (" +
                  std::string(m.type_name()) + ")";
    }
    if (chain_ != nullptr) chain_->on_send(t, from, to, m);
  }
  const std::string& first_violation() const noexcept { return detail_; }
  void on_deliver(sim::sim_time t, node_id from, node_id to,
                  const sim::message& m) override {
    if (chain_ != nullptr) chain_->on_deliver(t, from, to, m);
  }
  void on_wake(sim::sim_time t, node_id v) override {
    if (chain_ != nullptr) chain_->on_wake(t, v);
  }

  int violations() const noexcept { return violations_; }

 private:
  const core::discovery_run* run_;
  sim::observer* chain_;
  int violations_ = 0;
  std::string detail_;
};

struct instrumented_result {
  core::run_summary summary;
  core::transition_recorder transitions;
};

/// Runs `algo` on `g` with every monitor armed; any violation fails the
/// current gtest assertion context.  Returns the summary for further checks.
inline instrumented_result run_instrumented(const graph::digraph& g,
                                            core::variant algo,
                                            std::uint64_t seed,
                                            bool check_bounds = true) {
  instrumented_result out;

  std::unique_ptr<sim::scheduler> sched;
  if (seed == 0)
    sched = std::make_unique<sim::unit_delay_scheduler>();
  else
    sched = std::make_unique<sim::random_delay_scheduler>(seed);

  core::config cfg;
  cfg.algo = algo;
  cfg.trace = &out.transitions;
  core::discovery_run run(g, cfg, *sched);

  core::liveness_monitor live(run, g.weak_components());
  core::structure_monitor structure(run, &live);
  knowledge_audit audit(run, &structure);
  run.net().set_observer(&audit);

  run.wake_all();
  const sim::run_result r = run.run();
  EXPECT_TRUE(r.completed) << "event cap exceeded";

  const core::check_report rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_TRUE(live.ok()) << live.violations().front();
  EXPECT_TRUE(structure.ok()) << structure.violations().front();
  EXPECT_EQ(audit.violations(), 0)
      << "knowledge-graph discipline violated: " << audit.first_violation();
  EXPECT_TRUE(out.transitions.illegal_edges().empty())
      << "illegal state transition: "
      << core::edge_to_string(out.transitions.illegal_edges().front());

  if (check_bounds) {
    for (const auto& row :
         core::check_message_bounds(run.statistics(), g.node_count(), algo)) {
      EXPECT_TRUE(row.ok()) << row.name << ": measured " << row.measured
                            << " > cap " << row.cap;
    }
  }

  out.summary.messages = run.statistics().total_messages();
  out.summary.bits = run.statistics().total_bits();
  out.summary.events = r.events_processed;
  out.summary.leaders = run.leaders();
  out.summary.completed = r.completed;
  return out;
}

}  // namespace asyncrd::testing
