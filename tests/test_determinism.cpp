// Reproducibility guarantees: identical configuration + seed must replay
// the exact same execution (event order, message counts, final state).
// Every benchmark number in EXPERIMENTS.md depends on this.
#include <gtest/gtest.h>

#include <tuple>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "telemetry/report.h"

namespace asyncrd {
namespace {

using core::variant;

core::run_summary one(const graph::digraph& g, variant v, std::uint64_t seed) {
  return core::run_discovery(g, v, seed);
}

TEST(Determinism, IdenticalSeedsReplayExactly) {
  const auto g = graph::random_weakly_connected(80, 160, 9);
  for (const auto v :
       {variant::generic, variant::bounded, variant::adhoc}) {
    const auto a = one(g, v, 12345);
    const auto b = one(g, v, 12345);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.bits, b.bits);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.completion_time, b.completion_time);
    EXPECT_EQ(a.leaders, b.leaders);
  }
}

TEST(Determinism, UnitDelayCanonicalExecution) {
  const auto g = graph::random_weakly_connected(50, 100, 3);
  const auto a = one(g, variant::generic, 0);
  const auto b = one(g, variant::generic, 0);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.leaders, b.leaders);
}

TEST(Determinism, DifferentSeedsUsuallyDifferButStayCorrect) {
  const auto g = graph::random_weakly_connected(60, 120, 5);
  std::set<std::uint64_t> counts;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = one(g, variant::generic, seed);
    EXPECT_EQ(s.leaders.size(), 1u) << "seed " << seed;
    counts.insert(s.messages);
  }
  // Asynchrony matters: different interleavings change the message count.
  EXPECT_GT(counts.size(), 1u);
}

TEST(Determinism, LeaderIdenticalUnderAllSchedulesWithPhasesOff) {
  // With phases ablated, conquest order is id-dominated: the max id always
  // wins regardless of scheduling.  (With phases on, the *identity* of the
  // leader may legitimately vary by interleaving; only uniqueness is
  // specified.)
  const auto g = graph::random_weakly_connected(30, 60, 7);
  node_id expected = 29;
  for (std::uint64_t seed = 0; seed <= 8; ++seed) {
    sim::unit_delay_scheduler unit;
    sim::random_delay_scheduler random(seed == 0 ? 1 : seed);
    sim::scheduler& sched = seed == 0
                                ? static_cast<sim::scheduler&>(unit)
                                : static_cast<sim::scheduler&>(random);
    core::config cfg;
    cfg.use_phases = false;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    ASSERT_EQ(run.leaders().size(), 1u);
    EXPECT_EQ(run.leaders().front(), expected) << "seed " << seed;
  }
}

TEST(Determinism, ChaosExecutionsReplayByteForByte) {
  // The chaos transport must not cost reproducibility: same plan seed =>
  // same drops, same retransmissions, same execution — bit for bit.
  const auto g = graph::random_weakly_connected(40, 80, 21);
  const auto run_once = [&]() {
    sim::random_delay_scheduler sched(21);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    sim::fault_plan plan;
    plan.seed = 21;
    plan.drop = 0.2;
    plan.duplicate = 0.1;
    plan.reorder_slack = 24;
    plan.outage_period = 256;
    plan.outage_duration = 32;
    run.enable_chaos(plan);
    run.wake_all();
    const auto r = run.run();
    EXPECT_TRUE(r.completed);
    const auto& f = run.net().faults();
    const auto& rl = run.reliable_links()->stats();
    return std::tuple{run.statistics().total_messages(),
                      run.statistics().total_bits(),
                      r.events_processed,
                      run.net().now(),
                      run.leaders(),
                      f.transmissions,
                      f.drops,
                      f.outage_drops,
                      f.duplicates,
                      f.reorder_delay,
                      rl.retransmits,
                      rl.acks_sent,
                      rl.dup_suppressed};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, WireModeIsObservationallyIdenticalToStructMode) {
  // The wire codec must be a pure transport representation change: with the
  // wire.* counters excluded, a wire-mode run's full telemetry report —
  // stats, bit accounting, load histogram, state transitions — must equal
  // the struct-mode report byte for byte, for every variant.
  const auto g = graph::random_weakly_connected(60, 120, 17);
  for (const auto v : {variant::generic, variant::bounded, variant::adhoc}) {
    const auto report_once = [&](bool wire) {
      sim::random_delay_scheduler sched(17);
      core::config cfg;
      cfg.algo = v;
      core::discovery_run run(g, cfg, sched);
      if (wire) run.enable_wire();
      run.wake_all();
      const sim::run_result r = run.run();
      EXPECT_TRUE(r.completed);
      telemetry::run_report rep = telemetry::collect_run_report(run, r);
      rep.wall_ms = 0.0;  // host clock
      rep.events_per_sec = 0.0;
      rep.wire = {};  // the only intended observable difference
      return rep.to_json();
    };
    EXPECT_EQ(report_once(true), report_once(false))
        << "variant " << static_cast<int>(v);
  }
}

TEST(Determinism, WireChaosExecutionsReplayByteForByte) {
  // Wire framing under a lossy transport: replays must match frame for
  // frame, byte counter for byte counter.
  const auto g = graph::random_weakly_connected(40, 80, 23);
  const auto run_once = [&]() {
    sim::random_delay_scheduler sched(23);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.enable_wire();
    sim::fault_plan plan;
    plan.seed = 23;
    plan.drop = 0.15;
    plan.duplicate = 0.1;
    plan.reorder_slack = 16;
    run.enable_chaos(plan);
    run.wake_all();
    const auto r = run.run();
    EXPECT_TRUE(r.completed);
    return std::tuple{run.statistics().total_messages(),
                      run.statistics().total_bits(),
                      r.events_processed,
                      run.net().now(),
                      run.leaders(),
                      run.net().wire_bytes_sent(),
                      run.net().wire_frames()};
  };
  const auto a = run_once();
  EXPECT_GT(std::get<5>(a), 0u);  // wire mode was actually on
  EXPECT_EQ(a, run_once());
}

TEST(Determinism, StatsByTypeReplayExactly) {
  const auto g = graph::directed_binary_tree(6);
  const auto run_once = [&]() {
    sim::random_delay_scheduler sched(77);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    std::map<std::string, std::uint64_t> out;
    for (const auto& [k, v] : run.statistics().by_type()) out[k] = v.count;
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace asyncrd
