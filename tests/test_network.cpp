// Simulator substrate tests: FIFO discipline, wake semantics, sender
// blocking, quiescence hooks, accounting plumbing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/network.h"

namespace asyncrd {
namespace {

struct tag_msg final : sim::message {
  explicit tag_msg(int v) : value(v) {}
  int value;
  std::string_view type_name() const noexcept override { return "tag"; }
  std::size_t id_fields() const noexcept override { return 0; }
  std::size_t int_fields() const noexcept override { return 1; }
};

/// Records deliveries; optionally echoes each message once to a peer.
class recorder_process final : public sim::process {
 public:
  void on_wake(sim::context&) override { woke = true; }
  void on_message(sim::context& ctx, node_id from,
                  const sim::message_ptr& m) override {
    const auto& t = static_cast<const tag_msg&>(*m);
    received.emplace_back(from, t.value);
    if (echo_to != invalid_node && t.value < echo_limit)
      ctx.send(echo_to, sim::make_message<tag_msg>(t.value + 1));
  }
  bool woke = false;
  std::vector<std::pair<node_id, int>> received;
  node_id echo_to = invalid_node;
  int echo_limit = 0;
};

/// Sends a burst of tagged messages on wake.
class burst_process final : public sim::process {
 public:
  burst_process(node_id to, int count) : to_(to), count_(count) {}
  void on_wake(sim::context& ctx) override {
    for (int i = 0; i < count_; ++i)
      ctx.send(to_, sim::make_message<tag_msg>(i));
  }
  void on_message(sim::context&, node_id, const sim::message_ptr&) override {}

 private:
  node_id to_;
  int count_;
};

TEST(Network, FifoPerChannelUnderUnitDelay) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 50));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.wake(1);
  net.run();
  ASSERT_EQ(rec_ptr->received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rec_ptr->received[static_cast<size_t>(i)].second, i);
}

TEST(Network, FifoPerChannelUnderRandomDelay) {
  // FIFO must hold even when the scheduler draws wildly different delays.
  sim::random_delay_scheduler sched(99, 1, 1000);
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 200));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.wake(1);
  net.run();
  ASSERT_EQ(rec_ptr->received.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rec_ptr->received[static_cast<size_t>(i)].second, i);
}

TEST(Network, MessageDeliveryWakesSleepingReceiver) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 1));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.wake(1);  // node 2 is never woken explicitly
  net.run();
  EXPECT_TRUE(rec_ptr->woke);
  EXPECT_TRUE(net.is_awake(2));
  EXPECT_EQ(rec_ptr->received.size(), 1u);
}

TEST(Network, BlockedSenderHoldsTrafficUntilUnblocked) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 3));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.block_sender(1);
  net.wake(1);
  net.run_to_quiescence();
  EXPECT_TRUE(rec_ptr->received.empty());
  EXPECT_FALSE(net.channels_empty());
  net.unblock_sender(1);
  net.run_to_quiescence();
  ASSERT_EQ(rec_ptr->received.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rec_ptr->received[static_cast<size_t>(i)].second, i);
  EXPECT_TRUE(net.channels_empty());
}

TEST(Network, BlockSenderAfterTrafficThrows) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 1));
  net.add_node(2, std::make_unique<recorder_process>());
  net.wake(1);
  net.run_to_quiescence();
  // Channel 1->2 is drained, so blocking is fine again; put a message in
  // flight first to trigger the guard.
  net.block_sender(1);  // empty channels: ok
  net.unblock_sender(1);
  sim::context ctx(net, 1);
  ctx.send(2, sim::make_message<tag_msg>(7));
  EXPECT_THROW(net.block_sender(1), std::logic_error);
}

TEST(Network, QuiescenceHookInjectsWork) {
  class wake_two_later final : public sim::scheduler {
   public:
    sim::sim_time delay(node_id, node_id, const sim::message&) override {
      return 1;
    }
    bool on_quiescence(sim::network& net) override {
      if (fired) return false;
      fired = true;
      net.wake(2);
      return true;
    }
    bool fired = false;
  };
  wake_two_later sched;
  sim::network net(sched);
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.add_node(1, std::make_unique<burst_process>(2, 0));
  net.wake(1);
  const auto r = net.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(sched.fired);
  EXPECT_TRUE(rec_ptr->woke);
}

TEST(Network, StuckQuiescenceHookAborts) {
  class liar final : public sim::scheduler {
   public:
    sim::sim_time delay(node_id, node_id, const sim::message&) override {
      return 1;
    }
    bool on_quiescence(sim::network&) override { return true; }  // never injects
  };
  liar sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<recorder_process>());
  const auto r = net.run();
  EXPECT_FALSE(r.completed);
}

TEST(Network, EventCapReportsIncomplete) {
  // Two nodes ping-pong forever.
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  auto a = std::make_unique<recorder_process>();
  a->echo_to = 2;
  a->echo_limit = 1 << 30;
  auto b = std::make_unique<recorder_process>();
  b->echo_to = 1;
  b->echo_limit = 1 << 30;
  net.add_node(1, std::move(a));
  net.add_node(2, std::move(b));
  net.wake(1);
  net.wake(2);
  sim::context ctx(net, 1);
  ctx.send(2, sim::make_message<tag_msg>(0));
  const auto r = net.run(/*max_events=*/500);
  EXPECT_FALSE(r.completed);
}

TEST(Network, DuplicateNodeIdRejected) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<recorder_process>());
  EXPECT_THROW(net.add_node(1, std::make_unique<recorder_process>()),
               std::invalid_argument);
}

TEST(Network, SendToUnknownNodeRejected) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<recorder_process>());
  sim::context ctx(net, 1);
  EXPECT_THROW(ctx.send(99, sim::make_message<tag_msg>(0)),
               std::invalid_argument);
}

TEST(Network, WakeUnknownNodeRejected) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  EXPECT_THROW(net.wake(5), std::invalid_argument);
}

TEST(Network, ObserverSeesSendsAndDeliveries) {
  class counting_observer final : public sim::observer {
   public:
    void on_send(sim::sim_time, node_id, node_id, const sim::message&) override {
      ++sends;
    }
    void on_deliver(sim::sim_time, node_id, node_id,
                    const sim::message&) override {
      ++delivers;
    }
    void on_wake(sim::sim_time, node_id) override { ++wakes; }
    int sends = 0, delivers = 0, wakes = 0;
  };
  counting_observer obs;
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 5));
  net.add_node(2, std::make_unique<recorder_process>());
  net.set_observer(&obs);
  net.wake(1);
  net.run();
  EXPECT_EQ(obs.sends, 5);
  EXPECT_EQ(obs.delivers, 5);
  EXPECT_EQ(obs.wakes, 2);  // node 1 explicit, node 2 via delivery
}

TEST(Network, StatsCountAtSendTime) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 4));
  net.add_node(2, std::make_unique<recorder_process>());
  net.block_sender(1);
  net.wake(1);
  net.run_to_quiescence();
  // Messages are counted when sent, even while held by the adversary.
  EXPECT_EQ(net.statistics().messages_of("tag"), 4u);
}

// Regression (unblock_sender): every held message must be shown to the
// scheduler individually.  The bug passed the channel *head* to
// scheduler::delay for each held message, so message-dependent schedulers
// mis-delayed all but the first.
TEST(Network, UnblockDelaysEachHeldMessageIndividually) {
  class value_delay final : public sim::scheduler {
   public:
    sim::sim_time delay(node_id, node_id, const sim::message& m) override {
      const int v = static_cast<const tag_msg&>(m).value;
      seen.push_back(v);
      return static_cast<sim::sim_time>(v) + 1;
    }
    std::vector<int> seen;
  };
  value_delay sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 3));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.block_sender(1);
  net.wake(1);
  net.run_to_quiescence();
  EXPECT_TRUE(sched.seen.empty());  // held sends consult no delays
  net.unblock_sender(1);
  // The release must have consulted the scheduler once per held message,
  // with *that* message — not the channel head three times.
  ASSERT_EQ(sched.seen, (std::vector<int>{0, 1, 2}));
  net.run_to_quiescence();
  ASSERT_EQ(rec_ptr->received.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(rec_ptr->received[static_cast<size_t>(i)].second, i);
}

// Regression (delay clamping): scheduler::delay's ">= 1" contract is
// enforced in exactly one place (network::scheduled_delay).  Debug builds
// assert; release builds clamp to 1 so simulated time stays strictly
// monotone even under a misbehaving scheduler.
TEST(Network, ZeroDelayIsClampedAtTheSingleEnforcementPoint) {
  class zero_delay final : public sim::scheduler {
   public:
    sim::sim_time delay(node_id, node_id, const sim::message&) override {
      return 0;
    }
  };
  zero_delay sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 2));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  net.wake(1);
  EXPECT_DEBUG_DEATH(net.run(), "delays are >= 1");
#ifdef NDEBUG
  // Release: the clamp delivered everything strictly after the send tick.
  ASSERT_EQ(rec_ptr->received.size(), 2u);
  EXPECT_GE(net.now(), 2u);  // wake at 1, clamped deliveries at >= 2
#else
  (void)rec_ptr;
#endif
}

// Regression (manual-mode wake causality): a wake requested from inside an
// activation must carry that activation as its causal anchor through the
// pending-wake map.  The bug dropped current_anchor() on the floor, so the
// tracer reported every manually-fired wake as a causal root.
TEST(Network, ManualWakeCarriesRequestingActivationAsCause) {
  class wake_requester final : public sim::process {
   public:
    void on_wake(sim::context&) override { net->wake(target); }
    void on_message(sim::context&, node_id,
                    const sim::message_ptr&) override {}
    sim::network* net = nullptr;
    node_id target = invalid_node;
  };
  class anchor_probe final : public sim::observer {
   public:
    void on_wake(sim::sim_time, node_id id) override {
      const auto& ctx = net->trace_ctx();
      ids.push_back(ctx.event_id);
      causes.push_back(ctx.cause);
      woken.push_back(id);
    }
    const sim::network* net = nullptr;
    std::vector<std::uint64_t> ids, causes;
    std::vector<node_id> woken;
  };
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.set_manual_mode();
  auto req = std::make_unique<wake_requester>();
  req->net = &net;
  req->target = 2;
  net.add_node(1, std::move(req));
  net.add_node(2, std::make_unique<recorder_process>());
  anchor_probe probe;
  probe.net = &net;
  net.add_observer(&probe);

  net.wake(1);  // requested outside any activation: a genuine root
  auto opts = net.manual_options();
  ASSERT_EQ(opts.size(), 1u);
  net.take_step(opts[0]);  // node 1 wakes and requests wake(2)

  opts = net.manual_options();
  ASSERT_EQ(opts.size(), 1u);
  EXPECT_TRUE(opts[0].is_wake);
  EXPECT_EQ(opts[0].a, 2u);
  net.take_step(opts[0]);

  ASSERT_EQ(probe.woken, (std::vector<node_id>{1, 2}));
  EXPECT_EQ(probe.causes[0], sim::trace_context::none);  // true root
  // Node 2's wake descends from node 1's activation, not from nowhere.
  EXPECT_EQ(probe.causes[1], probe.ids[0]);
}

TEST(Network, TimeAdvancesMonotonically) {
  sim::random_delay_scheduler sched(5, 1, 9);
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 10));
  auto rec = std::make_unique<recorder_process>();
  net.add_node(2, std::move(rec));
  net.wake(1);
  const auto before = net.now();
  net.run();
  EXPECT_GT(net.now(), before);
}

// ------------------------------------------------------------- chaos faults

TEST(ChaosTransport, FullDropLosesEverythingAndCounts) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 25));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  sim::fault_plan plan;
  plan.drop = 1.0;
  net.set_fault_plan(plan);
  net.wake(1);
  net.run();
  EXPECT_TRUE(rec_ptr->received.empty());
  EXPECT_TRUE(net.channels_empty());  // dropped, not leaked
  EXPECT_EQ(net.faults().transmissions, 25u);
  EXPECT_EQ(net.faults().drops, 25u);
  // Stats count at send time: the loss is visible as sends without
  // deliveries, which is exactly what the overhead accounting needs.
  EXPECT_EQ(net.statistics().total_messages(), 25u);
}

TEST(ChaosTransport, DuplicateDeliversBothCopiesInOrder) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 10));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  sim::fault_plan plan;
  plan.duplicate = 1.0;
  net.set_fault_plan(plan);
  net.wake(1);
  net.run();
  ASSERT_EQ(rec_ptr->received.size(), 20u);
  EXPECT_EQ(net.faults().duplicates, 10u);
  // FIFO is structural, so the copy rides right behind its original.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rec_ptr->received[static_cast<size_t>(2 * i)].second, i);
    EXPECT_EQ(rec_ptr->received[static_cast<size_t>(2 * i + 1)].second, i);
  }
}

TEST(ChaosTransport, PermanentOutageBlackholesTheLink) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 5));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  sim::fault_plan plan;
  plan.outage_period = 16;
  plan.outage_duration = 16;  // down 16 of every 16 ticks: always down
  net.set_fault_plan(plan);
  net.wake(1);
  net.run();
  EXPECT_TRUE(rec_ptr->received.empty());
  EXPECT_EQ(net.faults().outage_drops, 5u);
  EXPECT_EQ(net.faults().drops, 0u);
}

TEST(ChaosTransport, ReorderSlackKeepsPerChannelFifo) {
  sim::random_delay_scheduler sched(3);
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 100));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  sim::fault_plan plan;
  plan.reorder_slack = 500;
  net.set_fault_plan(plan);
  net.wake(1);
  net.run();
  ASSERT_EQ(rec_ptr->received.size(), 100u);
  EXPECT_GT(net.faults().reorder_delay, 0u);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(rec_ptr->received[static_cast<size_t>(i)].second, i);
}

TEST(ChaosTransport, ReleasePathRollsTheFaultPlanToo) {
  // Held messages go on the wire at unblock time — the second choke point.
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 8));
  auto rec = std::make_unique<recorder_process>();
  auto* rec_ptr = rec.get();
  net.add_node(2, std::move(rec));
  sim::fault_plan plan;
  plan.drop = 1.0;
  net.set_fault_plan(plan);
  net.block_sender(1);
  net.wake(1);
  net.run_to_quiescence();
  EXPECT_FALSE(net.channels_empty());  // held, not yet ruled on
  EXPECT_EQ(net.faults().drops, 0u);
  net.unblock_sender(1);
  net.run_to_quiescence();
  EXPECT_TRUE(rec_ptr->received.empty());
  EXPECT_EQ(net.faults().drops, 8u);
  EXPECT_TRUE(net.channels_empty());
}

TEST(ChaosTransport, FaultStreamsAreDeterministicPerSeed) {
  const auto once = [](std::uint64_t seed) {
    sim::unit_delay_scheduler sched;
    sim::network net(sched);
    net.add_node(1, std::make_unique<burst_process>(2, 200));
    net.add_node(2, std::make_unique<recorder_process>());
    sim::fault_plan plan;
    plan.seed = seed;
    plan.drop = 0.3;
    plan.duplicate = 0.2;
    plan.reorder_slack = 16;
    net.set_fault_plan(plan);
    net.wake(1);
    net.run();
    const sim::fault_stats& f = net.faults();
    return std::tuple{f.transmissions, f.drops, f.duplicates, f.reorder_delay};
  };
  EXPECT_EQ(once(7), once(7));
  EXPECT_NE(once(7), once(8));  // different seed, different fault pattern
}

TEST(ChaosTransport, ManualModeAndFaultsAreMutuallyExclusive) {
  sim::unit_delay_scheduler sched;
  sim::fault_plan plan;
  plan.drop = 0.5;
  {
    sim::network net(sched);
    net.set_fault_plan(plan);
    EXPECT_THROW(net.set_manual_mode(), std::logic_error);
  }
  {
    sim::network net(sched);
    net.set_manual_mode();
    EXPECT_THROW(net.set_fault_plan(plan), std::logic_error);
  }
}

TEST(ChaosTransport, SetFaultPlanAfterTrafficThrows) {
  sim::unit_delay_scheduler sched;
  sim::network net(sched);
  net.add_node(1, std::make_unique<burst_process>(2, 1));
  net.add_node(2, std::make_unique<recorder_process>());
  net.block_sender(1);
  net.wake(1);
  net.run_to_quiescence();  // one message now held in flight
  sim::fault_plan plan;
  plan.drop = 0.5;
  EXPECT_THROW(net.set_fault_plan(plan), std::logic_error);
}

}  // namespace
}  // namespace asyncrd
