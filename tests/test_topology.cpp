#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/topology.h"

namespace asyncrd {
namespace {

TEST(Topology, BinaryTreeShape) {
  const auto g = graph::directed_binary_tree(4);  // T(4): 15 nodes
  EXPECT_EQ(g.node_count(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.is_weakly_connected());
  // Root has two children; leaves have none.
  EXPECT_EQ(g.out(0).size(), 2u);
  EXPECT_TRUE(g.out(14).empty());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(1, 4));
}

TEST(Topology, BinaryTreeRejectsZeroLevels) {
  EXPECT_THROW(graph::directed_binary_tree(0), std::invalid_argument);
}

TEST(Topology, BinaryTreePostorderChildrenBeforeParents) {
  const std::size_t levels = 5;
  const auto order = graph::binary_tree_internal_postorder(levels);
  const std::size_t n = (std::size_t{1} << levels) - 1;
  // Internal nodes only: ids with at least one child.
  EXPECT_EQ(order.size(), n / 2);  // 2^(levels-1) - 1 internal nodes
  std::map<node_id, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const node_id v : order) {
    const std::size_t left = 2 * static_cast<std::size_t>(v) + 1;
    const std::size_t right = left + 1;
    if (pos.contains(static_cast<node_id>(left)))
      EXPECT_LT(pos[static_cast<node_id>(left)], pos[v]);
    if (pos.contains(static_cast<node_id>(right)))
      EXPECT_LT(pos[static_cast<node_id>(right)], pos[v]);
  }
  // The root is released last.
  EXPECT_EQ(order.back(), 0u);
}

TEST(Topology, PathAndStars) {
  const auto p = graph::directed_path(8);
  EXPECT_EQ(p.node_count(), 8u);
  EXPECT_EQ(p.edge_count(), 7u);
  EXPECT_TRUE(p.has_edge(3, 4));
  EXPECT_FALSE(p.has_edge(4, 3));

  const auto so = graph::star_out(6);
  EXPECT_EQ(so.edge_count(), 5u);
  EXPECT_EQ(so.out(0).size(), 5u);

  const auto si = graph::star_in(6);
  EXPECT_EQ(si.edge_count(), 5u);
  EXPECT_TRUE(si.out(0).empty());
  EXPECT_TRUE(si.has_edge(3, 0));
}

TEST(Topology, CliqueAndRing) {
  const auto c = graph::clique(5);
  EXPECT_EQ(c.edge_count(), 20u);
  EXPECT_TRUE(c.is_strongly_connected());

  const auto r = graph::ring(5);
  EXPECT_TRUE(r.is_strongly_connected());
  EXPECT_EQ(r.edge_count(), 10u);  // bidirectional
}

TEST(Topology, RandomWeaklyConnectedInvariants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::random_weakly_connected(60, 40, seed);
    EXPECT_EQ(g.node_count(), 60u);
    EXPECT_TRUE(g.is_weakly_connected()) << "seed " << seed;
    EXPECT_GE(g.edge_count(), 59u);
    EXPECT_LE(g.edge_count(), 99u);
  }
}

TEST(Topology, RandomWeaklyConnectedDeterministicPerSeed) {
  const auto a = graph::random_weakly_connected(40, 30, 7);
  const auto b = graph::random_weakly_connected(40, 30, 7);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (const node_id v : a.nodes()) EXPECT_EQ(a.out(v), b.out(v));
}

TEST(Topology, ErdosRenyiRepairsConnectivity) {
  // p = 0: pure repair chain; still weakly connected.
  const auto g0 = graph::erdos_renyi_connected(30, 0.0, 3);
  EXPECT_TRUE(g0.is_weakly_connected());
  const auto g1 = graph::erdos_renyi_connected(30, 0.1, 3);
  EXPECT_TRUE(g1.is_weakly_connected());
  EXPECT_GT(g1.edge_count(), g0.edge_count());
}

TEST(Topology, PreferentialAttachmentConnectedAndSized) {
  const auto g = graph::preferential_attachment(50, 2, 11);
  EXPECT_EQ(g.node_count(), 50u);
  EXPECT_TRUE(g.is_weakly_connected());
  // Node i >= 2 links to exactly 2 earlier nodes.
  EXPECT_GE(g.edge_count(), 49u);
}

TEST(Topology, MultiComponentHasExactlyParts) {
  const auto g = graph::multi_component(4, 10, 5, 9);
  EXPECT_EQ(g.node_count(), 40u);
  EXPECT_EQ(g.weak_components().size(), 4u);
  for (const auto& comp : g.weak_components()) EXPECT_EQ(comp.size(), 10u);
}

}  // namespace
}  // namespace asyncrd
