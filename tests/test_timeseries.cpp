// Tests for the runtime health series: the downsampling series_frame
// (property-tested against a full-resolution reference) and the
// series_sampler driving it from live runs, including the chaos-run
// signature the series exists to make visible (in-flight plateaus and
// send-rate dips inside outage windows).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/scheduler.h"
#include "telemetry/json.h"
#include "telemetry/report.h"
#include "telemetry/timeseries.h"

namespace {

using namespace asyncrd;
using telemetry::series_frame;

TEST(SeriesFrame, RecordsUpToCapacityAtStrideOne) {
  series_frame f(8);
  const std::uint32_t c = f.add_column("x");
  ASSERT_EQ(c, 0u);
  for (std::uint64_t k = 0; k < 8; ++k) {
    const std::uint64_t v = 100 + k;
    f.record(10 * (k + 1), &v, 1);
  }
  EXPECT_EQ(f.size(), 8u);
  EXPECT_EQ(f.stride(), 1u);
  EXPECT_EQ(f.recorded(), 8u);
  EXPECT_EQ(f.times(), (std::vector<std::uint64_t>{10, 20, 30, 40, 50, 60, 70, 80}));
  EXPECT_EQ(f.column(0).front(), 100u);
  EXPECT_EQ(f.column(0).back(), 107u);
}

TEST(SeriesFrame, CapacityRoundsUpToEvenAtLeastFour) {
  EXPECT_EQ(series_frame(0).capacity(), 4u);
  EXPECT_EQ(series_frame(1).capacity(), 4u);
  EXPECT_EQ(series_frame(5).capacity(), 6u);
  EXPECT_EQ(series_frame(8).capacity(), 8u);
}

TEST(SeriesFrame, HalvingDoublesStrideAndKeepsFirstSample) {
  series_frame f(4);
  f.add_column("x");
  for (std::uint64_t k = 0; k < 9; ++k) {
    const std::uint64_t v = k;
    f.record(k + 1, &v, 1);
  }
  // 9 samples through capacity 4: stride reached 4, retained ticks 0, 4, 8.
  EXPECT_EQ(f.stride(), 4u);
  EXPECT_EQ(f.recorded(), 9u);
  const auto t = f.times();
  EXPECT_EQ(t.front(), 1u);  // the very first sample survives every halving
  EXPECT_EQ(t.back(), 9u);   // and the series always ends at the last one
}

TEST(SeriesFrame, LazyColumnIsZeroBackfilled) {
  series_frame f(16);
  f.add_column("a");
  for (std::uint64_t k = 0; k < 5; ++k) {
    const std::uint64_t v = k + 1;
    f.record(k + 1, &v, 1);
  }
  const std::uint32_t b = f.add_column("b");
  const std::uint64_t row[] = {99, 7};
  f.record(100, row, 2);
  const auto bv = f.column(b);
  ASSERT_EQ(bv.size(), f.times().size());
  for (std::size_t i = 0; i + 1 < bv.size(); ++i) EXPECT_EQ(bv[i], 0u);
  EXPECT_EQ(bv.back(), 7u);
}

// Property test against a full-resolution reference: whatever the
// (capacity, sample count) combination, the frame must present a strictly
// increasing subset of the reference that keeps the first and last samples
// and never invents a (time, value) pair.
TEST(SeriesFrame, DownsamplingIsAFaithfulSubsetOfFullResolution) {
  rng gen(20260809);
  for (const std::size_t capacity : {4u, 6u, 16u, 64u}) {
    for (const std::size_t samples : {3u, 64u, 257u, 1000u}) {
      series_frame f(capacity);
      f.add_column("v");
      std::map<std::uint64_t, std::uint64_t> reference;  // time -> value
      std::uint64_t t = 0;
      std::uint64_t first_t = 0, last_t = 0;
      for (std::size_t k = 0; k < samples; ++k) {
        t += 1 + gen.below(50);
        const std::uint64_t v = gen.below(1u << 20);
        reference[t] = v;
        if (k == 0) first_t = t;
        last_t = t;
        f.record(t, &v, 1);
      }
      const auto times = f.times();
      const auto values = f.column(0);
      ASSERT_EQ(times.size(), values.size());
      ASSERT_LE(times.size(), f.capacity() + 1);  // retained + pending slot
      EXPECT_EQ(f.recorded(), samples);
      EXPECT_EQ(times.front(), first_t);
      EXPECT_EQ(times.back(), last_t);
      for (std::size_t i = 1; i < times.size(); ++i)
        ASSERT_LT(times[i - 1], times[i]);
      for (std::size_t i = 0; i < times.size(); ++i) {
        const auto it = reference.find(times[i]);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(values[i], it->second);
      }
      // Stride is a power of two and covers the recorded range.
      EXPECT_EQ(f.stride() & (f.stride() - 1), 0u);
    }
  }
}

TEST(SeriesFrame, WriteJsonParsesWithEqualLengthColumns) {
  series_frame f(8);
  f.add_column("a");
  f.add_column("b");
  for (std::uint64_t k = 0; k < 20; ++k) {
    const std::uint64_t row[] = {k, 2 * k};
    f.record(k + 1, row, 2);
  }
  telemetry::json_writer w;
  f.write_json(w);
  const auto doc = telemetry::json_parse(w.take());
  ASSERT_TRUE(doc.has_value());
  const auto& t = doc->find("t")->as_array();
  for (const auto& [name, col] : doc->find("cols")->as_object())
    EXPECT_EQ(col.as_array().size(), t.size()) << name;
}

TEST(SeriesSampler, CleanRunSeriesTracksMergeProgress) {
  const auto g = graph::random_weakly_connected(80, 100, 11);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);
  telemetry::recorder_options opts;
  opts.series_interval = 4;
  telemetry::run_recorder rec(run, opts);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);

  ASSERT_NE(rec.sampler(), nullptr);
  const telemetry::series_frame& f = rec.sampler()->frame();
  const auto times = f.times();
  ASSERT_GE(times.size(), 3u);

  std::uint32_t col_components = 0, col_deliveries = 0, col_merges = 0;
  for (std::uint32_t i = 0; i < f.columns(); ++i) {
    if (f.column_name(i) == "components") col_components = i;
    if (f.column_name(i) == "app_deliveries") col_deliveries = i;
    if (f.column_name(i) == "merges") col_merges = i;
  }
  const auto components = f.column(col_components);
  const auto deliveries = f.column(col_deliveries);
  const auto merges = f.column(col_merges);
  // Components shrink monotonically to the final leader count; cumulative
  // counters never decrease.
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(components[i], components[i - 1]);
    EXPECT_GE(deliveries[i], deliveries[i - 1]);
    EXPECT_GE(merges[i], merges[i - 1]);
  }
  EXPECT_EQ(components.back(), run.leaders().size());
  EXPECT_EQ(components.back() + merges.back(), g.node_count());
}

// The acceptance-criteria chaos probe: under drop + periodic outages the
// series must show the outage signature — samples where the wire is empty
// (in_flight == 0) while the ARQ still owes envelopes, and stretches where
// nothing new goes onto the wire (send-rate dip) while that backlog drains.
TEST(SeriesSampler, ChaosRunSeriesShowsOutageWindows) {
  const auto g = graph::random_weakly_connected(100, 120, 5);
  sim::random_delay_scheduler sched(3);
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);
  sim::fault_plan plan;
  plan.seed = 7;
  plan.drop = 0.3;
  plan.outage_period = 2000;
  plan.outage_duration = 400;
  run.enable_chaos(plan);
  telemetry::recorder_options opts;
  opts.series_interval = 256;
  telemetry::run_recorder rec(run, opts);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);

  const telemetry::series_frame& f = rec.sampler()->frame();
  std::uint32_t col_in_flight = 0;
  std::uint32_t col_outstanding = 0;
  bool have_outstanding = false;
  std::vector<std::uint32_t> sent_cols;
  for (std::uint32_t i = 0; i < f.columns(); ++i) {
    const std::string& name = f.column_name(i);
    if (name == "in_flight") col_in_flight = i;
    if (name == "arq.outstanding") {
      col_outstanding = i;
      have_outstanding = true;
    }
    if (name.rfind("sent.", 0) == 0) sent_cols.push_back(i);
  }
  ASSERT_TRUE(have_outstanding);
  ASSERT_FALSE(sent_cols.empty());

  const auto times = f.times();
  const auto in_flight = f.column(col_in_flight);
  const auto outstanding = f.column(col_outstanding);
  std::vector<std::uint64_t> total_sent(times.size(), 0);
  for (const std::uint32_t c : sent_cols) {
    const auto v = f.column(c);
    for (std::size_t i = 0; i < total_sent.size(); ++i) total_sent[i] += v[i];
  }
  ASSERT_GE(times.size(), 2u);
  const double mean_rate = static_cast<double>(total_sent.back()) /
                           static_cast<double>(times.back());

  // Samples land on event activity (probes fire when events dispatch), so a
  // cumulative counter always steps across a quiet gap; the outage/backoff
  // signature is the *rate* between adjacent samples collapsing while the
  // ARQ still owes envelopes.
  bool saw_plateau = false;   // empty wire, envelopes still owed
  bool saw_rate_dip = false;  // send rate under a tenth of the run's mean
  for (std::size_t i = 0; i < in_flight.size(); ++i) {
    if (in_flight[i] == 0 && outstanding[i] > 0) saw_plateau = true;
    if (i > 0 && outstanding[i] > 0) {
      const double rate =
          static_cast<double>(total_sent[i] - total_sent[i - 1]) /
          static_cast<double>(times[i] - times[i - 1]);
      if (rate < mean_rate / 10.0) saw_rate_dip = true;
    }
  }
  EXPECT_TRUE(saw_plateau);
  EXPECT_TRUE(saw_rate_dip);
}

// Default recorder options arm nothing: the report still carries empty
// "series"/"watchdog" objects and stays deterministic across runs.
TEST(SeriesSampler, DisarmedRecorderReportsEmptySeries) {
  const auto g = graph::directed_path(6);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::run_recorder rec(run);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);
  const telemetry::run_report rep = rec.report(r);
  EXPECT_EQ(rep.series.t.size(), 0u);
  EXPECT_FALSE(rep.watchdog.armed);
  const auto doc = telemetry::json_parse(rep.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(doc->find("series"), nullptr);
  EXPECT_NE(doc->find("watchdog"), nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(
                doc->find("report_version")->as_number()),
            telemetry::run_report::current_version);
}

}  // namespace
