#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "core/runner.h"
#include "graph/topology.h"
#include "sim/event_log.h"

// --- Allocation accounting --------------------------------------------------
// This test binary replaces the global allocator with a counting forwarder so
// the regression below can prove that ring queries (at / visit / count_*)
// never allocate — the exact guarantee that distinguishes them from the
// linearizing events()/of_kind()/touching() copies.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace asyncrd {
namespace {

sim::event_log run_logged(const graph::digraph& g, std::size_t capacity) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  sim::event_log log(capacity);
  run.net().set_observer(&log);
  run.wake_all();
  run.run();
  return log;
}

TEST(EventLog, RecordsWakesSendsDeliveries) {
  const auto log = run_logged(graph::directed_path(4), 1 << 16);
  EXPECT_EQ(log.of_kind(sim::logged_event::kind::wake).size(), 4u);
  const auto sends = log.of_kind(sim::logged_event::kind::send);
  const auto delivers = log.of_kind(sim::logged_event::kind::deliver);
  EXPECT_FALSE(sends.empty());
  EXPECT_EQ(sends.size(), delivers.size());  // reliable network
}

TEST(EventLog, EverySendIsEventuallyDelivered) {
  const auto log =
      run_logged(graph::random_weakly_connected(20, 30, 4), 1 << 18);
  std::multiset<std::tuple<node_id, node_id, std::string>> sent, got;
  for (const auto& e : log.events()) {
    if (e.what == sim::logged_event::kind::send)
      sent.insert({e.from, e.to, e.type});
    else if (e.what == sim::logged_event::kind::deliver)
      got.insert({e.from, e.to, e.type});
  }
  EXPECT_EQ(sent, got);
}

TEST(EventLog, TimesAreMonotonic) {
  const auto log = run_logged(graph::star_out(10), 1 << 16);
  sim::sim_time prev = 0;
  for (const auto& e : log.events()) {
    EXPECT_GE(e.at, prev);
    prev = e.at;
  }
}

TEST(EventLog, TouchingFiltersByNode) {
  const auto log = run_logged(graph::directed_path(3), 1 << 16);
  for (const auto& e : log.touching(1))
    EXPECT_TRUE(e.from == 1 || e.to == 1);
  EXPECT_FALSE(log.touching(1).empty());
}

TEST(EventLog, CapacityDropsAreCounted) {
  const auto log = run_logged(graph::random_weakly_connected(15, 20, 2), 8);
  EXPECT_EQ(log.events().size(), 8u);
  EXPECT_GT(log.dropped(), 0u);
}

TEST(EventLog, RingRetainsNewestWithExactDropCount) {
  sim::event_log log(4);
  for (sim::sim_time t = 0; t < 10; ++t)
    log.on_wake(t, static_cast<node_id>(t));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);  // 10 pushed, 4 retained
  const auto evs = log.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    // Oldest-first iteration over the newest window: times 6..9.
    EXPECT_EQ(evs[i].at, static_cast<sim::sim_time>(6 + i));
    EXPECT_EQ(evs[i].to, static_cast<node_id>(6 + i));
  }
}

/// Minimal concrete message for driving the log directly.
class stub_msg final : public sim::message {
 public:
  explicit stub_msg(std::string name) : name_(std::move(name)) {}
  std::string_view type_name() const noexcept override { return name_; }
  std::size_t id_fields() const noexcept override { return 1; }

 private:
  std::string name_;
};

TEST(EventLog, OverflowKeepsFiltersAndRenderConsistent) {
  sim::event_log log(3);
  const stub_msg search("search"), info("info");
  log.on_wake(0, 0);
  log.on_send(1, 0, 1, search);
  log.on_deliver(2, 0, 1, search);
  log.on_send(3, 1, 2, info);  // evicts the wake
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_TRUE(log.of_kind(sim::logged_event::kind::wake).empty());
  EXPECT_EQ(log.of_kind(sim::logged_event::kind::send).size(), 2u);
  std::ostringstream ss;
  log.render(ss);
  EXPECT_NE(ss.str().find("1 older events dropped"), std::string::npos);
}

TEST(EventLog, ZeroCapacityDropsEverything) {
  sim::event_log log(0);
  log.on_wake(1, 1);
  log.on_wake(2, 2);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, RenderProducesReadableLines) {
  const auto log = run_logged(graph::directed_path(3), 1 << 16);
  std::ostringstream ss;
  log.render(ss, 10);
  const std::string out = ss.str();
  EXPECT_NE(out.find("wake"), std::string::npos);
  EXPECT_NE(out.find("deliver"), std::string::npos);
  EXPECT_NE(out.find("t="), std::string::npos);
}

TEST(EventLog, ClearResets) {
  auto log = run_logged(graph::directed_path(3), 1 << 16);
  log.clear();
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogQueries, AtIndexesOldestFirstAcrossTheWrap) {
  sim::event_log log(4);
  for (sim::sim_time t = 0; t < 10; ++t)
    log.on_wake(t, static_cast<node_id>(t));
  const auto copied = log.events();
  ASSERT_EQ(copied.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log.at(i).at, copied[i].at);
    EXPECT_EQ(log.at(i).to, copied[i].to);
  }
}

TEST(EventLogQueries, VisitMatchesEventsAndStopsEarly) {
  const auto log = run_logged(graph::random_weakly_connected(10, 12, 6), 64);
  const auto copied = log.events();
  std::size_t i = 0;
  log.visit([&](const sim::logged_event& e) {
    ASSERT_LT(i, copied.size());
    EXPECT_EQ(e.at, copied[i].at);
    EXPECT_EQ(e.type, copied[i].type);
    ++i;
  });
  EXPECT_EQ(i, copied.size());

  // A bool-returning visitor stops at the first false.
  std::size_t seen = 0;
  log.visit([&](const sim::logged_event&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3u);
}

TEST(EventLogQueries, CountsMatchTheLinearizedFilters) {
  const auto log =
      run_logged(graph::random_weakly_connected(12, 16, 9), 1 << 16);
  using kind = sim::logged_event::kind;
  for (const kind k : {kind::wake, kind::send, kind::deliver})
    EXPECT_EQ(log.count_of_kind(k), log.of_kind(k).size());
  for (node_id v = 0; v < 12; ++v)
    EXPECT_EQ(log.count_touching(v), log.touching(v).size());
}

TEST(EventLogQueries, MillionEventQueriesDoNotAllocate) {
  // Regression: events()/of_kind()/touching() linearize (copy every retained
  // event, strings included), which at 2^20 events is megabytes of churn per
  // query.  The index/visitor API must answer the same questions without a
  // single allocation.  The message type name is longer than any SSO buffer,
  // so accidentally copying even one element would trip the counter.
  const stub_msg msg("deliberately_long_message_type_name_defeating_sso");
  sim::event_log log(1 << 20);
  for (std::uint64_t i = 0; i < (1u << 20) + 50'000u; ++i) {
    const auto from = static_cast<node_id>(i % 32);
    const auto to = static_cast<node_id>((i + 1) % 32);
    switch (i % 3) {
      case 0: log.on_wake(static_cast<sim::sim_time>(i), to); break;
      case 1: log.on_send(static_cast<sim::sim_time>(i), from, to, msg); break;
      default:
        log.on_deliver(static_cast<sim::sim_time>(i), from, to, msg);
    }
  }
  ASSERT_EQ(log.size(), 1u << 20);
  ASSERT_GT(log.dropped(), 0u);

  using kind = sim::logged_event::kind;
  const std::uint64_t before =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::size_t wakes = log.count_of_kind(kind::wake);
  const std::size_t sends = log.count_of_kind(kind::send);
  const std::size_t delivers = log.count_of_kind(kind::deliver);
  const std::size_t touching7 = log.count_touching(7);
  std::size_t visited = 0, touching7_by_hand = 0;
  sim::sim_time last_at = 0;
  log.visit([&](const sim::logged_event& e) {
    ++visited;
    last_at = e.at;
    if (e.from == 7 || e.to == 7) ++touching7_by_hand;
  });
  const sim::sim_time mid_at = log.at(log.size() / 2).at;
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "ring queries must not allocate";
  EXPECT_EQ(wakes + sends + delivers, log.size());
  EXPECT_EQ(visited, log.size());
  EXPECT_EQ(touching7, touching7_by_hand);
  EXPECT_GT(touching7, 0u);
  EXPECT_EQ(last_at, log.at(log.size() - 1).at);
  EXPECT_EQ(mid_at, log.at(log.size() / 2).at);
}

TEST(NewTopologies, HypercubeShape) {
  const auto g = graph::hypercube(5, 3);
  EXPECT_EQ(g.node_count(), 32u);
  EXPECT_EQ(g.edge_count(), 5u * 32u / 2u);  // one orientation per edge
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(NewTopologies, GridShape) {
  const auto g = graph::grid(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_EQ(g.edge_count(), 4u * 4u + 3u * 5u);  // right + down edges
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(NewTopologies, LayeredDagConnectedAndSized) {
  const auto g = graph::layered_dag(5, 6, 2, 7);
  EXPECT_EQ(g.node_count(), 30u);
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(NewTopologies, BowtieShape) {
  const auto g = graph::bowtie(5);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 2u * 20u + 1u);
  EXPECT_TRUE(g.is_weakly_connected());
}

TEST(NewTopologies, DiscoveryWorksOnAllOfThem) {
  for (const auto variant : {core::variant::generic, core::variant::bounded,
                             core::variant::adhoc}) {
    for (int which = 0; which < 4; ++which) {
      graph::digraph g;
      switch (which) {
        case 0: g = graph::hypercube(5, 1); break;
        case 1: g = graph::grid(5, 6); break;
        case 2: g = graph::layered_dag(4, 5, 2, 3); break;
        case 3: g = graph::bowtie(6); break;
      }
      const auto s = core::run_discovery(g, variant, 5);
      EXPECT_EQ(s.leaders.size(), 1u)
          << "variant " << core::to_string(variant) << " topo " << which;
      EXPECT_TRUE(s.completed);
    }
  }
}

}  // namespace
}  // namespace asyncrd
