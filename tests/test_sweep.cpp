// parallel_sweep: the one blessed way to fan independent simulations across
// threads.  The contract under test: every job index runs exactly once,
// worker indices are stable and in range, exceptions fail fast onto the
// caller, and slot-per-job writes compose into deterministic merged output.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/runner.h"
#include "graph/topology.h"
#include "sim/sweep.h"

namespace asyncrd {
namespace {

TEST(ParallelSweep, EveryJobRunsExactlyOnce) {
  constexpr std::size_t jobs = 200;
  std::vector<std::atomic<int>> runs(jobs);
  const auto sw = sim::parallel_sweep(jobs, [&](std::size_t job, std::size_t) {
    runs[job].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sw.jobs, jobs);
  EXPECT_EQ(sw.jobs_completed, jobs);
  EXPECT_EQ(sw.jobs_skipped, 0u);
  EXPECT_GE(sw.workers, 1u);
  for (std::size_t i = 0; i < jobs; ++i)
    EXPECT_EQ(runs[i].load(), 1) << "job " << i;
}

TEST(ParallelSweep, WorkerIndicesAreInRange) {
  std::atomic<std::size_t> max_worker{0};
  const auto sw =
      sim::parallel_sweep(64, [&](std::size_t, std::size_t worker) {
        std::size_t cur = max_worker.load(std::memory_order_relaxed);
        while (worker > cur &&
               !max_worker.compare_exchange_weak(cur, worker)) {
        }
      });
  EXPECT_LT(max_worker.load(), sw.workers);
}

TEST(ParallelSweep, ZeroJobsIsANoop) {
  bool ran = false;
  const auto sw =
      sim::parallel_sweep(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(sw.jobs, 0u);
}

TEST(ParallelSweep, MaxWorkersOneRunsSerially) {
  // With one worker, jobs run in index order on the calling pool thread —
  // the degenerate case every sweep must degrade to on a 1-core host.
  std::vector<std::size_t> order;
  const auto sw = sim::parallel_sweep(
      10, [&](std::size_t job, std::size_t worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(job);
      },
      /*max_workers=*/1);
  EXPECT_EQ(sw.workers, 1u);
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ParallelSweep, ExceptionPropagatesToCaller) {
  EXPECT_THROW(sim::parallel_sweep(32,
                                   [](std::size_t job, std::size_t) {
                                     if (job == 7)
                                       throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
}

TEST(ParallelSweep, FailureReportsSkippedJobsThroughOutParam) {
  // The fail-fast shutdown abandons claimed-but-unrun jobs; the sweep used
  // to report only `jobs`, silently overstating coverage.  The out param
  // is filled before the rethrow so callers see what actually ran.
  constexpr std::size_t jobs = 64;
  std::atomic<std::size_t> ran{0};
  sim::sweep_result sw;
  EXPECT_THROW(
      sim::parallel_sweep(
          jobs,
          [&](std::size_t job, std::size_t) {
            if (job == 5) throw std::runtime_error("boom");
            ran.fetch_add(1, std::memory_order_relaxed);
          },
          /*max_workers=*/4, &sw),
      std::runtime_error);
  EXPECT_EQ(sw.jobs, jobs);
  EXPECT_EQ(sw.jobs_completed, ran.load());
  EXPECT_EQ(sw.jobs_skipped, jobs - ran.load());
  // The throwing job never completes, so at least one job was skipped.
  EXPECT_GE(sw.jobs_skipped, 1u);
  EXPECT_LT(sw.jobs_completed, jobs);
}

TEST(ParallelSweep, SerialFailureAccountsTailExactly) {
  // One worker runs jobs in index order: 0..6 complete, 7 throws, 8..31
  // are never claimed — the accounting must say exactly that.
  sim::sweep_result sw;
  EXPECT_THROW(sim::parallel_sweep(
                   32,
                   [](std::size_t job, std::size_t) {
                     if (job == 7) throw std::runtime_error("boom");
                   },
                   /*max_workers=*/1, &sw),
               std::runtime_error);
  EXPECT_EQ(sw.jobs_completed, 7u);
  EXPECT_EQ(sw.jobs_skipped, 25u);
}

TEST(ParallelSweep, SlotPerJobMergeIsDeterministic) {
  // The usage pattern every bench/test wires up: independent discovery runs
  // write summaries into their own slots; the merged, index-ordered result
  // must equal a serial loop's bit for bit.
  const auto g = graph::random_weakly_connected(30, 60, 5);
  constexpr std::size_t seeds = 12;

  std::vector<core::run_summary> serial(seeds), fanned(seeds);
  for (std::size_t i = 0; i < seeds; ++i)
    serial[i] = core::run_discovery(g, core::variant::generic, 50 + i);
  sim::parallel_sweep(seeds, [&](std::size_t i, std::size_t) {
    fanned[i] = core::run_discovery(g, core::variant::generic, 50 + i);
  });

  for (std::size_t i = 0; i < seeds; ++i) {
    EXPECT_EQ(fanned[i].completed, serial[i].completed) << "seed slot " << i;
    EXPECT_EQ(fanned[i].messages, serial[i].messages) << "seed slot " << i;
    EXPECT_EQ(fanned[i].bits, serial[i].bits) << "seed slot " << i;
    EXPECT_EQ(fanned[i].completion_time, serial[i].completion_time)
        << "seed slot " << i;
  }
}

}  // namespace
}  // namespace asyncrd
