// The Bounded variant (§4.5.1): every node knows its component size; the
// leader detects termination (Theorem 4) and the conquer/more-done traffic
// drops from O(n log n) to O(n) (Lemma 5.8).
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "test_util.h"

namespace asyncrd {
namespace {

using core::variant;
using testing::run_instrumented;

TEST(Bounded, LeaderTerminatesExplicitly) {
  const auto g = graph::random_weakly_connected(25, 30, 4);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::bounded;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto leaders = run.leaders();
  ASSERT_EQ(leaders.size(), 1u);
  EXPECT_EQ(run.at(leaders.front()).status(), core::status_t::terminated);
}

TEST(Bounded, SingletonTerminatesWithoutMessages) {
  graph::digraph g;
  g.add_node(5);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::bounded;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  EXPECT_EQ(run.at(5).status(), core::status_t::terminated);
  EXPECT_EQ(run.statistics().total_messages(), 0u);
}

TEST(Bounded, ConquerTrafficLinearNotLogLinear) {
  // Lemma 5.8: at most 2n conquer + more/done messages in the Bounded model
  // (they are only sent in the final phase).
  for (const std::size_t n : {64u, 256u, 700u}) {
    const auto g = graph::random_weakly_connected(n, 2 * n, n);
    sim::random_delay_scheduler sched(n);
    core::config cfg;
    cfg.algo = variant::bounded;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    EXPECT_LE(run.statistics().messages_of_any({"conquer", "more_done"}),
              2 * n)
        << "n=" << n;
  }
}

TEST(Bounded, EachComponentUsesItsOwnSize) {
  // Multi-component graph: sizes differ per component; each leader must
  // terminate against its own component's size, not the global node count.
  graph::digraph g;
  // component A: 3 nodes; component B: 5 nodes.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(10, 11);
  g.add_edge(11, 12);
  g.add_edge(12, 13);
  g.add_edge(13, 14);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::bounded;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  for (const node_id lid : run.leaders())
    EXPECT_EQ(run.at(lid).status(), core::status_t::terminated);
}

TEST(Bounded, TerminatedLeaderKnowsEveryone) {
  const auto g = graph::star_in(40);
  const auto r = run_instrumented(g, variant::bounded, 6);
  EXPECT_EQ(r.summary.leaders.size(), 1u);
}

using sweep_param = std::tuple<std::size_t, std::uint64_t>;

class BoundedSweep : public ::testing::TestWithParam<sweep_param> {};

TEST_P(BoundedSweep, SafetyTerminationAndBounds) {
  const auto [n, seed] = GetParam();
  const auto g = graph::random_weakly_connected(n, n, seed * 31 + n);
  run_instrumented(g, variant::bounded, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundedSweep,
    ::testing::Combine(::testing::Values(5, 17, 60, 150),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<sweep_param>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class BoundedTopologies : public ::testing::TestWithParam<int> {};

TEST_P(BoundedTopologies, StructuredGraphs) {
  switch (GetParam()) {
    case 0: run_instrumented(graph::directed_path(31), variant::bounded, 1); break;
    case 1: run_instrumented(graph::star_out(31), variant::bounded, 2); break;
    case 2: run_instrumented(graph::star_in(31), variant::bounded, 3); break;
    case 3:
      run_instrumented(graph::directed_binary_tree(5), variant::bounded, 4);
      break;
    case 4: run_instrumented(graph::clique(17), variant::bounded, 5); break;
    case 5:
      run_instrumented(graph::preferential_attachment(50, 2, 9),
                       variant::bounded, 6);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(All, BoundedTopologies, ::testing::Range(0, 6));

}  // namespace
}  // namespace asyncrd
