// flat_set / flat_u64_map / flat_u64_set: the dense-core replacements for
// the engine's std::set / std::map members.  flat_set must be observably
// identical to std::set (ascending iteration — the determinism contract);
// the hash containers must agree with a reference map/set under randomized
// workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash.h"
#include "common/flat_set.h"
#include "common/rng.h"

namespace asyncrd {
namespace {

// --- flat_set -------------------------------------------------------------

TEST(FlatSet, BasicInsertContainsErase) {
  flat_set<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(9));
  EXPECT_FALSE(s.insert(5));  // duplicate
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(9), 1u);
  EXPECT_EQ(s.erase(3), 1u);
  EXPECT_EQ(s.erase(3), 0u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(FlatSet, IteratesInAscendingOrderLikeStdSet) {
  flat_set<int> fs;
  std::set<int> ss;
  rng r(7);
  for (int i = 0; i < 500; ++i) {
    const int v = static_cast<int>(r.below(200));
    EXPECT_EQ(fs.insert(v), ss.insert(v).second);
  }
  ASSERT_EQ(fs.size(), ss.size());
  EXPECT_TRUE(fs == ss);  // element-wise, in order
  EXPECT_TRUE(std::is_sorted(fs.begin(), fs.end()));
}

TEST(FlatSet, BulkInsertMergesUnsortedDuplicatedInput) {
  flat_set<int> fs = {10, 20, 30};
  const std::vector<int> incoming = {25, 10, 5, 25, 40, 20};
  fs.insert(incoming.begin(), incoming.end());
  EXPECT_TRUE(fs == std::set<int>({5, 10, 20, 25, 30, 40}));
}

TEST(FlatSet, PositionalRangeEraseRemovesPrefix) {
  // self_query extracts the k smallest ids as a prefix slice.
  flat_set<int> fs = {1, 2, 3, 4, 5};
  std::vector<int> taken(fs.begin(), fs.begin() + 3);
  fs.erase(fs.begin(), fs.begin() + 3);
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(fs == std::set<int>({4, 5}));
}

TEST(FlatSet, AdoptsStdSetAndFindWorks) {
  const std::set<int> src = {4, 8, 15, 16, 23, 42};
  const flat_set<int> fs(src);
  EXPECT_TRUE(fs == src);
  EXPECT_NE(fs.find(15), fs.end());
  EXPECT_EQ(*fs.find(15), 15);
  EXPECT_EQ(fs.find(14), fs.end());
}

TEST(FlatSet, RandomizedParityWithStdSet) {
  flat_set<std::uint32_t> fs;
  std::set<std::uint32_t> ss;
  rng r(99);
  for (int step = 0; step < 5000; ++step) {
    const std::uint32_t v = static_cast<std::uint32_t>(r.below(400));
    switch (r.below(3)) {
      case 0:
        EXPECT_EQ(fs.insert(v), ss.insert(v).second);
        break;
      case 1:
        EXPECT_EQ(fs.erase(v), ss.erase(v));
        break;
      default:
        EXPECT_EQ(fs.contains(v), ss.count(v) == 1);
    }
  }
  EXPECT_TRUE(fs == ss);
}

// --- flat_u64_map ---------------------------------------------------------

TEST(FlatU64Map, InsertFindGrow) {
  flat_u64_map m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), flat_u64_map::npos);
  for (std::uint64_t k = 0; k < 1000; ++k)
    m.insert(k * 3 + 1, static_cast<std::uint32_t>(k));
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(m.find(k * 3 + 1), static_cast<std::uint32_t>(k));
    EXPECT_EQ(m.find(k * 3 + 2), flat_u64_map::npos);
  }
}

TEST(FlatU64Map, TryInsertIsSingleProbeUpsert) {
  flat_u64_map m;
  EXPECT_TRUE(m.try_insert(7, 1));
  EXPECT_FALSE(m.try_insert(7, 2));  // present: value untouched
  EXPECT_EQ(m.find(7), 1u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatU64Map, ReserveAvoidsLosingEntries) {
  flat_u64_map m;
  m.reserve(5000);
  for (std::uint64_t k = 1; k <= 5000; ++k)
    m.insert(k, static_cast<std::uint32_t>(k));
  for (std::uint64_t k = 1; k <= 5000; ++k)
    ASSERT_EQ(m.find(k), static_cast<std::uint32_t>(k));
}

TEST(FlatU64Map, ForEachVisitsEveryPairOnce) {
  flat_u64_map m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  rng r(3);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t k = r.below(1000) + 1;
    const auto v = static_cast<std::uint32_t>(i);
    if (m.try_insert(k, v)) ref.emplace(k, v);
  }
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  m.for_each([&](std::uint64_t k, std::uint32_t v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate visit of key " << k;
  });
  EXPECT_EQ(seen, ref);
}

TEST(FlatU64Map, ClearResets) {
  flat_u64_map m;
  m.insert(1, 2);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), flat_u64_map::npos);
  m.insert(1, 3);  // usable after clear
  EXPECT_EQ(m.find(1), 3u);
}

// --- flat_u64_set ---------------------------------------------------------

TEST(FlatU64Set, InsertIsIdempotent) {
  flat_u64_set s;
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(43));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatU64Set, RandomizedParityWithUnorderedSet) {
  flat_u64_set fs;
  std::unordered_set<std::uint64_t> ref;
  rng r(11);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = r.below(1500);
    EXPECT_EQ(fs.insert(k), ref.insert(k).second);
  }
  EXPECT_EQ(fs.size(), ref.size());
  std::size_t visited = 0;
  fs.for_each([&](std::uint64_t k) {
    EXPECT_EQ(ref.count(k), 1u);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace asyncrd
