// Tests for the stall watchdog and the flight recorder: no false positives
// on healthy runs (clean and chaotic), a guaranteed trip on the
// phase-locked-retransmit livelock the watchdog exists to catch, the
// stopped-run plumbing, the flight ring's wrap-around bookkeeping, and the
// bench reporter's JSON escaping round-trip.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "../bench/bench_report.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/flight_recorder.h"
#include "sim/reliable_link.h"
#include "sim/scheduler.h"
#include "telemetry/health.h"
#include "telemetry/json.h"
#include "telemetry/report.h"

namespace {

using namespace asyncrd;

TEST(FlightRecorder, RingWrapsKeepingNewestOldestFirst) {
  sim::flight_recorder fr(8);
  EXPECT_EQ(fr.capacity(), 8u);
  for (std::uint64_t k = 0; k < 20; ++k)
    fr.record({k, k, sim::flight_entry::none, 1, 2,
               sim::flight_entry::kind::deliver, 3});
  EXPECT_EQ(fr.size(), 8u);
  EXPECT_EQ(fr.dropped(), 12u);
  for (std::size_t i = 0; i < fr.size(); ++i)
    EXPECT_EQ(fr.at(i).at, 12 + i);  // oldest first, newest last
  std::size_t visited = 0;
  fr.visit([&](const sim::flight_entry& e) {
    EXPECT_EQ(e.at, 12 + visited);
    ++visited;
  });
  EXPECT_EQ(visited, 8u);
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorder, DumpJsonCarriesPerKindFields) {
  sim::flight_recorder fr(8);
  fr.record({5, 10, sim::flight_entry::none, 3, invalid_node,
             sim::flight_entry::kind::wake, 0});
  fr.record({6, 11, 10, 3, 4, sim::flight_entry::kind::deliver,
             static_cast<std::uint8_t>(core::msg_kind::query)});
  fr.record({7, sim::flight_entry::none, 42, invalid_node,
             invalid_node, sim::flight_entry::kind::timer, 0});
  const auto doc = telemetry::json_parse(telemetry::flight_dump_json(fr));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("kind")->as_string(), "flight");
  const auto& evs = doc->find("events")->as_array();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].find("kind")->as_string(), "wake");
  EXPECT_EQ(evs[0].find("node")->as_number(), 3.0);
  EXPECT_EQ(evs[0].find("cause"), nullptr);  // none == absent key
  EXPECT_EQ(evs[1].find("kind")->as_string(), "deliver");
  EXPECT_EQ(evs[1].find("type")->as_string(), "query");
  EXPECT_EQ(evs[1].find("cause")->as_number(), 10.0);
  EXPECT_EQ(evs[2].find("kind")->as_string(), "timer");
  EXPECT_EQ(evs[2].find("key")->as_number(), 42.0);
  EXPECT_EQ(evs[2].find("id"), nullptr);
}

TEST(DispatchTagName, CoversCoreAndLinkVocabulary) {
  EXPECT_EQ(telemetry::dispatch_tag_name(
                static_cast<std::uint8_t>(core::msg_kind::query)),
            "query");
  EXPECT_EQ(telemetry::dispatch_tag_name(
                static_cast<std::uint8_t>(core::msg_kind::report_ack)),
            "report_ack");
  EXPECT_EQ(telemetry::dispatch_tag_name(sim::rl_data_tag), "rl.data");
  EXPECT_EQ(telemetry::dispatch_tag_name(sim::rl_ack_tag), "rl.ack");
  // The high bit now marks an encoded wire frame carrying the inner tag
  // (except the rl.* envelope tags above, which predate the wire bit).
  EXPECT_EQ(telemetry::dispatch_tag_name(
                sim::wire::wire_bit |
                static_cast<std::uint8_t>(core::msg_kind::search)),
            "wire.search");
  EXPECT_EQ(telemetry::dispatch_tag_name(100), "tag:100");
  EXPECT_EQ(telemetry::dispatch_tag_name(200), "wire.tag:72");
}

TEST(Watchdog, DerivesProbeIntervalFromWindow) {
  const auto g = graph::directed_path(3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  telemetry::stall_watchdog wd(run, {.window = 1000});
  EXPECT_EQ(wd.config().probe_interval, 250u);
  EXPECT_FALSE(wd.tripped());
}

TEST(Watchdog, NoFalsePositiveOnCleanUnitDelayRun) {
  const auto g = graph::random_weakly_connected(80, 100, 11);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);
  telemetry::recorder_options opts;
  opts.watchdog.window = 64;
  opts.watchdog.probe_interval = 8;
  opts.watchdog.abort_on_trip = true;
  telemetry::run_recorder rec(run, opts);
  run.wake_all();
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.stopped);
  ASSERT_NE(rec.watchdog(), nullptr);
  EXPECT_FALSE(rec.watchdog()->tripped());
}

// Drop + outage chaos recovers on its own (the jittered RTO guarantees
// progress); a watchdog window sized generously above the worst ARQ
// recovery gap must not trip.  The tail of such a run legitimately spends
// ~10 * rto_max ticks re-offering the final envelopes through a 30% lossy
// wire, so "generous" means well beyond that (docs/OBSERVABILITY.md
// derives the tuning rule).
TEST(Watchdog, NoFalsePositiveOnRecoverableChaosRun) {
  const auto g = graph::random_weakly_connected(100, 120, 5);
  sim::random_delay_scheduler sched(3);
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);
  sim::fault_plan plan;
  plan.seed = 7;
  plan.drop = 0.3;
  plan.outage_period = 2000;
  plan.outage_duration = 400;
  run.enable_chaos(plan);
  telemetry::recorder_options opts;
  opts.watchdog.window = 400000;
  opts.watchdog.abort_on_trip = true;
  telemetry::run_recorder rec(run, opts);
  run.wake_all();
  const auto r = run.run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.stopped);
  EXPECT_FALSE(rec.watchdog()->tripped());
}

/// The livelock configuration the watchdog was built to catch: jitter off
/// and a capped RTO equal to the outage period phase-lock every retry of an
/// envelope first transmitted inside a blackout window into the next
/// blackout window, forever.
core::discovery_run& arm_livelock(core::discovery_run& run) {
  sim::fault_plan plan;
  plan.seed = 13;
  plan.outage_period = 1024;
  plan.outage_duration = 256;
  sim::reliable_link_config link_cfg;
  link_cfg.retransmit_jitter = false;
  link_cfg.rto_initial = 1024;
  link_cfg.rto_max = 1024;
  run.enable_chaos(plan, link_cfg);
  return run;
}

TEST(Watchdog, CatchesPhaseLockedLivelock) {
  const auto g = graph::random_weakly_connected(40, 50, 9);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);
  arm_livelock(run);
  telemetry::recorder_options opts;
  // Window of four outage periods: a genuine livelock shows no progress for
  // that long almost immediately, while healthy chaos tails never would.
  opts.watchdog.window = 4096;
  opts.watchdog.probe_interval = 512;
  opts.watchdog.abort_on_trip = true;
  opts.flight_capacity = 256;
  telemetry::run_recorder rec(run, opts);
  run.wake_all();
  const auto r = run.run();

  // The watchdog aborted the run instead of letting it burn the event cap.
  EXPECT_TRUE(r.stopped);
  EXPECT_FALSE(r.completed);
  ASSERT_TRUE(rec.watchdog()->tripped());
  const telemetry::watchdog_trip& trip = rec.watchdog()->trips().front();
  EXPECT_GT(trip.arq_outstanding, 0u);  // envelopes owed, wire livelocked
  EXPECT_GE(trip.at - trip.last_progress_at, 4096u);
  // Trips within one window of the stall beginning (the probe cadence
  // bounds detection latency at window + probe_interval).
  EXPECT_LE(trip.at, trip.last_progress_at + 4096 + 512);

  // The armed flight recorder holds the postmortem: recent events are
  // retransmit timers / rl traffic, serialized as a parseable dump.  The
  // file is also a ctest fixture input for trace_analyze --flight.
  ASSERT_NE(rec.flight(), nullptr);
  EXPECT_GT(rec.flight()->size(), 0u);
  const std::string dump = telemetry::flight_dump_json(*rec.flight());
  const auto doc = telemetry::json_parse(dump);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("kind")->as_string(), "flight");
  EXPECT_GT(doc->find("events")->as_array().size(), 0u);
  std::ofstream out("livelock_flight.json");
  out << dump << '\n';
  ASSERT_TRUE(out.good());

  // The run report records the trip and the stall window.
  const telemetry::run_report rep = rec.report(r);
  EXPECT_TRUE(rep.watchdog.armed);
  EXPECT_FALSE(rep.watchdog.trips.empty());
  EXPECT_FALSE(rep.completed);
}

// Same livelock without abort_on_trip: the watchdog keeps recording trips
// (re-arming each window) up to max_trips while the run burns on.
TEST(Watchdog, NonAbortingWatchdogRecordsRepeatedTrips) {
  const auto g = graph::random_weakly_connected(40, 50, 9);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);
  arm_livelock(run);
  telemetry::recorder_options opts;
  opts.watchdog.window = 4096;
  opts.watchdog.probe_interval = 512;
  opts.watchdog.max_trips = 3;
  telemetry::run_recorder rec(run, opts);
  run.wake_all();
  const auto r = run.run(400000);  // cap the doomed run
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.stopped);
  EXPECT_EQ(rec.watchdog()->trips().size(), 3u);  // capped at max_trips
  const auto& trips = rec.watchdog()->trips();
  for (std::size_t i = 1; i < trips.size(); ++i)
    EXPECT_GE(trips[i].at, trips[i - 1].at + 4096);  // re-armed per window
}

TEST(BenchReporter, LabelWithQuotesAndBackslashesRoundTrips) {
  const std::string path = "bench_escape_roundtrip.json";
  const std::string label = "odd \"label\" with \\ and \t control";
  const char* argv[] = {"bench", "--json", path.c_str()};
  bench::reporter rep("escape_roundtrip", 3, const_cast<char**>(argv));
  rep.add(label, 1.0, 2.0, 3.0);
  ASSERT_EQ(rep.finish(true), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string err;
  const auto doc = telemetry::json_parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto& labels = doc->find("labels")->as_array();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].as_string(), label);
  EXPECT_EQ(doc->find("rows")->as_array()[0].find("label")->as_string(),
            label);
}

}  // namespace
