// White-box unit tests of the node state machine: construction, wake-up,
// the query transaction, conquer-pointer monotonicity, and inspection APIs.
#include <gtest/gtest.h>

#include "core/node.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/scheduler.h"

namespace asyncrd {
namespace {

using core::status_t;

TEST(NodeUnit, InitialStateMatchesFigure2) {
  core::config cfg;
  core::node n(5, cfg, {1, 2, 3});
  EXPECT_EQ(n.status(), status_t::asleep);
  EXPECT_EQ(n.phase(), 1u);
  EXPECT_EQ(n.next(), 5u);                      // next = id
  EXPECT_EQ(n.more(), (std::set<node_id>{5}));  // more = {id}
  EXPECT_TRUE(n.done().empty());
  EXPECT_TRUE(n.unaware().empty());
  EXPECT_TRUE(n.unexplored().empty());
  EXPECT_EQ(n.local(), (std::set<node_id>{1, 2, 3}));
}

TEST(NodeUnit, SelfIdStrippedFromInitialLocal) {
  core::config cfg;
  core::node n(2, cfg, {1, 2, 3});  // knows itself: ignored
  EXPECT_EQ(n.local(), (std::set<node_id>{1, 3}));
}

TEST(NodeUnit, KnowsIdCoversInitialKnowledge) {
  core::config cfg;
  core::node n(5, cfg, {1, 2});
  EXPECT_TRUE(n.knows_id(5));  // itself
  EXPECT_TRUE(n.knows_id(1));
  EXPECT_TRUE(n.knows_id(2));
  EXPECT_FALSE(n.knows_id(3));
}

TEST(NodeUnit, IsolatedNodeWakesToIdleWait) {
  // A node that knows nobody: self-query drains instantly, ends WAIT-idle
  // as its own leader with done = {self}.
  graph::digraph g;
  g.add_node(9);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const core::node& n = run.at(9);
  EXPECT_EQ(n.status(), status_t::wait);
  EXPECT_EQ(n.done(), (std::set<node_id>{9}));
  EXPECT_TRUE(n.more().empty());
  EXPECT_TRUE(n.is_leader());
}

TEST(NodeUnit, QueryTransactionBalancesExactly) {
  // Fig 3/5: the leader requests |more|+|done|+1 ids; the member returns
  // min(k, |local|) and flags exhaustion.  Verify on a star where the
  // center holds many unreported ids.
  graph::digraph g = graph::star_out(8);  // center 0 knows 1..7
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  // Whoever leads, the center's local must be fully drained.
  EXPECT_TRUE(run.at(0).local().empty());
  const auto leaders = run.leaders();
  ASSERT_EQ(leaders.size(), 1u);
  EXPECT_EQ(run.at(leaders.front()).done().size(), 8u);
}

TEST(NodeUnit, KnownMembersIsCensus) {
  graph::digraph g;
  g.add_edge(0, 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto leaders = run.leaders();
  EXPECT_EQ(run.at(leaders.front()).known_members(),
            (std::vector<node_id>{0, 1}));
}

TEST(NodeUnit, PhaseGrowsOnEqualPhaseMergeOnly) {
  // Two singletons merging have equal phase 1 -> winner increments to 2.
  graph::digraph g;
  g.add_edge(0, 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  EXPECT_EQ(run.at(1).phase(), 2u);
}

TEST(NodeUnit, UsePhasesFalseKeepsPhaseAtOne) {
  graph::digraph g = graph::random_weakly_connected(12, 12, 4);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.use_phases = false;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  for (const node_id v : run.ids()) EXPECT_EQ(run.at(v).phase(), 1u);
  // With id-only comparisons the max id must end up leader.
  EXPECT_EQ(run.leaders(), (std::vector<node_id>{11}));
}

TEST(NodeUnit, RunnerRejectsUnknownId) {
  graph::digraph g;
  g.add_node(1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  EXPECT_THROW(run.at(99), std::invalid_argument);
}

TEST(NodeUnit, DeferredQueueEmptiesAtQuiescence) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::random_weakly_connected(25, 50, seed);
    sim::random_delay_scheduler sched(seed * 7);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    for (const node_id v : run.ids()) {
      EXPECT_FALSE(run.at(v).has_deferred()) << "node " << v << " seed " << seed;
      EXPECT_EQ(run.at(v).pending_queue_depth(), 0u)
          << "node " << v << " seed " << seed;
    }
  }
}

TEST(NodeUnit, LeadersViewIsSortedAscending) {
  const auto g = graph::multi_component(4, 6, 3, 12);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto leaders = run.leaders();
  ASSERT_EQ(leaders.size(), 4u);
  EXPECT_TRUE(std::is_sorted(leaders.begin(), leaders.end()));
}

}  // namespace
}  // namespace asyncrd
