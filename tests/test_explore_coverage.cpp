// Evidence that the exhaustive exploration actually reaches the protocol's
// hard branches: across all interleavings of crafted 3-node systems, count
// the executions that exercise merge failures, aborts, passive
// re-conquests, and new-flag re-injections.  If a refactor ever makes a
// branch unreachable, these counts drop to zero and the corresponding
// regression protection evaporates silently — this test makes that loud.
#include <gtest/gtest.h>

#include <memory>

#include "core/checker.h"
#include "core/runner.h"
#include "core/trace.h"
#include "graph/topology.h"
#include "sim/explore.h"

namespace asyncrd {
namespace {

struct branch_counters {
  std::uint64_t with_merge_fail = 0;
  std::uint64_t with_abort = 0;            // wait -> passive observed
  std::uint64_t passive_reconquest = 0;    // passive -> conquered observed
  std::uint64_t conquered_to_passive = 0;  // merge offer refused
  std::uint64_t total = 0;
};

/// Explores every interleaving of `g` (generic variant) and tallies which
/// message/transition patterns each outcome exhibited.
branch_counters explore_and_count(const graph::digraph& g) {
  branch_counters counters;
  std::unique_ptr<sim::unit_delay_scheduler> sched;
  std::unique_ptr<core::discovery_run> run;
  core::config cfg;
  core::transition_recorder rec;
  cfg.trace = &rec;

  const auto reset = [&]() {
    rec = core::transition_recorder();
    sched = std::make_unique<sim::unit_delay_scheduler>();
    run = std::make_unique<core::discovery_run>(g, cfg, *sched);
    run->net().set_manual_mode();
    run->wake_all();
    return &run->net();
  };
  const auto check = [&]() -> std::string {
    const auto rep = core::check_final_state(*run, g);
    if (!rep.ok()) return rep.to_string();
    ++counters.total;
    const auto& st = run->statistics();
    if (st.messages_of("merge_fail") > 0) ++counters.with_merge_fail;
    // Aborts share the "release" type; detect via passive outcomes.
    if (rec.edges().contains({core::status_t::wait, core::status_t::passive}))
      ++counters.with_abort;
    if (rec.edges().contains(
            {core::status_t::passive, core::status_t::conquered}))
      ++counters.passive_reconquest;
    if (rec.edges().contains(
            {core::status_t::conquered, core::status_t::passive}))
      ++counters.conquered_to_passive;
    return {};
  };

  const auto res = sim::explore_interleavings(reset, check);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.ok()) << res.violations.front();
  return counters;
}

TEST(ExploreCoverage, InStarReachesPassiveRediscovery) {
  // 1 -> 0 <- 2: both outer nodes duel over 0.  In some schedules the
  // loser goes passive after an abort, yet every final state is correct —
  // which proves the new-flag re-injection rediscovered it.  (merge_fail
  // is *unreachable* here: the second search defers at the conquered
  // target; see the descending-line test for that branch.)
  graph::digraph g;
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  const auto c = explore_and_count(g);
  EXPECT_GT(c.total, 0u);
  EXPECT_GT(c.with_abort, 0u) << "no schedule sent a loser passive";
  EXPECT_LT(c.with_abort, c.total) << "abort cannot be universal here";
}

TEST(ExploreCoverage, DescendingLineReachesMergeFail) {
  // 2 -> 1 -> 0: schedule 1's search first (0 offers to merge into 1),
  // then let 2 conquer 1 before the offer's release returns — the offer
  // must be refused (merge_fail), 0 goes passive, and the retained-id rule
  // lets 2 rediscover it.  The explorer must find that schedule.
  graph::digraph g;
  g.add_edge(2, 1);
  g.add_edge(1, 0);
  const auto c = explore_and_count(g);
  EXPECT_GT(c.total, 0u);
  EXPECT_GT(c.with_merge_fail, 0u) << "no schedule exercised merge_fail";
  EXPECT_GT(c.conquered_to_passive, 0u)
      << "no schedule exercised conquered -> passive";
  EXPECT_LT(c.with_merge_fail, c.total) << "merge_fail cannot be universal";
}

TEST(ExploreCoverage, AscendingLineReachesAbortsAndRediscovery) {
  // 0 -> 1 -> 2: low ids search upward and get aborted; the new-flag
  // mechanism must then drive the winners to re-query and absorb them —
  // every final state correct despite passives in some schedules.
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto c = explore_and_count(g);
  EXPECT_GT(c.total, 0u);
  EXPECT_GT(c.with_abort, 0u);
}

// --- truncation paths ------------------------------------------------------
//
// The limits struct is the only thing standing between "exhaustive" and
// "runs forever" on larger systems, so its semantics deserve pinning:
// hitting a limit must clear `complete` (a truncated search must never
// masquerade as a proof) while violations found before the cut survive.

/// Builds a fresh in-star system (1 -> 0 <- 2) per reset — enough schedules
/// to make any small max_executions bite.
struct tiny_explorer {
  graph::digraph g;
  std::unique_ptr<sim::unit_delay_scheduler> sched;
  std::unique_ptr<core::discovery_run> run;
  core::config cfg;

  tiny_explorer() {
    g.add_edge(1, 0);
    g.add_edge(2, 0);
  }
  sim::network* reset() {
    sched = std::make_unique<sim::unit_delay_scheduler>();
    run = std::make_unique<core::discovery_run>(g, cfg, *sched);
    run->net().set_manual_mode();
    run->wake_all();
    return &run->net();
  }
};

TEST(ExploreCoverage, ExecutionCapTruncatesButKeepsViolations) {
  tiny_explorer t;
  // An always-failing check: every leaf reached before the cap must be
  // reported, proving truncation does not swallow evidence.
  sim::explore_limits limits;
  limits.max_executions = 3;
  const auto res = sim::explore_interleavings(
      [&] { return t.reset(); }, [] { return std::string("always wrong"); },
      limits);
  EXPECT_FALSE(res.complete) << "cap hit must clear `complete`";
  EXPECT_LE(res.executions, limits.max_executions);
  EXPECT_GT(res.executions, 0u);
  EXPECT_FALSE(res.ok());
  for (const auto& v : res.violations)
    EXPECT_NE(v.find("always wrong"), std::string::npos) << v;
}

TEST(ExploreCoverage, ExecutionCapAboveTotalLeavesSearchComplete) {
  // The same system explored twice: once unbounded to learn its true leaf
  // count, once with the cap set just above it — the cap must not trip.
  tiny_explorer t;
  const auto full = sim::explore_interleavings(
      [&] { return t.reset(); }, [] { return std::string(); });
  ASSERT_TRUE(full.complete);
  ASSERT_GT(full.executions, 3u);

  sim::explore_limits limits;
  limits.max_executions = full.executions + 1;
  const auto capped = sim::explore_interleavings(
      [&] { return t.reset(); }, [] { return std::string(); }, limits);
  EXPECT_TRUE(capped.complete);
  EXPECT_EQ(capped.executions, full.executions);
}

TEST(ExploreCoverage, DepthCapTruncatesWithoutCheckingTruncatedLeaves) {
  tiny_explorer t;
  // Depth 2 cannot reach quiescence for a 3-node duel (wakes alone exceed
  // it): the search must report incompleteness, not false verdicts from
  // half-finished executions.
  std::uint64_t checks = 0;
  sim::explore_limits limits;
  limits.max_depth = 2;
  const auto res = sim::explore_interleavings(
      [&] { return t.reset(); },
      [&] {
        ++checks;
        return std::string("reached a leaf that cannot exist");
      },
      limits);
  EXPECT_FALSE(res.complete) << "depth cut must clear `complete`";
  EXPECT_EQ(checks, 0u) << "truncated branches must not be checked";
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.executions, 0u);
}

}  // namespace
}  // namespace asyncrd
