// Wire codec properties (DESIGN.md §10): varints and delta sets round-trip
// over randomized inputs including 64-bit extremes, every core message type
// survives encode -> wire_msg -> zero-copy decode with its accounting
// intact, and every class of malformed frame (truncated varint, bad tag,
// unsorted deltas, overflow, trailing bytes) is rejected with decode_error
// instead of UB — these decoders will eventually face untrusted peers, and
// the suite runs under the ASan/UBSan CI job to prove the rejection paths
// are clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <vector>

#include "core/messages.h"
#include "sim/wire.h"

namespace asyncrd {
namespace {

using sim::wire::decode_error;
using sim::wire::id_set_view;
using sim::wire::put_id_set;
using sim::wire::put_varint;
using sim::wire::reader;
using sim::wire::varint_size;

constexpr std::uint64_t u64_max = std::numeric_limits<std::uint64_t>::max();

std::vector<std::uint8_t> encode(const sim::message& m) {
  std::vector<std::uint8_t> out;
  const sim::wire_encode_fn fn = core::wire::codec().encode[m.dispatch_tag()];
  if (fn == nullptr) throw decode_error("no encoder registered");
  fn(m, out);
  return out;
}

template <typename View>
std::vector<std::uint64_t> materialize(const View& v) {
  return std::vector<std::uint64_t>(v.begin(), v.end());
}

// ---------------------------------------------------------------------------
// Varint primitive
// ---------------------------------------------------------------------------

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  255,
                                  16383,
                                  16384,
                                  (1ull << 21) - 1,
                                  1ull << 21,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 56) - 1,
                                  1ull << 56,
                                  (1ull << 63) - 1,
                                  1ull << 63,
                                  u64_max};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v)) << v;
    reader r(buf.data(), buf.size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
  // The widest legal varint is 10 bytes (ceil(64/7)).
  EXPECT_EQ(varint_size(u64_max), 10u);
}

TEST(Varint, RoundTripsRandomized) {
  std::mt19937_64 rng(0xC0DEC);
  for (int trial = 0; trial < 2000; ++trial) {
    // Skew toward small values but cover the full 64-bit range: pick a
    // random bit width first, then a value within it.
    const unsigned width = static_cast<unsigned>(rng() % 64) + 1;
    const std::uint64_t v =
        rng() & (width == 64 ? u64_max : (1ull << width) - 1);
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    reader r(buf.data(), buf.size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, RejectsTruncation) {
  const std::uint8_t lonely_continuation[] = {0x80};
  reader r(lonely_continuation, 1);
  EXPECT_THROW(r.varint(), decode_error);

  reader empty(nullptr, 0);
  EXPECT_THROW(empty.varint(), decode_error);
}

TEST(Varint, RejectsWiderThan64Bits) {
  // Eleven continuation groups: more than 64 payload bits.
  std::vector<std::uint8_t> too_long(10, 0x80);
  too_long.push_back(0x01);
  reader r(too_long.data(), too_long.size());
  EXPECT_THROW(r.varint(), decode_error);

  // Ten groups whose last byte carries bits beyond bit 63.
  std::vector<std::uint8_t> overflow_top(9, 0x80);
  overflow_top.push_back(0x02);
  reader r2(overflow_top.data(), overflow_top.size());
  EXPECT_THROW(r2.varint(), decode_error);

  // Ten groups with only bit 63 in the last byte: exactly 64 bits, legal.
  std::vector<std::uint8_t> max(9, 0xFF);
  max.push_back(0x01);
  reader r3(max.data(), max.size());
  EXPECT_EQ(r3.varint(), u64_max);
}

// ---------------------------------------------------------------------------
// Delta-set grammar and the zero-copy view
// ---------------------------------------------------------------------------

TEST(IdSetView, RoundTripsHandPickedExtremes) {
  const std::vector<std::vector<std::uint64_t>> sets = {
      {},
      {0},
      {u64_max},
      {0, u64_max},
      {0, 1, 2, 3, 4},
      {1ull << 62, (1ull << 62) + 1, u64_max - 1, u64_max},
  };
  for (const auto& ids : sets) {
    std::vector<std::uint8_t> buf;
    put_id_set(buf, ids);
    reader r(buf.data(), buf.size());
    const id_set_view v = id_set_view::parse(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(v.size(), ids.size());
    EXPECT_EQ(v.empty(), ids.empty());
    EXPECT_EQ(materialize(v), ids);
  }
}

TEST(IdSetView, RoundTripsRandomized) {
  std::mt19937_64 rng(0x5E75);
  for (int trial = 0; trial < 500; ++trial) {
    // Alternate between dense low-id sets (the simulator's regime) and
    // sparse sets sampled from the full 64-bit range.
    const bool dense = (trial % 2) == 0;
    const std::size_t want = static_cast<std::size_t>(rng() % 65);
    std::set<std::uint64_t> s;
    while (s.size() < want) s.insert(dense ? rng() % 1024 : rng());
    const std::vector<std::uint64_t> ids(s.begin(), s.end());

    std::vector<std::uint8_t> buf;
    put_id_set(buf, ids);
    reader r(buf.data(), buf.size());
    const id_set_view v = id_set_view::parse(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(materialize(v), ids);
  }
}

TEST(IdSetView, IteratorIsMultipass) {
  const std::vector<std::uint64_t> ids = {3, 7, 1000, u64_max / 2};
  std::vector<std::uint8_t> buf;
  put_id_set(buf, ids);
  reader r(buf.data(), buf.size());
  const id_set_view v = id_set_view::parse(r);
  // A forward iterator may be walked repeatedly from begin().
  EXPECT_EQ(materialize(v), ids);
  EXPECT_EQ(materialize(v), ids);
  auto it = v.begin();
  EXPECT_EQ(*it++, 3u);
  EXPECT_EQ(*it, 7u);
  EXPECT_EQ(*++it, 1000u);
}

TEST(IdSetView, RejectsZeroDelta) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 2);  // count
  put_varint(buf, 5);  // first id
  put_varint(buf, 0);  // delta 0: duplicate/unsorted
  reader r(buf.data(), buf.size());
  EXPECT_THROW(id_set_view::parse(r), decode_error);
}

TEST(IdSetView, RejectsAccumulatedOverflow) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 2);
  put_varint(buf, u64_max);  // first id already at the top
  put_varint(buf, 1);        // +1 wraps
  reader r(buf.data(), buf.size());
  EXPECT_THROW(id_set_view::parse(r), decode_error);
}

TEST(IdSetView, RejectsTruncatedSet) {
  // Claims three ids, carries one.
  std::vector<std::uint8_t> buf;
  put_varint(buf, 3);
  put_varint(buf, 42);
  reader r(buf.data(), buf.size());
  EXPECT_THROW(id_set_view::parse(r), decode_error);

  // An absurd count on an empty payload must also die by truncation,
  // not allocate or overflow.
  std::vector<std::uint8_t> huge;
  put_varint(huge, u64_max);
  reader r2(huge.data(), huge.size());
  EXPECT_THROW(id_set_view::parse(r2), decode_error);
}

// ---------------------------------------------------------------------------
// Per-type codec round-trips
// ---------------------------------------------------------------------------

core::id_vec random_node_ids(std::mt19937_64& rng, std::size_t n) {
  std::set<node_id> s;
  while (s.size() < n) {
    // Mix small ids with values near the node_id ceiling.
    const node_id v = (rng() % 4 == 0)
                          ? static_cast<node_id>(u64_max - rng() % 1024)
                          : static_cast<node_id>(rng() % 100000);
    s.insert(v);
  }
  return core::id_vec(s.begin(), s.end());
}

template <typename M, typename... Args>
sim::message_ptr make(Args&&... args) {
  return sim::make_message<M>(std::forward<Args>(args)...);
}

/// Encodes `m` and wraps the frame exactly as network::wire_encode does,
/// checking the frame header and the accounting forwarding on the way.
sim::message_ptr to_wire(const sim::message_ptr& m) {
  const std::vector<std::uint8_t> frame = encode(*m);
  EXPECT_EQ(frame[0], sim::wire::wire_bit | m->dispatch_tag());
  auto w = make<sim::wire_msg>(*m, frame.data(), frame.size());
  // Bit accounting must be captured from the inner message so stats and
  // traces are identical with wire mode on or off.
  EXPECT_EQ(w->type_name(), m->type_name());
  EXPECT_EQ(w->id_fields(), m->id_fields());
  EXPECT_EQ(w->int_fields(), m->int_fields());
  EXPECT_EQ(w->flag_bits(), m->flag_bits());
  EXPECT_EQ(w->dispatch_tag(), frame[0]);
  return w;
}

const sim::wire_msg& as_wire(const sim::message_ptr& m) {
  return static_cast<const sim::wire_msg&>(*m);
}

TEST(Codec, RoundTripsEveryFixedFieldType) {
  {
    const auto m = make<core::query_msg>(std::size_t{7});
    const auto v = core::wire::decode_query(as_wire(to_wire(m)));
    EXPECT_EQ(v.requested, 7u);
  }
  {
    const auto m = make<core::search_msg>(10, 3, 200000, true);
    const auto v = core::wire::decode_search(as_wire(to_wire(m)));
    EXPECT_EQ(v.initiator, 10u);
    EXPECT_EQ(v.initiator_phase, 3u);
    EXPECT_EQ(v.target, 200000u);
    EXPECT_TRUE(v.new_flag);
  }
  {
    const auto m = make<core::release_msg>(
        9, 4, core::release_msg::answer_t::abort, 17);
    const auto v = core::wire::decode_release(as_wire(to_wire(m)));
    EXPECT_EQ(v.from_leader, 9u);
    EXPECT_EQ(v.from_phase, 4u);
    EXPECT_EQ(v.answer, core::release_msg::answer_t::abort);
    EXPECT_EQ(v.initiator, 17u);
  }
  {
    const auto m = make<core::merge_accept_msg>(5, 2);
    const auto v = core::wire::decode_merge_accept(as_wire(to_wire(m)));
    EXPECT_EQ(v.conqueror, 5u);
    EXPECT_EQ(v.conqueror_phase, 2u);
  }
  {
    // merge_fail has no payload and no decoder: the frame is just the
    // header byte.
    const auto m = make<core::merge_fail_msg>();
    const auto frame = encode(*m);
    EXPECT_EQ(frame.size(), 1u);
  }
  {
    const auto m = make<core::conquer_msg>(123, 6);
    const auto v = core::wire::decode_conquer(as_wire(to_wire(m)));
    EXPECT_EQ(v.leader, 123u);
    EXPECT_EQ(v.phase, 6u);
  }
  {
    const auto m = make<core::member_reply_msg>(true);
    EXPECT_TRUE(core::wire::decode_member_reply(as_wire(to_wire(m))).has_more);
    const auto m2 = make<core::member_reply_msg>(false);
    EXPECT_FALSE(
        core::wire::decode_member_reply(as_wire(to_wire(m2))).has_more);
  }
  {
    const auto m = make<core::probe_msg>(42);
    EXPECT_EQ(core::wire::decode_probe(as_wire(to_wire(m))).requester, 42u);
  }
  {
    const auto m = make<core::report_msg>(77);
    EXPECT_EQ(core::wire::decode_report(as_wire(to_wire(m))).reporter, 77u);
  }
  {
    const auto m = make<core::report_ack_msg>(8, 5, 77);
    const auto v = core::wire::decode_report_ack(as_wire(to_wire(m)));
    EXPECT_EQ(v.leader, 8u);
    EXPECT_EQ(v.leader_phase, 5u);
    EXPECT_EQ(v.reporter, 77u);
  }
}

TEST(Codec, RoundTripsIdSetPayloadsRandomized) {
  std::mt19937_64 rng(0xF00D);
  for (int trial = 0; trial < 100; ++trial) {
    const core::id_vec ids = random_node_ids(rng, rng() % 48);
    const std::vector<std::uint64_t> want(ids.begin(), ids.end());
    const bool done = (trial % 2) == 0;
    {
      const auto m = make<core::query_reply_msg>(ids, done);
      const auto w = to_wire(m);
      const auto v = core::wire::decode_query_reply(as_wire(w));
      EXPECT_EQ(materialize(v.ids), want);
      EXPECT_EQ(v.done_flag, done);
    }
    {
      const core::id_vec more = random_node_ids(rng, rng() % 16);
      const core::id_vec unexplored = random_node_ids(rng, rng() % 16);
      const auto m = make<core::info_msg>(
          static_cast<core::phase_t>(trial), more, ids, core::id_vec{},
          unexplored);
      const auto v = core::wire::decode_info(as_wire(to_wire(m)));
      EXPECT_EQ(v.phase, static_cast<core::phase_t>(trial));
      EXPECT_EQ(materialize(v.more),
                std::vector<std::uint64_t>(more.begin(), more.end()));
      EXPECT_EQ(materialize(v.done), want);
      EXPECT_TRUE(v.unaware.empty());
      EXPECT_EQ(materialize(v.unexplored),
                std::vector<std::uint64_t>(unexplored.begin(),
                                           unexplored.end()));
    }
    {
      const auto m = make<core::probe_reply_msg>(3, 1, 9, ids);
      const auto v = core::wire::decode_probe_reply(as_wire(to_wire(m)));
      EXPECT_EQ(v.leader, 3u);
      EXPECT_EQ(v.leader_phase, 1u);
      EXPECT_EQ(v.requester, 9u);
      EXPECT_EQ(materialize(v.census), want);
    }
  }
}

TEST(Codec, LargeFramesSpillToThePoolAndBack) {
  // Well past wire_msg's 32-byte inline buffer: the frame takes the pooled
  // heap path; the decode must read identical bytes (ASan guards the copy).
  core::id_vec ids;
  for (node_id i = 0; i < 500; ++i) ids.push_back(i * 7 + 1);
  const auto m = make<core::query_reply_msg>(ids, false);
  const auto frame = encode(*m);
  ASSERT_GT(frame.size(), 32u);
  const auto w = to_wire(m);
  EXPECT_EQ(as_wire(w).size(), frame.size());
  const auto v = core::wire::decode_query_reply(as_wire(w));
  EXPECT_EQ(materialize(v.ids),
            std::vector<std::uint64_t>(ids.begin(), ids.end()));
}

// ---------------------------------------------------------------------------
// Malformed frames
// ---------------------------------------------------------------------------

/// Wraps raw payload bytes in a frame with the given inner tag.  The inner
/// message only supplies accounting, which these tests ignore.
sim::message_ptr raw_frame(core::msg_kind k,
                           std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.push_back(static_cast<std::uint8_t>(sim::wire::wire_bit |
                                            core::tag_of(k)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const core::merge_fail_msg dummy;
  return make<sim::wire_msg>(dummy, frame.data(), frame.size());
}

TEST(Codec, RejectsMismatchedTag) {
  const auto m = make<core::search_msg>(1, 2, 3, false);
  const auto w = to_wire(m);
  EXPECT_THROW(core::wire::decode_query(as_wire(w)), decode_error);
  EXPECT_THROW(core::wire::decode_release(as_wire(w)), decode_error);
}

TEST(Codec, RejectsTruncatedPayload) {
  // search needs (id, phase, id, flag); give it one varint.
  const auto w = raw_frame(core::msg_kind::search, {0x05});
  EXPECT_THROW(core::wire::decode_search(as_wire(w)), decode_error);

  // query_reply whose delta set claims more ids than the frame holds.
  std::vector<std::uint8_t> p;
  put_varint(p, 4);
  put_varint(p, 1);
  const auto w2 = raw_frame(core::msg_kind::query_reply, p);
  EXPECT_THROW(core::wire::decode_query_reply(as_wire(w2)), decode_error);
}

TEST(Codec, RejectsTrailingBytes) {
  std::vector<std::uint8_t> p;
  put_varint(p, 9);
  p.push_back(0x00);  // one byte past the single `requested` field
  const auto w = raw_frame(core::msg_kind::query, p);
  EXPECT_THROW(core::wire::decode_query(as_wire(w)), decode_error);
}

TEST(Codec, RejectsBadBooleanByte) {
  std::vector<std::uint8_t> p;
  put_varint(p, 1);
  put_varint(p, 2);
  put_varint(p, 3);
  p.push_back(0x02);  // new_flag must be 0 or 1
  const auto w = raw_frame(core::msg_kind::search, p);
  EXPECT_THROW(core::wire::decode_search(as_wire(w)), decode_error);
}

TEST(Codec, RejectsOutOfRangeScalars) {
  // An id field above the 32-bit node_id ceiling.
  std::vector<std::uint8_t> p;
  put_varint(p, 1ull << 32);
  const auto w = raw_frame(core::msg_kind::probe, p);
  EXPECT_THROW(core::wire::decode_probe(as_wire(w)), decode_error);

  // A phase field above 32 bits.
  std::vector<std::uint8_t> p2;
  put_varint(p2, 7);           // conqueror
  put_varint(p2, 1ull << 40);  // conqueror_phase
  const auto w2 = raw_frame(core::msg_kind::merge_accept, p2);
  EXPECT_THROW(core::wire::decode_merge_accept(as_wire(w2)), decode_error);
}

TEST(Codec, RejectsUnsortedIdSetInPayload) {
  std::vector<std::uint8_t> p;
  put_varint(p, 2);  // count
  put_varint(p, 9);  // first id
  put_varint(p, 0);  // zero delta
  p.push_back(0x00);  // done_flag
  const auto w = raw_frame(core::msg_kind::query_reply, p);
  EXPECT_THROW(core::wire::decode_query_reply(as_wire(w)), decode_error);
}

// ---------------------------------------------------------------------------
// Id-set count bound (service-mode hardening): a frame may declare at most
// as many set elements as it has bytes left, since every element costs at
// least one varint byte.  A hostile count must be rejected *before* any
// element parsing or allocation — a 2^60 claim in a 3-byte frame would
// otherwise spin the delta loop until it tripped on truncation.
// ---------------------------------------------------------------------------

TEST(IdSetView, RejectsCountExceedingFrame) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ull << 60);  // claimed count
  put_varint(buf, 1);           // one actual element
  reader r(buf.data(), buf.size());
  EXPECT_THROW(id_set_view::parse(r), decode_error);

  // Boundary: count == remaining bytes is admissible (one byte per element
  // is exactly achievable with single-byte varints).
  std::vector<std::uint8_t> ok;
  put_varint(ok, 3);
  put_varint(ok, 1);
  put_varint(ok, 1);
  put_varint(ok, 1);
  reader r2(ok.data(), ok.size());
  EXPECT_EQ(materialize(id_set_view::parse(r2)),
            (std::vector<std::uint64_t>{1, 2, 3}));

  // count == remaining + 1 must already fail the pre-check.
  std::vector<std::uint8_t> over;
  put_varint(over, 3);
  put_varint(over, 1);
  put_varint(over, 1);
  reader r3(over.data(), over.size());
  EXPECT_THROW(id_set_view::parse(r3), decode_error);
}

// ---------------------------------------------------------------------------
// validate_frame: the full-grammar gate service mode runs on every datagram
// payload before boxing it (net/udp_transport.h frame hooks).  Accepts
// exactly the codec's output; rejects the malformed corpus with decode_error
// rather than anything nastier.
// ---------------------------------------------------------------------------

std::vector<sim::message_ptr> one_of_each_encodable() {
  std::vector<sim::message_ptr> all;
  all.push_back(make<core::query_msg>(3));
  all.push_back(make<core::query_reply_msg>(core::id_vec{4, 9, 1000}, true));
  all.push_back(make<core::search_msg>(7, 2, 11, true));
  all.push_back(make<core::release_msg>(5, 3,
                                        core::release_msg::answer_t::merge, 7));
  all.push_back(make<core::merge_accept_msg>(12, 4));
  all.push_back(make<core::merge_fail_msg>());
  all.push_back(make<core::info_msg>(3, core::id_vec{1, 2}, core::id_vec{5},
                                     core::id_vec{}, core::id_vec{9, 40}));
  all.push_back(make<core::conquer_msg>(9, 5));
  all.push_back(make<core::member_reply_msg>(true));
  all.push_back(make<core::probe_msg>(17));
  all.push_back(make<core::probe_reply_msg>(3, 2, 17, core::id_vec{1, 4}));
  all.push_back(make<core::report_msg>(6));
  all.push_back(make<core::report_ack_msg>(3, 2, 6));
  return all;
}

TEST(ValidateFrame, AcceptsEveryEncodedType) {
  for (const auto& m : one_of_each_encodable()) {
    const std::vector<std::uint8_t> frame = encode(*m);
    EXPECT_NO_THROW(core::wire::validate_frame(frame.data(), frame.size()))
        << m->type_name();
    // tag_name mirrors the type_name literal the struct path reports, so
    // service-mode stats bucket under the same keys as simulation stats.
    EXPECT_EQ(core::wire::tag_name(frame[0] &
                                   static_cast<std::uint8_t>(~sim::wire::wire_bit)),
              m->type_name());
  }
}

TEST(ValidateFrame, RejectsMalformedCorpus) {
  const auto reject = [](std::vector<std::uint8_t> frame, const char* why) {
    EXPECT_THROW(core::wire::validate_frame(frame.data(), frame.size()),
                 decode_error)
        << why;
  };
  reject({}, "empty datagram");
  reject({0x03}, "header without wire bit (raw struct tag)");
  reject({sim::wire::wire_bit | 0x00}, "wire bit with reserved tag 0");
  reject({sim::wire::wire_bit | 0x7F}, "wire bit with unknown tag");
  reject({0xE7, 0x01}, "ARQ envelope tag is not an application frame");

  // Truncations of a valid frame: every strict prefix must be rejected
  // (either a short varint, a missing field, or a bad flag byte).
  const std::vector<std::uint8_t> good =
      encode(*make<core::search_msg>(300, 2, 11, true));
  ASSERT_NO_THROW(core::wire::validate_frame(good.data(), good.size()));
  for (std::size_t cut = 1; cut < good.size(); ++cut)
    reject({good.begin(), good.begin() + static_cast<std::ptrdiff_t>(cut)},
           "truncated frame");

  // Trailing garbage after a complete payload.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0x00);
  reject(padded, "trailing bytes");

  // A flag byte outside {0, 1}.
  std::vector<std::uint8_t> badflag = good;
  badflag.back() = 0x02;
  reject(badflag, "non-boolean flag byte");

  // Hostile id-set count inside a query_reply frame.
  std::vector<std::uint8_t> hostile;
  hostile.push_back(sim::wire::wire_bit |
                    core::tag_of(core::msg_kind::query_reply));
  put_varint(hostile, 1ull << 50);  // count far beyond the frame
  put_varint(hostile, 1);
  hostile.push_back(0x01);
  reject(hostile, "id-set count exceeds frame");
}

TEST(ValidateFrame, FuzzRandomBytesNeverEscapeDecodeError) {
  // 10k random datagrams: every outcome must be "accepted" or decode_error —
  // anything else (crash, other exception) is exactly the discoveryd bug
  // class this gate exists to stop.
  std::mt19937_64 rng(0xF00DBABEull);
  std::vector<std::uint8_t> buf;
  for (int iter = 0; iter < 10000; ++iter) {
    buf.resize(rng() % 64);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    if (!buf.empty() && rng() % 2 == 0)
      buf[0] = sim::wire::wire_bit |
               static_cast<std::uint8_t>(rng() % 16);  // plausible headers
    try {
      core::wire::validate_frame(buf.data(), buf.size());
    } catch (const decode_error&) {
      // counted drop in service mode; fine
    }
  }
}

}  // namespace
}  // namespace asyncrd
