#include <gtest/gtest.h>

#include <sstream>

#include "graph/graphio.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

TEST(GraphIo, ParsesEdgesCommentsAndNodes) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "0 1\n"
      "  // another comment\n"
      "1 2\n"
      "node 7\n"
      "2 0\n");
  const auto g = graph::read_edge_list(in);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_node(7));
}

TEST(GraphIo, RejectsMalformedLines) {
  {
    std::istringstream in("0\n");
    EXPECT_THROW(graph::read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("0 1 2\n");
    EXPECT_THROW(graph::read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("abc 1\n");
    EXPECT_THROW(graph::read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("node\n");
    EXPECT_THROW(graph::read_edge_list(in), std::runtime_error);
  }
}

TEST(GraphIo, ErrorMessagesCarryLineNumbers) {
  std::istringstream in("0 1\nbogus\n");
  try {
    graph::read_edge_list(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, RoundTripPreservesGraph) {
  const auto g = graph::random_weakly_connected(40, 60, 11);
  std::ostringstream out;
  graph::write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = graph::read_edge_list(in);
  EXPECT_EQ(g2.node_count(), g.node_count());
  EXPECT_EQ(g2.edge_count(), g.edge_count());
  for (const node_id v : g.nodes()) EXPECT_EQ(g2.out(v), g.out(v));
}

TEST(GraphIo, RoundTripKeepsIsolatedNodes) {
  graph::digraph g;
  g.add_edge(0, 1);
  g.add_node(5);
  std::ostringstream out;
  graph::write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = graph::read_edge_list(in);
  EXPECT_TRUE(g2.has_node(5));
  EXPECT_EQ(g2.node_count(), 3u);
}

TEST(GraphIo, DotOutputMentionsEveryNodeAndEdge) {
  graph::digraph g;
  g.add_edge(1, 2);
  g.add_node(3);
  const std::string dot = graph::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n3"), std::string::npos);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(graph::read_edge_list_file("/nonexistent/path/g.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace asyncrd
