// Exhaustive configuration-knob matrix: every combination of the engine's
// policy knobs (variant x path compression x phases x balanced queries)
// must preserve the safety and liveness spec — the knobs are performance
// levers, never correctness levers.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using param = std::tuple<int /*variant*/, bool /*compression*/,
                         bool /*phases*/, bool /*balanced*/>;

class ConfigMatrix : public ::testing::TestWithParam<param> {
 protected:
  core::config make_config() const {
    const auto [vi, compress, phases, balanced] = GetParam();
    core::config cfg;
    cfg.algo = static_cast<core::variant>(vi);
    cfg.path_compression = compress;
    cfg.use_phases = phases;
    cfg.balanced_queries = balanced;
    return cfg;
  }

  void expect_ok(const graph::digraph& g, std::uint64_t seed) {
    std::unique_ptr<sim::scheduler> sched;
    if (seed == 0)
      sched = std::make_unique<sim::unit_delay_scheduler>();
    else
      sched = std::make_unique<sim::random_delay_scheduler>(seed);
    const core::config cfg = make_config();
    core::discovery_run run(g, cfg, *sched);
    core::structure_monitor structure(run);
    run.net().set_observer(&structure);
    run.wake_all();
    const auto r = run.run();
    ASSERT_TRUE(r.completed);
    const auto rep = core::check_final_state(run, g);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    EXPECT_TRUE(structure.ok()) << structure.violations().front();
  }
};

TEST_P(ConfigMatrix, RandomGraph) {
  expect_ok(graph::random_weakly_connected(30, 45, 5), 3);
}

TEST_P(ConfigMatrix, BinaryTree) {
  expect_ok(graph::directed_binary_tree(4), 0);
}

TEST_P(ConfigMatrix, InStarUnderRandomDelays) {
  expect_ok(graph::star_in(20), 9);
}

TEST_P(ConfigMatrix, MultiComponent) {
  expect_ok(graph::multi_component(2, 10, 6, 4), 7);
}

std::string config_name(const ::testing::TestParamInfo<param>& info) {
  static const char* names[] = {"generic", "bounded", "adhoc"};
  std::string s = names[std::get<0>(info.param)];
  s += std::get<1>(info.param) ? "_compress" : "_nocompress";
  s += std::get<2>(info.param) ? "_phases" : "_nophases";
  s += std::get<3>(info.param) ? "_balanced" : "_drain";
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, ConfigMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()),
                         config_name);

}  // namespace
}  // namespace asyncrd
