// The Ad-hoc variant (§4.5.2): no conquer broadcasts; non-leaders reach the
// leader through next-pointer paths (properties 3a/3b); census probes with
// path compression.
#include <gtest/gtest.h>

#include "core/adversary.h"
#include "graph/topology.h"
#include "test_util.h"

namespace asyncrd {
namespace {

using core::variant;
using testing::run_instrumented;

TEST(Adhoc, NeverSendsConquerMessages) {
  const auto g = graph::random_weakly_connected(60, 80, 2);
  sim::random_delay_scheduler sched(8);
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  EXPECT_EQ(run.statistics().messages_of("conquer"), 0u);
  EXPECT_EQ(run.statistics().messages_of("more_done"), 0u);
}

TEST(Adhoc, PointerPathsReachTheLeader) {
  const auto g = graph::random_weakly_connected(45, 60, 5);
  const auto r = run_instrumented(g, variant::adhoc, 9);
  EXPECT_EQ(r.summary.leaders.size(), 1u);
}

TEST(Adhoc, ProbeReturnsFullCensusAtQuiescence) {
  const auto g = graph::random_weakly_connected(30, 40, 7);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const node_id leader = run.leaders().front();

  const auto expected = g.weak_components().front();
  for (const node_id v : run.ids()) {
    run.probe(v);
    run.net().run_to_quiescence();
    const auto& census = run.at(v).last_census();
    ASSERT_TRUE(census.has_value()) << "node " << v;
    EXPECT_EQ(census->leader, leader) << "node " << v;
    EXPECT_EQ(census->ids, expected) << "node " << v;
  }
}

TEST(Adhoc, PathCompressionCutsRoutingCost) {
  // Sequential wake-ups 1..n on an in-star, with the phase (union-by-rank)
  // mechanism ablated so each newcomer's higher id conquers the incumbent:
  // this builds a conquest genealogy chain 0 -> 1 -> ... -> n-1.  Without
  // compression every new search walks the whole chain (Theta(n^2) hops);
  // with compression the total stays near-linear.  This is the distributed
  // analogue of the DSU compression ablation.
  const std::size_t n = 64;
  const auto g = graph::star_in(n);
  const auto run_with = [&](bool compress) {
    core::sequential_wakeup_scheduler sched(g.nodes());
    core::config cfg;
    cfg.algo = variant::adhoc;
    cfg.path_compression = compress;
    cfg.use_phases = false;
    core::discovery_run run(g, cfg, sched);
    run.net().wake(0);
    run.run();
    const auto rep = core::check_final_state(run, g);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    return run.statistics().messages_of_any({"search", "release"});
  };
  const auto with_compression = run_with(true);
  const auto without_compression = run_with(false);
  EXPECT_LT(with_compression, without_compression / 2)
      << "with=" << with_compression << " without=" << without_compression;
}

TEST(Adhoc, SecondProbeRoundNeverCostsMore) {
  // Probe replies compress pointers, so a second full probe round can only
  // be cheaper or equal.
  const auto g = graph::random_weakly_connected(48, 48, 17);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  cfg.census_in_probe_reply = false;  // measure routing cost only
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  const auto probes_cost = [&]() {
    const auto before =
        run.statistics().messages_of_any({"probe", "probe_reply"});
    for (const node_id v : run.ids()) run.probe(v);
    run.net().run_to_quiescence();
    return run.statistics().messages_of_any({"probe", "probe_reply"}) - before;
  };
  const auto first = probes_cost();
  const auto second = probes_cost();
  EXPECT_LE(second, first);
  // After one compressed round every node is at most one hop from the
  // leader: one probe + one reply each (the leader's probe is free).
  EXPECT_LE(second, 2u * 48u);
}

TEST(Adhoc, ProbeFromLeaderIsLocal) {
  graph::digraph g;
  g.add_edge(0, 1);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const node_id leader = run.leaders().front();
  const auto before = run.statistics().total_messages();
  run.probe(leader);
  run.net().run_to_quiescence();
  EXPECT_EQ(run.statistics().total_messages(), before);  // zero messages
  ASSERT_TRUE(run.at(leader).last_census().has_value());
  EXPECT_EQ(run.at(leader).last_census()->ids,
            (std::vector<node_id>{0, 1}));
}

TEST(Adhoc, ProbeBeforeWakeYieldsSelfView) {
  graph::digraph g;
  g.add_node(3);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.probe(3);  // node still asleep: probe queues, wake is scheduled
  run.run();
  ASSERT_TRUE(run.at(3).last_census().has_value());
  EXPECT_EQ(run.at(3).last_census()->leader, 3u);
}

TEST(Adhoc, AmortizedProbeCostStaysNearLinear) {
  // "for any m requests to reach the leader, the total cost of leader
  // election and reply messages to all the requests is O((m+n) a(m,n))".
  const std::size_t n = 128;
  const auto g = graph::random_weakly_connected(n, n, 13);
  sim::unit_delay_scheduler sched;
  core::config cfg;
  cfg.algo = variant::adhoc;
  cfg.census_in_probe_reply = false;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const std::size_t m = 4 * n;  // m probe requests round-robin
  for (std::size_t i = 0; i < m; ++i) {
    run.probe(static_cast<node_id>(i % n));
    run.net().run_to_quiescence();
  }
  const auto total = run.statistics().total_messages();
  // Generous audit constant for O((m+n) alpha).
  EXPECT_LE(total, 12u * (m + n));
}

using sweep_param = std::tuple<std::size_t, std::uint64_t>;

class AdhocSweep : public ::testing::TestWithParam<sweep_param> {};

TEST_P(AdhocSweep, SafetyPointerPathsAndBounds) {
  const auto [n, seed] = GetParam();
  const auto g = graph::random_weakly_connected(n, 2 * n, seed * 17 + n);
  run_instrumented(g, variant::adhoc, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdhocSweep,
    ::testing::Combine(::testing::Values(6, 20, 75, 160),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<sweep_param>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class AdhocTopologies : public ::testing::TestWithParam<int> {};

TEST_P(AdhocTopologies, StructuredGraphs) {
  switch (GetParam()) {
    case 0: run_instrumented(graph::directed_path(48), variant::adhoc, 1); break;
    case 1: run_instrumented(graph::star_out(48), variant::adhoc, 2); break;
    case 2: run_instrumented(graph::star_in(48), variant::adhoc, 3); break;
    case 3:
      run_instrumented(graph::directed_binary_tree(6), variant::adhoc, 4);
      break;
    case 4: run_instrumented(graph::clique(15), variant::adhoc, 5); break;
    case 5:
      run_instrumented(graph::multi_component(3, 12, 8, 6), variant::adhoc, 6);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(All, AdhocTopologies, ::testing::Range(0, 6));

}  // namespace
}  // namespace asyncrd
