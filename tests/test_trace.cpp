// Figure 1 validation machinery: the transition recorder and the legal
// transition relation.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/trace.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::status_t;
using core::transition_recorder;

TEST(Trace, RecordsMultiplicities) {
  transition_recorder rec;
  rec.on_transition(1, status_t::asleep, status_t::explore);
  rec.on_transition(2, status_t::asleep, status_t::explore);
  rec.on_transition(1, status_t::explore, status_t::wait);
  EXPECT_EQ(rec.total(), 3u);
  EXPECT_EQ(rec.edges().at({status_t::asleep, status_t::explore}), 2u);
}

TEST(Trace, LegalEdgeSetMatchesFigure1) {
  const auto& legal = transition_recorder::legal_edges();
  // Spot-check the diagram's arrows.
  EXPECT_TRUE(legal.contains({status_t::explore, status_t::wait}));
  EXPECT_TRUE(legal.contains({status_t::wait, status_t::conquered}));
  EXPECT_TRUE(legal.contains({status_t::wait, status_t::conqueror}));
  EXPECT_TRUE(legal.contains({status_t::wait, status_t::passive}));
  EXPECT_TRUE(legal.contains({status_t::conquered, status_t::inactive}));
  EXPECT_TRUE(legal.contains({status_t::conquered, status_t::passive}));
  EXPECT_TRUE(legal.contains({status_t::conqueror, status_t::explore}));
  EXPECT_TRUE(legal.contains({status_t::passive, status_t::conquered}));
  // Arrows that must NOT exist.
  EXPECT_FALSE(legal.contains({status_t::inactive, status_t::explore}));
  EXPECT_FALSE(legal.contains({status_t::passive, status_t::explore}));
  EXPECT_FALSE(legal.contains({status_t::inactive, status_t::wait}));
  EXPECT_FALSE(legal.contains({status_t::terminated, status_t::explore}));
  EXPECT_FALSE(legal.contains({status_t::conqueror, status_t::terminated}));
}

TEST(Trace, IllegalEdgesFlagged) {
  transition_recorder rec;
  rec.on_transition(1, status_t::inactive, status_t::explore);  // impossible
  ASSERT_EQ(rec.illegal_edges().size(), 1u);
  EXPECT_EQ(core::edge_to_string(rec.illegal_edges().front()),
            "inactive -> explore");
}

TEST(Trace, RealExecutionsStayWithinFigure1) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    transition_recorder rec;
    const auto g = graph::random_weakly_connected(40, 60, seed);
    core::run_discovery(g, core::variant::generic, seed, &rec);
    EXPECT_TRUE(rec.illegal_edges().empty()) << "seed " << seed;
    EXPECT_GT(rec.total(), 40u);  // every node at least woke up
  }
}

TEST(Trace, StatusToString) {
  EXPECT_EQ(core::to_string(status_t::explore), "explore");
  EXPECT_EQ(core::to_string(status_t::terminated), "terminated");
  EXPECT_EQ(core::to_string(core::variant::adhoc), "adhoc");
}

TEST(Trace, LeaderStatusClassification) {
  EXPECT_TRUE(core::is_leader_status(status_t::explore));
  EXPECT_TRUE(core::is_leader_status(status_t::wait));
  EXPECT_TRUE(core::is_leader_status(status_t::conqueror));
  EXPECT_TRUE(core::is_leader_status(status_t::terminated));
  EXPECT_TRUE(core::is_leader_status(status_t::asleep));
  EXPECT_FALSE(core::is_leader_status(status_t::passive));
  EXPECT_FALSE(core::is_leader_status(status_t::conquered));
  EXPECT_FALSE(core::is_leader_status(status_t::inactive));
}

}  // namespace
}  // namespace asyncrd
