// Ackermann's function and the paper's inverse-Ackermann definition
// (footnote 1): alpha(m, n) = min{ i >= 1 : A(i, floor(m/n)) > log n }.
#include <gtest/gtest.h>

#include "unionfind/ackermann.h"

namespace asyncrd {
namespace {

using uf::ackermann;
using uf::ackermann_cap;
using uf::inverse_ackermann;

TEST(Ackermann, RowZeroIsSuccessor) {
  for (std::uint64_t n = 0; n < 100; ++n) EXPECT_EQ(ackermann(0, n), n + 1);
}

TEST(Ackermann, RowOneClosedForm) {
  for (std::uint64_t n = 0; n < 100; ++n) EXPECT_EQ(ackermann(1, n), n + 2);
}

TEST(Ackermann, RowTwoClosedForm) {
  for (std::uint64_t n = 0; n < 100; ++n) EXPECT_EQ(ackermann(2, n), 2 * n + 3);
}

TEST(Ackermann, RowThreeClosedForm) {
  // A(3, n) = 2^(n+3) - 3.
  EXPECT_EQ(ackermann(3, 0), 5u);
  EXPECT_EQ(ackermann(3, 1), 13u);
  EXPECT_EQ(ackermann(3, 2), 29u);
  EXPECT_EQ(ackermann(3, 3), 61u);
  EXPECT_EQ(ackermann(3, 10), (std::uint64_t{1} << 13) - 3);
}

TEST(Ackermann, RecurrenceBoundaryCases) {
  // A(m, 0) = A(m-1, 1).
  EXPECT_EQ(ackermann(4, 0), ackermann(3, 1));
  EXPECT_EQ(ackermann(2, 0), ackermann(1, 1));
}

TEST(Ackermann, RowFourExplodes) {
  // A(4, 1) = A(3, 13) = 2^16 - 3.
  EXPECT_EQ(ackermann(4, 1), 65533u);
  // A(4, 2) is a tower of ~2^65536: saturated.
  EXPECT_EQ(ackermann(4, 2), ackermann_cap);
  EXPECT_EQ(ackermann(5, 5), ackermann_cap);
}

TEST(InverseAckermann, PaperDefinitionSmallN) {
  // alpha(n, n): quotient 1.  A(1,1)=3, A(2,1)=5, A(3,1)=13.
  // log2(4) = 2 < 3           -> alpha = 1
  EXPECT_EQ(inverse_ackermann(4, 4), 1u);
  EXPECT_EQ(inverse_ackermann(7, 7), 1u);
  // log2(16) = 4: A(1,1)=3 <= 4, A(2,1)=5 > 4 -> alpha = 2
  EXPECT_EQ(inverse_ackermann(16, 16), 2u);
  EXPECT_EQ(inverse_ackermann(31, 31), 2u);
  // log2(64) = 6: A(2,1)=5 <= 6, A(3,1)=13 > 6 -> alpha = 3
  EXPECT_EQ(inverse_ackermann(64, 64), 3u);
  EXPECT_EQ(inverse_ackermann(4096, 4096), 3u);
  // A(3,1)=13 covers log n < 13, i.e. n < 8192 -> alpha stays 3
  EXPECT_EQ(inverse_ackermann(8191, 8191), 3u);
  // beyond: alpha = 4 (A(4,1)=65533 > any feasible log n)
  EXPECT_EQ(inverse_ackermann(8192, 8192), 4u);
  EXPECT_EQ(inverse_ackermann(std::uint64_t{1} << 40, std::uint64_t{1} << 40),
            4u);
}

TEST(InverseAckermann, LargerQuotientNeverIncreasesAlpha) {
  for (std::uint64_t n : {8u, 64u, 1024u, 65536u}) {
    const unsigned base = inverse_ackermann(n, n);
    EXPECT_LE(inverse_ackermann(4 * n, n), base);
    EXPECT_LE(inverse_ackermann(16 * n, n), base);
  }
}

TEST(InverseAckermann, MonotoneInN) {
  unsigned prev = 1;
  for (std::uint64_t n = 2; n <= (std::uint64_t{1} << 20); n *= 2) {
    const unsigned a = inverse_ackermann(n, n);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(InverseAckermann, TinyUniverse) {
  EXPECT_EQ(inverse_ackermann(1, 1), 1u);
  EXPECT_EQ(inverse_ackermann(0, 1), 1u);
}

}  // namespace
}  // namespace asyncrd
