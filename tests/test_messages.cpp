// Exhaustive bit-accounting checks: every message type's size formula must
// match the paper's conventions (ids and integers cost ceil(log2 n) bits,
// tags and booleans O(1)).  These sizes feed Theorem 7 / Lemmas 5.9-5.10
// directly, so they are pinned down here field by field.
#include <gtest/gtest.h>

#include "core/messages.h"

namespace asyncrd {
namespace {

using namespace asyncrd::core;

constexpr std::size_t B = 12;  // id width used throughout
constexpr std::size_t H = sim::message::header_bits;

TEST(MessageBits, Query) {
  const query_msg m(17);
  EXPECT_EQ(m.id_fields(), 0u);
  EXPECT_EQ(m.int_fields(), 1u);
  EXPECT_EQ(m.bits(B), B + H);
}

TEST(MessageBits, QueryReplyEmpty) {
  const query_reply_msg m({}, true);
  EXPECT_EQ(m.bits(B), 1 + H);
}

TEST(MessageBits, QueryReplyPayload) {
  const query_reply_msg m({1, 2, 3, 4, 5}, false);
  EXPECT_EQ(m.bits(B), 5 * B + 1 + H);
}

TEST(MessageBits, Search) {
  const search_msg m(7, 3, 9, true);
  EXPECT_EQ(m.id_fields(), 2u);   // initiator + target
  EXPECT_EQ(m.int_fields(), 1u);  // phase
  EXPECT_EQ(m.flag_bits(), 1u);   // new flag
  EXPECT_EQ(m.bits(B), 3 * B + 1 + H);
}

TEST(MessageBits, Release) {
  const release_msg m(7, 2, release_msg::answer_t::merge, 9);
  EXPECT_EQ(m.id_fields(), 2u);   // from_leader + initiator
  EXPECT_EQ(m.int_fields(), 1u);  // from_phase (compression key)
  EXPECT_EQ(m.flag_bits(), 1u);   // merge/abort tag
  EXPECT_EQ(m.bits(B), 3 * B + 1 + H);
}

TEST(MessageBits, MergeAcceptAndFail) {
  const merge_accept_msg a(5, 2);
  EXPECT_EQ(a.bits(B), 2 * B + H);
  const merge_fail_msg f;
  EXPECT_EQ(f.bits(B), H);  // constant size
}

TEST(MessageBits, InfoScalesWithAllSets) {
  const info_msg m(4, {1}, {2, 3}, {4, 5, 6}, {7, 8, 9, 10});
  EXPECT_EQ(m.id_fields(), 10u);
  EXPECT_EQ(m.bits(B), (10 + 1) * B + H);
}

TEST(MessageBits, ConquerAndMemberReply) {
  const conquer_msg c(3, 5);
  EXPECT_EQ(c.bits(B), 2 * B + H);
  const member_reply_msg r(true);
  EXPECT_EQ(r.bits(B), 1 + H);
}

TEST(MessageBits, ProbeAndReply) {
  const probe_msg p(4);
  EXPECT_EQ(p.bits(B), B + H);
  const probe_reply_msg pr(9, 3, 4, {1, 2, 3});
  EXPECT_EQ(pr.id_fields(), 2 + 3u);
  EXPECT_EQ(pr.bits(B), 6 * B + H);
  const probe_reply_msg empty(9, 3, 4, {});
  EXPECT_EQ(empty.bits(B), 3 * B + H);
}

TEST(MessageBits, ReportAndAck) {
  const report_msg r(6);
  EXPECT_EQ(r.bits(B), B + H);
  const report_ack_msg a(9, 2, 6);
  EXPECT_EQ(a.bits(B), 3 * B + H);
}

TEST(MessageNames, AreStableAccountingKeys) {
  // Stats keys are these strings; renaming one silently breaks every
  // lemma audit, so pin them.
  EXPECT_EQ(query_msg(1).type_name(), "query");
  EXPECT_EQ(query_reply_msg({}, false).type_name(), "query_reply");
  EXPECT_EQ(search_msg(1, 1, 2, false).type_name(), "search");
  EXPECT_EQ(release_msg(1, 1, release_msg::answer_t::abort, 2).type_name(),
            "release");
  EXPECT_EQ(merge_accept_msg(1, 1).type_name(), "merge_accept");
  EXPECT_EQ(merge_fail_msg().type_name(), "merge_fail");
  EXPECT_EQ(info_msg(1, {}, {}, {}, {}).type_name(), "info");
  EXPECT_EQ(conquer_msg(1, 1).type_name(), "conquer");
  EXPECT_EQ(member_reply_msg(false).type_name(), "more_done");
  EXPECT_EQ(probe_msg(1).type_name(), "probe");
  EXPECT_EQ(probe_reply_msg(1, 1, 2, {}).type_name(), "probe_reply");
  EXPECT_EQ(report_msg(1).type_name(), "report");
  EXPECT_EQ(report_ack_msg(1, 1, 2).type_name(), "report_ack");
}

TEST(LexOrder, PhaseDominatesId) {
  EXPECT_TRUE(lex_greater(2, 1, 1, 9));   // higher phase wins
  EXPECT_FALSE(lex_greater(1, 9, 2, 1));
  EXPECT_TRUE(lex_greater(1, 9, 1, 1));   // tie: higher id wins
  EXPECT_FALSE(lex_greater(1, 1, 1, 9));
  EXPECT_FALSE(lex_greater(1, 5, 1, 5));  // strict
}

}  // namespace
}  // namespace asyncrd
