// Cost-profiler unit tests: exclusive-time attribution over the phase
// stack, the armed run_recorder pipeline (report "profile" block with
// per-phase counts matching the run's event mix), and the Perfetto
// round-trip of the "prof.*" counter tracks.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/runner.h"
#include "graph/topology.h"
#include "sim/profiler.h"
#include "telemetry/json.h"
#include "telemetry/perfetto.h"
#include "telemetry/report.h"
#include "telemetry/tracer.h"

namespace asyncrd {
namespace {

// Spins long enough that any tick source advances.
void burn() {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(50);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Profiler, TicksAdvanceAndCalibrate) {
  const std::uint64_t a = sim::profile_ticks();
  burn();
  const std::uint64_t b = sim::profile_ticks();
  EXPECT_GT(b, a);
  EXPECT_GT(sim::profile_ticks_per_ns(), 0.0);
}

TEST(Profiler, AttributesExclusiveTime) {
  sim::cost_profiler p;
  p.loop_enter();
  p.begin(sim::cost_profiler::phase::queue_pop);
  burn();
  // Entering a nested phase pauses the outer one: the inner burn must not
  // count toward queue_pop.
  p.begin(sim::cost_profiler::phase::fault_rule);
  burn();
  p.end();
  p.end();
  p.loop_exit();

  const auto& pop = p.of(sim::cost_profiler::phase::queue_pop);
  const auto& fault = p.of(sim::cost_profiler::phase::fault_rule);
  EXPECT_EQ(pop.count, 1u);
  EXPECT_EQ(fault.count, 1u);
  EXPECT_GT(pop.ticks, 0u);
  EXPECT_GT(fault.ticks, 0u);
  // Exclusive attribution: everything attributed fits inside the loop span.
  EXPECT_LE(p.attributed_ticks(), p.loop_ticks());
  EXPECT_EQ(p.attributed_ticks(), pop.ticks + fault.ticks);
}

TEST(Profiler, TagBucketsAndHandlerTotal) {
  sim::cost_profiler p;
  p.begin_tag(7);
  burn();
  p.end();
  p.begin_tag(7);
  p.end();
  p.begin_tag(200);
  p.end();
  EXPECT_EQ(p.tags()[7].count, 2u);
  EXPECT_EQ(p.tags()[200].count, 1u);
  EXPECT_GT(p.handler_ticks(), 0u);
  EXPECT_EQ(p.handler_ticks(),
            p.tags()[7].ticks + p.tags()[200].ticks);
  p.reset();
  EXPECT_EQ(p.tags()[7].count, 0u);
  EXPECT_EQ(p.attributed_ticks(), 0u);
}

TEST(Profiler, GateSamplesTicksButCountsAll) {
  sim::cost_profiler p;
  p.set_sample_every(4);
  p.loop_enter();
  for (int i = 0; i < 8; ++i) {
    p.event_begin();
    p.begin(sim::cost_profiler::phase::queue_pop);
    burn();
    p.end();
    p.event_end();
  }
  p.loop_exit();
  // Counts are exact on every event; ticks only on the 1-in-4 sampled
  // events (the first event is always sampled).
  EXPECT_EQ(p.of(sim::cost_profiler::phase::queue_pop).count, 8u);
  EXPECT_EQ(p.events(), 8u);
  EXPECT_EQ(p.sampled_events(), 2u);
  EXPECT_GT(p.sampled_span_ticks(), 0u);
  EXPECT_GT(p.attributed_ticks(), 0u);
  EXPECT_LE(p.attributed_ticks(), p.sampled_span_ticks());
  EXPECT_DOUBLE_EQ(p.sample_scale(), 4.0);
}

TEST(Profiler, NullScopeIsANoop) {
  // The disarmed call sites pass nullptr; this must not crash or attribute.
  sim::prof_scope a(nullptr, sim::cost_profiler::phase::arq);
  sim::prof_scope b(nullptr, std::uint8_t{3}, sim::prof_scope::tag_t{});
}

TEST(Profiler, PhaseNamesAreStable) {
  EXPECT_STREQ(sim::profile_phase_name(sim::cost_profiler::phase::queue_pop),
               "queue_pop");
  EXPECT_STREQ(sim::profile_phase_name(sim::cost_profiler::phase::wake),
               "wake");
}

TEST(Profiler, RecorderArmsAndReportsEventMix) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  const auto g = graph::random_weakly_connected(80, 100, 11);
  core::discovery_run run(g, cfg, sched);
  telemetry::recorder_options opts;
  opts.profile = true;
  telemetry::run_recorder rec(run, opts);
  ASSERT_NE(rec.profiler(), nullptr);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);

  const sim::cost_profiler& prof = *rec.profiler();
  // Every event pops the queue exactly once, every wake runs one wake span.
  EXPECT_EQ(prof.of(sim::cost_profiler::phase::queue_pop).count,
            r.events_processed);
  EXPECT_EQ(prof.of(sim::cost_profiler::phase::wake).count,
            static_cast<std::uint64_t>(g.node_count()));
  EXPECT_GT(prof.handler_ticks(), 0u);
  EXPECT_GT(prof.loop_ticks(), 0u);
  EXPECT_LE(prof.attributed_ticks(), prof.loop_ticks());
  // The gate saw every loop event and sampled 1 in sample_every of them.
  EXPECT_EQ(prof.events(), r.events_processed);
  EXPECT_EQ(prof.sampled_events(),
            (r.events_processed + prof.sample_every() - 1) /
                prof.sample_every());
  EXPECT_LE(prof.attributed_ticks(), prof.sampled_span_ticks());

  const telemetry::run_report rep = rec.report(r);
  EXPECT_EQ(rep.report_version, 3u);
  EXPECT_TRUE(rep.profile.armed);
  EXPECT_GT(rep.profile.ticks_per_ns, 0.0);
  EXPECT_GT(rep.profile.loop_ns, 0.0);
  EXPECT_GT(rep.profile.attributed_fraction, 0.0);
  EXPECT_LE(rep.profile.attributed_fraction, 1.0);
  ASSERT_EQ(rep.profile.phases.size(), sim::cost_profiler::phase_count);
  EXPECT_EQ(rep.profile.phases[0].name, "queue_pop");
  EXPECT_FALSE(rep.profile.tags.empty());

  // The serialized report carries the block (json_check --report's v3
  // requirement).
  const auto doc = telemetry::json_parse(rep.to_json());
  ASSERT_TRUE(doc.has_value());
  const telemetry::json_value* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_TRUE(profile->find("armed")->as_bool());
  EXPECT_FALSE(profile->find("tags")->as_array().empty());
}

TEST(Profiler, DisarmedReportSerializesEmptyBlock) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  core::discovery_run run(graph::directed_path(6), cfg, sched);
  telemetry::run_recorder rec(run);
  EXPECT_EQ(rec.profiler(), nullptr);
  run.wake_all();
  const auto r = run.run();
  const telemetry::run_report rep = rec.report(r);
  EXPECT_FALSE(rep.profile.armed);
  const auto doc = telemetry::json_parse(rep.to_json());
  ASSERT_TRUE(doc.has_value());
  const telemetry::json_value* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_FALSE(profile->find("armed")->as_bool());
}

TEST(Profiler, PerfettoCounterTracksRoundTrip) {
  sim::unit_delay_scheduler sched;
  core::config cfg;
  const auto g = graph::random_weakly_connected(60, 80, 5);
  core::discovery_run run(g, cfg, sched);
  telemetry::recorder_options opts;
  opts.profile = true;
  opts.series_interval = 4;
  telemetry::run_recorder rec(run, opts);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  const auto r = run.run();
  ASSERT_TRUE(r.completed);
  run.net().remove_observer(&tr);

  ASSERT_NE(rec.sampler(), nullptr);
  const auto counters = telemetry::counter_tracks(*rec.sampler());
  // Cumulative prof columns export as "/delta" tracks.
  bool found_pop = false, found_handlers = false;
  for (const auto& c : counters) {
    if (c.name == "prof.queue_pop/delta") found_pop = true;
    if (c.name == "prof.handlers/delta") found_handlers = true;
  }
  EXPECT_TRUE(found_pop);
  EXPECT_TRUE(found_handlers);

  const std::string json =
      telemetry::perfetto_trace_json(tr.events(), "profiler_test", counters);
  const auto doc = telemetry::json_parse(json);
  ASSERT_TRUE(doc.has_value());
  const telemetry::json_value* evs = doc->find("traceEvents");
  ASSERT_NE(evs, nullptr);
  std::uint64_t prof_samples = 0;
  for (const telemetry::json_value& ev : evs->as_array()) {
    const telemetry::json_value* ph = ev.find("ph");
    const telemetry::json_value* name = ev.find("name");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "C") continue;
    ASSERT_NE(name, nullptr);
    if (name->as_string().rfind("prof.", 0) != 0) continue;
    ++prof_samples;
    const telemetry::json_value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("value"), nullptr);
    EXPECT_TRUE(args->find("value")->is_number());
  }
  // phase_count + handlers tracks, >= 1 sample each.
  EXPECT_GE(prof_samples, sim::cost_profiler::phase_count + 1);
}

}  // namespace
}  // namespace asyncrd
