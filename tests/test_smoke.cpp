// End-to-end smoke tests: the three algorithm variants elect exactly one
// leader that knows every id, across representative topologies.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

namespace asyncrd {
namespace {

using core::variant;

void expect_correct(const graph::digraph& g, variant algo,
                    std::uint64_t seed) {
  sim::unit_delay_scheduler unit;
  sim::random_delay_scheduler random(seed);
  sim::scheduler& sched =
      seed == 0 ? static_cast<sim::scheduler&>(unit)
                : static_cast<sim::scheduler&>(random);
  core::config cfg;
  cfg.algo = algo;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  const sim::run_result r = run.run();
  ASSERT_TRUE(r.completed) << "event cap hit";
  const core::check_report rep = core::check_final_state(run, g);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Smoke, SingleNode) {
  graph::digraph g;
  g.add_node(0);
  expect_correct(g, variant::generic, 0);
  expect_correct(g, variant::bounded, 0);
  expect_correct(g, variant::adhoc, 0);
}

TEST(Smoke, TwoNodeEdge) {
  graph::digraph g;
  g.add_edge(0, 1);
  expect_correct(g, variant::generic, 0);
  expect_correct(g, variant::bounded, 0);
  expect_correct(g, variant::adhoc, 0);
}

TEST(Smoke, TinyTree) {
  expect_correct(graph::directed_binary_tree(2), variant::generic, 0);
  expect_correct(graph::directed_binary_tree(3), variant::generic, 0);
  expect_correct(graph::directed_binary_tree(3), variant::bounded, 0);
  expect_correct(graph::directed_binary_tree(3), variant::adhoc, 0);
}

TEST(Smoke, Path) {
  expect_correct(graph::directed_path(10), variant::generic, 1);
  expect_correct(graph::directed_path(10), variant::bounded, 2);
  expect_correct(graph::directed_path(10), variant::adhoc, 3);
}

TEST(Smoke, Stars) {
  expect_correct(graph::star_out(12), variant::generic, 4);
  expect_correct(graph::star_in(12), variant::generic, 5);
  expect_correct(graph::star_out(12), variant::adhoc, 6);
  expect_correct(graph::star_in(12), variant::bounded, 7);
}

TEST(Smoke, RandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::random_weakly_connected(40, 80, seed);
    expect_correct(g, variant::generic, seed);
    expect_correct(g, variant::bounded, seed + 100);
    expect_correct(g, variant::adhoc, seed + 200);
  }
}

TEST(Smoke, MultiComponent) {
  const auto g = graph::multi_component(3, 15, 10, 42);
  expect_correct(g, variant::generic, 9);
  expect_correct(g, variant::bounded, 10);
  expect_correct(g, variant::adhoc, 11);
}

}  // namespace
}  // namespace asyncrd
