// Chaos overhead: what the reliable-delivery adapter pays, in wire
// messages and completion time, to rebuild the paper's reliable-FIFO
// contract (§1.2) over a faulty transport.
//
// Sweep drop rate x {plain, +duplication, +duplication+outage} on a fixed
// topology, all cells fanned over sim::parallel_sweep.  Each cell runs the
// Ad-hoc algorithm unmodified under a seeded fault plan, passes the full
// final-state checker, and reports
//
//   msg_overhead  = wire messages (envelopes + acks + dups) / fault-free
//                   wire messages of the same (graph, schedule);
//   time_dilation = virtual completion time / fault-free completion time.
//
// The drop = 0 column isolates the pure ARQ tax (every data envelope buys
// one ack, so the ratio starts near 2) from the fault-recovery tax
// (retransmission storms and backoff waits, which grow with the drop rate).
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/table.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/reliable_link.h"
#include "sim/sweep.h"
#include "telemetry/metrics.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Chaos overhead: reliable delivery over a faulty wire ==\n\n";

  bench::reporter rep("chaos_overhead", argc, argv);

  struct cell {
    double drop;
    bool dup;
    bool outage;
  };
  std::vector<cell> cells;
  for (const double drop : {0.0, 0.05, 0.15, 0.3})
    for (int mode = 0; mode < 3; ++mode)
      cells.push_back({drop, mode >= 1, mode >= 2});

  struct outcome {
    bool ok = false;
    std::uint64_t wire_msgs = 0;
    std::uint64_t data_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t drops = 0;
    sim::sim_time time = 0;
    std::map<std::string, sim::type_stats, std::less<>> by_type;
  };

  constexpr std::uint64_t kSeed = 42;
  const auto g = graph::random_weakly_connected(128, 256, 17);

  // Fault-free reference for the same (graph, schedule) pair.
  std::uint64_t base_msgs = 0;
  sim::sim_time base_time = 1;
  {
    sim::random_delay_scheduler sched(kSeed);
    core::config cfg;
    cfg.algo = core::variant::adhoc;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    const auto r = run.run();
    base_msgs = run.statistics().total_messages();
    base_time = run.net().now() == 0 ? 1 : run.net().now();
    if (!r.completed || !core::check_final_state(run, g).ok()) {
      std::cerr << "fault-free reference run failed\n";
      return rep.finish(false);
    }
  }

  std::vector<outcome> results(cells.size());
  const sim::sweep_result sw = sim::parallel_sweep(
      cells.size(), [&](std::size_t i, std::size_t /*worker*/) {
        const cell& c = cells[i];
        sim::random_delay_scheduler sched(kSeed);
        core::config cfg;
        cfg.algo = core::variant::adhoc;
        core::discovery_run run(g, cfg, sched);
        sim::fault_plan plan;
        plan.seed = kSeed + i;
        plan.drop = c.drop;
        plan.duplicate = c.dup ? 0.10 : 0.0;
        plan.reorder_slack = 32;
        if (c.outage) {
          plan.outage_period = 512;
          plan.outage_duration = 64;
        }
        run.enable_chaos(plan);
        run.wake_all();
        const auto r = run.run();
        outcome& o = results[i];
        o.ok = r.completed && run.reliable_links()->all_acked() &&
               core::check_final_state(run, g).ok();
        o.wire_msgs = run.statistics().total_messages();
        o.data_sent = run.reliable_links()->stats().data_sent;
        o.retransmits = run.reliable_links()->stats().retransmits;
        o.drops = run.net().faults().drops + run.net().faults().outage_drops;
        o.time = run.net().now();
        o.by_type = run.statistics().by_type();
      });

  text_table t({"drop", "dup", "outage", "wire msgs", "retx", "dropped",
                "msg overhead", "time dilation", "ok"});
  bool all_ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const cell& c = cells[i];
    const outcome& o = results[i];
    all_ok = all_ok && o.ok;
    const std::string mode = std::string(c.dup ? "+dup" : "") +
                             (c.outage ? "+outage" : "");
    const double overhead =
        static_cast<double>(o.wire_msgs) / static_cast<double>(base_msgs);
    const double dilation =
        static_cast<double>(o.time) / static_cast<double>(base_time);
    rep.add("msg_overhead" + (mode.empty() ? "" : ":" + mode), c.drop,
            overhead, 0.0);
    rep.add("time_dilation" + (mode.empty() ? "" : ":" + mode), c.drop,
            dilation, 0.0);
    rep.merge_types(o.by_type);
    t.add_row({fmt_double(c.drop), c.dup ? "y" : "n", c.outage ? "y" : "n",
               std::to_string(o.wire_msgs), std::to_string(o.retransmits),
               std::to_string(o.drops), fmt_double(overhead),
               fmt_double(dilation), o.ok ? "y" : "N"});
  }

  rep.note("baseline_wire_msgs", static_cast<double>(base_msgs));
  rep.note("baseline_completion_time", static_cast<double>(base_time));
  telemetry::registry reg;
  telemetry::record_sweep(reg, "bench.chaos_overhead", sw);
  rep.note("sweep_workers", reg.get_gauge("bench.chaos_overhead.workers").value());
  rep.note("sweep_wall_ms", reg.get_gauge("bench.chaos_overhead.wall_ms").value());

  t.print(std::cout);
  std::cout << "\nexpectation: the drop=0 rows price the bare ARQ tax"
               " (~2x messages for acks, no retransmissions); overhead and"
               " dilation then climb with the drop rate as timers fire and"
               " back off, while every cell still passes the full checker.\n";
  return rep.finish(all_ok);
}
