// Theorem 6: the Bounded and Ad-hoc algorithms send O(n alpha(n, n))
// messages — near-linear, in contrast to the Generic algorithm's
// Theta(n log n) (whose conquer broadcasts repeat per phase).
//
// Reproduction: sweep n, run all three variants on identical topologies and
// schedules, and report messages / n.  The paper predicts: the Generic
// column grows like log n while Bounded and Ad-hoc stay essentially flat
// (alpha(n, n) <= 4 for any feasible n).
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/sweep.h"
#include "telemetry/metrics.h"
#include "unionfind/ackermann.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Theorem 6: near-linear message complexity of Bounded and"
               " Ad-hoc ==\n\n";

  bench::reporter rep("thm6_near_linear", argc, argv);

  text_table t({"n", "alpha(n,n)", "generic", "bounded", "adhoc",
                "generic/n", "bounded/n", "adhoc/n"});
  bool all_ok = true;

  const std::vector<std::size_t> sizes = {64, 128, 256, 512,
                                          1024, 2048, 4096};
  struct datapoint {
    core::run_summary gen, bnd, adh;
  };
  std::vector<datapoint> results(sizes.size());

  // The (n, variant) measurements are independent simulations: one job per
  // size, fanned out over sim::parallel_sweep workers.  Rows are merged in
  // size order below, so the report is byte-identical on any core count.
  const sim::sweep_result sw = sim::parallel_sweep(
      sizes.size(), [&](std::size_t i, std::size_t /*worker*/) {
        const std::size_t n = sizes[i];
        const auto g = graph::random_weakly_connected(n, n, 101 + n);
        results[i].gen = core::run_discovery(g, core::variant::generic, 3);
        results[i].bnd = core::run_discovery(g, core::variant::bounded, 3);
        results[i].adh = core::run_discovery(g, core::variant::adhoc, 3);
      });

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& [gen, bnd, adh] = results[i];
    all_ok = all_ok && gen.completed && bnd.completed && adh.completed &&
             gen.leaders.size() == 1 && bnd.leaders.size() == 1 &&
             adh.leaders.size() == 1;
    const double dn = static_cast<double>(n);
    const double alpha = uf::inverse_ackermann(n, n);
    rep.add("generic", dn, static_cast<double>(gen.messages),
            n_log_n(dn));
    rep.add("bounded", dn, static_cast<double>(bnd.messages), dn * alpha);
    rep.add("adhoc", dn, static_cast<double>(adh.messages), dn * alpha);
    rep.merge_types(gen.by_type);
    rep.merge_types(bnd.by_type);
    rep.merge_types(adh.by_type);
    t.add_row({std::to_string(n),
               std::to_string(uf::inverse_ackermann(n, n)),
               std::to_string(gen.messages), std::to_string(bnd.messages),
               std::to_string(adh.messages),
               fmt_double(static_cast<double>(gen.messages) / dn),
               fmt_double(static_cast<double>(bnd.messages) / dn),
               fmt_double(static_cast<double>(adh.messages) / dn)});
  }

  telemetry::registry reg;
  telemetry::record_sweep(reg, "bench.thm6_near_linear", sw);
  rep.note("sweep_workers", reg.get_gauge("bench.thm6_near_linear.workers").value());
  rep.note("sweep_wall_ms", reg.get_gauge("bench.thm6_near_linear.wall_ms").value());

  t.print(std::cout);
  std::cout << "\npaper: Theorem 5 vs Theorem 6 — generic/n should grow"
               " (Theta(log n)) while bounded/n and adhoc/n stay bounded\n"
               "by a constant (O(alpha(n,n)), and alpha <= 4 here);"
               " adhoc < bounded < generic on every row.\n";
  return rep.finish(all_ok);
}
