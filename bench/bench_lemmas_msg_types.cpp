// Lemmas 5.5-5.8: per-message-type counts.
//
//   Lemma 5.5  query + query reply              <= 4n
//   Lemma 5.6  search + release                 O(n alpha(n,n))
//   Lemma 5.7  merge accept + merge fail + info <= 2n (paper)
//              -- reproduction finding: the proof under-counts repeated
//                 offers from passive nodes; the correct cap is 3n - 2 and
//                 executions measurably exceed 2n (see EXPERIMENTS.md).
//   Lemma 5.8  conquer + more/done              <= 2 n log n (Generic)
//                                               <= 2n        (Bounded)
//                                               == 0         (Ad-hoc)
//
// Reproduction: run each variant across topologies and print measured
// counts next to each cap.
#include <iostream>

#include "bench_report.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/scheduler.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Lemmas 5.5-5.8: message counts by type ==\n\n";

  bench::reporter rep("lemmas_msg_types", argc, argv);
  bool all_ok = true;
  for (const auto algo : {core::variant::generic, core::variant::bounded,
                          core::variant::adhoc}) {
    std::cout << "--- variant: " << core::to_string(algo) << " ---\n";
    text_table t({"topology", "n", "query(<=4n)", "search+rel", "cap n*a",
                  "merge+info", "cap(3n-2)", "paper(2n)", "conquer", "cap"});
    const auto row = [&](const std::string& name, const graph::digraph& g,
                         std::uint64_t seed) {
      sim::random_delay_scheduler sched(seed);
      core::config cfg;
      cfg.algo = algo;
      core::discovery_run run(g, cfg, sched);
      run.wake_all();
      run.run();
      const auto rows =
          core::check_message_bounds(run.statistics(), g.node_count(), algo);
      for (const auto& b : rows) all_ok = all_ok && b.ok();
      const auto& st = run.statistics();
      const std::size_t n = g.node_count();
      const std::string prefix =
          std::string(core::to_string(algo)) + "/" + name + "/";
      const double dn = static_cast<double>(n);
      rep.add(prefix + "query", dn,
              static_cast<double>(st.messages_of_any({"query", "query_reply"})),
              4.0 * dn);
      rep.add(prefix + "search_release", dn,
              static_cast<double>(st.messages_of_any({"search", "release"})),
              rows[1].cap);
      rep.add(prefix + "merge_info", dn,
              static_cast<double>(st.messages_of_any(
                  {"merge_accept", "merge_fail", "info"})),
              3.0 * dn - 2.0);
      rep.add(prefix + "conquer", dn,
              static_cast<double>(st.messages_of_any({"conquer", "more_done"})),
              rows[3].cap);
      rep.merge_stats(st);
      t.add_row({name, std::to_string(n),
                 std::to_string(st.messages_of_any({"query", "query_reply"})),
                 std::to_string(st.messages_of_any({"search", "release"})),
                 fmt_double(rows[1].cap, 0),
                 std::to_string(st.messages_of_any(
                     {"merge_accept", "merge_fail", "info"})),
                 std::to_string(3 * n - 2), std::to_string(2 * n),
                 std::to_string(st.messages_of_any({"conquer", "more_done"})),
                 fmt_double(rows[3].cap, 0)});
    };

    for (const std::size_t n : {128u, 512u, 2048u}) {
      row("random", graph::random_weakly_connected(n, n, 31 + n), n);
      row("tree", graph::directed_binary_tree(ceil_log2(n + 1)), n + 1);
      row("star_in", graph::star_in(n), n + 2);
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "paper: every measured column must sit under its cap; note"
               " the Lemma 5.7 column is audited against the corrected\n"
               "3n-2 (measured values above 2n on some rows reproduce the"
               " counting slip documented in EXPERIMENTS.md).\n";
  return rep.finish(all_ok);
}
