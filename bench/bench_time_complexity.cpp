// Time complexity (paper §7, Conclusion): "Kutten and Peleg describe a
// wake-up model in which some global broadcast mechanism takes T time to
// wake-up all nodes; in such a model the time complexity of their algorithm
// ... is O(T + log n).  Note that in such a model our algorithm's time
// complexity is O(T + n)."
//
// Reproduction: run all three variants under the unit-delay scheduler with
// simultaneous wake-up (T = 0) and report quiescence time — the longest
// causal message chain.  The paper predicts linear-in-n time (the price of
// the sequential conquest structure), versus the polylogarithmic round
// counts of the synchronous baselines on the same graphs.
#include <iostream>

#include "bench_report.h"
#include "baselines/name_dropper.h"
#include "baselines/pointer_doubling.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Time complexity: quiescence time under unit delays ==\n\n";

  bench::reporter rep("time_complexity", argc, argv);

  text_table t({"n", "generic", "bounded", "adhoc", "generic/n", "log n",
                "NameDropper rounds", "ptr-dbl rounds"});
  bool all_ok = true;

  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const auto g = graph::random_weakly_connected(n, n, 71 + n);
    const auto gen = core::run_discovery(g, core::variant::generic, 0);
    const auto bnd = core::run_discovery(g, core::variant::bounded, 0);
    const auto adh = core::run_discovery(g, core::variant::adhoc, 0);
    const auto nd = baselines::run_name_dropper(g, 5);
    const auto pd = baselines::run_pointer_doubling(g);
    all_ok = all_ok && gen.completed && bnd.completed && adh.completed;
    const double dn = static_cast<double>(n);
    rep.add("generic", dn, static_cast<double>(gen.completion_time), dn);
    rep.add("bounded", dn, static_cast<double>(bnd.completion_time), dn);
    rep.add("adhoc", dn, static_cast<double>(adh.completion_time), dn);
    rep.merge_types(gen.by_type);
    rep.merge_types(bnd.by_type);
    rep.merge_types(adh.by_type);
    t.add_row({std::to_string(n), std::to_string(gen.completion_time),
               std::to_string(bnd.completion_time),
               std::to_string(adh.completion_time),
               fmt_double(static_cast<double>(gen.completion_time) /
                          static_cast<double>(n)),
               std::to_string(ceil_log2(n)), std::to_string(nd.rounds),
               std::to_string(pd.rounds)});
  }

  t.print(std::cout);
  std::cout << "\npaper: §7 — this algorithm trades time for messages:"
               " expect quiescence time Theta(n) (generic/n roughly flat)\n"
               "while the synchronous baselines finish in polylog rounds;"
               " closing that gap while keeping O(n alpha) messages is the\n"
               "paper's stated open question.\n";
  return rep.finish(all_ok);
}
