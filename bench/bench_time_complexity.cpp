// Time complexity (paper §7, Conclusion): "Kutten and Peleg describe a
// wake-up model in which some global broadcast mechanism takes T time to
// wake-up all nodes; in such a model the time complexity of their algorithm
// ... is O(T + log n).  Note that in such a model our algorithm's time
// complexity is O(T + n)."
//
// Reproduction: run all three variants under the unit-delay scheduler with
// simultaneous wake-up (T = 0) and report quiescence time — the longest
// causal message chain.  The paper predicts linear-in-n time (the price of
// the sequential conquest structure), versus the polylogarithmic round
// counts of the synchronous baselines on the same graphs.
//
// The per-size measurements are independent simulations, so they fan out
// over sim::parallel_sweep workers; rows are merged back in size order, so
// the table and the JSON are identical no matter how many cores ran it.
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "baselines/name_dropper.h"
#include "baselines/pointer_doubling.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/sweep.h"
#include "telemetry/metrics.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Time complexity: quiescence time under unit delays ==\n\n";

  bench::reporter rep("time_complexity", argc, argv);

  text_table t({"n", "generic", "bounded", "adhoc", "generic/n", "log n",
                "NameDropper rounds", "ptr-dbl rounds"});
  bool all_ok = true;

  const std::vector<std::size_t> sizes = {64, 128, 256, 512, 1024, 2048};

  struct datapoint {
    core::run_summary gen, bnd, adh;
    baselines::baseline_result nd, pd;
  };
  std::vector<datapoint> results(sizes.size());

  // One job per problem size; each worker touches only its own slot.
  const sim::sweep_result sw = sim::parallel_sweep(
      sizes.size(), [&](std::size_t i, std::size_t /*worker*/) {
        const std::size_t n = sizes[i];
        const auto g = graph::random_weakly_connected(n, n, 71 + n);
        datapoint& d = results[i];
        d.gen = core::run_discovery(g, core::variant::generic, 0);
        d.bnd = core::run_discovery(g, core::variant::bounded, 0);
        d.adh = core::run_discovery(g, core::variant::adhoc, 0);
        d.nd = baselines::run_name_dropper(g, 5);
        d.pd = baselines::run_pointer_doubling(g);
      });

  // Merge in size order: results are keyed by job index, never by worker
  // completion order, so the report is deterministic.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const datapoint& d = results[i];
    all_ok = all_ok && d.gen.completed && d.bnd.completed && d.adh.completed;
    const double dn = static_cast<double>(n);
    rep.add("generic", dn, static_cast<double>(d.gen.completion_time), dn);
    rep.add("bounded", dn, static_cast<double>(d.bnd.completion_time), dn);
    rep.add("adhoc", dn, static_cast<double>(d.adh.completion_time), dn);
    rep.merge_types(d.gen.by_type);
    rep.merge_types(d.bnd.by_type);
    rep.merge_types(d.adh.by_type);
    t.add_row({std::to_string(n), std::to_string(d.gen.completion_time),
               std::to_string(d.bnd.completion_time),
               std::to_string(d.adh.completion_time),
               fmt_double(static_cast<double>(d.gen.completion_time) /
                          static_cast<double>(n)),
               std::to_string(ceil_log2(n)), std::to_string(d.nd.rounds),
               std::to_string(d.pd.rounds)});
  }

  telemetry::registry reg;
  telemetry::record_sweep(reg, "bench.time_complexity", sw);
  rep.note("sweep_workers", reg.get_gauge("bench.time_complexity.workers").value());
  rep.note("sweep_wall_ms", reg.get_gauge("bench.time_complexity.wall_ms").value());

  t.print(std::cout);
  std::cout << "\npaper: §7 — this algorithm trades time for messages:"
               " expect quiescence time Theta(n) (generic/n roughly flat)\n"
               "while the synchronous baselines finish in polylog rounds;"
               " closing that gap while keeping O(n alpha) messages is the\n"
               "paper's stated open question.\n";
  return rep.finish(all_ok);
}
