// Figure 1: the node state-transition diagram.
//
// Reproduction: run all three variants over many randomized executions with
// the transition recorder armed, and print every observed transition with
// its multiplicity, checking the observed set is a subset of the diagram's
// legal edges (as implemented; see trace.cpp for the two paper-typo notes).
// Also reports which legal edges were actually exercised — full coverage of
// the diagram is evidence the test workloads reach every protocol corner.
#include <iostream>

#include "bench_report.h"
#include "common/table.h"
#include "core/runner.h"
#include "core/trace.h"
#include "graph/topology.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Figure 1: state-transition diagram validation ==\n\n";

  bench::reporter rep("fig1_transitions", argc, argv);

  core::transition_recorder rec;
  for (const auto algo : {core::variant::generic, core::variant::bounded,
                          core::variant::adhoc}) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const auto g = graph::random_weakly_connected(60, 90, seed * 13);
      core::run_discovery(g, algo, seed, &rec);
      const auto t = graph::directed_binary_tree(6);
      core::run_discovery(t, algo, seed + 100, &rec);
      const auto s = graph::star_in(40);
      core::run_discovery(s, algo, seed + 200, &rec);
    }
  }

  text_table t({"transition", "count", "legal"});
  bool all_ok = true;
  for (const auto& [edge, count] : rec.edges()) {
    const bool legal = core::transition_recorder::legal_edges().contains(edge);
    all_ok = all_ok && legal;
    rep.add(core::edge_to_string(edge), 0.0, static_cast<double>(count),
            legal ? static_cast<double>(count) : 0.0);
    t.add_row({core::edge_to_string(edge), std::to_string(count),
               legal ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::size_t covered = 0;
  std::cout << "\nlegal edges never observed (uncovered diagram arrows):\n";
  for (const auto& e : core::transition_recorder::legal_edges()) {
    if (rec.edges().contains(e))
      ++covered;
    else
      std::cout << "  " << core::edge_to_string(e) << '\n';
  }
  std::cout << "coverage: " << covered << " / "
            << core::transition_recorder::legal_edges().size()
            << " diagram edges exercised, " << rec.total()
            << " transitions recorded\n";
  rep.note("diagram_edges_covered", static_cast<double>(covered));
  rep.note("diagram_edges_total",
           static_cast<double>(core::transition_recorder::legal_edges().size()));
  rep.note("transitions_recorded", static_cast<double>(rec.total()));
  std::cout << "\npaper: Figure 1 — every observed transition must be an"
               " arrow of the diagram (legal = yes on every row).\n";
  return rep.finish(all_ok);
}
