// Pointer-path quality and leader hotspot — two systems-level properties
// the paper discusses qualitatively:
//
//  * §1.3: "Ideally, we would like the length of the path between any
//    non-leader node to the leader to be bounded by O(1).  Our algorithm
//    achieves an amortized bound: for any m requests to reach the leader,
//    the total cost of leader election and reply messages to all the
//    requests is O((m+n) alpha(m,n))."
//    Reproduction: measure the next-pointer chain length distribution at
//    quiescence and after successive full probe rounds (each round's path
//    compression flattens the forest), plus the amortized per-probe cost.
//
//  * Hotspot analysis: the leader concentrates traffic; report the maximum
//    per-node message load as a fraction of total traffic across n.
#include <algorithm>
#include <iostream>

#include "bench_report.h"
#include "common/table.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/load_observer.h"

namespace {

using namespace asyncrd;

struct chain_stats {
  double avg = 0.0;
  std::size_t max = 0;
};

chain_stats measure_chains(const core::discovery_run& run, node_id leader) {
  chain_stats cs;
  std::size_t count = 0, total = 0;
  for (const node_id v : run.ids()) {
    if (v == leader) continue;
    node_id cur = v;
    std::size_t hops = 0;
    while (cur != leader && hops <= run.ids().size()) {
      cur = run.at(cur).next();
      ++hops;
    }
    total += hops;
    cs.max = std::max(cs.max, hops);
    ++count;
  }
  cs.avg = count == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(count);
  return cs;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== Pointer paths (Ad-hoc property 3b) and leader hotspot ==\n\n";

  bench::reporter rep("pointer_paths", argc, argv);
  text_table t({"n", "avg path", "max path", "after 1 probe rnd",
                "after 2 rnds", "probe msgs/rnd2", "max node load %"});
  for (const std::size_t n : {128u, 512u, 2048u}) {
    const auto g = graph::random_weakly_connected(n, n, 77 + n);
    sim::unit_delay_scheduler sched;
    core::config cfg;
    cfg.algo = core::variant::adhoc;
    cfg.census_in_probe_reply = false;
    core::discovery_run run(g, cfg, sched);
    sim::load_observer load;
    run.net().set_observer(&load);
    run.wake_all();
    run.run();
    const node_id leader = run.leaders().front();

    const chain_stats initial = measure_chains(run, leader);
    const auto probe_round = [&]() {
      const auto before =
          run.statistics().messages_of_any({"probe", "probe_reply"});
      for (const node_id v : run.ids()) run.probe(v);
      run.net().run_to_quiescence();
      return run.statistics().messages_of_any({"probe", "probe_reply"}) -
             before;
    };
    probe_round();
    const chain_stats after1 = measure_chains(run, leader);
    const auto round2_msgs = probe_round();
    const chain_stats after2 = measure_chains(run, leader);

    const double load_pct =
        100.0 * static_cast<double>(load.max_load()) /
        static_cast<double>(2 * run.statistics().total_messages());

    const double dn = static_cast<double>(n);
    // §1.3: one compression round leaves every node one hop from the
    // leader, so round 2 costs exactly one probe + one reply per non-leader.
    rep.add("avg_path_after_round1", dn, after1.avg, 1.0);
    rep.add("probe_msgs_round2", dn, static_cast<double>(round2_msgs),
            2.0 * (dn - 1.0));
    rep.merge_stats(run.statistics());
    rep.note("max_load_pct_n" + std::to_string(n), load_pct);

    t.add_row({std::to_string(n), fmt_double(initial.avg),
               std::to_string(initial.max),
               fmt_double(after1.avg) + "/" + std::to_string(after1.max),
               fmt_double(after2.avg) + "/" + std::to_string(after2.max),
               std::to_string(round2_msgs), fmt_double(load_pct, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\npaper: §1.3 — paths are not O(1) worst-case, but compression"
         " drives them there: after one full probe round every node is\n"
         "one hop from the leader (avg/max -> 1/1) and a second round costs"
         " exactly 2 messages per node.  The leader is the hotspot,\n"
         "touching a large constant fraction of all traffic.\n";
  return rep.finish(true);
}
