// Theorem 1: any Oblivious Resource Discovery algorithm can be forced to
// send >= 0.5 n log n - 2 messages on the directed complete binary tree
// T(i) (n = 2^i - 1) by an adversary that stalls each internal node's
// messages until both its subtrees quiesce.
//
// Reproduction: run the Generic algorithm on T(i) under exactly that
// adversary (post-order staged release of internal senders) and report the
// measured message count against the proof's bound i*2^(i-1) - 2.  The
// measured count must sit between the lower bound and Theorem 5's
// O(n log n) upper envelope.
#include <iostream>

#include "bench_report.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Theorem 1: Oblivious lower bound on adversarial binary"
               " trees ==\n\n";

  bench::reporter jrep("thm1_oblivious_lb", argc, argv);

  text_table t({"tree", "n", "messages", "bound i*2^(i-1)-2", "0.5 n log n",
                "meets bound"});
  bool all_ok = true;

  for (std::size_t i = 2; i <= 13; ++i) {
    const auto g = graph::directed_binary_tree(i);
    const std::size_t n = g.node_count();
    core::staged_release_scheduler sched(
        graph::binary_tree_internal_postorder(i));
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    sched.arm(run.net());
    run.wake_all();
    const auto r = run.run();
    const auto rep = core::check_final_state(run, g);
    if (!r.completed || !rep.ok()) {
      std::cout << "RUN FAILED for T(" << i << ")\n" << rep.to_string();
      all_ok = false;
      continue;
    }
    const double bound =
        static_cast<double>(i) * static_cast<double>(1ull << (i - 1)) - 2.0;
    const auto msgs = run.statistics().total_messages();
    const bool meets = static_cast<double>(msgs) >= bound;
    all_ok = all_ok && meets;
    jrep.add("T(" + std::to_string(i) + ")", static_cast<double>(n),
             static_cast<double>(msgs), bound);
    jrep.merge_stats(run.statistics());
    t.add_row({"T(" + std::to_string(i) + ")", std::to_string(n),
               std::to_string(msgs), fmt_double(bound, 0),
               fmt_double(0.5 * n_log_n(static_cast<double>(n)), 0),
               meets ? "yes" : "NO"});
  }

  t.print(std::cout);
  std::cout << "\npaper: Theorem 1 — every execution under this adversary"
               " must send at least i*2^(i-1) - 2 = ~0.5 n log n messages;\n"
               "expect 'meets bound' = yes on every row, with measured"
               " messages also within Theorem 5's O(n log n) envelope.\n";
  return jrep.finish(all_ok);
}
