// Theorem 5: the Generic algorithm sends O(n log n) messages.
//
// Reproduction: sweep n over several topology families, run the Generic
// algorithm under randomized asynchrony, and report measured messages
// against n log2 n.  The paper predicts a bounded ratio (who wins: the
// algorithm stays within a constant factor of n log n on every family,
// including the adversarial tree of Theorem 1).
#include <iostream>

#include "bench_report.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Theorem 5: Generic algorithm, message complexity O(n log n) ==\n\n";

  bench::reporter rep("thm5_generic_msgs", argc, argv);
  text_table t({"topology", "n", "|E0|", "messages", "n log n", "ratio"});
  bool all_ok = true;

  const auto row = [&](const std::string& name, const graph::digraph& g,
                       std::uint64_t seed) {
    const auto s = core::run_discovery(g, core::variant::generic, seed);
    all_ok = all_ok && s.completed;
    const double nl = n_log_n(static_cast<double>(g.node_count()));
    rep.add(name, static_cast<double>(g.node_count()),
            static_cast<double>(s.messages), nl);
    rep.merge_types(s.by_type);
    t.add_row({name, std::to_string(g.node_count()),
               std::to_string(g.edge_count()), std::to_string(s.messages),
               fmt_double(nl, 0), fmt_ratio(static_cast<double>(s.messages), nl)});
  };

  for (const std::size_t n : {64, 128, 256, 512, 1024, 2048}) {
    row("random sparse", graph::random_weakly_connected(n, n, 17 + n), 3);
    row("random dense",
        graph::random_weakly_connected(n, n * ceil_log2(n), 29 + n), 5);
    row("path", graph::directed_path(n), 7);
    row("star-in", graph::star_in(n), 11);
  }
  for (const std::size_t levels : {6, 8, 10, 11}) {
    row("binary tree T(" + std::to_string(levels) + ")",
        graph::directed_binary_tree(levels), 13);
  }

  t.print(std::cout);
  std::cout << "\npaper: Theorem 5 — O(n log n); expect the ratio column to"
               " stay bounded by a constant as n grows.\n";
  return rep.finish(all_ok);
}
