// google-benchmark microbenchmarks of the building blocks: full discovery
// executions per variant, the simulator's event loop, DSU operations, and
// inverse-Ackermann evaluation.  Wall-clock numbers (unlike the message
// counts in the other benches, these depend on the host machine).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_report.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "unionfind/ackermann.h"
#include "unionfind/dsu.h"

namespace {

using namespace asyncrd;

void BM_GenericDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_weakly_connected(n, n, 42);
  for (auto _ : state) {
    auto s = core::run_discovery(g, core::variant::generic, 1);
    benchmark::DoNotOptimize(s.messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenericDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_BoundedDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_weakly_connected(n, n, 42);
  for (auto _ : state) {
    auto s = core::run_discovery(g, core::variant::bounded, 1);
    benchmark::DoNotOptimize(s.messages);
  }
}
BENCHMARK(BM_BoundedDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_AdhocDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_weakly_connected(n, n, 42);
  for (auto _ : state) {
    auto s = core::run_discovery(g, core::variant::adhoc, 1);
    benchmark::DoNotOptimize(s.messages);
  }
}
BENCHMARK(BM_AdhocDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_TopologyGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto g = graph::random_weakly_connected(n, n, ++seed);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(256)->Arg(4096);

void BM_DsuUnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto sched = uf::random_schedule(n, n, 7);
  for (auto _ : state) {
    uf::dsu d(n);
    for (const auto& op : sched) {
      if (op.op == uf::uf_op::kind::unite)
        d.unite(op.a, op.b);
      else
        benchmark::DoNotOptimize(d.find(op.a));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sched.size()));
}
BENCHMARK(BM_DsuUnionFind)->Arg(1024)->Arg(65536);

void BM_InverseAckermann(benchmark::State& state) {
  std::uint64_t n = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uf::inverse_ackermann(n, n));
    n = n < (std::uint64_t{1} << 40) ? n * 2 : 2;
  }
}
BENCHMARK(BM_InverseAckermann);

// Capturing reporter: prints the usual console table and records each
// per-iteration run (skipping aggregates/errors) for the JSON emission.
class capture_reporter : public benchmark::ConsoleReporter {
 public:
  struct result {
    std::string name;
    double real_ns_per_iter;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      results.push_back(
          {run.benchmark_name(), run.real_accumulated_time * 1e9 / iters});
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<result> results;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull our flags out before benchmark::Initialize, which rejects
  // arguments it does not recognize.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  asyncrd::bench::reporter rep("core_micro", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-json") == 0) continue;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  // An explicit --benchmark_format means the caller wants google-benchmark's
  // own serialization on stdout; hand over entirely (no BENCH json) rather
  // than overriding the format with our capturing console reporter.
  bool custom_format = false;
  for (const char* a : passthrough)
    if (std::strncmp(a, "--benchmark_format", 18) == 0) custom_format = true;

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;

  if (custom_format) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  capture_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Wall-clock microbenchmarks have no paper-predicted bound; emit 0 so
  // regression tooling compares measured-vs-measured across runs instead.
  for (const auto& r : reporter.results)
    rep.add(r.name, 0.0, r.real_ns_per_iter, 0.0);
  return rep.finish(!reporter.results.empty());
}
