// google-benchmark microbenchmarks of the building blocks: full discovery
// executions per variant, the simulator's event loop, DSU operations, and
// inverse-Ackermann evaluation.  Wall-clock numbers (unlike the message
// counts in the other benches, these depend on the host machine).
#include <benchmark/benchmark.h>

#include "core/runner.h"
#include "graph/topology.h"
#include "unionfind/ackermann.h"
#include "unionfind/dsu.h"

namespace {

using namespace asyncrd;

void BM_GenericDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_weakly_connected(n, n, 42);
  for (auto _ : state) {
    auto s = core::run_discovery(g, core::variant::generic, 1);
    benchmark::DoNotOptimize(s.messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenericDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_BoundedDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_weakly_connected(n, n, 42);
  for (auto _ : state) {
    auto s = core::run_discovery(g, core::variant::bounded, 1);
    benchmark::DoNotOptimize(s.messages);
  }
}
BENCHMARK(BM_BoundedDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_AdhocDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_weakly_connected(n, n, 42);
  for (auto _ : state) {
    auto s = core::run_discovery(g, core::variant::adhoc, 1);
    benchmark::DoNotOptimize(s.messages);
  }
}
BENCHMARK(BM_AdhocDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_TopologyGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto g = graph::random_weakly_connected(n, n, ++seed);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(256)->Arg(4096);

void BM_DsuUnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto sched = uf::random_schedule(n, n, 7);
  for (auto _ : state) {
    uf::dsu d(n);
    for (const auto& op : sched) {
      if (op.op == uf::uf_op::kind::unite)
        d.unite(op.a, op.b);
      else
        benchmark::DoNotOptimize(d.find(op.a));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sched.size()));
}
BENCHMARK(BM_DsuUnionFind)->Arg(1024)->Arg(65536);

void BM_InverseAckermann(benchmark::State& state) {
  std::uint64_t n = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uf::inverse_ackermann(n, n));
    n = n < (std::uint64_t{1} << 40) ? n * 2 : 2;
  }
}
BENCHMARK(BM_InverseAckermann);

}  // namespace
