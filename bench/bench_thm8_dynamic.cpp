// Theorem 8: dynamic additions cost O(m alpha(m, n + n_hat)) messages total
// for m = n + n_hat + e_hat — i.e. fully incorporating a new node or link
// is far cheaper than re-running the whole algorithm (the open question of
// Harchol-Balter et al. that §6 answers).
//
// Reproduction: settle a base network of n nodes with the Ad-hoc algorithm,
// then add n_hat nodes and e_hat links one at a time (running to quiescence
// between additions); report (a) incremental messages per addition and (b)
// the total against both the m*alpha bound and the cost of from-scratch
// re-execution after every addition.
#include <iostream>

#include "bench_report.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/scheduler.h"
#include "unionfind/ackermann.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Theorem 8: dynamic node and link additions (Ad-hoc) ==\n\n";

  bench::reporter jrep("thm8_dynamic", argc, argv);

  text_table t({"n", "n_hat", "e_hat", "base msgs", "incr msgs",
                "msgs/addition", "m*alpha", "incr/bound",
                "rerun-every-time"});
  bool all_ok = true;

  for (const std::size_t n : {128u, 512u, 2048u}) {
    const std::size_t n_hat = n / 4, e_hat = n / 4;
    graph::digraph g = graph::random_weakly_connected(n, n, 55 + n);

    sim::unit_delay_scheduler sched;
    core::config cfg;
    cfg.algo = core::variant::adhoc;
    core::discovery_run run(g, cfg, sched);
    run.wake_all();
    run.run();
    const auto base = run.statistics().total_messages();

    // What a naive system would pay: rerun discovery after every addition.
    std::uint64_t naive_total = 0;

    rng r(99);
    graph::digraph grown = g;
    for (std::size_t i = 0; i < n_hat + e_hat; ++i) {
      if (i < n_hat) {
        const node_id fresh = static_cast<node_id>(100000 + i);
        const node_id peer = static_cast<node_id>(r.below(n));
        run.add_node_dynamic(fresh, {peer});
        grown.add_edge(fresh, peer);
      } else {
        const node_id a = static_cast<node_id>(r.below(n));
        const node_id b = static_cast<node_id>(r.below(n));
        if (a == b) continue;
        run.add_link_dynamic(a, b);
        grown.add_edge(a, b);
      }
      run.run();
      naive_total += core::run_discovery(grown, core::variant::adhoc, 0).messages;
    }
    const auto rep = core::check_final_state(run, grown);
    if (!rep.ok()) {
      std::cout << "CHECK FAILED (n=" << n << "):\n" << rep.to_string();
      all_ok = false;
      continue;
    }
    const auto incr = run.statistics().total_messages() - base;
    const double m = static_cast<double>(n + n_hat + e_hat);
    const double bound =
        m * uf::inverse_ackermann(static_cast<std::uint64_t>(m), n + n_hat);
    jrep.add("incremental", static_cast<double>(n),
            static_cast<double>(incr), bound);
    jrep.merge_stats(run.statistics());
    t.add_row({std::to_string(n), std::to_string(n_hat),
               std::to_string(e_hat), std::to_string(base),
               std::to_string(incr),
               fmt_double(static_cast<double>(incr) /
                          static_cast<double>(n_hat + e_hat)),
               fmt_double(bound, 0),
               fmt_ratio(static_cast<double>(incr), bound),
               std::to_string(naive_total)});
  }

  t.print(std::cout);
  std::cout
      << "\npaper: Theorem 8 — the *total* message count from the initial"
         " state is O(m alpha(m, n+n_hat)), so the incremental cost per\n"
         "addition is O(alpha) amortized: expect msgs/addition to stay a"
         " small constant while the rerun-every-time column explodes.\n";
  return jrep.finish(all_ok);
}
