// The §1.1 comparison table: this paper's three algorithms against the
// prior-work baselines.
//
//   flooding          asynchronous, naive            Theta(n |E|) msgs
//   Name-Dropper      synchronous randomized (HBLL)  O(n log^2 n) msgs whp
//   pointer-doubling  synchronous deterministic      |E|-and-diameter bound
//   token DFS         strongly connected only (CGK contrast)  O(|E|) msgs
//   Generic           asynchronous deterministic     O(n log n) msgs
//   Bounded / Ad-hoc  asynchronous deterministic     O(n alpha(n,n)) msgs
//
// Reproduction: shared topologies, one table per density regime.  The shape
// to reproduce: the paper's algorithms beat flooding by orders of magnitude
// in both messages and bits on dense graphs, match or beat the synchronous
// baselines without needing synchrony, and Ad-hoc/Bounded shave the log
// factor off Generic.
#include <iostream>

#include "bench_report.h"
#include "baselines/absorption.h"
#include "baselines/dfs_election.h"
#include "baselines/flooding.h"
#include "baselines/name_dropper.h"
#include "baselines/pointer_doubling.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Comparison: paper's algorithms vs baselines (§1.1) ==\n\n";

  bench::reporter rep("baselines", argc, argv);
  bool all_ok = true;

  for (const std::size_t n : {64u, 256u, 1024u}) {
    for (const bool dense : {false, true}) {
      const std::size_t extra = dense ? n * ceil_log2(n) : n / 2;
      const auto g = graph::random_weakly_connected(n, extra, 17 + n);
      std::cout << "--- n = " << n << ", |E0| = " << g.edge_count()
                << (dense ? " (dense)" : " (sparse)") << " ---\n";
      text_table t({"algorithm", "model", "messages", "bits", "rounds"});

      const auto generic = core::run_discovery(g, core::variant::generic, 1);
      const auto bounded = core::run_discovery(g, core::variant::bounded, 1);
      const auto adhoc = core::run_discovery(g, core::variant::adhoc, 1);
      const auto nd = baselines::run_name_dropper(g, 1);
      const auto ab = baselines::run_absorption(g, 1);
      const auto pd = baselines::run_pointer_doubling(g);
      all_ok = all_ok && generic.completed && bounded.completed &&
               adhoc.completed && nd.converged && ab.converged &&
               pd.converged;
      const double dn = static_cast<double>(n);
      const double lg = static_cast<double>(ceil_log2(n));
      const std::string suffix = dense ? "/dense" : "/sparse";
      rep.add("name_dropper" + suffix, dn, static_cast<double>(nd.messages),
              dn * lg * lg);
      rep.add("generic" + suffix, dn, static_cast<double>(generic.messages),
              dn * lg);
      rep.add("bounded" + suffix, dn, static_cast<double>(bounded.messages),
              4.0 * dn);
      rep.add("adhoc" + suffix, dn, static_cast<double>(adhoc.messages),
              4.0 * dn);
      rep.merge_types(generic.by_type);
      rep.merge_types(bounded.by_type);
      rep.merge_types(adhoc.by_type);

      // Flooding is the point of the contrast — and precisely because its
      // cost is superquadratic it is only simulated up to n = 256 here.
      if (n <= 256) {
        const auto flood = baselines::run_flooding(g, 1);
        all_ok = all_ok && flood.converged;
        rep.add("flooding" + suffix, dn, static_cast<double>(flood.messages),
                dn * static_cast<double>(g.edge_count()));
        t.add_row({"flooding (naive)", "async", std::to_string(flood.messages),
                   std::to_string(flood.bits), "-"});
      } else {
        t.add_row({"flooding (naive)", "async", "(skipped: superquadratic)",
                   "-", "-"});
      }
      t.add_row({"Name-Dropper (HBLL'99)", "sync rand",
                 std::to_string(nd.messages), std::to_string(nd.bits),
                 std::to_string(nd.rounds)});
      t.add_row({"absorption (Law-Siu-style)", "sync rand",
                 std::to_string(ab.messages), std::to_string(ab.bits),
                 std::to_string(ab.rounds)});
      t.add_row({"pointer-doubling (KPV-style)", "sync det",
                 std::to_string(pd.messages), std::to_string(pd.bits),
                 std::to_string(pd.rounds)});
      t.add_row({"Generic (this paper)", "async det",
                 std::to_string(generic.messages),
                 std::to_string(generic.bits), "-"});
      t.add_row({"Bounded (this paper)", "async det",
                 std::to_string(bounded.messages),
                 std::to_string(bounded.bits), "-"});
      t.add_row({"Ad-hoc (this paper)", "async det",
                 std::to_string(adhoc.messages), std::to_string(adhoc.bits),
                 "-"});
      t.print(std::cout);
      std::cout << '\n';
    }
  }

  // Strongly connected contrast: the regime where resource discovery is
  // easy (the paper cites Cidon-Gopal-Kutten's O(n) election).
  std::cout << "--- strongly connected contrast (ring, n = 1024) ---\n";
  const auto ring = graph::ring(1024);
  const auto dfs = baselines::run_dfs_election(ring);
  const auto ring_generic = core::run_discovery(ring, core::variant::generic, 1);
  all_ok = all_ok && dfs.converged && ring_generic.completed;
  text_table t2({"algorithm", "messages"});
  t2.add_row({"token DFS election (CGK contrast)", std::to_string(dfs.messages)});
  t2.add_row({"Generic (this paper)", std::to_string(ring_generic.messages)});
  t2.print(std::cout);

  std::cout << "\npaper: §1.1 — expect flooding >> Name-Dropper ~ Generic >"
               " Bounded > Ad-hoc in messages on dense graphs, flooding's\n"
               "bits worse by a ~n factor, and the strongly-connected token"
               " DFS linear (no log factor).\n";
  return rep.finish(all_ok);
}
