// Shared JSON emission for the bench harness: every bench binary keeps its
// human-readable text table on stdout and additionally writes
// BENCH_<name>.json so CI and later PRs can diff runs against the paper's
// complexity envelope (docs/OBSERVABILITY.md documents the schema and the
// comparison workflow).
//
// Usage:
//
//   int main(int argc, char** argv) {
//     asyncrd::bench::reporter rep("thm5_generic_msgs", argc, argv);
//     ...
//     rep.add(topology, n, measured_messages, n_log_n_bound);
//     rep.merge_stats(run.statistics());   // per-type message/bit counts
//     ...
//     return rep.finish(all_ok);
//   }
//
// Flags consumed (anything else is left alone):
//   --json <path>   write the report to <path> (default BENCH_<name>.json
//                   in the working directory)
//   --no-json       skip the JSON file entirely
#pragma once

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/version.h"
#include "sim/stats.h"
#include "telemetry/json.h"

namespace asyncrd::bench {

/// Schema version of the provenance block itself (bumped independently of
/// any one bench's row layout).
inline constexpr std::uint64_t provenance_schema = 1;

/// The machine's hostname, or "unknown".
inline std::string bench_host() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] == '\0' ? "unknown" : std::string(buf);
}

/// Writes the shared "provenance" member every BENCH_*.json carries: which
/// code, build, and machine produced the numbers.  Emitted from here — not
/// per-bench — so json_check can validate one shape and bench_diff can
/// explain "the compiler changed" differences.  Call between a key-less
/// point of an open object.
inline void write_provenance(telemetry::json_writer& w) {
  w.key("provenance").begin_object();
  w.kv("schema", provenance_schema);
  w.kv("git_sha", asyncrd::build_git_sha);
  w.kv("build_type", asyncrd::build_type);
  w.kv("compiler", asyncrd::build_compiler);
  w.kv("host", bench_host());
  w.end_object();
}

class reporter {
 public:
  reporter(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)),
        path_("BENCH_" + name_ + ".json"),
        start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--no-json") {
        enabled_ = false;
      } else if (a == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      }
    }
  }

  /// One datapoint of the sweep: the theorem's independent variable `n`,
  /// the measured quantity, and the predicted bound it is audited against
  /// (0 when the paper states no bound for this row).
  void add(std::string label, double n, double measured,
           double predicted_bound) {
    rows_.push_back({std::move(label), n, measured, predicted_bound});
  }

  /// Accumulates per-type message/bit counts across the bench's runs.
  void merge_stats(const sim::stats& st) { merge_types(st.by_type()); }
  void merge_types(
      const std::map<std::string, sim::type_stats, std::less<>>& types) {
    for (const auto& [type, ts] : types) {
      auto& acc = by_type_[type];
      acc.count += ts.count;
      acc.bits += ts.bits;
    }
  }

  /// Attaches a free-form scalar (appears under "notes").
  void note(std::string key, double value) { notes_[std::move(key)] = value; }

  /// Extension hook: called with the writer while the top-level object is
  /// open, right before "notes" — emit extra members (trace_analyze adds
  /// its width-histogram block this way).
  void set_extra(std::function<void(telemetry::json_writer&)> fn) {
    extra_ = std::move(fn);
  }

  /// Writes the JSON file (unless --no-json) and returns the process exit
  /// code: 0 when ok and the write succeeded, 1 otherwise.
  int finish(bool ok) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    if (!enabled_) return ok ? 0 : 1;

    telemetry::json_writer w;
    w.begin_object();
    w.kv("bench", name_);
    w.kv("ok", ok);
    w.kv("wall_ms", wall_ms);
    write_provenance(w);

    // Columnar views (what regression tooling plots) ...
    w.key("labels").begin_array();
    for (const auto& r : rows_) w.value(r.label);
    w.end_array();
    w.key("n_values").begin_array();
    for (const auto& r : rows_) w.value(r.n);
    w.end_array();
    w.key("measured").begin_array();
    for (const auto& r : rows_) w.value(r.measured);
    w.end_array();
    w.key("predicted_bound").begin_array();
    for (const auto& r : rows_) w.value(r.predicted);
    w.end_array();

    // ... and the same rows as self-describing records.
    w.key("rows").begin_array();
    for (const auto& r : rows_) {
      w.begin_object();
      w.kv("label", r.label);
      w.kv("n", r.n);
      w.kv("measured", r.measured);
      w.kv("predicted_bound", r.predicted);
      w.end_object();
    }
    w.end_array();

    w.key("messages_by_type").begin_object();
    for (const auto& [type, ts] : by_type_) {
      w.key(type).begin_object();
      w.kv("count", ts.count);
      w.kv("bits", ts.bits);
      w.end_object();
    }
    w.end_object();

    if (extra_) extra_(w);

    w.key("notes").begin_object();
    for (const auto& [k, v] : notes_) w.kv(k, v);
    w.end_object();
    w.end_object();

    std::ofstream out(path_);
    out << w.take() << '\n';
    if (!out) {
      std::cerr << "bench_report: failed to write " << path_ << '\n';
      return 1;
    }
    std::cout << "\n[json] " << path_ << '\n';
    return ok ? 0 : 1;
  }

 private:
  struct row {
    std::string label;
    double n;
    double measured;
    double predicted;
  };

  std::string name_;
  std::string path_;
  bool enabled_ = true;
  std::chrono::steady_clock::time_point start_;
  std::vector<row> rows_;
  std::map<std::string, sim::type_stats, std::less<>> by_type_;
  std::map<std::string, double> notes_;
  std::function<void(telemetry::json_writer&)> extra_;
};

}  // namespace asyncrd::bench
