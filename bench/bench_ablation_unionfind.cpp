// Ablation: the two design choices the paper imports from Union-Find —
// path compression (release messages rewrite next pointers, §4.2) and the
// phase mechanism (union by rank, §4.4) — evaluated both in the distributed
// engine and in the sequential DSU they mirror.
//
// Workload: sequential wake-ups on an in-star, the regime where a naive
// implementation degenerates to Theta(n^2) routing hops.
#include <iostream>

#include "bench_report.h"
#include "common/table.h"
#include "core/adversary.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "unionfind/dsu.h"

namespace {

std::uint64_t engine_cost(std::size_t n, bool compression, bool phases) {
  using namespace asyncrd;
  const auto g = graph::star_in(n);
  core::sequential_wakeup_scheduler sched(g.nodes());
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  cfg.path_compression = compression;
  cfg.use_phases = phases;
  core::discovery_run run(g, cfg, sched);
  run.net().wake(0);
  run.run();
  const auto rep = core::check_final_state(run, g);
  if (!rep.ok()) {
    std::cout << "CHECK FAILED (compression=" << compression
              << ", phases=" << phases << "):\n"
              << rep.to_string();
    std::exit(1);
  }
  return run.statistics().messages_of_any({"search", "release"});
}

std::uint64_t dsu_cost(std::size_t n, bool compression, bool ranks) {
  using namespace asyncrd::uf;
  dsu d(n, ranks ? link_policy::by_rank : link_policy::naive,
        compression ? compress_policy::full : compress_policy::none);
  // Mirror the engine workload: element k merges into the incumbent set,
  // then every element is probed once.
  for (std::size_t k = 1; k < n; ++k) d.unite(k - 1, k);
  for (std::size_t k = 0; k < n; ++k) d.find(k);
  return d.find_steps();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Ablation: path compression and phases (union by rank) ==\n\n";

  bench::reporter rep("ablation_unionfind", argc, argv);

  std::cout << "--- distributed engine: search+release messages, in-star"
               " sequential wake-ups ---\n";
  text_table t({"n", "both on", "no compression", "no phases", "both off"});
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const double dn = static_cast<double>(n);
    const std::uint64_t on = engine_cost(n, true, true);
    const std::uint64_t no_comp = engine_cost(n, false, true);
    const std::uint64_t no_phase = engine_cost(n, true, false);
    const std::uint64_t off = engine_cost(n, false, false);
    rep.add("both_on", dn, static_cast<double>(on), 4.0 * dn);
    rep.add("no_compression", dn, static_cast<double>(no_comp), dn * dn);
    rep.add("no_phases", dn, static_cast<double>(no_phase), dn * dn);
    rep.add("both_off", dn, static_cast<double>(off), dn * dn);
    t.add_row({std::to_string(n), std::to_string(on),
               std::to_string(no_comp), std::to_string(no_phase),
               std::to_string(off)});
  }
  t.print(std::cout);

  std::cout << "\n--- sequential DSU mirror: find() pointer hops ---\n";
  text_table t2({"n", "rank+compress", "rank only", "compress only",
                 "neither"});
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    t2.add_row({std::to_string(n), std::to_string(dsu_cost(n, true, true)),
                std::to_string(dsu_cost(n, false, true)),
                std::to_string(dsu_cost(n, true, false)),
                std::to_string(dsu_cost(n, false, false))});
  }
  t2.print(std::cout);

  std::cout << "\npaper: §4.2/§4.4 + [Tarjan-van Leeuwen] — with both"
               " mechanisms the cost is near-linear (O(n alpha)); disabling\n"
               "both degenerates toward Theta(n^2); each mechanism alone"
               " already prevents the quadratic blow-up on this workload.\n";
  return rep.finish(true);
}
