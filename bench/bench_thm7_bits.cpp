// Theorem 7 (+ Lemmas 5.9, 5.10): bit complexity O(|E0| log n + n log^2 n).
//
// Reproduction: sweep density regimes — sparse (|E0| ~ n), the paper's
// interesting regime (|E0| ~ n log n), and dense (|E0| ~ n sqrt n) — with
// the binary wire codec enabled, and audit the bytes the transport really
// carried (network::wire_bytes_sent: headers, varints, delta sets — every
// byte a socket would see) against the theorem's envelope stated in bytes.
// The two per-type bit lemmas are still checked on the paper's O(log n)
// field accounting: query-reply bits <= 2 |E0| log n and info bits
// <= 4 n log^2 n.
//
// The byte bound carries explicit constants (the asymptotic statement
// hides them; a gate cannot):
//
//   bytes(n, |E0|) <= (6 |E0| lg + 8 n lg^2) / 8
//
// The |E0| term triples Lemma 5.9's 2 |E0| lg to also cover the search /
// release traffic (O(|E0|) messages of O(lg) bits each, Theorem 5) plus
// one frame-header byte and the varint length rounding (a varint spends 8
// bits per 7 payload bits).  The n lg^2 term doubles Lemma 5.10's 4 n lg^2
// for the same rounding on the query/conquer machinery.  bench_diff gates
// measured <= bound tolerance-free, so the measured/bound ratio staying
// below 1 across all nine density cells is a hard CI invariant.
#include <cmath>
#include <iostream>

#include "bench_report.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/scheduler.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Theorem 7: wire bytes vs O(|E0| log n + n log^2 n) ==\n\n";

  bench::reporter rep("thm7_bits", argc, argv);

  text_table t({"regime", "n", "|E0|", "wire bytes", "byte bound", "ratio",
                "acct bits", "qreply<=2|E0|lg", "info<=4n lg^2"});
  bool all_ok = true;

  const auto row = [&](const std::string& name, const graph::digraph& g) {
    sim::random_delay_scheduler sched(5);
    core::config cfg;
    core::discovery_run run(g, cfg, sched);
    run.enable_wire();
    run.wake_all();
    const auto r = run.run();
    all_ok = all_ok && r.completed;
    const double n = static_cast<double>(g.node_count());
    const double e0 = static_cast<double>(g.edge_count());
    const double lg = static_cast<double>(ceil_log2(g.node_count()));
    const double wire_bytes =
        static_cast<double>(run.net().wire_bytes_sent());
    const double byte_bound = (6.0 * e0 * lg + 8.0 * n * lg * lg) / 8.0;
    all_ok = all_ok && wire_bytes <= byte_bound;
    const auto& st = run.statistics();
    const double qreply_cap = 2.0 * e0 * lg;
    const double info_cap = 4.0 * n * lg * lg;
    const bool qr_ok = static_cast<double>(st.bits_of("query_reply")) <=
                       qreply_cap + 8 * lg;  // slack for re-injected ids
    const bool info_ok = static_cast<double>(st.bits_of("info")) <= info_cap;
    all_ok = all_ok && qr_ok && info_ok;
    rep.add(name, n, wire_bytes, byte_bound);
    rep.merge_stats(st);
    t.add_row({name, std::to_string(g.node_count()),
               std::to_string(g.edge_count()),
               std::to_string(run.net().wire_bytes_sent()),
               fmt_double(byte_bound, 0), fmt_ratio(wire_bytes, byte_bound),
               std::to_string(st.total_bits()), qr_ok ? "yes" : "NO",
               info_ok ? "yes" : "NO"});
  };

  for (const std::size_t n : {128u, 512u, 2048u}) {
    row("sparse |E0|~n", graph::random_weakly_connected(n, n / 2, 3 + n));
    row("mid |E0|~n lg n",
        graph::random_weakly_connected(n, n * ceil_log2(n), 5 + n));
    const auto dense_extra =
        static_cast<std::size_t>(static_cast<double>(n) * std::sqrt(n));
    row("dense |E0|~n sqrt n",
        graph::random_weakly_connected(n, dense_extra, 7 + n));
  }

  t.print(std::cout);
  std::cout << "\npaper: Theorem 7 — total bits O(|E0| log n + n log^2 n):"
               " measured wire bytes stay under the explicit-constant byte\n"
               "envelope in every density regime; Lemma 5.9 (query-reply"
               " bits) and Lemma 5.10 (info bits) hold per row.\n";
  return rep.finish(all_ok);
}
