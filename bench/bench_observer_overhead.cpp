// Runtime-health observer overhead: what arming the full health layer —
// series sampler + stall watchdog + flight recorder — costs in event
// throughput on the headline 10k-node unit-delay run (the same
// configuration bench_sim_throughput's acceptance number is phrased in).
//
// Four modes, best-of-N events/sec each:
//
//   plain     no telemetry at all (bench_sim_throughput's measurement);
//   recorder  run_recorder with default options — the pre-existing
//             load/metrics/transition observers, health layer disarmed;
//   armed     run_recorder with the series sampler (interval 256, ~130
//             samples over the run), the stall watchdog (window 4096,
//             probing every 1024 ticks), and a 4096-entry flight recorder;
//   profiled  run_recorder with the hot-path cost profiler armed
//             (sim/profiler.h) and nothing else, isolating what the phase
//             attribution itself costs.
//
// Two acceptance criteria, both < 5%: armed-vs-recorder (the health layer
// on top of the telemetry that was already there) and
// profiled-vs-recorder (the cost profiler's begin/end brackets).  Each
// overhead is the median of per-cycle ratios (the modes interleave
// round-robin, so the pair in a cycle shares the host's speed epoch);
// the table still shows best-of-N events/sec per mode.
// "measured" in the JSON is the overhead fraction, "predicted_bound" is
// 0.05, and ok additionally requires every run completing, the watchdog
// never tripping, and the profiler attributing a sane fraction of the
// event loop (0 < attributed <= 1).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "telemetry/report.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Observer overhead: runtime health layer, 10k unit-delay ==\n\n";

  bench::reporter rep("observer_overhead", argc, argv);

  constexpr double bound = 0.05;
  // Best-of-9: the overhead estimate is a ratio of two best-of-N minima,
  // and on shared hosts a mode can lose every one of a handful of slots to
  // a noisy neighbor; more interleaved reps give each mode a quiet slot.
  constexpr int reps = 9;
  const auto g = graph::random_weakly_connected(10000, 10000, 42);

  enum class mode { plain, recorder, armed, profiled };
  struct outcome {
    double best_eps = 0.0;
    std::vector<double> eps;  ///< per-rep events/sec, one per cycle
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    double attributed = 0.0;  ///< profiled: fraction of the loop explained
    bool ok = true;
  };

  const auto run_once = [&](mode m, outcome& o, bool record_stats) {
    sim::unit_delay_scheduler sched;
    core::config cfg;
    cfg.algo = core::variant::generic;
    core::discovery_run run(g, cfg, sched);
    std::unique_ptr<telemetry::run_recorder> rec;
    if (m != mode::plain) {
      telemetry::recorder_options opts;
      if (m == mode::armed) {
        opts.series_interval = 256;
        opts.watchdog.window = 4096;
        opts.watchdog.probe_interval = 1024;
        opts.flight_capacity = 4096;
      }
      if (m == mode::profiled) opts.profile = true;
      rec = std::make_unique<telemetry::run_recorder>(run, opts);
    }
    run.wake_all();
    const auto r = run.run();
    o.ok = o.ok && r.completed;
    if (rec != nullptr && rec->watchdog() != nullptr)
      o.ok = o.ok && !rec->watchdog()->tripped();
    if (rec != nullptr && rec->profiler() != nullptr) {
      const sim::cost_profiler& prof = *rec->profiler();
      o.attributed = prof.sampled_span_ticks() == 0
                         ? 0.0
                         : static_cast<double>(prof.attributed_ticks()) /
                               static_cast<double>(prof.sampled_span_ticks());
      o.ok = o.ok && o.attributed > 0.0 && o.attributed <= 1.0;
    }
    const sim::run_timing& timing = run.net().timing();
    o.eps.push_back(timing.events_per_sec());
    if (timing.events_per_sec() > o.best_eps) {
      o.best_eps = timing.events_per_sec();
      o.events = timing.events;
      o.wall_ms = timing.wall_ms();
    }
    if (record_stats) rep.merge_stats(run.statistics());
  };

  // Deterministic executions (same events every rep), best-of-N per mode —
  // and the modes are *interleaved* round-robin rather than run in
  // per-mode blocks, so a slow host phase (frequency scaling, a noisy
  // neighbor) degrades every mode's sample set equally instead of landing
  // entirely on one mode and fabricating an overhead.
  outcome plain, recorder, armed, profiled;
  for (int i = 0; i < reps; ++i) {
    run_once(mode::plain, plain, i == 0);
    run_once(mode::recorder, recorder, false);
    run_once(mode::armed, armed, false);
    run_once(mode::profiled, profiled, false);
  }

  // Overhead per interleaved cycle (base and instrumented ran back to back,
  // so they share the host's speed epoch), then the median across cycles —
  // far more stable on shared hosts than a ratio of two best-of-N minima,
  // where one mode can lose every slot to a noisy neighbor.
  const auto overhead = [](const outcome& base, const outcome& inst) {
    std::vector<double> per_cycle;
    for (std::size_t i = 0; i < base.eps.size() && i < inst.eps.size(); ++i)
      if (base.eps[i] > 0.0) per_cycle.push_back(1.0 - inst.eps[i] / base.eps[i]);
    if (per_cycle.empty()) return 1.0;
    std::sort(per_cycle.begin(), per_cycle.end());
    const std::size_t n = per_cycle.size();
    return n % 2 == 1 ? per_cycle[n / 2]
                      : 0.5 * (per_cycle[n / 2 - 1] + per_cycle[n / 2]);
  };
  const double health_overhead = overhead(recorder, armed);
  const double profile_overhead = overhead(recorder, profiled);
  const double total_overhead = overhead(plain, armed);

  text_table t({"mode", "events", "wall_ms", "events/sec", "overhead"});
  t.add_row({"plain", std::to_string(plain.events), fmt_double(plain.wall_ms),
             fmt_double(plain.best_eps), "-"});
  t.add_row({"recorder", std::to_string(recorder.events),
             fmt_double(recorder.wall_ms), fmt_double(recorder.best_eps),
             fmt_double(overhead(plain, recorder))});
  t.add_row({"armed", std::to_string(armed.events), fmt_double(armed.wall_ms),
             fmt_double(armed.best_eps), fmt_double(total_overhead)});
  t.add_row({"profiled", std::to_string(profiled.events),
             fmt_double(profiled.wall_ms), fmt_double(profiled.best_eps),
             fmt_double(profile_overhead)});
  t.print(std::cout);

  rep.add("health_overhead_vs_recorder", 10000.0, health_overhead, bound);
  rep.add("profile_overhead_vs_recorder", 10000.0, profile_overhead, bound);
  rep.add("events_per_sec_plain", 10000.0, plain.best_eps, 0.0);
  rep.add("events_per_sec_recorder", 10000.0, recorder.best_eps, 0.0);
  rep.add("events_per_sec_armed", 10000.0, armed.best_eps, 0.0);
  rep.add("events_per_sec_profiled", 10000.0, profiled.best_eps, 0.0);
  rep.note("total_overhead_vs_plain", total_overhead);
  rep.note("profile_attributed_fraction", profiled.attributed);

  const bool all_ok = plain.ok && recorder.ok && armed.ok && profiled.ok &&
                      health_overhead < bound && profile_overhead < bound;
  std::cout << "\nhealth layer overhead (armed vs recorder): "
            << health_overhead * 100.0 << "% (bound " << bound * 100.0
            << "%)\n";
  std::cout << "cost profiler overhead (profiled vs recorder): "
            << profile_overhead * 100.0 << "% (bound " << bound * 100.0
            << "%), attributing " << profiled.attributed * 100.0
            << "% of the event loop\n";
  return rep.finish(all_ok);
}
