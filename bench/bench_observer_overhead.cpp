// Runtime-health observer overhead: what arming the full health layer —
// series sampler + stall watchdog + flight recorder — costs in event
// throughput on the headline 10k-node unit-delay run (the same
// configuration bench_sim_throughput's acceptance number is phrased in).
//
// Three modes, best-of-N events/sec each:
//
//   plain     no telemetry at all (bench_sim_throughput's measurement);
//   recorder  run_recorder with default options — the pre-existing
//             load/metrics/transition observers, health layer disarmed;
//   armed     run_recorder with the series sampler (interval 256, ~130
//             samples over the run), the stall watchdog (window 4096,
//             probing every 1024 ticks), and a 4096-entry flight recorder.
//
// The acceptance criterion is armed-vs-recorder: the health layer must
// cost < 5% of event throughput on top of the telemetry that was already
// there.  "measured" in the JSON is that overhead fraction,
// "predicted_bound" is 0.05, and ok requires measured < bound with every
// run completing and the watchdog never tripping.
#include <iostream>

#include "bench_report.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "telemetry/report.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Observer overhead: runtime health layer, 10k unit-delay ==\n\n";

  bench::reporter rep("observer_overhead", argc, argv);

  constexpr double bound = 0.05;
  constexpr int reps = 5;
  const auto g = graph::random_weakly_connected(10000, 10000, 42);

  enum class mode { plain, recorder, armed };
  struct outcome {
    double best_eps = 0.0;
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    bool ok = true;
  };

  const auto run_once = [&](mode m, outcome& o, bool record_stats) {
    sim::unit_delay_scheduler sched;
    core::config cfg;
    cfg.algo = core::variant::generic;
    core::discovery_run run(g, cfg, sched);
    std::unique_ptr<telemetry::run_recorder> rec;
    if (m != mode::plain) {
      telemetry::recorder_options opts;
      if (m == mode::armed) {
        opts.series_interval = 256;
        opts.watchdog.window = 4096;
        opts.watchdog.probe_interval = 1024;
        opts.flight_capacity = 4096;
      }
      rec = std::make_unique<telemetry::run_recorder>(run, opts);
    }
    run.wake_all();
    const auto r = run.run();
    o.ok = o.ok && r.completed;
    if (rec != nullptr && rec->watchdog() != nullptr)
      o.ok = o.ok && !rec->watchdog()->tripped();
    const sim::run_timing& timing = run.net().timing();
    if (timing.events_per_sec() > o.best_eps) {
      o.best_eps = timing.events_per_sec();
      o.events = timing.events;
      o.wall_ms = timing.wall_ms();
    }
    if (record_stats) rep.merge_stats(run.statistics());
  };

  // Deterministic executions (same events every rep), best-of-N per mode —
  // and the modes are *interleaved* round-robin rather than run in
  // per-mode blocks, so a slow host phase (frequency scaling, a noisy
  // neighbor) degrades every mode's sample set equally instead of landing
  // entirely on one mode and fabricating an overhead.
  outcome plain, recorder, armed;
  for (int i = 0; i < reps; ++i) {
    run_once(mode::plain, plain, i == 0);
    run_once(mode::recorder, recorder, false);
    run_once(mode::armed, armed, false);
  }

  const auto overhead = [](const outcome& base, const outcome& inst) {
    return base.best_eps > 0.0 ? 1.0 - inst.best_eps / base.best_eps : 1.0;
  };
  const double health_overhead = overhead(recorder, armed);
  const double total_overhead = overhead(plain, armed);

  text_table t({"mode", "events", "wall_ms", "events/sec", "overhead"});
  t.add_row({"plain", std::to_string(plain.events), fmt_double(plain.wall_ms),
             fmt_double(plain.best_eps), "-"});
  t.add_row({"recorder", std::to_string(recorder.events),
             fmt_double(recorder.wall_ms), fmt_double(recorder.best_eps),
             fmt_double(overhead(plain, recorder))});
  t.add_row({"armed", std::to_string(armed.events), fmt_double(armed.wall_ms),
             fmt_double(armed.best_eps), fmt_double(total_overhead)});
  t.print(std::cout);

  rep.add("health_overhead_vs_recorder", 10000.0, health_overhead, bound);
  rep.add("events_per_sec_plain", 10000.0, plain.best_eps, 0.0);
  rep.add("events_per_sec_recorder", 10000.0, recorder.best_eps, 0.0);
  rep.add("events_per_sec_armed", 10000.0, armed.best_eps, 0.0);
  rep.note("total_overhead_vs_plain", total_overhead);

  const bool all_ok = plain.ok && recorder.ok && armed.ok &&
                      health_overhead < bound;
  std::cout << "\nhealth layer overhead (armed vs recorder): "
            << health_overhead * 100.0 << "% (bound " << bound * 100.0
            << "%)\n";
  return rep.finish(all_ok);
}
