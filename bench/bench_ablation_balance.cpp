// Ablation: the balanced query mechanism (§4.1) — the source of the bit
// complexity improvement over Kutten & Peleg [3].
//
// "If v.more + v.done + 1 <= |w.local| then v now knows all the
//  information that w has ... The low bit complexity of the algorithm is
//  due to this balance.  Leader nodes receive just as many ids as needed
//  in order to progress.  The trivial solution of receiving all of w's ids
//  would lead to a higher bit complexity O(|E0| log^2 n)."
//
// Reproduction: run the Generic algorithm with balanced queries on vs off
// across densities and report total bits and the two payload-heavy types.
// The balanced version's advantage must grow with density (the unbalanced
// frontier floods the leader's unexplored set, which then travels in every
// info message up the conquest chain).
#include <iostream>

#include "bench_report.h"
#include "common/bitmath.h"
#include "common/table.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/scheduler.h"

namespace {

struct measurement {
  std::uint64_t total_bits = 0;
  std::uint64_t qreply_bits = 0;
  std::uint64_t info_bits = 0;
  std::uint64_t messages = 0;
};

measurement run_one(const asyncrd::graph::digraph& g, bool balanced) {
  using namespace asyncrd;
  sim::random_delay_scheduler sched(7);
  core::config cfg;
  cfg.balanced_queries = balanced;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();
  const auto rep = core::check_final_state(run, g);
  if (!rep.ok()) {
    std::cerr << "CHECK FAILED (balanced=" << balanced << ")\n"
              << rep.to_string();
    std::exit(1);
  }
  return {run.statistics().total_bits(),
          run.statistics().bits_of("query_reply"),
          run.statistics().bits_of("info"),
          run.statistics().total_messages()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Ablation: balanced queries (bit complexity vs [3]) ==\n\n";

  bench::reporter rep("ablation_balance", argc, argv);

  text_table t({"n", "|E0|", "bits (balanced)", "bits (drain-all)",
                "saving", "info bits bal", "info bits drain"});
  for (const std::size_t n : {128u, 512u, 2048u}) {
    for (const std::size_t density : {2u, 8u, 32u}) {
      const auto g =
          graph::random_weakly_connected(n, density * n, 17 + n + density);
      const auto bal = run_one(g, true);
      const auto drain = run_one(g, false);
      const double dn = static_cast<double>(n);
      const double lg = static_cast<double>(ceil_log2(n));
      const double e0 = static_cast<double>(g.edge_count());
      rep.add("balanced/d=" + std::to_string(density), dn,
              static_cast<double>(bal.total_bits), e0 * lg + dn * lg * lg);
      rep.add("drain_all/d=" + std::to_string(density), dn,
              static_cast<double>(drain.total_bits), e0 * lg * lg);
      t.add_row({std::to_string(n), std::to_string(g.edge_count()),
                 std::to_string(bal.total_bits),
                 std::to_string(drain.total_bits),
                 fmt_ratio(static_cast<double>(drain.total_bits),
                           static_cast<double>(bal.total_bits)),
                 std::to_string(bal.info_bits),
                 std::to_string(drain.info_bits)});
    }
  }
  t.print(std::cout);
  std::cout << "\npaper: §4.1 — the balanced version's bit saving should"
               " grow with edge density (the 'saving' column increases\n"
               "left to right within each n), driven by the info-message"
               " payloads that the balance keeps at O(n log^2 n) total.\n";
  return rep.finish(true);
}
