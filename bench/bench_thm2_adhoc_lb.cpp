// Theorem 2 / Lemma 3.1: Ad-hoc Resource Discovery is Omega(n alpha(n, n))
// messages, via the reduction from Union-Find.
//
// Reproduction: build the lemma's reduction network for union/find
// schedules (random and adversarial binomial-merge schedules), drive the
// Ad-hoc algorithm with the sequential wake-up adversary, verify the
// distributed answers against a reference DSU, and report messages per
// operation against N * alpha(N, N) for N = 2n - 1 + m network nodes.
#include <iostream>

#include "bench_report.h"
#include "common/table.h"
#include "core/uf_reduction.h"
#include "unionfind/ackermann.h"
#include "unionfind/dsu.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Theorem 2 / Lemma 3.1: Ad-hoc lower bound via Union-Find"
               " reduction ==\n\n";

  bench::reporter rep("thm2_adhoc_lb", argc, argv);

  text_table t({"schedule", "sets n", "ops", "net nodes N", "messages",
                "N*alpha(N,N)", "msgs/op", "ratio"});
  bool all_ok = true;

  const auto row = [&](const std::string& name, std::size_t n,
                       std::vector<uf::uf_op> sched) {
    const std::size_t ops = sched.size();
    core::uf_reduction red(n, std::move(sched));
    if (!red.execute()) {
      std::cout << "REDUCTION FAILED (" << name << ", n=" << n << "): "
                << red.errors().front() << "\n";
      all_ok = false;
      return;
    }
    const auto msgs = red.statistics().total_messages();
    const double big_n = static_cast<double>(red.network_size());
    const double na =
        big_n * uf::inverse_ackermann(red.network_size(), red.network_size());
    rep.add(name + "/n=" + std::to_string(n), big_n,
            static_cast<double>(msgs), na);
    rep.merge_stats(red.statistics());
    t.add_row({name, std::to_string(n), std::to_string(ops),
               std::to_string(red.network_size()), std::to_string(msgs),
               fmt_double(na, 0),
               fmt_double(static_cast<double>(msgs) / static_cast<double>(ops), 2),
               fmt_ratio(static_cast<double>(msgs), na)});
  };

  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    row("random m=n", n, uf::random_schedule(n, n, 7 + n));
    row("random m=4n", n, uf::random_schedule(n, 4 * n, 11 + n));
    row("adversarial", n, uf::adversarial_schedule(n, n));
  }

  t.print(std::cout);
  std::cout
      << "\npaper: Theorem 2 — Omega(n alpha(n,n)) messages; Theorem 6 gives"
         " the matching O(n alpha(n,n)) upper bound, so the ratio column\n"
         "should be Theta(1): bounded above and not collapsing toward 0 as"
         " n grows (messages per operation stay near-constant).\n";
  return rep.finish(all_ok);
}
