// Simulator hot-path throughput: events dispatched per wall-clock second on
// large unit-delay discovery runs (the acceptance metric of the dense-core
// rewrite).  Unlike the message-count benches this number is host-dependent;
// it is tracked PR-over-PR on the same CI hardware via the emitted JSON.
//
// The headline row is the 10k-node unit-delay generic run — the measurement
// the ISSUE 3 acceptance criterion is phrased in.  Baseline (std::map nodes
// and channels, binary-heap event queue, make_shared per message) measured
// before the rewrite is recorded under notes.pre_pr_events_per_sec_10k.
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_report.h"
#include "common/table.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "sim/sweep.h"
#include "telemetry/metrics.h"

namespace {

/// Pre-rewrite measurement on the reference machine (see EXPERIMENTS.md):
/// kept in the JSON so the speedup is auditable without checking out the
/// parent commit.
constexpr double pre_pr_events_per_sec_10k = 352957.97;

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrd;
  std::cout << "== Simulator throughput: events/sec, unit-delay discovery ==\n\n";

  bench::reporter rep("sim_throughput", argc, argv);

  text_table t({"n", "variant", "events", "wall_ms", "events/sec"});
  bool all_ok = true;
  double headline = 0.0;

  struct job {
    std::size_t n;
    core::variant v;
    const char* name;
    bool wire = false;
  };
  const std::vector<job> jobs = {
      {1000, core::variant::generic, "generic"},
      {10000, core::variant::generic, "generic"},
      {10000, core::variant::bounded, "bounded"},
      {10000, core::variant::adhoc, "adhoc"},
      // Wire-codec rows: the same executions with every message encoded to
      // its binary frame at the send choke point and decoded zero-copy at
      // delivery.  Tracked next to the struct rows so the codec's hot-path
      // cost (or win) is a gated first-class metric, at 10k and at the
      // 100k scale where the pooled-frame footprint matters most.
      {10000, core::variant::generic, "generic_wire", true},
      {100000, core::variant::generic, "generic_wire", true},
  };

  // Each configuration is a deterministic execution (same events every
  // rep); only host scheduling varies the wall clock.  Best-of-N is the
  // standard way to measure the code rather than the host's noise floor.
  // Message-pool peak occupancy is recorded per configuration through the
  // same registry gauge the run reports use (telemetry::record_pool) —
  // struct-mode id vectors and wire-mode frames are both pool-backed, so
  // the struct-vs-wire gauge delta is the codec's real footprint change.
  constexpr int reps = 3;
  telemetry::registry pool_reg;
  for (const job& j : jobs) {
    const auto g = graph::random_weakly_connected(j.n, j.n, 42);
    double best_eps = 0.0;
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    bool completed = true;
    sim::pool_detail::reset_peak_bytes();
    for (int i = 0; i < reps; ++i) {
      sim::unit_delay_scheduler sched;
      core::config cfg;
      cfg.algo = j.v;
      core::discovery_run run(g, cfg, sched);
      if (j.wire) run.enable_wire();
      run.wake_all();
      const auto r = run.run();
      completed = completed && r.completed;
      const sim::run_timing& timing = run.net().timing();
      const double eps = timing.events_per_sec();
      if (eps > best_eps) {
        best_eps = eps;
        events = timing.events;
        wall_ms = timing.wall_ms();
      }
    }
    all_ok = all_ok && completed;
    if (j.n == 10000 && j.v == core::variant::generic && !j.wire)
      headline = best_eps;
    const std::string label =
        std::string(j.name) + "_" + std::to_string(j.n);
    telemetry::record_pool(pool_reg, "pool." + label,
                           sim::pool_detail::stats());
    rep.note("pool_peak_bytes_" + label,
             pool_reg.get_gauge("pool." + label + ".peak_bytes").value());
    rep.add(j.name, static_cast<double>(j.n), best_eps, 0.0);
    t.add_row({std::to_string(j.n), j.name, std::to_string(events),
               fmt_double(wall_ms), fmt_double(best_eps)});
  }
  // The headline footprint comparison: peak pooled bytes of the 10k run,
  // struct mode vs wire mode (>1.0 means the codec shrank the resident
  // footprint).
  {
    const double s =
        pool_reg.get_gauge("pool.generic_10000.peak_bytes").value();
    const double w =
        pool_reg.get_gauge("pool.generic_wire_10000.peak_bytes").value();
    if (w > 0.0) rep.note("pool_peak_struct_over_wire_10k", s / w);
  }

  // Parallel engine on the headline configuration: the same 10k execution
  // sharded across hardware_concurrency worker threads with byte-identical
  // replay (sim/parallel_engine.h).  The achievable speedup is bounded by
  // the host's core count; on a 1-core host the row honestly reports the
  // window protocol's overhead (< 1.0x vs the serial loop) instead.
  {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const auto g = graph::random_weakly_connected(10000, 10000, 42);
    double best_eps = 0.0;
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    bool completed = true;
    for (int i = 0; i < reps; ++i) {
      sim::unit_delay_scheduler sched;
      core::config cfg;
      core::discovery_run run(g, cfg, sched);
      run.wake_all();
      const auto r = run.run_parallel(hw);
      completed = completed && r.completed;
      const sim::run_timing& timing = run.net().timing();
      const double eps = timing.events_per_sec();
      if (eps > best_eps) {
        best_eps = eps;
        events = timing.events;
        wall_ms = timing.wall_ms();
      }
    }
    all_ok = all_ok && completed;
    rep.add("generic_parallel", 10000.0, best_eps, 0.0);
    rep.note("parallel_shards", static_cast<double>(hw));
    if (headline > 0.0)
      rep.note("parallel_speedup_vs_serial", best_eps / headline);
    t.add_row({"10000", "generic/par", std::to_string(events),
               fmt_double(wall_ms), fmt_double(best_eps)});
  }

  // Parallel seed sweep over the same 1k topology: total events dispatched
  // across all workers divided by sweep wall time.  On multi-core hosts this
  // exceeds the single-run rate; on 1 core it degrades gracefully to it.
  {
    const auto g = graph::random_weakly_connected(1000, 1000, 42);
    std::vector<double> events(8, 0.0);
    const auto sw = sim::parallel_sweep(events.size(), [&](std::size_t i, std::size_t) {
      const auto s = core::run_discovery(g, core::variant::generic, 100 + i);
      events[i] = static_cast<double>(s.events);
    });
    double total = 0.0;
    for (const double e : events) total += e;
    const double eps = sw.wall_ms > 0.0 ? total * 1e3 / sw.wall_ms : 0.0;
    rep.add("sweep_1k_x8", 1000.0, eps, 0.0);
    rep.note("sweep_workers", static_cast<double>(sw.workers));
    t.add_row({"1000x8", "sweep", fmt_double(total), fmt_double(sw.wall_ms),
               fmt_double(eps)});
  }

  rep.note("headline_events_per_sec_10k", headline);
  rep.note("pre_pr_events_per_sec_10k", pre_pr_events_per_sec_10k);
  if (pre_pr_events_per_sec_10k > 0.0)
    rep.note("speedup_vs_pre_pr", headline / pre_pr_events_per_sec_10k);

  t.print(std::cout);
  std::cout << "\nheadline (10k generic): " << headline << " events/sec\n";
  return rep.finish(all_ok);
}
