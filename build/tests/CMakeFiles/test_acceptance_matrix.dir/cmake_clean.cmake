file(REMOVE_RECURSE
  "CMakeFiles/test_acceptance_matrix.dir/test_acceptance_matrix.cpp.o"
  "CMakeFiles/test_acceptance_matrix.dir/test_acceptance_matrix.cpp.o.d"
  "test_acceptance_matrix"
  "test_acceptance_matrix.pdb"
  "test_acceptance_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acceptance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
