# Empty dependencies file for test_acceptance_matrix.
# This may be replaced when dependencies are built.
