file(REMOVE_RECURSE
  "CMakeFiles/test_wakeup_model.dir/test_wakeup_model.cpp.o"
  "CMakeFiles/test_wakeup_model.dir/test_wakeup_model.cpp.o.d"
  "test_wakeup_model"
  "test_wakeup_model.pdb"
  "test_wakeup_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wakeup_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
