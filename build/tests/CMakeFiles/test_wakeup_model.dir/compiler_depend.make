# Empty compiler generated dependencies file for test_wakeup_model.
# This may be replaced when dependencies are built.
