# Empty dependencies file for test_node_unit.
# This may be replaced when dependencies are built.
