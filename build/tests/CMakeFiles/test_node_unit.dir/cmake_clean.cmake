file(REMOVE_RECURSE
  "CMakeFiles/test_node_unit.dir/test_node_unit.cpp.o"
  "CMakeFiles/test_node_unit.dir/test_node_unit.cpp.o.d"
  "test_node_unit"
  "test_node_unit.pdb"
  "test_node_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
