file(REMOVE_RECURSE
  "CMakeFiles/test_regroup.dir/test_regroup.cpp.o"
  "CMakeFiles/test_regroup.dir/test_regroup.cpp.o.d"
  "test_regroup"
  "test_regroup.pdb"
  "test_regroup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
