file(REMOVE_RECURSE
  "CMakeFiles/test_fig1_coverage.dir/test_fig1_coverage.cpp.o"
  "CMakeFiles/test_fig1_coverage.dir/test_fig1_coverage.cpp.o.d"
  "test_fig1_coverage"
  "test_fig1_coverage.pdb"
  "test_fig1_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig1_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
