# Empty dependencies file for test_fig1_coverage.
# This may be replaced when dependencies are built.
