file(REMOVE_RECURSE
  "CMakeFiles/test_dsu.dir/test_dsu.cpp.o"
  "CMakeFiles/test_dsu.dir/test_dsu.cpp.o.d"
  "test_dsu"
  "test_dsu.pdb"
  "test_dsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
