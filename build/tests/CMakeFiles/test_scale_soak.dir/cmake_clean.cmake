file(REMOVE_RECURSE
  "CMakeFiles/test_scale_soak.dir/test_scale_soak.cpp.o"
  "CMakeFiles/test_scale_soak.dir/test_scale_soak.cpp.o.d"
  "test_scale_soak"
  "test_scale_soak.pdb"
  "test_scale_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
