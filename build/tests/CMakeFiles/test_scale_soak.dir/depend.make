# Empty dependencies file for test_scale_soak.
# This may be replaced when dependencies are built.
