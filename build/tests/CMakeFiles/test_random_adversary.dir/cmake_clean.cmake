file(REMOVE_RECURSE
  "CMakeFiles/test_random_adversary.dir/test_random_adversary.cpp.o"
  "CMakeFiles/test_random_adversary.dir/test_random_adversary.cpp.o.d"
  "test_random_adversary"
  "test_random_adversary.pdb"
  "test_random_adversary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
