# Empty compiler generated dependencies file for test_random_adversary.
# This may be replaced when dependencies are built.
