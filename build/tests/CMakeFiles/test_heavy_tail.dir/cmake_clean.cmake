file(REMOVE_RECURSE
  "CMakeFiles/test_heavy_tail.dir/test_heavy_tail.cpp.o"
  "CMakeFiles/test_heavy_tail.dir/test_heavy_tail.cpp.o.d"
  "test_heavy_tail"
  "test_heavy_tail.pdb"
  "test_heavy_tail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heavy_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
