# Empty dependencies file for test_heavy_tail.
# This may be replaced when dependencies are built.
