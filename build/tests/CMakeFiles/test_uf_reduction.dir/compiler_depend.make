# Empty compiler generated dependencies file for test_uf_reduction.
# This may be replaced when dependencies are built.
