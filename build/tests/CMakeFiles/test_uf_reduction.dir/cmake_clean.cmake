file(REMOVE_RECURSE
  "CMakeFiles/test_uf_reduction.dir/test_uf_reduction.cpp.o"
  "CMakeFiles/test_uf_reduction.dir/test_uf_reduction.cpp.o.d"
  "test_uf_reduction"
  "test_uf_reduction.pdb"
  "test_uf_reduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uf_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
