# Empty dependencies file for test_ackermann.
# This may be replaced when dependencies are built.
