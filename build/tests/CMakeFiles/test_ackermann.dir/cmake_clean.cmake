file(REMOVE_RECURSE
  "CMakeFiles/test_ackermann.dir/test_ackermann.cpp.o"
  "CMakeFiles/test_ackermann.dir/test_ackermann.cpp.o.d"
  "test_ackermann"
  "test_ackermann.pdb"
  "test_ackermann[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ackermann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
