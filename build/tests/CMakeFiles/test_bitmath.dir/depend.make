# Empty dependencies file for test_bitmath.
# This may be replaced when dependencies are built.
