file(REMOVE_RECURSE
  "CMakeFiles/test_bitmath.dir/test_bitmath.cpp.o"
  "CMakeFiles/test_bitmath.dir/test_bitmath.cpp.o.d"
  "test_bitmath"
  "test_bitmath.pdb"
  "test_bitmath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
