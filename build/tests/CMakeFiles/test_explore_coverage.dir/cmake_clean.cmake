file(REMOVE_RECURSE
  "CMakeFiles/test_explore_coverage.dir/test_explore_coverage.cpp.o"
  "CMakeFiles/test_explore_coverage.dir/test_explore_coverage.cpp.o.d"
  "test_explore_coverage"
  "test_explore_coverage.pdb"
  "test_explore_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explore_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
