file(REMOVE_RECURSE
  "CMakeFiles/test_adhoc.dir/test_adhoc.cpp.o"
  "CMakeFiles/test_adhoc.dir/test_adhoc.cpp.o.d"
  "test_adhoc"
  "test_adhoc.pdb"
  "test_adhoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
