# Empty dependencies file for test_adhoc.
# This may be replaced when dependencies are built.
