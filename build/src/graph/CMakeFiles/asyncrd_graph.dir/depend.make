# Empty dependencies file for asyncrd_graph.
# This may be replaced when dependencies are built.
