file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_graph.dir/digraph.cpp.o"
  "CMakeFiles/asyncrd_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/asyncrd_graph.dir/graphio.cpp.o"
  "CMakeFiles/asyncrd_graph.dir/graphio.cpp.o.d"
  "CMakeFiles/asyncrd_graph.dir/topology.cpp.o"
  "CMakeFiles/asyncrd_graph.dir/topology.cpp.o.d"
  "libasyncrd_graph.a"
  "libasyncrd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
