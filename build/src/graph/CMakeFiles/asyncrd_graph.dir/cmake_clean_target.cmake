file(REMOVE_RECURSE
  "libasyncrd_graph.a"
)
