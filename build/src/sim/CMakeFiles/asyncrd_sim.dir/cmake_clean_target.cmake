file(REMOVE_RECURSE
  "libasyncrd_sim.a"
)
