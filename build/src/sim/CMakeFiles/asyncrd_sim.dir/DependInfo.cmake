
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_log.cpp" "src/sim/CMakeFiles/asyncrd_sim.dir/event_log.cpp.o" "gcc" "src/sim/CMakeFiles/asyncrd_sim.dir/event_log.cpp.o.d"
  "/root/repo/src/sim/explore.cpp" "src/sim/CMakeFiles/asyncrd_sim.dir/explore.cpp.o" "gcc" "src/sim/CMakeFiles/asyncrd_sim.dir/explore.cpp.o.d"
  "/root/repo/src/sim/load_observer.cpp" "src/sim/CMakeFiles/asyncrd_sim.dir/load_observer.cpp.o" "gcc" "src/sim/CMakeFiles/asyncrd_sim.dir/load_observer.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/asyncrd_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/asyncrd_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/asyncrd_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/asyncrd_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/asyncrd_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/asyncrd_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asyncrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
