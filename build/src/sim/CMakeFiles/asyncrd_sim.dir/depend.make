# Empty dependencies file for asyncrd_sim.
# This may be replaced when dependencies are built.
