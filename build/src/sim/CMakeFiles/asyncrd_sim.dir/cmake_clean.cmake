file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_sim.dir/event_log.cpp.o"
  "CMakeFiles/asyncrd_sim.dir/event_log.cpp.o.d"
  "CMakeFiles/asyncrd_sim.dir/explore.cpp.o"
  "CMakeFiles/asyncrd_sim.dir/explore.cpp.o.d"
  "CMakeFiles/asyncrd_sim.dir/load_observer.cpp.o"
  "CMakeFiles/asyncrd_sim.dir/load_observer.cpp.o.d"
  "CMakeFiles/asyncrd_sim.dir/network.cpp.o"
  "CMakeFiles/asyncrd_sim.dir/network.cpp.o.d"
  "CMakeFiles/asyncrd_sim.dir/scheduler.cpp.o"
  "CMakeFiles/asyncrd_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/asyncrd_sim.dir/stats.cpp.o"
  "CMakeFiles/asyncrd_sim.dir/stats.cpp.o.d"
  "libasyncrd_sim.a"
  "libasyncrd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
