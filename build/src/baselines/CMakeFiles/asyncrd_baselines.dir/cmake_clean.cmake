file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_baselines.dir/absorption.cpp.o"
  "CMakeFiles/asyncrd_baselines.dir/absorption.cpp.o.d"
  "CMakeFiles/asyncrd_baselines.dir/dfs_election.cpp.o"
  "CMakeFiles/asyncrd_baselines.dir/dfs_election.cpp.o.d"
  "CMakeFiles/asyncrd_baselines.dir/flooding.cpp.o"
  "CMakeFiles/asyncrd_baselines.dir/flooding.cpp.o.d"
  "CMakeFiles/asyncrd_baselines.dir/name_dropper.cpp.o"
  "CMakeFiles/asyncrd_baselines.dir/name_dropper.cpp.o.d"
  "CMakeFiles/asyncrd_baselines.dir/pointer_doubling.cpp.o"
  "CMakeFiles/asyncrd_baselines.dir/pointer_doubling.cpp.o.d"
  "libasyncrd_baselines.a"
  "libasyncrd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
