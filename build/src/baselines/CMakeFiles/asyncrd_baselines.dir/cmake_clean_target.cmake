file(REMOVE_RECURSE
  "libasyncrd_baselines.a"
)
