# Empty dependencies file for asyncrd_baselines.
# This may be replaced when dependencies are built.
