
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/absorption.cpp" "src/baselines/CMakeFiles/asyncrd_baselines.dir/absorption.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncrd_baselines.dir/absorption.cpp.o.d"
  "/root/repo/src/baselines/dfs_election.cpp" "src/baselines/CMakeFiles/asyncrd_baselines.dir/dfs_election.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncrd_baselines.dir/dfs_election.cpp.o.d"
  "/root/repo/src/baselines/flooding.cpp" "src/baselines/CMakeFiles/asyncrd_baselines.dir/flooding.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncrd_baselines.dir/flooding.cpp.o.d"
  "/root/repo/src/baselines/name_dropper.cpp" "src/baselines/CMakeFiles/asyncrd_baselines.dir/name_dropper.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncrd_baselines.dir/name_dropper.cpp.o.d"
  "/root/repo/src/baselines/pointer_doubling.cpp" "src/baselines/CMakeFiles/asyncrd_baselines.dir/pointer_doubling.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncrd_baselines.dir/pointer_doubling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asyncrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncrd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/asyncrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/unionfind/CMakeFiles/asyncrd_unionfind.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
