file(REMOVE_RECURSE
  "libasyncrd_common.a"
)
