# Empty compiler generated dependencies file for asyncrd_common.
# This may be replaced when dependencies are built.
