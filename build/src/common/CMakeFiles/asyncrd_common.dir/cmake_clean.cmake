file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_common.dir/bitmath.cpp.o"
  "CMakeFiles/asyncrd_common.dir/bitmath.cpp.o.d"
  "CMakeFiles/asyncrd_common.dir/rng.cpp.o"
  "CMakeFiles/asyncrd_common.dir/rng.cpp.o.d"
  "CMakeFiles/asyncrd_common.dir/table.cpp.o"
  "CMakeFiles/asyncrd_common.dir/table.cpp.o.d"
  "libasyncrd_common.a"
  "libasyncrd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
