file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_core.dir/adversary.cpp.o"
  "CMakeFiles/asyncrd_core.dir/adversary.cpp.o.d"
  "CMakeFiles/asyncrd_core.dir/checker.cpp.o"
  "CMakeFiles/asyncrd_core.dir/checker.cpp.o.d"
  "CMakeFiles/asyncrd_core.dir/node.cpp.o"
  "CMakeFiles/asyncrd_core.dir/node.cpp.o.d"
  "CMakeFiles/asyncrd_core.dir/regroup.cpp.o"
  "CMakeFiles/asyncrd_core.dir/regroup.cpp.o.d"
  "CMakeFiles/asyncrd_core.dir/runner.cpp.o"
  "CMakeFiles/asyncrd_core.dir/runner.cpp.o.d"
  "CMakeFiles/asyncrd_core.dir/trace.cpp.o"
  "CMakeFiles/asyncrd_core.dir/trace.cpp.o.d"
  "CMakeFiles/asyncrd_core.dir/uf_reduction.cpp.o"
  "CMakeFiles/asyncrd_core.dir/uf_reduction.cpp.o.d"
  "libasyncrd_core.a"
  "libasyncrd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
