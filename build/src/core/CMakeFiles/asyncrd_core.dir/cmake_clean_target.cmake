file(REMOVE_RECURSE
  "libasyncrd_core.a"
)
