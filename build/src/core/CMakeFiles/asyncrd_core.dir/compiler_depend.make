# Empty compiler generated dependencies file for asyncrd_core.
# This may be replaced when dependencies are built.
