
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/core/CMakeFiles/asyncrd_core.dir/adversary.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/adversary.cpp.o.d"
  "/root/repo/src/core/checker.cpp" "src/core/CMakeFiles/asyncrd_core.dir/checker.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/checker.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/asyncrd_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/node.cpp.o.d"
  "/root/repo/src/core/regroup.cpp" "src/core/CMakeFiles/asyncrd_core.dir/regroup.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/regroup.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/asyncrd_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/asyncrd_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/uf_reduction.cpp" "src/core/CMakeFiles/asyncrd_core.dir/uf_reduction.cpp.o" "gcc" "src/core/CMakeFiles/asyncrd_core.dir/uf_reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asyncrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncrd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/asyncrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/unionfind/CMakeFiles/asyncrd_unionfind.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
