# Empty compiler generated dependencies file for asyncrd_unionfind.
# This may be replaced when dependencies are built.
