file(REMOVE_RECURSE
  "libasyncrd_unionfind.a"
)
