
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unionfind/ackermann.cpp" "src/unionfind/CMakeFiles/asyncrd_unionfind.dir/ackermann.cpp.o" "gcc" "src/unionfind/CMakeFiles/asyncrd_unionfind.dir/ackermann.cpp.o.d"
  "/root/repo/src/unionfind/dsu.cpp" "src/unionfind/CMakeFiles/asyncrd_unionfind.dir/dsu.cpp.o" "gcc" "src/unionfind/CMakeFiles/asyncrd_unionfind.dir/dsu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asyncrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
