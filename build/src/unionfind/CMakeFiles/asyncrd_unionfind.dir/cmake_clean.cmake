file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_unionfind.dir/ackermann.cpp.o"
  "CMakeFiles/asyncrd_unionfind.dir/ackermann.cpp.o.d"
  "CMakeFiles/asyncrd_unionfind.dir/dsu.cpp.o"
  "CMakeFiles/asyncrd_unionfind.dir/dsu.cpp.o.d"
  "libasyncrd_unionfind.a"
  "libasyncrd_unionfind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_unionfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
