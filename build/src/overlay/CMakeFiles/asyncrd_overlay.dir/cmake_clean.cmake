file(REMOVE_RECURSE
  "CMakeFiles/asyncrd_overlay.dir/dht.cpp.o"
  "CMakeFiles/asyncrd_overlay.dir/dht.cpp.o.d"
  "CMakeFiles/asyncrd_overlay.dir/ring.cpp.o"
  "CMakeFiles/asyncrd_overlay.dir/ring.cpp.o.d"
  "libasyncrd_overlay.a"
  "libasyncrd_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncrd_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
