# Empty compiler generated dependencies file for asyncrd_overlay.
# This may be replaced when dependencies are built.
