file(REMOVE_RECURSE
  "libasyncrd_overlay.a"
)
