file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_oblivious_lb.dir/bench_thm1_oblivious_lb.cpp.o"
  "CMakeFiles/bench_thm1_oblivious_lb.dir/bench_thm1_oblivious_lb.cpp.o.d"
  "bench_thm1_oblivious_lb"
  "bench_thm1_oblivious_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_oblivious_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
