# Empty compiler generated dependencies file for bench_thm1_oblivious_lb.
# This may be replaced when dependencies are built.
