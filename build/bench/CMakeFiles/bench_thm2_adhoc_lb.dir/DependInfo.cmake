
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_thm2_adhoc_lb.cpp" "bench/CMakeFiles/bench_thm2_adhoc_lb.dir/bench_thm2_adhoc_lb.cpp.o" "gcc" "bench/CMakeFiles/bench_thm2_adhoc_lb.dir/bench_thm2_adhoc_lb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/asyncrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/asyncrd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/asyncrd_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/asyncrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/unionfind/CMakeFiles/asyncrd_unionfind.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncrd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asyncrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
