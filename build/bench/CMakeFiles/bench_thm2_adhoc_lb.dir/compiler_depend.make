# Empty compiler generated dependencies file for bench_thm2_adhoc_lb.
# This may be replaced when dependencies are built.
