file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_adhoc_lb.dir/bench_thm2_adhoc_lb.cpp.o"
  "CMakeFiles/bench_thm2_adhoc_lb.dir/bench_thm2_adhoc_lb.cpp.o.d"
  "bench_thm2_adhoc_lb"
  "bench_thm2_adhoc_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_adhoc_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
