file(REMOVE_RECURSE
  "CMakeFiles/bench_pointer_paths.dir/bench_pointer_paths.cpp.o"
  "CMakeFiles/bench_pointer_paths.dir/bench_pointer_paths.cpp.o.d"
  "bench_pointer_paths"
  "bench_pointer_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pointer_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
