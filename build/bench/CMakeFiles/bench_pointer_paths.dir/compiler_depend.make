# Empty compiler generated dependencies file for bench_pointer_paths.
# This may be replaced when dependencies are built.
