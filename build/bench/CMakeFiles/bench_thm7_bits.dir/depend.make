# Empty dependencies file for bench_thm7_bits.
# This may be replaced when dependencies are built.
