file(REMOVE_RECURSE
  "CMakeFiles/bench_thm7_bits.dir/bench_thm7_bits.cpp.o"
  "CMakeFiles/bench_thm7_bits.dir/bench_thm7_bits.cpp.o.d"
  "bench_thm7_bits"
  "bench_thm7_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm7_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
