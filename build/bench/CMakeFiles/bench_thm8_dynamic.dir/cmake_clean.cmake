file(REMOVE_RECURSE
  "CMakeFiles/bench_thm8_dynamic.dir/bench_thm8_dynamic.cpp.o"
  "CMakeFiles/bench_thm8_dynamic.dir/bench_thm8_dynamic.cpp.o.d"
  "bench_thm8_dynamic"
  "bench_thm8_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm8_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
