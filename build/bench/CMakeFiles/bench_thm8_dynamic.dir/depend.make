# Empty dependencies file for bench_thm8_dynamic.
# This may be replaced when dependencies are built.
