# Empty compiler generated dependencies file for bench_thm5_generic_msgs.
# This may be replaced when dependencies are built.
