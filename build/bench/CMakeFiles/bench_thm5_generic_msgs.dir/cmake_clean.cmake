file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_generic_msgs.dir/bench_thm5_generic_msgs.cpp.o"
  "CMakeFiles/bench_thm5_generic_msgs.dir/bench_thm5_generic_msgs.cpp.o.d"
  "bench_thm5_generic_msgs"
  "bench_thm5_generic_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_generic_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
