file(REMOVE_RECURSE
  "CMakeFiles/bench_time_complexity.dir/bench_time_complexity.cpp.o"
  "CMakeFiles/bench_time_complexity.dir/bench_time_complexity.cpp.o.d"
  "bench_time_complexity"
  "bench_time_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
