file(REMOVE_RECURSE
  "CMakeFiles/bench_lemmas_msg_types.dir/bench_lemmas_msg_types.cpp.o"
  "CMakeFiles/bench_lemmas_msg_types.dir/bench_lemmas_msg_types.cpp.o.d"
  "bench_lemmas_msg_types"
  "bench_lemmas_msg_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemmas_msg_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
