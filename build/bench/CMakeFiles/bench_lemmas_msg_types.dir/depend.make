# Empty dependencies file for bench_lemmas_msg_types.
# This may be replaced when dependencies are built.
