file(REMOVE_RECURSE
  "CMakeFiles/bench_thm6_near_linear.dir/bench_thm6_near_linear.cpp.o"
  "CMakeFiles/bench_thm6_near_linear.dir/bench_thm6_near_linear.cpp.o.d"
  "bench_thm6_near_linear"
  "bench_thm6_near_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm6_near_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
