# Empty compiler generated dependencies file for bench_thm6_near_linear.
# This may be replaced when dependencies are built.
