# Empty dependencies file for discovery_cli.
# This may be replaced when dependencies are built.
