file(REMOVE_RECURSE
  "CMakeFiles/discovery_cli.dir/discovery_cli.cpp.o"
  "CMakeFiles/discovery_cli.dir/discovery_cli.cpp.o.d"
  "discovery_cli"
  "discovery_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
