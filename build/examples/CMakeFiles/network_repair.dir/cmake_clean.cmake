file(REMOVE_RECURSE
  "CMakeFiles/network_repair.dir/network_repair.cpp.o"
  "CMakeFiles/network_repair.dir/network_repair.cpp.o.d"
  "network_repair"
  "network_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
