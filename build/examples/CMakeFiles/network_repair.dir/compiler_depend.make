# Empty compiler generated dependencies file for network_repair.
# This may be replaced when dependencies are built.
