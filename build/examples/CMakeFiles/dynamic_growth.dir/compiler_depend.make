# Empty compiler generated dependencies file for dynamic_growth.
# This may be replaced when dependencies are built.
