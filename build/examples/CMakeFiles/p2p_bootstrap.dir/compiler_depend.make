# Empty compiler generated dependencies file for p2p_bootstrap.
# This may be replaced when dependencies are built.
