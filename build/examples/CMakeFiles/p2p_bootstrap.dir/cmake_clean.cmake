file(REMOVE_RECURSE
  "CMakeFiles/p2p_bootstrap.dir/p2p_bootstrap.cpp.o"
  "CMakeFiles/p2p_bootstrap.dir/p2p_bootstrap.cpp.o.d"
  "p2p_bootstrap"
  "p2p_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
