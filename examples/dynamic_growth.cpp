// Continuous growth under the Ad-hoc algorithm (§4.5.2 + §6): a live
// system where nodes and links keep arriving while members periodically
// probe the leader for a fresh roster snapshot.
//
// Demonstrates the two §6 cases for link additions (unreported-pool ride vs
// explicit report to the leader), path compression on probe replies, and
// the amortized near-constant cost per event.
#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

int main() {
  using namespace asyncrd;
  rng r(424242);

  // Seed system: 20 nodes.
  graph::digraph g = graph::random_weakly_connected(20, 25, 3);
  sim::random_delay_scheduler sched(11, 1, 32);
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  std::cout << "epoch  nodes  new-events  leader  msgs-this-epoch  probe-roster\n";
  std::cout << "------------------------------------------------------------------\n";

  node_id next_id = 100;
  for (int epoch = 1; epoch <= 12; ++epoch) {
    const auto before = run.statistics().total_messages();
    // A burst of growth: a few joins and a few new links.
    const int events = 3 + static_cast<int>(r.below(5));
    for (int e = 0; e < events; ++e) {
      const auto ids = run.ids();
      if (r.chance(0.6)) {
        const node_id peer = ids[static_cast<std::size_t>(r.below(ids.size()))];
        run.add_node_dynamic(next_id, {peer});
        g.add_edge(next_id, peer);
        ++next_id;
      } else {
        const node_id a = ids[static_cast<std::size_t>(r.below(ids.size()))];
        const node_id b = ids[static_cast<std::size_t>(r.below(ids.size()))];
        if (a != b) {
          run.add_link_dynamic(a, b);
          g.add_edge(a, b);
        }
      }
    }
    run.run();

    // A random member asks the leader for the current roster.
    const auto ids = run.ids();
    const node_id prober = ids[static_cast<std::size_t>(r.below(ids.size()))];
    run.probe(prober);
    run.net().run_to_quiescence();

    const auto rep = core::check_final_state(run, g);
    if (!rep.ok()) {
      std::cerr << "epoch " << epoch << " failed:\n" << rep.to_string();
      return 1;
    }
    std::cout << std::setw(5) << epoch << std::setw(7) << run.ids().size()
              << std::setw(12) << events << std::setw(8)
              << run.leaders().front() << std::setw(17)
              << (run.statistics().total_messages() - before) << std::setw(14)
              << run.at(prober).last_census()->ids.size() << '\n';
  }

  std::cout << "\nfinal system: " << run.ids().size() << " nodes, "
            << run.statistics().total_messages() << " total messages, "
            << "single leader " << run.leaders().front()
            << " — spec verified every epoch\n";
  return 0;
}
