// Quickstart: run asynchronous resource discovery on a small weakly
// connected knowledge graph and inspect the outcome.
//
//   $ ./quickstart
//   $ ./quickstart trace.json      # also write a causal Perfetto trace
//
// Twelve peers, each initially knowing one or two others (a weakly
// connected digraph).  After the run, exactly one peer is the leader, the
// leader knows every id, and every other peer knows the leader.  With a
// path argument the run is causally traced and exported as Chrome
// trace-event JSON — open it in ui.perfetto.dev to see one track per peer
// and an arrow per message (docs/OBSERVABILITY.md walks through it).
#include <fstream>
#include <iostream>

#include "core/checker.h"
#include "core/runner.h"
#include "graph/digraph.h"
#include "telemetry/critical_path.h"
#include "telemetry/perfetto.h"
#include "telemetry/tracer.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  const char* trace_path = argc > 1 ? argv[1] : nullptr;

  // --- 1. Describe who initially knows whom (the knowledge graph E0).
  graph::digraph g;
  g.add_edge(3, 7);   // peer 3 knows peer 7's address, etc.
  g.add_edge(7, 1);
  g.add_edge(1, 0);
  g.add_edge(4, 1);
  g.add_edge(4, 9);
  g.add_edge(9, 2);
  g.add_edge(5, 2);
  g.add_edge(5, 11);
  g.add_edge(11, 6);
  g.add_edge(8, 6);
  g.add_edge(8, 10);
  g.add_edge(10, 3);

  // --- 2. Configure a run: the Generic algorithm (component size unknown),
  // asynchronous delivery with random delays.
  sim::random_delay_scheduler sched(/*seed=*/2026);
  core::config cfg;
  cfg.algo = core::variant::generic;
  core::discovery_run run(g, cfg, sched);

  // --- 3. Wake everyone (asynchronously — wake events race with traffic)
  // and let the network quiesce.  A tracer records who-caused-what.
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  run.run();

  // --- 4. Inspect the outcome.
  const auto leaders = run.leaders();
  std::cout << "leader: " << leaders.front() << "\n";
  const core::node& leader = run.at(leaders.front());
  std::cout << "ids discovered by the leader:";
  for (const node_id v : leader.done()) std::cout << ' ' << v;
  std::cout << "\n";

  std::cout << "messages sent: " << run.statistics().total_messages()
            << "  (" << run.statistics().total_bits() << " bits)\n";
  for (const auto& [type, st] : run.statistics().by_type())
    std::cout << "  " << type << ": " << st.count << " messages, " << st.bits
              << " bits\n";

  // --- 5. The causal view: which chain of messages bounded the run.
  const auto cp = telemetry::extract_critical_path(tr.events());
  std::cout << "critical path: " << cp.length << " hops (virtual time "
            << run.net().now() << ")\n";
  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    telemetry::write_perfetto_trace(out, tr.events(), "quickstart");
    std::cout << "trace written to " << trace_path
              << " (load it in ui.perfetto.dev)\n";
  }

  // --- 6. Verify the spec (the library ships its own checker).
  const core::check_report rep = core::check_final_state(run, g);
  std::cout << (rep.ok() ? "spec check: OK" : "spec check: FAILED") << "\n";
  if (!rep.ok()) std::cout << rep.to_string();
  return rep.ok() ? 0 : 1;
}
