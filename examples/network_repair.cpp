// Damaged-system repair — the paper's second motivation:
// "Consider a system in which many of the nodes were either reset or
//  totally removed from the system.  The first step toward rebuilding such
//  a system is discovering and regrouping all the currently online nodes."
//
// Scenario: a 150-node overlay suffers a catastrophic failure; only 60
// survivors remain, each retaining a few (possibly stale) contacts from its
// old routing table.  Survivors regroup with the Ad-hoc algorithm; then
// previously offline nodes come back one by one and are absorbed
// dynamically (§6) without re-running discovery.
#include <iostream>

#include "common/rng.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"

int main() {
  using namespace asyncrd;
  rng r(2026);

  // --- The survivors and what's left of their routing tables.
  const std::size_t survivors = 60;
  std::cout << "regrouping " << survivors << " survivors...\n";
  graph::digraph alive = graph::random_weakly_connected(survivors, 90, 5);

  sim::random_delay_scheduler sched(17, 1, 64);
  core::config cfg;
  cfg.algo = core::variant::adhoc;
  core::discovery_run run(alive, cfg, sched);
  run.wake_all();
  run.run();

  auto rep = core::check_final_state(run, alive);
  if (!rep.ok()) {
    std::cerr << "regroup failed:\n" << rep.to_string();
    return 1;
  }
  std::cout << "regrouped under leader " << run.leaders().front() << " in "
            << run.statistics().total_messages() << " messages\n";

  // --- Recovered nodes rejoin one at a time, each knowing a couple of
  // random online nodes (e.g. from its stale configuration).
  const std::size_t rejoining = 90;
  std::cout << "\nabsorbing " << rejoining << " recovering nodes:\n";
  const auto before = run.statistics().total_messages();
  for (std::size_t i = 0; i < rejoining; ++i) {
    const node_id fresh = static_cast<node_id>(1000 + i);
    const auto ids = run.ids();
    const node_id contact_a = ids[static_cast<std::size_t>(r.below(ids.size()))];
    const node_id contact_b = ids[static_cast<std::size_t>(r.below(ids.size()))];
    run.add_node_dynamic(fresh, {contact_a, contact_b});
    alive.add_edge(fresh, contact_a);
    alive.add_edge(fresh, contact_b);
    run.run();
  }
  const auto incremental = run.statistics().total_messages() - before;

  rep = core::check_final_state(run, alive);
  if (!rep.ok()) {
    std::cerr << "absorption failed:\n" << rep.to_string();
    return 1;
  }
  std::cout << "all " << (survivors + rejoining)
            << " nodes regrouped under leader " << run.leaders().front()
            << "; rejoin cost " << incremental << " messages ("
            << incremental / rejoining << " per node — §6's near-constant"
            << " amortized cost)\n";

  // --- Any node can now fetch the full roster from the leader (§4.5.2).
  run.probe(1000);
  run.net().run_to_quiescence();
  std::cout << "node 1000's roster probe sees "
            << run.at(1000).last_census()->ids.size() << " online nodes\n";
  return 0;
}
