// discovery_cli — run asynchronous resource discovery on a graph file.
//
//   discovery_cli [options] <graph-file|->
//     --variant generic|bounded|adhoc   (default generic)
//     --seed N          delivery-schedule seed; 0 = unit delays (default 1)
//     --gen KIND:N[:EXTRA[:SEED]]       generate instead of reading a file:
//                       KIND in {random,tree,path,star_in,star_out,clique}
//     --probe V         after quiescence, node V probes the leader (adhoc)
//     --dot             print the knowledge graph as Graphviz DOT and exit
//     --quiet           suppress the per-type message table
//     --json PATH       write a telemetry run report (docs/OBSERVABILITY.md)
//     --trace PATH      write a causal trace as Chrome trace-event /
//                       Perfetto JSON, loadable in ui.perfetto.dev and
//                       readable by tools/trace_analyze
//     --chaos SPEC      lossy wire + reliable-delivery adapter; SPEC is
//                       comma-separated: drop=P, dup=P, slack=T,
//                       outage=PERIOD:DURATION, seed=N
//     --series N        sample the runtime health series every N sim-time
//                       ticks (adds a "series" block to --json and counter
//                       tracks to --trace)
//     --watchdog W      arm the stall watchdog with window W; a trip
//                       aborts the run and exits with status 3
//     --flight PATH     keep a flight recorder armed and write the last-K
//                       scheduler events to PATH at exit (the postmortem
//                       ring; read it with trace_analyze --flight)
//     --profile         arm the hot-path cost profiler: where the event
//                       loop's cycles go, by phase and message type (adds
//                       a "profile" block to --json and a stdout summary)
//     --shards N        run through the parallel engine with N worker
//                       shards (0 = hardware concurrency); byte-identical
//                       with the serial loop at every shard count
//     --wire            encode every message into the compact binary wire
//                       format at the send choke point (sim/wire.h); adds
//                       a "wire" block with measured per-type bytes to
//                       --json.  Replay is byte-identical with --wire off.
//
// Examples:
//   echo "0 1
//   1 2" | discovery_cli -
//   discovery_cli --gen random:500:500 --variant adhoc --seed 7
//   discovery_cli --gen tree:6 --dot | dot -Tpng > tree.png
//   discovery_cli --gen random:200:200 --chaos drop=0.3,outage=2000:400
//     --series 256 --watchdog 20000 --flight crash.json --json report.json
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/parse.h"
#include "common/version.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/graphio.h"
#include "graph/topology.h"
#include "telemetry/critical_path.h"
#include "telemetry/health.h"
#include "telemetry/perfetto.h"
#include "telemetry/report.h"
#include "telemetry/tracer.h"

namespace {

using namespace asyncrd;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: discovery_cli [options] <graph-file|->\n"
      "  --variant generic|bounded|adhoc\n"
      "  --seed N              (0 = unit delays)\n"
      "  --gen KIND:N[:EXTRA[:SEED]]  generate topology\n"
      "  --probe V             probe the leader from node V afterwards\n"
      "  --dot                 dump Graphviz DOT of E0 and exit\n"
      "  --quiet               no per-type breakdown\n"
      "  --json PATH           write a JSON run report to PATH\n"
      "  --trace PATH          write a causal Perfetto trace to PATH\n"
      "  --chaos SPEC          drop=P,dup=P,slack=T,outage=PER:DUR,seed=N\n"
      "  --series N            sample health series every N ticks\n"
      "  --watchdog W          stall watchdog, window W (trip => exit 3)\n"
      "  --flight PATH         write flight-recorder ring to PATH at exit\n"
      "  --profile             hot-path cost attribution (in --json too)\n"
      "  --shards N            parallel engine, N worker shards (0 = cores)\n"
      "  --wire                binary wire codec (measured bytes in --json)\n";
  std::exit(2);
}

/// Checked numeric conversions: a malformed value exits through usage()
/// naming the flag it came from, instead of std::stoull throwing out of
/// main into std::terminate.
std::uint64_t num_u64(const std::string& flag, const std::string& text) {
  const auto v = parse_u64(text);
  if (!v) usage((flag + ": expected a non-negative integer, got '" + text +
                 "'").c_str());
  return *v;
}

double num_double(const std::string& flag, const std::string& text) {
  const auto v = parse_double(text);
  if (!v) usage((flag + ": expected a number, got '" + text + "'").c_str());
  return *v;
}

sim::fault_plan parse_chaos(const std::string& spec) {
  sim::fault_plan plan;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) usage("--chaos items are key=value");
    const std::string k = item.substr(0, eq);
    const std::string v = item.substr(eq + 1);
    if (k == "drop") plan.drop = num_double("--chaos drop", v);
    else if (k == "dup") plan.duplicate = num_double("--chaos dup", v);
    else if (k == "slack") plan.reorder_slack = num_u64("--chaos slack", v);
    else if (k == "seed") plan.seed = num_u64("--chaos seed", v);
    else if (k == "outage") {
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos) usage("--chaos outage=PERIOD:DURATION");
      plan.outage_period = num_u64("--chaos outage", v.substr(0, colon));
      plan.outage_duration = num_u64("--chaos outage", v.substr(colon + 1));
    } else {
      usage(("unknown --chaos key " + k).c_str());
    }
  }
  if (!plan.enabled()) usage("--chaos spec enables no faults");
  return plan;
}

graph::digraph generate(const std::string& spec) {
  std::istringstream ss(spec);
  std::string kind;
  std::getline(ss, kind, ':');
  std::string tok;
  std::size_t n = 0, extra = 0;
  std::uint64_t seed = 1;
  if (std::getline(ss, tok, ':')) n = num_u64("--gen N", tok);
  if (std::getline(ss, tok, ':')) extra = num_u64("--gen EXTRA", tok);
  if (std::getline(ss, tok, ':')) seed = num_u64("--gen SEED", tok);
  if (n == 0) usage("--gen needs KIND:N");
  if (kind == "random") return graph::random_weakly_connected(n, extra, seed);
  if (kind == "tree") return graph::directed_binary_tree(n);
  if (kind == "path") return graph::directed_path(n);
  if (kind == "star_in") return graph::star_in(n);
  if (kind == "star_out") return graph::star_out(n);
  if (kind == "clique") return graph::clique(n);
  usage("unknown --gen kind");
}

}  // namespace

int main(int argc, char** argv) {
  std::string variant_name = "generic";
  std::uint64_t seed = 1;
  std::string gen_spec, input, json_path, trace_path, chaos_spec, flight_path;
  std::uint64_t series_interval = 0, watchdog_window = 0;
  bool want_dot = false, quiet = false, profile = false, parallel = false;
  bool wire = false;
  std::size_t shards = 0;
  node_id probe_from = invalid_node;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--variant") variant_name = next();
    else if (a == "--seed") seed = num_u64(a, next());
    else if (a == "--gen") gen_spec = next();
    else if (a == "--probe") probe_from = static_cast<node_id>(num_u64(a, next()));
    else if (a == "--dot") want_dot = true;
    else if (a == "--quiet") quiet = true;
    else if (a == "--json") json_path = next();
    else if (a == "--trace") trace_path = next();
    else if (a == "--chaos") chaos_spec = next();
    else if (a == "--series") series_interval = num_u64(a, next());
    else if (a == "--watchdog") watchdog_window = num_u64(a, next());
    else if (a == "--flight") flight_path = next();
    else if (a == "--profile") profile = true;
    else if (a == "--wire") wire = true;
    else if (a == "--shards") {
      parallel = true;
      shards = num_u64(a, next());
    }
    else if (a == "--version") {
      std::cout << "asyncrd " << asyncrd::version << '\n';
      return 0;
    }
    else if (a == "--help" || a == "-h") usage();
    else if (!a.empty() && a[0] == '-' && a != "-") usage(("unknown option " + a).c_str());
    else input = a;
  }

  graph::digraph g;
  if (!gen_spec.empty()) {
    g = generate(gen_spec);
  } else if (input == "-") {
    g = graph::read_edge_list(std::cin);
  } else if (!input.empty()) {
    g = graph::read_edge_list_file(input);
  } else {
    usage("no graph given (file, '-', or --gen)");
  }

  if (want_dot) {
    std::cout << graph::to_dot(g);
    return 0;
  }

  core::config cfg;
  if (variant_name == "generic") cfg.algo = core::variant::generic;
  else if (variant_name == "bounded") cfg.algo = core::variant::bounded;
  else if (variant_name == "adhoc") cfg.algo = core::variant::adhoc;
  else usage("unknown variant");

  std::unique_ptr<sim::scheduler> sched;
  if (seed == 0)
    sched = std::make_unique<sim::unit_delay_scheduler>();
  else
    sched = std::make_unique<sim::random_delay_scheduler>(seed);

  core::discovery_run run(g, cfg, *sched);
  if (!chaos_spec.empty()) run.enable_chaos(parse_chaos(chaos_spec));

  std::unique_ptr<telemetry::run_recorder> rec;
  const bool want_recorder = !json_path.empty() || series_interval > 0 ||
                             watchdog_window > 0 || !flight_path.empty() ||
                             profile;
  if (want_recorder) {
    telemetry::recorder_options opts;
    opts.series_interval = series_interval;
    opts.watchdog.window = watchdog_window;
    // A CLI run that stalls would otherwise burn to the event cap; the
    // watchdog aborting it is the whole point of arming one here.
    opts.watchdog.abort_on_trip = true;
    if (!flight_path.empty()) opts.flight_capacity = 4096;
    opts.profile = profile;
    opts.wire = wire;
    rec = std::make_unique<telemetry::run_recorder>(run, opts);
  } else if (wire) {
    run.enable_wire();
  }
  std::unique_ptr<telemetry::tracer> tr;
  if (!trace_path.empty()) {
    tr = std::make_unique<telemetry::tracer>(run.net());
    run.net().add_observer(tr.get());
  }
  run.wake_all();
  const auto r = parallel ? run.run_parallel(shards) : run.run();

  // Postmortem ring: written on every exit path once armed, so a failing
  // run always leaves its last-K scheduler events behind.
  const auto write_flight = [&]() {
    if (flight_path.empty() || rec == nullptr || rec->flight() == nullptr)
      return;
    std::ofstream out(flight_path);
    telemetry::write_flight_dump(out, *rec->flight());
    if (!out)
      std::cerr << "failed to write " << flight_path << '\n';
    else
      std::cout << "[flight] " << flight_path << '\n';
  };
  // spec-checker verdict for the report's "extra" block; -1 == not run
  // (stall abort exits before the checker).
  double spec_ok = -1.0;
  const auto write_report = [&]() {
    if (json_path.empty() || rec == nullptr) return;
    telemetry::run_report report = rec->report(r);
    report.label = "discovery_cli";
    report.variant = core::to_string(cfg.algo);
    report.seed = seed;
    report.edges = g.edge_count();
    if (spec_ok >= 0.0) report.extra["spec_check_ok"] = spec_ok;
    std::ofstream out(json_path);
    out << report.to_json() << '\n';
    if (!out)
      std::cerr << "failed to write " << json_path << '\n';
    else
      std::cout << "[json] " << json_path << '\n';
  };

  if (r.stopped) {
    std::cerr << "run aborted: stall watchdog tripped at t=" << run.net().now()
              << " (window " << watchdog_window << ")\n";
    if (rec != nullptr && rec->watchdog() != nullptr)
      for (const telemetry::watchdog_trip& t : rec->watchdog()->trips())
        std::cerr << "  trip at t=" << t.at << ": no progress since t="
                  << t.last_progress_at << ", in_flight=" << t.in_flight
                  << ", arq_outstanding=" << t.arq_outstanding << '\n';
    write_report();
    write_flight();
    return 3;
  }
  if (!r.completed) {
    std::cerr << "run aborted: event cap exceeded\n";
    write_flight();
    return 1;
  }

  const auto rep = core::check_final_state(run, g);
  std::cout << "nodes: " << g.node_count() << "  edges: " << g.edge_count()
            << "  variant: " << core::to_string(cfg.algo)
            << "  seed: " << seed << '\n';
  for (const node_id lid : run.leaders())
    std::cout << "leader " << lid << " knows "
              << run.at(lid).done().size() << " ids\n";
  std::cout << "messages: " << run.statistics().total_messages()
            << "  bits: " << run.statistics().total_bits()
            << "  time: " << run.net().now() << '\n';
  if (wire)
    std::cout << "wire: " << run.net().wire_frames() << " frames, "
              << run.net().wire_bytes_sent() << " bytes\n";
  if (!quiet) {
    for (const auto& [type, st] : run.statistics().by_type())
      std::cout << "  " << type << ": " << st.count << " msgs, " << st.bits
                << " bits\n";
  }

  if (profile && rec != nullptr && rec->profiler() != nullptr) {
    const sim::cost_profiler& prof = *rec->profiler();
    const double tpn = sim::profile_ticks_per_ns();
    const double loop = static_cast<double>(prof.loop_ticks());
    // Percentages are of the *sampled* event spans (1 in sample_every
    // events reads ticks; counts are exact) — unbiased, see sim/profiler.h.
    const double span = static_cast<double>(prof.sampled_span_ticks());
    std::cout << "profile: event loop " << loop / tpn / 1e6 << " ms, "
              << prof.sampled_events() << "/" << prof.events()
              << " events sampled, "
              << (span > 0.0
                      ? 100.0 * static_cast<double>(prof.attributed_ticks()) /
                            span
                      : 0.0)
              << "% attributed\n";
    const auto pct = [&](std::uint64_t ticks) {
      return span > 0.0 ? 100.0 * static_cast<double>(ticks) / span : 0.0;
    };
    for (std::size_t i = 0; i < sim::cost_profiler::phase_count; ++i) {
      const auto& b = prof.phases()[i];
      if (b.count == 0) continue;
      std::cout << "  " << sim::profile_phase_name(
                               static_cast<sim::cost_profiler::phase>(i))
                << ": " << b.count << " spans, " << pct(b.ticks) << "%\n";
    }
    for (std::size_t tag = 0; tag < sim::cost_profiler::tag_count; ++tag) {
      const auto& b = prof.tags()[tag];
      if (b.count == 0) continue;
      std::cout << "  handler " << telemetry::dispatch_tag_name(
                                       static_cast<std::uint8_t>(tag))
                << ": " << b.count << " spans, " << pct(b.ticks) << "%\n";
    }
  }

  if (probe_from != invalid_node) {
    run.probe(probe_from);
    run.net().run_to_quiescence();
    const auto& c = run.at(probe_from).last_census();
    if (c.has_value())
      std::cout << "probe from " << probe_from << ": leader " << c->leader
                << ", census " << c->ids.size() << " ids\n";
  }

  spec_ok = rep.ok() ? 1.0 : 0.0;
  write_report();

  if (tr) {
    const auto cp = telemetry::extract_critical_path(tr->events());
    std::cout << "critical path: " << cp.length << " hops (sim time "
              << run.net().now() << ")\n";
    std::ofstream out(trace_path);
    // An armed sampler adds its health series as Perfetto counter tracks;
    // without one the output is byte-identical to the pre-series format.
    if (rec != nullptr && rec->sampler() != nullptr)
      telemetry::write_perfetto_trace(out, tr->events(), "discovery_cli",
                                      telemetry::counter_tracks(*rec->sampler()));
    else
      telemetry::write_perfetto_trace(out, tr->events(), "discovery_cli");
    if (!out) {
      std::cerr << "failed to write " << trace_path << '\n';
      return 1;
    }
    std::cout << "[trace] " << trace_path << '\n';
    run.net().remove_observer(tr.get());
  }

  write_flight();
  std::cout << "spec check: " << (rep.ok() ? "OK" : "FAILED") << '\n';
  if (!rep.ok()) std::cout << rep.to_string();
  return rep.ok() ? 0 : 1;
}
