// discovery_cli — run asynchronous resource discovery on a graph file.
//
//   discovery_cli [options] <graph-file|->
//     --variant generic|bounded|adhoc   (default generic)
//     --seed N          delivery-schedule seed; 0 = unit delays (default 1)
//     --gen KIND:N[:EXTRA[:SEED]]       generate instead of reading a file:
//                       KIND in {random,tree,path,star_in,star_out,clique}
//     --probe V         after quiescence, node V probes the leader (adhoc)
//     --dot             print the knowledge graph as Graphviz DOT and exit
//     --quiet           suppress the per-type message table
//     --json PATH       write a telemetry run report (docs/OBSERVABILITY.md)
//     --trace PATH      write a causal trace as Chrome trace-event /
//                       Perfetto JSON, loadable in ui.perfetto.dev and
//                       readable by tools/trace_analyze
//
// Examples:
//   echo "0 1
//   1 2" | discovery_cli -
//   discovery_cli --gen random:500:500 --variant adhoc --seed 7
//   discovery_cli --gen tree:6 --dot | dot -Tpng > tree.png
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/version.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/graphio.h"
#include "graph/topology.h"
#include "telemetry/critical_path.h"
#include "telemetry/perfetto.h"
#include "telemetry/report.h"
#include "telemetry/tracer.h"

namespace {

using namespace asyncrd;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: discovery_cli [options] <graph-file|->\n"
      "  --variant generic|bounded|adhoc\n"
      "  --seed N              (0 = unit delays)\n"
      "  --gen KIND:N[:EXTRA[:SEED]]  generate topology\n"
      "  --probe V             probe the leader from node V afterwards\n"
      "  --dot                 dump Graphviz DOT of E0 and exit\n"
      "  --quiet               no per-type breakdown\n"
      "  --json PATH           write a JSON run report to PATH\n"
      "  --trace PATH          write a causal Perfetto trace to PATH\n";
  std::exit(2);
}

graph::digraph generate(const std::string& spec) {
  std::istringstream ss(spec);
  std::string kind;
  std::getline(ss, kind, ':');
  std::string tok;
  std::size_t n = 0, extra = 0;
  std::uint64_t seed = 1;
  if (std::getline(ss, tok, ':')) n = std::stoull(tok);
  if (std::getline(ss, tok, ':')) extra = std::stoull(tok);
  if (std::getline(ss, tok, ':')) seed = std::stoull(tok);
  if (n == 0) usage("--gen needs KIND:N");
  if (kind == "random") return graph::random_weakly_connected(n, extra, seed);
  if (kind == "tree") return graph::directed_binary_tree(n);
  if (kind == "path") return graph::directed_path(n);
  if (kind == "star_in") return graph::star_in(n);
  if (kind == "star_out") return graph::star_out(n);
  if (kind == "clique") return graph::clique(n);
  usage("unknown --gen kind");
}

}  // namespace

int main(int argc, char** argv) {
  std::string variant_name = "generic";
  std::uint64_t seed = 1;
  std::string gen_spec, input, json_path, trace_path;
  bool want_dot = false, quiet = false;
  node_id probe_from = invalid_node;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--variant") variant_name = next();
    else if (a == "--seed") seed = std::stoull(next());
    else if (a == "--gen") gen_spec = next();
    else if (a == "--probe") probe_from = static_cast<node_id>(std::stoull(next()));
    else if (a == "--dot") want_dot = true;
    else if (a == "--quiet") quiet = true;
    else if (a == "--json") json_path = next();
    else if (a == "--trace") trace_path = next();
    else if (a == "--version") {
      std::cout << "asyncrd " << asyncrd::version << '\n';
      return 0;
    }
    else if (a == "--help" || a == "-h") usage();
    else if (!a.empty() && a[0] == '-' && a != "-") usage(("unknown option " + a).c_str());
    else input = a;
  }

  graph::digraph g;
  if (!gen_spec.empty()) {
    g = generate(gen_spec);
  } else if (input == "-") {
    g = graph::read_edge_list(std::cin);
  } else if (!input.empty()) {
    g = graph::read_edge_list_file(input);
  } else {
    usage("no graph given (file, '-', or --gen)");
  }

  if (want_dot) {
    std::cout << graph::to_dot(g);
    return 0;
  }

  core::config cfg;
  if (variant_name == "generic") cfg.algo = core::variant::generic;
  else if (variant_name == "bounded") cfg.algo = core::variant::bounded;
  else if (variant_name == "adhoc") cfg.algo = core::variant::adhoc;
  else usage("unknown variant");

  std::unique_ptr<sim::scheduler> sched;
  if (seed == 0)
    sched = std::make_unique<sim::unit_delay_scheduler>();
  else
    sched = std::make_unique<sim::random_delay_scheduler>(seed);

  core::discovery_run run(g, cfg, *sched);
  std::unique_ptr<telemetry::run_recorder> rec;
  if (!json_path.empty()) rec = std::make_unique<telemetry::run_recorder>(run);
  std::unique_ptr<telemetry::tracer> tr;
  if (!trace_path.empty()) {
    tr = std::make_unique<telemetry::tracer>(run.net());
    run.net().add_observer(tr.get());
  }
  run.wake_all();
  const auto r = run.run();
  if (!r.completed) {
    std::cerr << "run aborted: event cap exceeded\n";
    return 1;
  }

  const auto rep = core::check_final_state(run, g);
  std::cout << "nodes: " << g.node_count() << "  edges: " << g.edge_count()
            << "  variant: " << core::to_string(cfg.algo)
            << "  seed: " << seed << '\n';
  for (const node_id lid : run.leaders())
    std::cout << "leader " << lid << " knows "
              << run.at(lid).done().size() << " ids\n";
  std::cout << "messages: " << run.statistics().total_messages()
            << "  bits: " << run.statistics().total_bits()
            << "  time: " << run.net().now() << '\n';
  if (!quiet) {
    for (const auto& [type, st] : run.statistics().by_type())
      std::cout << "  " << type << ": " << st.count << " msgs, " << st.bits
                << " bits\n";
  }

  if (probe_from != invalid_node) {
    run.probe(probe_from);
    run.net().run_to_quiescence();
    const auto& c = run.at(probe_from).last_census();
    if (c.has_value())
      std::cout << "probe from " << probe_from << ": leader " << c->leader
                << ", census " << c->ids.size() << " ids\n";
  }

  if (rec) {
    telemetry::run_report report = rec->report(r);
    report.label = "discovery_cli";
    report.variant = core::to_string(cfg.algo);
    report.seed = seed;
    report.edges = g.edge_count();
    report.extra["spec_check_ok"] = rep.ok() ? 1.0 : 0.0;
    std::ofstream out(json_path);
    out << report.to_json() << '\n';
    if (!out) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "[json] " << json_path << '\n';
  }

  if (tr) {
    const auto cp = telemetry::extract_critical_path(tr->events());
    std::cout << "critical path: " << cp.length << " hops (sim time "
              << run.net().now() << ")\n";
    std::ofstream out(trace_path);
    telemetry::write_perfetto_trace(out, tr->events(), "discovery_cli");
    if (!out) {
      std::cerr << "failed to write " << trace_path << '\n';
      return 1;
    }
    std::cout << "[trace] " << trace_path << '\n';
    run.net().remove_observer(tr.get());
  }

  std::cout << "spec check: " << (rep.ok() ? "OK" : "FAILED") << '\n';
  if (!rep.ok()) std::cout << rep.to_string();
  return rep.ok() ? 0 : 1;
}
