// Execution timeline viewer: run a small discovery with the event log,
// transition recorder, and causal tracer armed, then print what happened,
// message by message — the fastest way to build intuition for the protocol
// (and to see Figures 1 and 3-6 in action).  The causal tracer also
// extracts the run's critical path: the chain of "this delivery caused
// these sends" that determined the completion time.
//
//   $ ./trace_timeline                   # 6-node demo
//   $ ./trace_timeline 12 42             # n nodes, schedule seed
//   $ ./trace_timeline 12 42 out.json    # also write a Perfetto trace
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/checker.h"
#include "core/runner.h"
#include "core/trace.h"
#include "graph/topology.h"
#include "sim/event_log.h"
#include "telemetry/critical_path.h"
#include "telemetry/perfetto.h"
#include "telemetry/tracer.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  const char* trace_path = argc > 3 ? argv[3] : nullptr;

  const auto g = graph::random_weakly_connected(n, n, seed);
  std::cout << "knowledge graph E0 (" << n << " nodes, " << g.edge_count()
            << " edges):\n";
  for (const node_id v : g.nodes()) {
    std::cout << "  " << v << " knows:";
    for (const node_id w : g.out(v)) std::cout << ' ' << w;
    std::cout << '\n';
  }

  sim::random_delay_scheduler sched(seed);
  core::transition_recorder transitions;
  core::config cfg;
  cfg.trace = &transitions;
  core::discovery_run run(g, cfg, sched);
  sim::event_log log;
  run.net().add_observer(&log);
  telemetry::tracer tr(run.net());
  run.net().add_observer(&tr);
  run.wake_all();
  run.run();

  std::cout << "\n--- timeline (" << log.size() << " events) ---\n";
  log.render(std::cout, 400);

  std::cout << "\n--- state transitions ---\n";
  for (const auto& [edge, count] : transitions.edges())
    std::cout << "  " << core::edge_to_string(edge) << " x" << count << '\n';

  const auto cp = telemetry::extract_critical_path(tr.events());
  std::cout << "\n--- critical path (" << cp.length << " hops, ends at t="
            << cp.makespan << ") ---\n";
  for (const auto& e : cp.chain) {
    std::cout << "  [" << e.lamport << "] t=" << e.at << ' ';
    if (e.what == telemetry::trace_event::kind::wake)
      std::cout << "wake    " << e.to;
    else
      std::cout << "deliver " << e.from << " -> " << e.to << ' ' << e.type;
    std::cout << '\n';
  }
  const auto fan = telemetry::compute_fanout(tr.events());
  std::cout << "fan-out: mean " << fan.mean_fanout << ", max "
            << fan.max_fanout << '\n';

  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    telemetry::write_perfetto_trace(out, tr.events(), "trace_timeline");
    std::cout << "[trace] " << trace_path
              << "  (load it in ui.perfetto.dev)\n";
  }

  const node_id leader = run.leaders().front();
  std::cout << "\nleader: " << leader << "  messages: "
            << run.statistics().total_messages() << "  virtual time: "
            << run.net().now() << '\n';

  const auto rep = core::check_final_state(run, g);
  std::cout << (rep.ok() ? "spec check: OK\n" : "spec check: FAILED\n");
  return rep.ok() ? 0 : 1;
}
