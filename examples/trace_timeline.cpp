// Execution timeline viewer: run a small discovery with the event log and
// transition recorder armed, then print what happened, message by message —
// the fastest way to build intuition for the protocol (and to see Figures
// 1 and 3-6 in action).
//
//   $ ./trace_timeline            # 6-node demo
//   $ ./trace_timeline 12 42      # n nodes, schedule seed
#include <cstdlib>
#include <iostream>

#include "core/checker.h"
#include "core/runner.h"
#include "core/trace.h"
#include "graph/topology.h"
#include "sim/event_log.h"

int main(int argc, char** argv) {
  using namespace asyncrd;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  const auto g = graph::random_weakly_connected(n, n, seed);
  std::cout << "knowledge graph E0 (" << n << " nodes, " << g.edge_count()
            << " edges):\n";
  for (const node_id v : g.nodes()) {
    std::cout << "  " << v << " knows:";
    for (const node_id w : g.out(v)) std::cout << ' ' << w;
    std::cout << '\n';
  }

  sim::random_delay_scheduler sched(seed);
  core::transition_recorder transitions;
  core::config cfg;
  cfg.trace = &transitions;
  core::discovery_run run(g, cfg, sched);
  sim::event_log log;
  run.net().set_observer(&log);
  run.wake_all();
  run.run();

  std::cout << "\n--- timeline (" << log.events().size() << " events) ---\n";
  log.render(std::cout, 400);

  std::cout << "\n--- state transitions ---\n";
  for (const auto& [edge, count] : transitions.edges())
    std::cout << "  " << core::edge_to_string(edge) << " x" << count << '\n';

  const node_id leader = run.leaders().front();
  std::cout << "\nleader: " << leader << "  messages: "
            << run.statistics().total_messages() << "  virtual time: "
            << run.net().now() << '\n';

  const auto rep = core::check_final_state(run, g);
  std::cout << (rep.ok() ? "spec check: OK\n" : "spec check: FAILED\n");
  return rep.ok() ? 0 : 1;
}
