// P2P overlay bootstrap — the paper's introductory motivation:
// "The problem arises in many peer-to-peer systems when peers across the
//  Internet initially know only a small number of peers.  ...  Once all
//  peers that are interested get to know of each other they may cooperate
//  on joint tasks (for example ... build an overlay network and form a
//  distributed hash table)."
//
// This example bootstraps a 200-peer swarm where each peer initially knows
// ~2 random peers, runs Bounded resource discovery, and then uses the
// leader's id census to build a sorted ring overlay (each peer's successor
// list), i.e. the first step of a Chord-style DHT.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/checker.h"
#include "core/runner.h"
#include "graph/topology.h"
#include "overlay/ring.h"

int main() {
  using namespace asyncrd;

  const std::size_t peers = 200;
  std::cout << "bootstrapping a " << peers << "-peer swarm, each knowing ~2"
            << " random peers...\n";
  const auto g = graph::random_weakly_connected(peers, peers, /*seed=*/7);

  sim::random_delay_scheduler sched(/*seed=*/99, 1, 128);  // jittery internet
  core::config cfg;
  cfg.algo = core::variant::bounded;  // swarm size is known to members
  core::discovery_run run(g, cfg, sched);
  run.wake_all();
  run.run();

  const auto rep = core::check_final_state(run, g);
  if (!rep.ok()) {
    std::cerr << "discovery failed:\n" << rep.to_string();
    return 1;
  }
  const node_id leader = run.leaders().front();
  std::cout << "discovery complete: leader " << leader << " census of "
            << run.at(leader).done().size() << " peers in "
            << run.statistics().total_messages() << " messages ("
            << run.statistics().total_bits() << " bits)\n";

  // --- Build the Chord-style overlay from the census (src/overlay): the
  // overlay is a deterministic function of the census, so every peer that
  // holds the roster computes identical routing state with zero further
  // coordination.
  const auto& census = run.at(leader).done();
  overlay::ring_overlay ring({census.begin(), census.end()});

  std::cout << "\nring overlay (peer -> successor, first 6 peers):\n";
  for (std::size_t i = 0; i < 6; ++i) {
    const node_id peer = ring.members()[i];
    const auto ft = ring.fingers_of(peer);
    std::cout << "  " << peer << " -> " << ft.successor << "   fingers[0..5]:";
    for (std::size_t k = 0; k < 6; ++k) std::cout << ' ' << ft.fingers[k];
    std::cout << '\n';
  }

  // --- Route some DHT lookups over the overlay.
  rng lookup_rng(7);
  std::size_t total_hops = 0;
  const int lookups = 200;
  for (int i = 0; i < lookups; ++i) {
    const auto key = static_cast<overlay::key_t>(lookup_rng.next());
    const node_id from = ring.members()[static_cast<std::size_t>(
        lookup_rng.below(ring.size()))];
    const auto res = ring.lookup(from, key);
    total_hops += res.hops();
  }
  std::cout << "\n" << lookups << " random lookups routed, avg "
            << static_cast<double>(total_hops) / lookups
            << " hops (log2 n = " << 7.64 << " for n=200)\n";

  std::cout << "ring covers " << ring.size() << "/" << peers << " peers — "
            << (ring.size() == peers ? "OK" : "MISSING PEERS") << '\n';
  return ring.size() == peers ? 0 : 1;
}
