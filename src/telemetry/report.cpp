#include "telemetry/report.h"

#include "telemetry/json.h"

namespace asyncrd::telemetry {

void run_report::write_json(json_writer& w) const {
  w.begin_object();
  // Schema version first: validators reject unknown versions before
  // looking at anything else (json_check --report does).
  w.kv("report_version", report_version);
  w.kv("label", label);
  w.kv("variant", variant);
  w.kv("seed", seed);
  w.kv("nodes", nodes);
  w.kv("edges", edges);
  w.kv("completed", completed);
  w.kv("leaders", leaders);
  w.kv("events_processed", events_processed);
  w.kv("completion_time", completion_time);
  w.kv("wall_ms", wall_ms);
  w.kv("events_per_sec", events_per_sec);
  w.kv("total_messages", total_messages);
  w.kv("total_bits", total_bits);
  w.kv("id_bits", id_bits);

  w.key("messages_by_type").begin_object();
  for (const auto& [type, st] : messages_by_type) {
    w.key(type).begin_object();
    w.kv("count", st.count);
    w.kv("bits", st.bits);
    w.end_object();
  }
  w.end_object();

  if (wire.enabled) {
    w.key("wire").begin_object();
    w.kv("enabled", wire.enabled);
    w.kv("bytes_sent", wire.bytes_sent);
    w.kv("frames", wire.frames);
    w.kv("decode_errors", wire.decode_errors);
    w.key("by_type").begin_object();
    for (const auto& [type, tb] : wire.by_type) {
      w.key(type).begin_object();
      w.kv("count", tb.count);
      w.kv("bytes", tb.bytes);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }

  w.key("load");
  load.write_json(w);
  w.kv("max_load", max_load);
  if (hottest == invalid_node)
    w.key("hottest_node").null();
  else
    w.kv("hottest_node", static_cast<std::uint64_t>(hottest));

  w.key("chaos").begin_object();
  w.kv("enabled", chaos.enabled);
  w.kv("transmissions", chaos.transmissions);
  w.kv("drops", chaos.drops);
  w.kv("outage_drops", chaos.outage_drops);
  w.kv("duplicates", chaos.duplicates);
  w.kv("reorder_delay", chaos.reorder_delay);
  w.kv("data_sent", chaos.data_sent);
  w.kv("retransmits", chaos.retransmits);
  w.kv("acks_sent", chaos.acks_sent);
  w.kv("dup_suppressed", chaos.dup_suppressed);
  w.kv("timer_fires", chaos.timer_fires);
  w.kv("rto_backoffs", chaos.rto_backoffs);
  w.kv("max_rto", chaos.max_rto);
  w.end_object();

  w.key("series").begin_object();
  w.kv("interval", series.interval);
  w.kv("stride", series.stride);
  w.kv("recorded", series.recorded);
  w.key("t").begin_array();
  for (const std::uint64_t t : series.t) w.value(t);
  w.end_array();
  w.key("cols").begin_object();
  for (const auto& [name, values] : series.cols) {
    w.key(name).begin_array();
    for (const std::uint64_t v : values) w.value(v);
    w.end_array();
  }
  w.end_object();
  w.end_object();

  w.key("watchdog").begin_object();
  w.kv("armed", watchdog.armed);
  w.kv("window", watchdog.window);
  w.kv("probe_interval", watchdog.probe_interval);
  w.kv("abort_on_trip", watchdog.abort_on_trip);
  w.key("trips").begin_array();
  for (const watchdog_trip& t : watchdog.trips) {
    w.begin_object();
    w.kv("at", t.at);
    w.kv("last_progress_at", t.last_progress_at);
    w.kv("in_flight", t.in_flight);
    w.kv("arq_outstanding", t.arq_outstanding);
    w.kv("app_deliveries", t.app_deliveries);
    w.kv("merges", t.merges);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("profile").begin_object();
  w.kv("armed", profile.armed);
  w.kv("ticks_per_ns", profile.ticks_per_ns);
  w.kv("loop_ticks", profile.loop_ticks);
  w.kv("loop_ns", profile.loop_ns);
  w.kv("events", profile.events);
  w.kv("sampled_events", profile.sampled_events);
  w.kv("sample_every", profile.sample_every);
  w.kv("attributed_fraction", profile.attributed_fraction);
  const auto write_entries = [&w](const char* key, const auto& entries) {
    w.key(key).begin_array();
    for (const auto& e : entries) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("count", e.count);
      w.kv("ticks", e.ticks);
      w.kv("ns", e.ns);
      w.end_object();
    }
    w.end_array();
  };
  write_entries("phases", profile.phases);
  write_entries("tags", profile.tags);
  w.end_object();

  w.key("transitions").begin_object();
  for (const auto& [edge, count] : transitions) w.kv(edge, count);
  w.end_object();

  w.key("extra").begin_object();
  for (const auto& [k, v] : extra) w.kv(k, v);
  w.end_object();

  w.end_object();
}

std::string run_report::to_json() const {
  json_writer w;
  write_json(w);
  return w.take();
}

run_report collect_run_report(const core::discovery_run& run,
                              const sim::run_result& result,
                              const sim::load_observer* load,
                              const core::transition_recorder* transitions) {
  run_report rep;
  rep.variant = std::string(core::to_string(run.cfg().algo));
  rep.nodes = run.net().node_count();
  rep.completed = result.completed;
  rep.leaders = run.leaders().size();
  rep.events_processed = result.events_processed;
  rep.completion_time = run.net().now();
  const sim::run_timing& timing = run.net().timing();
  rep.wall_ms = timing.wall_ms();
  rep.events_per_sec = timing.events_per_sec();

  const sim::stats& st = run.statistics();
  rep.total_messages = st.total_messages();
  rep.total_bits = st.total_bits();
  rep.id_bits = st.id_bits();
  for (const auto& [type, ts] : st.by_type()) rep.messages_by_type[type] = ts;

  if (load != nullptr) {
    // all_loads: dense + spilled ids in one view, and no materialized
    // max-id-sized vector when a sparse island pushed ids far out.
    for (const auto& [id, l] : load->all_loads()) rep.load.record(l);
    rep.max_load = load->max_load();
    rep.hottest = load->hottest();
  }
  if (transitions != nullptr)
    rep.transitions = transitions->edge_multiplicities();

  if (run.net().wire_enabled()) {
    rep.wire.enabled = true;
    rep.wire.bytes_sent = run.net().wire_bytes_sent();
    rep.wire.frames = run.net().wire_frames();
    for (const sim::network::wire_slot& slot : run.net().wire_by_tag()) {
      if (slot.frames == 0) continue;
      auto& tb = rep.wire.by_type[std::string(slot.name)];
      tb.count += slot.frames;
      tb.bytes += slot.bytes;
    }
  }

  rep.chaos.enabled = run.net().faults_enabled();
  const sim::fault_stats& fs = run.net().faults();
  rep.chaos.transmissions = fs.transmissions;
  rep.chaos.drops = fs.drops;
  rep.chaos.outage_drops = fs.outage_drops;
  rep.chaos.duplicates = fs.duplicates;
  rep.chaos.reorder_delay = fs.reorder_delay;
  if (const sim::reliable_link_layer* rl = run.reliable_links()) {
    const sim::reliable_link_stats rs = rl->stats();
    rep.chaos.data_sent = rs.data_sent;
    rep.chaos.retransmits = rs.retransmits;
    rep.chaos.acks_sent = rs.acks_sent;
    rep.chaos.dup_suppressed = rs.dup_suppressed;
    rep.chaos.timer_fires = rs.timer_fires;
    rep.chaos.rto_backoffs = rs.rto_backoffs;
    rep.chaos.max_rto = rs.max_rto;
  }
  return rep;
}

run_recorder::metrics_observer::metrics_observer(registry& reg)
    : sends_(&reg.get_counter("net.sends")),
      delivers_(&reg.get_counter("net.delivers")),
      wakes_(&reg.get_counter("net.wakes")),
      payload_ids_(&reg.get_histogram("net.payload_ids")) {}

void run_recorder::metrics_observer::on_send(sim::sim_time, node_id, node_id,
                                             const sim::message& m) {
  sends_->inc();
  payload_ids_->record(m.id_fields());
}

void run_recorder::metrics_observer::on_deliver(sim::sim_time, node_id,
                                                node_id, const sim::message&) {
  delivers_->inc();
}

void run_recorder::metrics_observer::on_wake(sim::sim_time, node_id) {
  wakes_->inc();
}

run_recorder::run_recorder(core::discovery_run& run, recorder_options opts)
    : run_(&run), metrics_obs_(metrics_) {
  if (opts.wire) run_->enable_wire();
  load_.reserve_dense(run.net().node_count());
  run_->net().add_observer(&load_);
  run_->net().add_observer(&metrics_obs_);
  run_->set_trace(&transitions_);
  if (opts.series_interval > 0) {
    series_sampler_config scfg;
    scfg.interval = opts.series_interval;
    scfg.capacity = opts.series_capacity;
    sampler_ = std::make_unique<series_sampler>(run, scfg);
    run_->net().add_health_probe(sampler_.get(), opts.series_interval);
  }
  if (opts.watchdog.window > 0) {
    watchdog_ = std::make_unique<stall_watchdog>(run, opts.watchdog);
    run_->net().add_health_probe(watchdog_.get(),
                                 watchdog_->config().probe_interval);
  }
  if (opts.flight_capacity > 0) {
    flight_ = std::make_unique<sim::flight_recorder>(opts.flight_capacity);
    run_->net().set_flight_recorder(flight_.get());
  }
  if (opts.profile) {
    profiler_ = std::make_unique<sim::cost_profiler>();
    run_->net().set_profiler(profiler_.get());
    // Warm the tick calibration now, outside the timed event loop, so the
    // series sampler's mid-run reads hit the cached value.
    (void)sim::profile_ticks_per_ns();
  }
}

run_recorder::~run_recorder() {
  if (profiler_ != nullptr && run_->net().profiler() == profiler_.get())
    run_->net().set_profiler(nullptr);
  if (flight_ != nullptr && run_->net().flight() == flight_.get())
    run_->net().set_flight_recorder(nullptr);
  if (watchdog_ != nullptr) run_->net().remove_health_probe(watchdog_.get());
  if (sampler_ != nullptr) run_->net().remove_health_probe(sampler_.get());
  run_->net().remove_observer(&metrics_obs_);
  run_->net().remove_observer(&load_);
  run_->set_trace(nullptr);
}

run_report run_recorder::report(const sim::run_result& result) const {
  run_report rep = collect_run_report(*run_, result, &load_, &transitions_);
  if (sampler_ != nullptr) {
    rep.series.interval = sampler_->interval();
    const series_frame& f = sampler_->frame();
    rep.series.stride = f.stride();
    rep.series.recorded = f.recorded();
    rep.series.t = f.times();
    for (std::uint32_t i = 0; i < f.columns(); ++i)
      rep.series.cols.emplace_back(f.column_name(i), f.column(i));
  }
  if (watchdog_ != nullptr) {
    rep.watchdog.armed = true;
    rep.watchdog.window = watchdog_->config().window;
    rep.watchdog.probe_interval = watchdog_->config().probe_interval;
    rep.watchdog.abort_on_trip = watchdog_->config().abort_on_trip;
    rep.watchdog.trips = watchdog_->trips();
  }
  if (profiler_ != nullptr) {
    const sim::cost_profiler& prof = *profiler_;
    const double tpn = sim::profile_ticks_per_ns();
    rep.profile.armed = true;
    rep.profile.ticks_per_ns = tpn;
    rep.profile.loop_ticks = prof.loop_ticks();
    rep.profile.loop_ns = static_cast<double>(prof.loop_ticks()) / tpn;
    rep.profile.events = prof.events();
    rep.profile.sampled_events = prof.sampled_events();
    rep.profile.sample_every = prof.sample_every();
    if (prof.sampled_span_ticks() > 0)
      rep.profile.attributed_fraction =
          static_cast<double>(prof.attributed_ticks()) /
          static_cast<double>(prof.sampled_span_ticks());
    const double scale = prof.sample_scale();
    for (std::size_t i = 0; i < sim::cost_profiler::phase_count; ++i) {
      const auto& b = prof.phases()[i];
      rep.profile.phases.push_back(
          {sim::profile_phase_name(static_cast<sim::cost_profiler::phase>(i)),
           b.count, b.ticks, static_cast<double>(b.ticks) / tpn * scale});
    }
    for (std::size_t tag = 0; tag < sim::cost_profiler::tag_count; ++tag) {
      const auto& b = prof.tags()[tag];
      if (b.count == 0) continue;
      rep.profile.tags.push_back(
          {dispatch_tag_name(static_cast<std::uint8_t>(tag)), b.count,
           b.ticks, static_cast<double>(b.ticks) / tpn * scale});
    }
  }
  return rep;
}

}  // namespace asyncrd::telemetry
