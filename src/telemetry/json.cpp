#include "telemetry/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace asyncrd::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  return out;
}

void json_writer::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (stack_.empty()) return;
  if (stack_.back().second) out_ += ',';
  stack_.back().second = true;
}

json_writer& json_writer::begin_object() {
  comma();
  out_ += '{';
  stack_.emplace_back('o', false);
  return *this;
}

json_writer& json_writer::end_object() {
  assert(!stack_.empty() && stack_.back().first == 'o');
  stack_.pop_back();
  out_ += '}';
  return *this;
}

json_writer& json_writer::begin_array() {
  comma();
  out_ += '[';
  stack_.emplace_back('a', false);
  return *this;
}

json_writer& json_writer::end_array() {
  assert(!stack_.empty() && stack_.back().first == 'a');
  stack_.pop_back();
  out_ += ']';
  return *this;
}

json_writer& json_writer::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().first == 'o' && !after_key_);
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

json_writer& json_writer::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

json_writer& json_writer::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

json_writer& json_writer::value(double v) {
  if (!std::isfinite(v)) return null();
  comma();
  // Integral values inside the exactly-representable range serialize as
  // plain integers.  The shortest-round-trip loop below would otherwise
  // accept scientific notation for them (1000.0 -> "1e+03"), which JSON
  // consumers that expect counts (n, |E0|, bench params) choke on.
  constexpr double exact_max = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && v >= -exact_max && v <= exact_max) {
    out_ += std::to_string(static_cast<std::int64_t>(v));
    return *this;
  }
  // Shortest representation that round-trips (%.17g always does; most
  // telemetry values need far fewer digits).
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  return *this;
}

json_writer& json_writer::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string json_writer::take() {
  assert(stack_.empty());
  std::string out = std::move(out_);
  out_.clear();
  stack_.clear();
  after_key_ = false;
  return out;
}

const json_value* json_value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  std::optional<json_value> parse(std::string* error) {
    skip_ws();
    json_value v;
    if (!parse_value(v)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters after document";
      fill_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill_error(std::string* error) const {
    if (error != nullptr)
      *error = err_ + " (at byte " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    err_ = msg;
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_value(json_value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    out.offset = pos_;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out.v = std::move(s);
        return true;
      }
      case 't': out.v = true; return literal("true");
      case 'f': out.v = false; return literal("false");
      case 'n': out.v = nullptr; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(json_value& out) {
    ++pos_;  // '{'
    json_value::object obj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.v = std::move(obj);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' in object");
      ++pos_;
      skip_ws();
      json_value v;
      if (!parse_value(v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out.v = std::move(obj);
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(json_value& out) {
    ++pos_;  // '['
    json_value::array arr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.v = std::move(arr);
      return true;
    }
    for (;;) {
      skip_ws();
      json_value v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out.v = std::move(arr);
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  /// Appends a code point as UTF-8.
  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    for (;;) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              std::uint32_t lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(json_value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("malformed number");
    out.v = d;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::optional<json_value> json_parse(std::string_view text,
                                     std::string* error) {
  return parser(text).parse(error);
}

}  // namespace asyncrd::telemetry
