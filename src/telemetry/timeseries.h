// Time-series progress snapshots: bounded-memory virtual-time series of the
// simulator's health gauges.
//
// A series_frame is a fixed-capacity table — one shared time column plus
// named uint64 value columns — that downsamples itself when full: the frame
// keeps every even-indexed retained sample (so the first sample always
// survives), doubles its stride, and goes on, giving bounded memory however
// long the run.  The most recent sample is additionally kept in a pending
// slot, so the serialized series always ends at the last thing that
// happened.  Columns hold *cumulative* counters where applicable — a
// cumulative value at a retained sample is exact whatever got dropped
// between samples, so downsampling never corrupts it; readers derive rates
// by differencing neighbours.
//
// A series_sampler is the sim::health_probe that fills a frame from a live
// discovery_run every `interval` of virtual time: components remaining
// (merge accounting), in-flight messages, event-queue depth, app
// deliveries, per-type cumulative send counts (sim::stats), the ARQ
// retransmit backlog / outstanding ranges when a reliable_link_layer is
// armed, and the pointer-chain length hi-water mark (a bounded rotating
// walk of next() pointers).  telemetry::run_recorder arms one; the result
// serializes as the run report's "series" object and exports as Perfetto
// counter tracks (telemetry/perfetto.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/runner.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace asyncrd::telemetry {

class json_writer;

using sim_time = sim::sim_time;

class series_frame {
 public:
  /// `capacity` is the maximum retained samples per column; rounded up to
  /// an even number >= 4 so halving always preserves the first sample.
  explicit series_frame(std::size_t capacity = 512);

  /// Registers a column (idempotent per name) and returns its index.  A
  /// column added after sampling started is backfilled with zeros — message
  /// types appear lazily, mid-run.
  std::uint32_t add_column(std::string_view name);

  std::size_t columns() const noexcept { return cols_.size(); }
  const std::string& column_name(std::uint32_t i) const {
    return cols_[i].name;
  }

  /// Records one sample row: `values[i]` belongs to column i (n may be
  /// smaller than columns(); missing tail values read as 0).  `t` must be
  /// strictly greater than the previous sample's time.
  void record(sim_time t, const std::uint64_t* values, std::size_t n);

  /// Retained samples (excluding the pending last slot).
  std::size_t size() const noexcept { return times_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Current downsampling stride: every stride-th sample is retained.
  std::uint64_t stride() const noexcept { return stride_; }
  /// Total samples ever recorded (before downsampling).
  std::uint64_t recorded() const noexcept { return tick_; }

  /// Sample times / column values, with the pending last sample appended
  /// when it was not itself retained — what gets serialized.
  std::vector<sim_time> times() const;
  std::vector<std::uint64_t> column(std::uint32_t i) const;

  /// {"stride": S, "recorded": N, "t": [...], "cols": {name: [...], ...}}
  void write_json(json_writer& w) const;

 private:
  struct col {
    std::string name;
    std::vector<std::uint64_t> values;
  };

  /// Keeps even-indexed samples, doubling the stride.
  void halve();

  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t tick_ = 0;  ///< samples recorded (retained or not)
  std::vector<sim_time> times_;
  std::vector<col> cols_;
  /// Most recent sample, kept even when the stride skipped it.
  bool have_pending_ = false;
  sim_time pending_t_ = 0;
  std::vector<std::uint64_t> pending_;
};

struct series_sampler_config {
  sim_time interval = 1024;     ///< virtual time between samples
  std::size_t capacity = 512;   ///< retained samples before halving
  /// Nodes whose next-pointer chain is walked per sample (rotating cursor),
  /// and the per-walk hop cap.  0 disables chain sampling.
  std::size_t chain_nodes_per_sample = 32;
  std::size_t chain_max_hops = 64;
};

class series_sampler final : public sim::health_probe {
 public:
  series_sampler(core::discovery_run& run, series_sampler_config cfg = {});

  sim_time on_probe(sim::network& net) override;

  const series_frame& frame() const noexcept { return frame_; }
  sim_time interval() const noexcept { return cfg_.interval; }
  std::uint64_t chain_hi_water() const noexcept { return chain_hi_water_; }
  std::uint64_t samples() const noexcept { return frame_.recorded(); }

  /// The run report's "series" object:
  /// {"interval": I, "stride": S, "recorded": N, "t": [...], "cols": {...}}
  void write_json(json_writer& w) const;

 private:
  core::discovery_run* run_;
  series_sampler_config cfg_;
  series_frame frame_;
  // Fixed columns registered up front; per-type send columns appear lazily.
  std::uint32_t col_components_;
  std::uint32_t col_in_flight_;
  std::uint32_t col_queue_depth_;
  std::uint32_t col_app_deliveries_;
  std::uint32_t col_merges_;
  std::uint32_t col_chain_hi_;
  std::uint32_t col_arq_outstanding_ = 0;
  std::uint32_t col_arq_backlogged_ = 0;
  std::uint32_t col_arq_retransmits_ = 0;
  bool have_arq_cols_ = false;
  // Cost-profiler columns (cumulative attributed nanoseconds per phase,
  // plus "prof.handlers" for the dispatch-tag total); appear lazily when
  // the network has a profiler armed, like the ARQ columns.
  std::uint32_t col_prof_[sim::cost_profiler::phase_count + 1] = {};
  bool have_prof_cols_ = false;
  std::vector<std::uint64_t> row_;
  std::size_t chain_cursor_ = 0;
  std::uint64_t chain_hi_water_ = 0;
  std::vector<node_id> ids_;  ///< cached node ids for the chain walk
};

}  // namespace asyncrd::telemetry
