#include "telemetry/health.h"

#include <ostream>

#include "core/messages.h"
#include "sim/reliable_link.h"
#include "telemetry/json.h"

namespace asyncrd::telemetry {

stall_watchdog::stall_watchdog(core::discovery_run& run, watchdog_config cfg)
    : run_(&run), cfg_(cfg) {
  if (cfg_.window == 0) cfg_.window = 1;
  if (cfg_.probe_interval == 0)
    cfg_.probe_interval = cfg_.window / 4 == 0 ? 1 : cfg_.window / 4;
}

sim::sim_time stall_watchdog::on_probe(sim::network& net) {
  // Progress = any app-level delivery or any component merge since the last
  // probe.  Transport-level churn (retransmits, acks) deliberately does not
  // count: a phase-locked retransmit storm is busy without progressing.
  const std::uint64_t signal = net.app_deliveries() + run_->merges();
  if (signal != last_signal_) {
    last_signal_ = signal;
    last_progress_at_ = net.now();
  }
  // Pending work must include the ARQ backlog: an outage window can eat
  // every retry, leaving the wire empty while envelopes are still owed
  // (the PR 5 livelock had in_flight == 0 for most of each period).
  const sim::reliable_link_layer* rl = run_->reliable_links();
  const std::uint64_t outstanding = rl != nullptr ? rl->outstanding() : 0;
  const bool pending = net.in_flight() > 0 || outstanding > 0;
  if (pending && net.now() - last_progress_at_ >= cfg_.window) {
    if (trips_.size() < cfg_.max_trips)
      trips_.push_back({net.now(), last_progress_at_, net.in_flight(),
                        outstanding, net.app_deliveries(), run_->merges()});
    // Re-arm: a still-stuck run trips again one window from now, not on
    // every subsequent probe.
    last_progress_at_ = net.now();
    if (cfg_.abort_on_trip) net.request_stop();
  }
  return net.now() + cfg_.probe_interval;
}

void stall_watchdog::write_json(json_writer& w) const {
  w.begin_object();
  w.kv("armed", true);
  w.kv("window", cfg_.window);
  w.kv("probe_interval", cfg_.probe_interval);
  w.kv("abort_on_trip", cfg_.abort_on_trip);
  w.key("trips").begin_array();
  for (const watchdog_trip& t : trips_) {
    w.begin_object();
    w.kv("at", t.at);
    w.kv("last_progress_at", t.last_progress_at);
    w.kv("in_flight", t.in_flight);
    w.kv("arq_outstanding", t.arq_outstanding);
    w.kv("app_deliveries", t.app_deliveries);
    w.kv("merges", t.merges);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string dispatch_tag_name(std::uint8_t tag) {
  using core::msg_kind;
  // The reliable-link tags live above 0x80, so name them before treating
  // the high bit as the wire-frame marker.
  if (tag == sim::rl_data_tag) return "rl.data";
  if (tag == sim::rl_ack_tag) return "rl.ack";
  if ((tag & sim::wire::wire_bit) != 0)
    return "wire." + dispatch_tag_name(
                         tag & static_cast<std::uint8_t>(~sim::wire::wire_bit));
  switch (static_cast<msg_kind>(tag)) {
    case msg_kind::query: return "query";
    case msg_kind::query_reply: return "query_reply";
    case msg_kind::search: return "search";
    case msg_kind::release: return "release";
    case msg_kind::merge_accept: return "merge_accept";
    case msg_kind::merge_fail: return "merge_fail";
    case msg_kind::info: return "info";
    case msg_kind::conquer: return "conquer";
    case msg_kind::member_reply: return "member_reply";
    case msg_kind::probe: return "probe";
    case msg_kind::probe_reply: return "probe_reply";
    case msg_kind::report: return "report";
    case msg_kind::report_ack: return "report_ack";
    default: break;
  }
  return "tag:" + std::to_string(tag);
}

void write_flight_dump(json_writer& w, const sim::flight_recorder& fr) {
  w.begin_object();
  w.kv("tool", "asyncrd");
  w.kv("kind", "flight");
  w.kv("capacity", static_cast<std::uint64_t>(fr.capacity()));
  w.kv("recorded", static_cast<std::uint64_t>(fr.size()));
  w.kv("dropped", fr.dropped());
  w.key("events").begin_array();
  fr.visit([&w](const sim::flight_entry& e) {
    w.begin_object();
    w.kv("at", e.at);
    switch (e.what) {
      case sim::flight_entry::kind::wake:
        w.kv("kind", "wake");
        w.kv("node", static_cast<std::uint64_t>(e.a));
        break;
      case sim::flight_entry::kind::deliver:
        w.kv("kind", "deliver");
        w.kv("from", static_cast<std::uint64_t>(e.a));
        w.kv("to", static_cast<std::uint64_t>(e.b));
        w.kv("tag", static_cast<std::uint64_t>(e.tag));
        w.kv("type", dispatch_tag_name(e.tag));
        break;
      case sim::flight_entry::kind::timer:
        w.kv("kind", "timer");
        w.kv("key", e.cause);
        break;
    }
    // Activation id + genealogy cause, in the causal tracer's id space
    // (absent key == none, matching the Perfetto export convention).
    if (e.event_id != sim::flight_entry::none) w.kv("id", e.event_id);
    if (e.what != sim::flight_entry::kind::timer &&
        e.cause != sim::flight_entry::none)
      w.kv("cause", e.cause);
    w.end_object();
  });
  w.end_array();
  w.end_object();
}

std::string flight_dump_json(const sim::flight_recorder& fr) {
  json_writer w;
  write_flight_dump(w, fr);
  return w.take();
}

void write_flight_dump(std::ostream& os, const sim::flight_recorder& fr) {
  os << flight_dump_json(fr) << '\n';
}

}  // namespace asyncrd::telemetry
