// Chrome trace-event / Perfetto JSON export of a traced run.
//
// The emitted file loads directly in https://ui.perfetto.dev (or
// chrome://tracing): one thread track per node, one 'X' slice per
// activation (wakes and deliveries, one sim-time unit wide), and one flow
// arrow ('s'/'f' pair, bound by the delivery's activation id) per delivered
// message from the sending activation to the delivery — so the causal
// genealogy is visible as arrows and the critical path reads off the UI.
//
// Every slice carries the full causal record in its "args" (id, cause,
// release, lamport, sent_at, bits, sends), which makes the file
// self-contained: tools/trace_analyze reconstructs the genealogy from the
// JSON alone.  Schema details in docs/OBSERVABILITY.md.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/tracer.h"

namespace asyncrd::telemetry {

class series_sampler;

/// One counter track: a named series of (ts, value) counter events ('C'
/// phase) rendered by the Perfetto UI as a numeric track on the same
/// timeline as the per-node slice tracks — this is how the runtime health
/// series (in-flight, components remaining, ARQ backlog, ...) lines up
/// visually with the flow arrows.
struct counter_series {
  std::string name;
  std::vector<std::uint64_t> t;       ///< sample times (sim time)
  std::vector<std::uint64_t> values;  ///< same length as t
};

/// Serializes trace events as a Chrome trace-event JSON document
/// ({"traceEvents": [...], ...}).  `label` goes into otherData.
std::string perfetto_trace_json(const std::vector<trace_event>& events,
                                std::string_view label);

/// Same, with counter tracks appended after the slices and flows.  An
/// empty `counters` produces byte-identical output to the two-argument
/// overload (the golden trace depends on that).
std::string perfetto_trace_json(const std::vector<trace_event>& events,
                                std::string_view label,
                                const std::vector<counter_series>& counters);

/// Same, streamed to `os`.
void write_perfetto_trace(std::ostream& os,
                          const std::vector<trace_event>& events,
                          std::string_view label);
void write_perfetto_trace(std::ostream& os,
                          const std::vector<trace_event>& events,
                          std::string_view label,
                          const std::vector<counter_series>& counters);

/// Counter tracks from an armed series sampler (telemetry/timeseries.h):
/// gauge columns export as-is; cumulative "sent.*", "prof.*", and
/// "arq.retransmits" columns export as per-sample deltas so outage dips,
/// per-phase cost spikes, and retransmit storms are visible directly on
/// the track.
std::vector<counter_series> counter_tracks(const series_sampler& sampler);

}  // namespace asyncrd::telemetry
