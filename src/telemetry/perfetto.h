// Chrome trace-event / Perfetto JSON export of a traced run.
//
// The emitted file loads directly in https://ui.perfetto.dev (or
// chrome://tracing): one thread track per node, one 'X' slice per
// activation (wakes and deliveries, one sim-time unit wide), and one flow
// arrow ('s'/'f' pair, bound by the delivery's activation id) per delivered
// message from the sending activation to the delivery — so the causal
// genealogy is visible as arrows and the critical path reads off the UI.
//
// Every slice carries the full causal record in its "args" (id, cause,
// release, lamport, sent_at, bits, sends), which makes the file
// self-contained: tools/trace_analyze reconstructs the genealogy from the
// JSON alone.  Schema details in docs/OBSERVABILITY.md.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/tracer.h"

namespace asyncrd::telemetry {

/// Serializes trace events as a Chrome trace-event JSON document
/// ({"traceEvents": [...], ...}).  `label` goes into otherData.
std::string perfetto_trace_json(const std::vector<trace_event>& events,
                                std::string_view label);

/// Same, streamed to `os`.
void write_perfetto_trace(std::ostream& os,
                          const std::vector<trace_event>& events,
                          std::string_view label);

}  // namespace asyncrd::telemetry
