#include "telemetry/parallelism.h"

#include <algorithm>
#include <unordered_map>

namespace asyncrd::telemetry {

parallelism_profile compute_parallelism(const std::vector<trace_event>& events,
                                        sim::sim_time bucket) {
  parallelism_profile p;
  if (bucket == 0) bucket = 1;
  p.bucket = bucket;
  if (events.empty()) return p;

  // Width: activations per virtual-time bucket.  Buckets are sparse over
  // the makespan (an idle window contributes no sample — the profile
  // measures concurrency *while active*, which is what a work-stealing
  // scheduler would see).
  std::unordered_map<std::uint64_t, std::uint64_t> per_bucket;
  per_bucket.reserve(events.size());
  // Lookahead: minimum observed delay per ordered link.
  std::unordered_map<std::uint64_t, std::uint64_t> link_min;

  for (const trace_event& e : events) {
    p.activations += 1;
    p.critical_path_len = std::max(p.critical_path_len, e.lamport);
    p.makespan = std::max(p.makespan, e.at);
    per_bucket[e.at / bucket] += 1;
    if (e.what == trace_event::kind::deliver && e.from != invalid_node &&
        e.at >= e.sent_at) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e.from) << 32) |
          static_cast<std::uint64_t>(e.to);
      const std::uint64_t delay = e.at - e.sent_at;
      const auto [it, fresh] = link_min.try_emplace(key, delay);
      if (!fresh) it->second = std::min(it->second, delay);
    }
  }

  p.buckets_occupied = per_bucket.size();
  for (const auto& [b, n] : per_bucket) {
    p.width.record(n);
    p.max_width = std::max(p.max_width, n);
  }
  p.mean_width = p.buckets_occupied == 0
                     ? 0.0
                     : static_cast<double>(p.activations) /
                           static_cast<double>(p.buckets_occupied);
  p.work_cp_ratio = p.critical_path_len == 0
                        ? 0.0
                        : static_cast<double>(p.activations) /
                              static_cast<double>(p.critical_path_len);

  p.links = link_min.size();
  if (!link_min.empty()) {
    std::uint64_t lo = UINT64_MAX, hi = 0, sum = 0;
    for (const auto& [key, d] : link_min) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
      sum += d;
    }
    p.lookahead_min = lo;
    p.lookahead_max = hi;
    p.lookahead_mean =
        static_cast<double>(sum) / static_cast<double>(link_min.size());
  }
  return p;
}

}  // namespace asyncrd::telemetry
