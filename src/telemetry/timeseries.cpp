#include "telemetry/timeseries.h"

#include <algorithm>
#include <cassert>

#include "telemetry/json.h"

namespace asyncrd::telemetry {

series_frame::series_frame(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity + (capacity & 1), 4)) {}

std::uint32_t series_frame::add_column(std::string_view name) {
  for (std::uint32_t i = 0; i < cols_.size(); ++i)
    if (cols_[i].name == name) return i;
  cols_.push_back({std::string(name),
                   std::vector<std::uint64_t>(times_.size(), 0)});
  if (have_pending_) pending_.push_back(0);
  return static_cast<std::uint32_t>(cols_.size() - 1);
}

void series_frame::halve() {
  // Keep even indices: positions 0, 2, 4, ... hold ticks 0, 2s, 4s, ... —
  // exactly the multiples of the doubled stride, and position 0 (the very
  // first sample) always survives.
  const std::size_t kept = (times_.size() + 1) / 2;
  for (std::size_t i = 0; i < kept; ++i) times_[i] = times_[2 * i];
  times_.resize(kept);
  for (col& c : cols_) {
    for (std::size_t i = 0; i < kept; ++i) c.values[i] = c.values[2 * i];
    c.values.resize(kept);
  }
  stride_ *= 2;
}

void series_frame::record(sim_time t, const std::uint64_t* values,
                          std::size_t n) {
  assert((times_.empty() || t > times_.back()) &&
         (!have_pending_ || t > pending_t_) && "sample times must increase");
  assert(n <= cols_.size());
  const std::uint64_t k = tick_++;
  pending_t_ = t;
  pending_.assign(cols_.size(), 0);
  std::copy(values, values + std::min(n, pending_.size()), pending_.begin());
  if (k % stride_ != 0) {
    have_pending_ = true;
    return;
  }
  if (times_.size() == capacity_) halve();
  // After halving, retained ticks are the multiples of the doubled stride;
  // k = capacity * old stride is one of them (capacity is even).
  if (k % stride_ != 0) {
    have_pending_ = true;
    return;
  }
  times_.push_back(t);
  for (std::size_t i = 0; i < cols_.size(); ++i)
    cols_[i].values.push_back(pending_[i]);
  have_pending_ = false;
}

std::vector<sim_time> series_frame::times() const {
  std::vector<sim_time> out = times_;
  if (have_pending_) out.push_back(pending_t_);
  return out;
}

std::vector<std::uint64_t> series_frame::column(std::uint32_t i) const {
  std::vector<std::uint64_t> out = cols_[i].values;
  if (have_pending_) out.push_back(pending_[i]);
  return out;
}

void series_frame::write_json(json_writer& w) const {
  w.begin_object();
  w.kv("stride", stride_);
  w.kv("recorded", tick_);
  w.key("t").begin_array();
  for (const sim_time t : times_) w.value(t);
  if (have_pending_) w.value(pending_t_);
  w.end_array();
  w.key("cols").begin_object();
  for (std::uint32_t i = 0; i < cols_.size(); ++i) {
    w.key(cols_[i].name).begin_array();
    for (const std::uint64_t v : cols_[i].values) w.value(v);
    if (have_pending_) w.value(pending_[i]);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

series_sampler::series_sampler(core::discovery_run& run,
                               series_sampler_config cfg)
    : run_(&run), cfg_(cfg), frame_(cfg.capacity) {
  if (cfg_.interval == 0) cfg_.interval = 1;
  col_components_ = frame_.add_column("components");
  col_in_flight_ = frame_.add_column("in_flight");
  col_queue_depth_ = frame_.add_column("queue_depth");
  col_app_deliveries_ = frame_.add_column("app_deliveries");
  col_merges_ = frame_.add_column("merges");
  col_chain_hi_ = frame_.add_column("chain_hi_water");
}

sim_time series_sampler::on_probe(sim::network& net) {
  // Pointer-chain hi-water: walk a bounded, rotating slice of the nodes so
  // the per-sample cost stays O(chain_nodes_per_sample * max_hops) however
  // large the network; over many samples the cursor covers everyone.
  if (cfg_.chain_nodes_per_sample > 0) {
    if (ids_.size() != net.node_count()) ids_ = run_->ids();
    if (!ids_.empty()) {
      const std::size_t walk =
          std::min(cfg_.chain_nodes_per_sample, ids_.size());
      for (std::size_t i = 0; i < walk; ++i) {
        const node_id v = ids_[chain_cursor_];
        chain_cursor_ = chain_cursor_ + 1 == ids_.size() ? 0 : chain_cursor_ + 1;
        chain_hi_water_ = std::max<std::uint64_t>(
            chain_hi_water_, run_->chain_length(v, cfg_.chain_max_hops));
      }
    }
  }

  const sim::reliable_link_layer* rl = run_->reliable_links();
  if (rl != nullptr && !have_arq_cols_) {
    col_arq_outstanding_ = frame_.add_column("arq.outstanding");
    col_arq_backlogged_ = frame_.add_column("arq.backlogged");
    col_arq_retransmits_ = frame_.add_column("arq.retransmits");
    have_arq_cols_ = true;
  }
  const sim::cost_profiler* prof = net.profiler();
  if (prof != nullptr && !have_prof_cols_) {
    for (std::size_t i = 0; i < sim::cost_profiler::phase_count; ++i)
      col_prof_[i] = frame_.add_column(
          std::string("prof.") + sim::profile_phase_name(
                                     static_cast<sim::cost_profiler::phase>(i)));
    col_prof_[sim::cost_profiler::phase_count] =
        frame_.add_column("prof.handlers");
    have_prof_cols_ = true;
  }
  // Per-type cumulative send counts: types appear lazily as the run first
  // sends them; add_column backfills zeros, which is exact for counters.
  for (const auto& [type, st] : run_->statistics().by_type())
    frame_.add_column("sent." + type);

  row_.assign(frame_.columns(), 0);
  row_[col_components_] = run_->components_remaining();
  row_[col_in_flight_] = net.in_flight();
  row_[col_queue_depth_] = net.queue_depth();
  row_[col_app_deliveries_] = net.app_deliveries();
  row_[col_merges_] = run_->merges();
  row_[col_chain_hi_] = chain_hi_water_;
  if (rl != nullptr) {
    row_[col_arq_outstanding_] = rl->outstanding();
    row_[col_arq_backlogged_] = rl->backlogged_channels();
    row_[col_arq_retransmits_] = rl->stats().retransmits;
  }
  if (prof != nullptr) {
    // run_recorder warmed the calibration before the run, so this is a
    // cached read, not the 2ms spin.  Ticks are sampled 1-in-sample_every;
    // scale by the constant period (not the live events/sampled ratio,
    // which fluctuates and would make these cumulative columns — and the
    // Perfetto deltas derived from them — non-monotonic).
    const double tpn = sim::profile_ticks_per_ns();
    const double scale = static_cast<double>(prof->sample_every());
    const auto to_ns = [tpn, scale](std::uint64_t ticks) {
      return static_cast<std::uint64_t>(static_cast<double>(ticks) / tpn *
                                        scale);
    };
    for (std::size_t i = 0; i < sim::cost_profiler::phase_count; ++i)
      row_[col_prof_[i]] = to_ns(prof->phases()[i].ticks);
    row_[col_prof_[sim::cost_profiler::phase_count]] =
        to_ns(prof->handler_ticks());
  }
  for (const auto& [type, st] : run_->statistics().by_type())
    row_[frame_.add_column("sent." + type)] = st.count;

  frame_.record(net.now(), row_.data(), row_.size());
  // Align the next sample to the interval grid (now may already be past
  // several grid points on a sparse timeline; skip them rather than batch).
  return (net.now() / cfg_.interval + 1) * cfg_.interval;
}

void series_sampler::write_json(json_writer& w) const {
  w.begin_object();
  w.kv("interval", cfg_.interval);
  w.kv("stride", frame_.stride());
  w.kv("recorded", frame_.recorded());
  const std::vector<sim_time> t = frame_.times();
  w.key("t").begin_array();
  for (const sim_time v : t) w.value(v);
  w.end_array();
  w.key("cols").begin_object();
  for (std::uint32_t i = 0; i < frame_.columns(); ++i) {
    w.key(frame_.column_name(i)).begin_array();
    for (const std::uint64_t v : frame_.column(i)) w.value(v);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

}  // namespace asyncrd::telemetry
