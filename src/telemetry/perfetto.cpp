#include "telemetry/perfetto.h"

#include <ostream>
#include <set>

#include "telemetry/json.h"
#include "telemetry/timeseries.h"

namespace asyncrd::telemetry {

namespace {

void write_slice(json_writer& w, const trace_event& e) {
  const bool is_wake = e.what == trace_event::kind::wake;
  w.begin_object();
  w.kv("name", is_wake ? std::string_view("wake") : std::string_view(e.type));
  w.kv("cat", is_wake ? "wake" : "deliver");
  w.kv("ph", "X");
  w.kv("ts", e.at);
  w.kv("dur", std::uint64_t{1});
  w.kv("pid", 1);
  w.kv("tid", e.to);
  w.key("args").begin_object();
  w.kv("id", e.id);
  w.kv("lamport", e.lamport);
  w.kv("sends", static_cast<std::uint64_t>(e.sends));
  // trace_none has no faithful JSON-number spelling; absent key == no edge.
  if (e.cause != trace_none) w.kv("cause", e.cause);
  if (e.release != trace_none) w.kv("release", e.release);
  if (!is_wake) {
    w.kv("from", e.from);
    w.kv("sent_at", e.sent_at);
    w.kv("bits", e.bits);
  }
  w.end_object();
  w.end_object();
}

void write_flow(json_writer& w, const trace_event& e) {
  // Flow start inside the sending activation's slice on the sender's track;
  // flow end bound to the enclosing ('bp':'e') delivery slice.
  w.begin_object();
  w.kv("name", e.type);
  w.kv("cat", "msg");
  w.kv("ph", "s");
  w.kv("id", e.id);
  w.kv("ts", e.sent_at);
  w.kv("pid", 1);
  w.kv("tid", e.from);
  w.end_object();
  w.begin_object();
  w.kv("name", e.type);
  w.kv("cat", "msg");
  w.kv("ph", "f");
  w.kv("bp", "e");
  w.kv("id", e.id);
  w.kv("ts", e.at);
  w.kv("pid", 1);
  w.kv("tid", e.to);
  w.end_object();
}

/// Chrome counter events: one 'C' event per sample, args carry the value.
/// All counters share tid 0 so they group above the per-node tracks.
void write_counter_track(json_writer& w, const counter_series& c) {
  const std::size_t n = std::min(c.t.size(), c.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("cat", "health");
    w.kv("ph", "C");
    w.kv("ts", c.t[i]);
    w.kv("pid", 1);
    w.kv("tid", 0);
    w.key("args").begin_object().kv("value", c.values[i]).end_object();
    w.end_object();
  }
}

}  // namespace

std::string perfetto_trace_json(const std::vector<trace_event>& events,
                                std::string_view label,
                                const std::vector<counter_series>& counters) {
  std::set<node_id> nodes;
  std::uint64_t deliveries = 0;
  for (const trace_event& e : events) {
    nodes.insert(e.to);
    if (e.what == trace_event::kind::deliver) {
      nodes.insert(e.from);
      ++deliveries;
    }
  }

  json_writer w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("tool", "asyncrd");
  w.kv("label", label);
  w.kv("events", static_cast<std::uint64_t>(events.size()));
  w.kv("messages", deliveries);
  w.kv("nodes", static_cast<std::uint64_t>(nodes.size()));
  w.end_object();

  w.key("traceEvents").begin_array();
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.kv("tid", 0);
  w.key("args").begin_object().kv("name", "asyncrd").end_object();
  w.end_object();
  for (const node_id v : nodes) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", v);
    w.key("args").begin_object();
    w.kv("name", "node " + std::to_string(v));
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("name", "thread_sort_index");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", v);
    w.key("args").begin_object().kv("sort_index", v).end_object();
    w.end_object();
  }
  for (const trace_event& e : events) {
    write_slice(w, e);
    if (e.what == trace_event::kind::deliver) write_flow(w, e);
  }
  for (const counter_series& c : counters) write_counter_track(w, c);
  w.end_array();
  w.end_object();
  return w.take();
}

std::string perfetto_trace_json(const std::vector<trace_event>& events,
                                std::string_view label) {
  return perfetto_trace_json(events, label, {});
}

void write_perfetto_trace(std::ostream& os,
                          const std::vector<trace_event>& events,
                          std::string_view label) {
  os << perfetto_trace_json(events, label) << '\n';
}

void write_perfetto_trace(std::ostream& os,
                          const std::vector<trace_event>& events,
                          std::string_view label,
                          const std::vector<counter_series>& counters) {
  os << perfetto_trace_json(events, label, counters) << '\n';
}

std::vector<counter_series> counter_tracks(const series_sampler& sampler) {
  const series_frame& f = sampler.frame();
  std::vector<counter_series> out;
  const std::vector<std::uint64_t> t = f.times();
  if (t.empty()) return out;
  for (std::uint32_t i = 0; i < f.columns(); ++i) {
    counter_series c;
    const std::string& name = f.column_name(i);
    c.t = t;
    c.values = f.column(i);
    // Cumulative counters become per-sample deltas: a send-rate dip during
    // an outage window reads directly off the track instead of hiding in
    // the slope of an ever-growing total.
    const bool cumulative = name.rfind("sent.", 0) == 0 ||
                            name.rfind("prof.", 0) == 0 ||
                            name == "arq.retransmits";
    if (cumulative) {
      c.name = name + "/delta";
      for (std::size_t j = c.values.size(); j-- > 1;)
        c.values[j] -= c.values[j - 1];
    } else {
      c.name = name;
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace asyncrd::telemetry
