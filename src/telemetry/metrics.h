// Metrics registry: named counters, gauges, and histograms any component
// can record into, with one JSON snapshot for run reports.
//
// Instruments are owned by the registry and referenced by stable pointers
// (std::map nodes never move), so the lookup cost is paid once:
//
//   telemetry::registry reg;
//   auto& sends = reg.get_counter("net.sends");
//   ... hot loop: sends.inc(); ...
//   reg.write_json(w);
//
// Not thread-safe by design — the simulator is single-threaded; arm one
// registry per run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/network.h"
#include "sim/reliable_link.h"
#include "sim/sweep.h"
#include "telemetry/histogram.h"

namespace asyncrd::telemetry {

class json_writer;

/// Monotonically increasing count.
class counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value.
class gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class registry {
 public:
  /// Finds or creates the named instrument.  The reference stays valid for
  /// the registry's lifetime.
  counter& get_counter(std::string_view name);
  gauge& get_gauge(std::string_view name);
  histogram& get_histogram(std::string_view name);

  const std::map<std::string, counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, gauge, std::less<>>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, histogram, std::less<>>& histograms() const noexcept {
    return histograms_;
  }

  /// Zeroes every registered instrument (names are kept).
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(json_writer& w) const;

 private:
  std::map<std::string, counter, std::less<>> counters_;
  std::map<std::string, gauge, std::less<>> gauges_;
  std::map<std::string, histogram, std::less<>> histograms_;
};

/// Records a finished parallel sweep under `prefix`: "<prefix>.jobs",
/// "<prefix>.jobs_completed", "<prefix>.jobs_skipped" (counters, accumulate
/// across sweeps), "<prefix>.workers", "<prefix>.wall_ms",
/// "<prefix>.events_per_sec" (gauges, last sweep wins).  The registry is
/// not thread-safe; call after the sweep returned, from one thread.
void record_sweep(registry& reg, std::string_view prefix,
                  const sim::sweep_result& r);

/// Records chaos-transport accounting under `prefix`: wire-level fault
/// counters ("<prefix>.transmissions", ".drops", ".outage_drops",
/// ".duplicates", ".reorder_delay") and, when `rl` is non-null, the
/// reliable-link protocol counters (".data_sent", ".retransmits",
/// ".acks_sent", ".dup_suppressed", ".timer_fires", ".rto_backoffs",
/// ".max_rto" gauge).  All counters accumulate across runs sharing the
/// registry.
void record_chaos(registry& reg, std::string_view prefix,
                  const sim::fault_stats& faults,
                  const sim::reliable_link_stats* rl = nullptr);

/// Records message-pool occupancy and cross-thread reclaim traffic under
/// `prefix` (gauges: ".thread_cached_blocks", ".thread_cached_bytes",
/// ".global_cached_blocks", ".reclaim_donations", ".reclaim_grabs",
/// ".live_bytes", ".peak_bytes").  The thread-local fields describe the
/// *calling* thread's cache; live/peak are process-wide.
void record_pool(registry& reg, std::string_view prefix,
                 const sim::pool_detail::pool_stats& ps);

}  // namespace asyncrd::telemetry
