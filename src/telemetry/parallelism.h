// Trace-derived parallelism profile: how much concurrency a run contains.
//
// ROADMAP item 1 wants to shard a single run across worker threads.  The
// causal trace already encodes the answer to "is that worth doing": two
// activations at the same virtual time are causally independent (every
// channel delay is >= 1 time unit, so neither can have caused the other),
// which makes the number of activations per virtual-time bucket — the
// *width* — exactly the number of events a parallel scheduler could run
// concurrently at that instant.  Aggregating widths over the run gives:
//
//   * the width histogram (how often the run is actually wide),
//   * total work / critical path — the available-speedup ceiling by
//     Brent's bound (no schedule beats work/span),
//   * per-link lookahead: min(at - sent_at) per ordered link, the channel
//     delay lower bound a conservative synchronization window can exploit
//     (the classic Chandy–Misra null-message bound).
//
// Computed offline from tracer output (or a reloaded Perfetto trace) by
// trace_analyze --parallelism; emitted as BENCH_parallelism.json.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/histogram.h"
#include "telemetry/tracer.h"

namespace asyncrd::telemetry {

struct parallelism_profile {
  // Work and span.
  std::uint64_t activations = 0;       ///< total traced work (events)
  std::uint64_t critical_path_len = 0; ///< max Lamport timestamp (span)
  sim::sim_time makespan = 0;          ///< latest activation's sim time
  /// activations / critical_path_len: the available-speedup ceiling.
  double work_cp_ratio = 0.0;

  // Width over virtual time.
  sim::sim_time bucket = 1;        ///< bucket size used (sim-time units)
  std::uint64_t buckets_occupied = 0;  ///< buckets with >= 1 activation
  histogram width;                 ///< one sample per occupied bucket
  std::uint64_t max_width = 0;
  /// activations / buckets_occupied: mean concurrency while active.
  double mean_width = 0.0;

  // Per-link lookahead (deliveries only; a link is an ordered (from, to)
  // pair).  Aggregated over each link's *minimum* observed delay.
  std::uint64_t links = 0;
  std::uint64_t lookahead_min = 0;
  std::uint64_t lookahead_max = 0;
  double lookahead_mean = 0.0;
};

/// Computes the profile from a traced run.  `bucket` groups virtual time
/// into windows of that many sim-time units (>= 1; 1 means exact times).
/// Empty input yields an all-zero profile.
parallelism_profile compute_parallelism(const std::vector<trace_event>& events,
                                        sim::sim_time bucket = 1);

}  // namespace asyncrd::telemetry
