#include "telemetry/histogram.h"

#include <algorithm>
#include <bit>

#include "telemetry/json.h"

namespace asyncrd::telemetry {

std::size_t histogram::bucket_of(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram::bucket_lower(std::size_t b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t histogram::bucket_upper(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void histogram::merge(const histogram& other) noexcept {
  for (std::size_t b = 0; b < bucket_count; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (0-based, fractional).
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bucket_count; ++b) {
    if (buckets_[b] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += buckets_[b];
    const double hi_rank = static_cast<double>(seen - 1);
    if (rank > hi_rank) continue;
    // Interpolate within [lower, upper] of this bucket by rank position.
    const double lo = static_cast<double>(bucket_lower(b));
    const double hi = static_cast<double>(bucket_upper(b));
    double frac = 0.0;
    if (hi_rank > lo_rank) frac = (rank - lo_rank) / (hi_rank - lo_rank);
    const double est = lo + frac * (hi - lo);
    // `rank` is a global fractional rank, so it can fall below lo_rank (a
    // whole-sample position inside the *previous* bucket rounded up into
    // this one): frac goes negative and the raw estimate lands below this
    // bucket's lower bound.  Every sample counted here lies in [lo, hi], so
    // clamp to the bucket — tightened by the exact global extremes, which
    // bite in the first and last occupied buckets.
    const double lo_bound = std::max(lo, static_cast<double>(min()));
    const double hi_bound = std::min(hi, static_cast<double>(max_));
    return std::clamp(est, lo_bound, hi_bound);
  }
  return static_cast<double>(max_);
}

void histogram::write_json(json_writer& w) const {
  w.begin_object();
  w.kv("count", count_);
  w.kv("sum", sum_);
  w.kv("min", min());
  w.kv("max", max_);
  w.kv("mean", mean());
  w.kv("p50", p50());
  w.kv("p90", p90());
  w.kv("p99", p99());
  w.key("buckets").begin_array();
  for (std::size_t b = 0; b < bucket_count; ++b) {
    if (buckets_[b] == 0) continue;
    w.begin_object();
    w.kv("lo", bucket_lower(b));
    w.kv("hi", bucket_upper(b));
    w.kv("count", buckets_[b]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace asyncrd::telemetry
