#include "telemetry/metrics.h"

#include "telemetry/json.h"

namespace asyncrd::telemetry {

namespace {

/// Heterogeneous-lookup emplace: avoids a std::string allocation when the
/// instrument already exists.
template <typename Map>
typename Map::mapped_type& find_or_create(Map& m, std::string_view name) {
  const auto it = m.find(name);
  if (it != m.end()) return it->second;
  return m.emplace(std::string(name), typename Map::mapped_type{})
      .first->second;
}

}  // namespace

counter& registry::get_counter(std::string_view name) {
  return find_or_create(counters_, name);
}

gauge& registry::get_gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

histogram& registry::get_histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

void registry::reset() {
  for (auto& [name, c] : counters_) c = counter{};
  for (auto& [name, g] : gauges_) g = gauge{};
  for (auto& [name, h] : histograms_) h.reset();
}

void record_sweep(registry& reg, std::string_view prefix,
                  const sim::sweep_result& r) {
  const std::string p(prefix);
  reg.get_counter(p + ".jobs").inc(r.jobs);
  reg.get_counter(p + ".jobs_completed").inc(r.jobs_completed);
  reg.get_counter(p + ".jobs_skipped").inc(r.jobs_skipped);
  reg.get_gauge(p + ".workers").set(static_cast<double>(r.workers));
  reg.get_gauge(p + ".wall_ms").set(r.wall_ms);
  reg.get_gauge(p + ".events_per_sec").set(r.events_per_sec);
}

void record_chaos(registry& reg, std::string_view prefix,
                  const sim::fault_stats& faults,
                  const sim::reliable_link_stats* rl) {
  const std::string p(prefix);
  reg.get_counter(p + ".transmissions").inc(faults.transmissions);
  reg.get_counter(p + ".drops").inc(faults.drops);
  reg.get_counter(p + ".outage_drops").inc(faults.outage_drops);
  reg.get_counter(p + ".duplicates").inc(faults.duplicates);
  reg.get_counter(p + ".reorder_delay").inc(faults.reorder_delay);
  if (rl == nullptr) return;
  reg.get_counter(p + ".data_sent").inc(rl->data_sent);
  reg.get_counter(p + ".retransmits").inc(rl->retransmits);
  reg.get_counter(p + ".acks_sent").inc(rl->acks_sent);
  reg.get_counter(p + ".dup_suppressed").inc(rl->dup_suppressed);
  reg.get_counter(p + ".timer_fires").inc(rl->timer_fires);
  reg.get_counter(p + ".rto_backoffs").inc(rl->rto_backoffs);
  reg.get_gauge(p + ".max_rto").set(static_cast<double>(rl->max_rto));
}

void record_pool(registry& reg, std::string_view prefix,
                 const sim::pool_detail::pool_stats& ps) {
  const std::string p(prefix);
  reg.get_gauge(p + ".thread_cached_blocks")
      .set(static_cast<double>(ps.thread_cached_blocks));
  reg.get_gauge(p + ".thread_cached_bytes")
      .set(static_cast<double>(ps.thread_cached_bytes));
  reg.get_gauge(p + ".global_cached_blocks")
      .set(static_cast<double>(ps.global_cached_blocks));
  reg.get_gauge(p + ".reclaim_donations")
      .set(static_cast<double>(ps.reclaim_donations));
  reg.get_gauge(p + ".reclaim_grabs")
      .set(static_cast<double>(ps.reclaim_grabs));
  reg.get_gauge(p + ".live_bytes").set(static_cast<double>(ps.live_bytes));
  reg.get_gauge(p + ".peak_bytes").set(static_cast<double>(ps.peak_bytes));
}

void registry::write_json(json_writer& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    h.write_json(w);
  }
  w.end_object();
  w.end_object();
}

}  // namespace asyncrd::telemetry
