#include "telemetry/tracer.h"

#include <algorithm>

namespace asyncrd::telemetry {

std::uint64_t tracer::lamport_of(std::uint64_t id) const {
  if (id == trace_none) return 0;
  const auto it = index_.find(id);
  // An unknown parent means the tracer was attached mid-run; treat the
  // missing prefix as causally flat rather than dropping the event.
  return it == index_.end() ? 0 : events_[it->second].lamport;
}

trace_event& tracer::push(trace_event ev) {
  const std::uint64_t lc = lamport_of(ev.cause);
  const std::uint64_t lr = lamport_of(ev.release);
  ev.lamport = std::max(lc, lr) + 1;
  if (ev.cause == trace_none && ev.release == trace_none)
    ev.parent = trace_none;
  else
    ev.parent = lc >= lr ? (ev.cause != trace_none ? ev.cause : ev.release)
                         : ev.release;
  max_lamport_ = std::max(max_lamport_, ev.lamport);
  index_.emplace(ev.id, events_.size());
  events_.push_back(std::move(ev));
  return events_.back();
}

void tracer::on_wake(sim::sim_time t, node_id v) {
  const auto& ctx = net_->trace_ctx();
  trace_event ev;
  ev.id = ctx.event_id;
  ev.cause = ctx.cause;
  ev.release = ctx.release;
  ev.what = trace_event::kind::wake;
  ev.to = v;
  ev.at = t;
  push(std::move(ev));
}

void tracer::on_deliver(sim::sim_time t, node_id from, node_id to,
                        const sim::message& m) {
  const auto& ctx = net_->trace_ctx();
  trace_event ev;
  ev.id = ctx.event_id;
  ev.cause = ctx.cause;
  ev.release = ctx.release;
  ev.what = trace_event::kind::deliver;
  ev.from = from;
  ev.to = to;
  ev.at = t;
  ev.sent_at = ctx.sent_at;
  ev.bits = m.bits(net_->statistics().id_bits());
  ev.type = std::string(m.type_name());
  push(std::move(ev));
}

void tracer::on_send(sim::sim_time, node_id, node_id, const sim::message&) {
  ++sends_observed_;
  const auto& ctx = net_->trace_ctx();
  if (!ctx.active) return;  // driver send, outside any activation
  const auto it = index_.find(ctx.event_id);
  if (it != index_.end()) ++events_[it->second].sends;
}

const trace_event* tracer::find(std::uint64_t id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &events_[it->second];
}

void tracer::clear() {
  events_.clear();
  index_.clear();
  max_lamport_ = 0;
  sends_observed_ = 0;
}

}  // namespace asyncrd::telemetry
