// Critical-path extraction and causal-chain analytics over a traced run.
//
// The critical path is the longest causal chain in the genealogy recorded
// by telemetry::tracer — the sequence of "this delivery caused these sends"
// (plus adversary release edges) that determined when the run finished.
// Its hop count is the run's time complexity in the standard asynchronous
// measure: with all delivery delays equal to one time unit it equals the
// network's final sim_time exactly (asserted in tests/test_critical_path).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/tracer.h"

namespace asyncrd::telemetry {

/// The longest causal chain of a run, root first.
struct critical_path {
  std::vector<trace_event> chain;  ///< root ... terminal activation
  std::uint64_t length = 0;        ///< hops == chain.size() == max Lamport
  sim::sim_time makespan = 0;      ///< terminal activation's sim time
  /// Deliver hops per message type along the path ("(wake)" for wakes).
  std::map<std::string, std::uint64_t> hops_by_type;
};

/// Extracts the critical path: the maximum-Lamport activation (ties broken
/// by later sim time, then higher id — deterministic) walked back to its
/// root along the binding-parent edges.  Empty input yields an empty path.
critical_path extract_critical_path(const std::vector<trace_event>& events);

/// Fan-out of deliveries: how many sends each activation triggered.
struct fanout_stats {
  std::uint64_t activations = 0;  ///< traced wake/deliver activations
  std::uint64_t sends = 0;        ///< sends attributed to activations
  std::uint64_t max_fanout = 0;
  std::uint64_t max_fanout_event = trace_none;  ///< id of the widest one
  double mean_fanout = 0.0;
};
fanout_stats compute_fanout(const std::vector<trace_event>& events);

/// Per-message-type delivery latency (deliver.at - sent_at, in sim time):
/// under adversarial schedules this is where the stalls show up.
struct type_latency {
  std::uint64_t count = 0;
  std::uint64_t total_delay = 0;
  std::uint64_t max_delay = 0;
  double mean_delay() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(total_delay) /
                            static_cast<double>(count);
  }
};
std::map<std::string, type_latency> latency_by_type(
    const std::vector<trace_event>& events);

}  // namespace asyncrd::telemetry
