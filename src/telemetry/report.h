// Run reports: one machine-readable snapshot per discovery execution.
//
// A run_report collects everything the paper's quantitative claims are
// stated over — per-type message and bit counts (Thm 5-7, Lem 5.5-5.10),
// the per-node load distribution (hotspot analysis), state-transition
// multiplicities (Fig 1), events processed, virtual completion time, and
// host wall-clock / event-throughput — and serializes it as JSON so two
// runs can be diffed (see docs/OBSERVABILITY.md for the schema and how to
// compare files).
//
// Usage (the run_recorder arms every observer in one line):
//
//   core::discovery_run run(g, cfg, sched);
//   telemetry::run_recorder rec(run);
//   run.wake_all();
//   const auto result = run.run();
//   telemetry::run_report rep = rec.report(result);
//   rep.label = "my_experiment";
//   std::ofstream(path) << rep.to_json();
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/ids.h"
#include "core/runner.h"
#include "core/trace.h"
#include "sim/load_observer.h"
#include "sim/stats.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"

namespace asyncrd::telemetry {

class json_writer;

struct run_report {
  // --- caller-supplied context -----------------------------------------
  std::string label;    ///< what was run (bench name, experiment id)
  std::string variant;  ///< algorithm variant name, if applicable
  std::uint64_t seed = 0;
  std::uint64_t edges = 0;  ///< |E0| (the run does not retain the graph)

  // --- measured --------------------------------------------------------
  std::uint64_t nodes = 0;
  bool completed = false;
  std::uint64_t leaders = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t completion_time = 0;  ///< virtual time at quiescence
  double wall_ms = 0.0;               ///< host time in the event loop
  double events_per_sec = 0.0;        ///< event throughput (host clock)
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t id_bits = 0;
  std::map<std::string, sim::type_stats, std::less<>> messages_by_type;

  /// Per-node load distribution (sent + received per node), as a
  /// histogram — O(log max) memory however large the network.
  histogram load;
  std::uint64_t max_load = 0;
  node_id hottest = invalid_node;

  /// Chaos transport: wire-level fault counters plus the reliable-link
  /// protocol's recovery counters.  Always serialized ("enabled": false
  /// with all-zero counters on a clean run) so report diffs line up.
  struct chaos_report {
    bool enabled = false;
    // fault_plan injections (sim::network::faults()).
    std::uint64_t transmissions = 0;
    std::uint64_t drops = 0;
    std::uint64_t outage_drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reorder_delay = 0;
    // reliable-link recovery (sim::reliable_link_layer::stats()).
    std::uint64_t data_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_suppressed = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t rto_backoffs = 0;
    std::uint64_t max_rto = 0;
  };
  chaos_report chaos;

  /// State-transition multiplicities, "explore -> wait" style keys.
  std::map<std::string, std::uint64_t> transitions;

  /// Free-form scalar metrics (checker verdicts, bound ratios, ...).
  std::map<std::string, double> extra;

  void write_json(json_writer& w) const;
  std::string to_json() const;
};

/// Fills the measured fields of a run_report from a finished execution.
/// `load` and `transitions` are optional — pass the observers that were
/// armed during the run (run_recorder does this for you).
run_report collect_run_report(const core::discovery_run& run,
                              const sim::run_result& result,
                              const sim::load_observer* load = nullptr,
                              const core::transition_recorder* transitions =
                                  nullptr);

/// Arms a load observer, a transition recorder, and a metrics registry on a
/// discovery_run in one shot (via the network's multi-observer), and builds
/// the report afterwards.  Detaches everything on destruction.
class run_recorder {
 public:
  explicit run_recorder(core::discovery_run& run);
  ~run_recorder();

  run_recorder(const run_recorder&) = delete;
  run_recorder& operator=(const run_recorder&) = delete;

  run_report report(const sim::run_result& result) const;

  const sim::load_observer& load() const noexcept { return load_; }
  const core::transition_recorder& transitions() const noexcept {
    return transitions_;
  }
  registry& metrics() noexcept { return metrics_; }

 private:
  /// Feeds the metrics registry from network events.
  class metrics_observer final : public sim::observer {
   public:
    explicit metrics_observer(registry& reg);
    void on_send(sim::sim_time, node_id, node_id, const sim::message&) override;
    void on_deliver(sim::sim_time, node_id, node_id, const sim::message&) override;
    void on_wake(sim::sim_time, node_id) override;

   private:
    counter* sends_;
    counter* delivers_;
    counter* wakes_;
    histogram* payload_ids_;
  };

  core::discovery_run* run_;
  sim::load_observer load_;
  core::transition_recorder transitions_;
  registry metrics_;
  metrics_observer metrics_obs_;
};

}  // namespace asyncrd::telemetry
