// Run reports: one machine-readable snapshot per discovery execution.
//
// A run_report collects everything the paper's quantitative claims are
// stated over — per-type message and bit counts (Thm 5-7, Lem 5.5-5.10),
// the per-node load distribution (hotspot analysis), state-transition
// multiplicities (Fig 1), events processed, virtual completion time, and
// host wall-clock / event-throughput — and serializes it as JSON so two
// runs can be diffed (see docs/OBSERVABILITY.md for the schema and how to
// compare files).
//
// Usage (the run_recorder arms every observer in one line):
//
//   core::discovery_run run(g, cfg, sched);
//   telemetry::run_recorder rec(run);
//   run.wake_all();
//   const auto result = run.run();
//   telemetry::run_report rep = rec.report(result);
//   rep.label = "my_experiment";
//   std::ofstream(path) << rep.to_json();
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/runner.h"
#include "core/trace.h"
#include "sim/load_observer.h"
#include "sim/profiler.h"
#include "sim/stats.h"
#include "telemetry/health.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"

namespace asyncrd::telemetry {

class json_writer;

struct run_report {
  /// Schema version of the JSON serialization, written as the FIRST key of
  /// the document so validators can reject unknown schemas before diffing
  /// anything else.  Bump when keys change meaning or shape:
  ///   1 — PRs 1-5 (implicit; no version field)
  ///   2 — adds report_version, "series", "watchdog"
  ///   3 — this layout: adds "profile" (hot-path cost attribution)
  static constexpr std::uint64_t current_version = 3;
  std::uint64_t report_version = current_version;

  // --- caller-supplied context -----------------------------------------
  std::string label;    ///< what was run (bench name, experiment id)
  std::string variant;  ///< algorithm variant name, if applicable
  std::uint64_t seed = 0;
  std::uint64_t edges = 0;  ///< |E0| (the run does not retain the graph)

  // --- measured --------------------------------------------------------
  std::uint64_t nodes = 0;
  bool completed = false;
  std::uint64_t leaders = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t completion_time = 0;  ///< virtual time at quiescence
  double wall_ms = 0.0;               ///< host time in the event loop
  double events_per_sec = 0.0;        ///< event throughput (host clock)
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t id_bits = 0;
  std::map<std::string, sim::type_stats, std::less<>> messages_by_type;

  /// Binary wire codec accounting (sim/wire.h).  Serialized only when the
  /// codec was armed — a wire-off report stays byte-identical to earlier
  /// v3 documents, and determinism tests clear `enabled` to diff a wire-on
  /// run against its struct twin.  Counts are application frames offered to
  /// the transport: every routing hop retransmits (and re-counts) its
  /// frame; chaos-duplicated transmissions do not add frames.
  struct wire_report {
    bool enabled = false;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames = 0;
    /// Malformed or misrouted frames dropped at the receive path (service
    /// mode; always 0 in simulation, where frames cannot corrupt).  Kept
    /// out of `frames`/`bytes_sent` — those sum the by_type table exactly
    /// and count only frames *offered* to the transport.
    std::uint64_t decode_errors = 0;
    struct type_bytes {
      std::uint64_t count = 0;
      std::uint64_t bytes = 0;
    };
    std::map<std::string, type_bytes, std::less<>> by_type;
  };
  wire_report wire;

  /// Per-node load distribution (sent + received per node), as a
  /// histogram — O(log max) memory however large the network.
  histogram load;
  std::uint64_t max_load = 0;
  node_id hottest = invalid_node;

  /// Chaos transport: wire-level fault counters plus the reliable-link
  /// protocol's recovery counters.  Always serialized ("enabled": false
  /// with all-zero counters on a clean run) so report diffs line up.
  struct chaos_report {
    bool enabled = false;
    // fault_plan injections (sim::network::faults()).
    std::uint64_t transmissions = 0;
    std::uint64_t drops = 0;
    std::uint64_t outage_drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reorder_delay = 0;
    // reliable-link recovery (sim::reliable_link_layer::stats()).
    std::uint64_t data_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_suppressed = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t rto_backoffs = 0;
    std::uint64_t max_rto = 0;
  };
  chaos_report chaos;

  /// Time-series progress snapshots (telemetry/timeseries.h).  Always
  /// serialized — interval == 0 with empty columns on a run without a
  /// sampler — so report diffs line up, like chaos.
  struct series_report {
    sim::sim_time interval = 0;  ///< 0 = sampler was not armed
    std::uint64_t stride = 1;
    std::uint64_t recorded = 0;
    std::vector<std::uint64_t> t;  ///< sample times, strictly increasing
    /// Column name -> per-sample values, one entry per t (insertion order).
    std::vector<std::pair<std::string, std::vector<std::uint64_t>>> cols;
  };
  series_report series;

  /// Stall-watchdog verdict (telemetry/health.h).  Always serialized;
  /// armed == false with no trips on a run without a watchdog.
  struct watchdog_report {
    bool armed = false;
    sim::sim_time window = 0;
    sim::sim_time probe_interval = 0;
    bool abort_on_trip = false;
    std::vector<watchdog_trip> trips;
  };
  watchdog_report watchdog;

  /// Hot-path cost attribution (sim/profiler.h).  Always serialized;
  /// armed == false with empty buckets on a run without the profiler.
  /// Counts are exact; ticks come from the 1-in-sample_every sampled
  /// events, and `ns` fields extrapolate to whole-run estimates
  /// (ticks / ticks_per_ns * events / sampled_events) at report time.
  struct profile_report {
    bool armed = false;
    double ticks_per_ns = 0.0;
    struct entry {
      std::string name;
      std::uint64_t count = 0;
      std::uint64_t ticks = 0;
      double ns = 0.0;
    };
    std::vector<entry> phases;  ///< fixed phases, enum order
    std::vector<entry> tags;    ///< dispatch tags with count > 0
    std::uint64_t loop_ticks = 0;  ///< whole event-loop span
    double loop_ns = 0.0;
    std::uint64_t events = 0;          ///< events seen by the gate
    std::uint64_t sampled_events = 0;  ///< events that read ticks
    std::uint64_t sample_every = 0;    ///< the gate's sampling period
    /// attributed_ticks / sampled_span_ticks: how much of the measured
    /// event spans the instrumented phases explain (the rest is queue
    /// bookkeeping and dispatch glue between spans).  Unbiased despite
    /// sampling — numerator and denominator cover the same events.
    double attributed_fraction = 0.0;
  };
  profile_report profile;

  /// State-transition multiplicities, "explore -> wait" style keys.
  std::map<std::string, std::uint64_t> transitions;

  /// Free-form scalar metrics (checker verdicts, bound ratios, ...).
  std::map<std::string, double> extra;

  void write_json(json_writer& w) const;
  std::string to_json() const;
};

/// Fills the measured fields of a run_report from a finished execution.
/// `load` and `transitions` are optional — pass the observers that were
/// armed during the run (run_recorder does this for you).
run_report collect_run_report(const core::discovery_run& run,
                              const sim::run_result& result,
                              const sim::load_observer* load = nullptr,
                              const core::transition_recorder* transitions =
                                  nullptr);

/// Runtime-health arming knobs for run_recorder.  Defaults keep everything
/// off, preserving the recorder's zero-surprise cost profile; benches and
/// the CLI opt in per flag.
struct recorder_options {
  /// Virtual-time sampling interval for the progress series; 0 = no
  /// sampler.
  sim::sim_time series_interval = 0;
  /// Retained samples per series column before resolution halves.
  std::size_t series_capacity = 512;
  /// Stall watchdog; window == 0 leaves it disarmed.
  watchdog_config watchdog;
  /// Flight-recorder ring size (last K dispatched events); 0 = none.
  std::size_t flight_capacity = 0;
  /// Arm the hot-path cost profiler (sim/profiler.h) for the run.
  bool profile = false;
  /// Arm the binary wire codec (discovery_run::enable_wire()) and report
  /// the measured per-type wire bytes in the "wire" block.
  bool wire = false;
};

/// Arms a load observer, a transition recorder, and a metrics registry on a
/// discovery_run in one shot (via the network's multi-observer) — plus,
/// when the options ask for them, the series sampler, stall watchdog, and
/// flight recorder — and builds the report afterwards.  Detaches everything
/// on destruction.
class run_recorder {
 public:
  explicit run_recorder(core::discovery_run& run, recorder_options opts = {});
  ~run_recorder();

  run_recorder(const run_recorder&) = delete;
  run_recorder& operator=(const run_recorder&) = delete;

  run_report report(const sim::run_result& result) const;

  const sim::load_observer& load() const noexcept { return load_; }
  const core::transition_recorder& transitions() const noexcept {
    return transitions_;
  }
  registry& metrics() noexcept { return metrics_; }

  /// Armed health instruments; nullptr when the options left them off.
  const series_sampler* sampler() const noexcept { return sampler_.get(); }
  const stall_watchdog* watchdog() const noexcept { return watchdog_.get(); }
  const sim::flight_recorder* flight() const noexcept { return flight_.get(); }
  const sim::cost_profiler* profiler() const noexcept {
    return profiler_.get();
  }

 private:
  /// Feeds the metrics registry from network events.
  class metrics_observer final : public sim::observer {
   public:
    explicit metrics_observer(registry& reg);
    void on_send(sim::sim_time, node_id, node_id, const sim::message&) override;
    void on_deliver(sim::sim_time, node_id, node_id, const sim::message&) override;
    void on_wake(sim::sim_time, node_id) override;

   private:
    counter* sends_;
    counter* delivers_;
    counter* wakes_;
    histogram* payload_ids_;
  };

  core::discovery_run* run_;
  sim::load_observer load_;
  core::transition_recorder transitions_;
  registry metrics_;
  metrics_observer metrics_obs_;
  std::unique_ptr<series_sampler> sampler_;
  std::unique_ptr<stall_watchdog> watchdog_;
  std::unique_ptr<sim::flight_recorder> flight_;
  std::unique_ptr<sim::cost_profiler> profiler_;
};

}  // namespace asyncrd::telemetry
