// Log-bucketed histogram for non-negative integer samples (per-node loads,
// message sizes, event-loop latencies).  Fixed memory: 65 power-of-two
// buckets regardless of sample count, so it can sit on hot paths and still
// summarize a million-node run.
//
// Bucket scheme: bucket 0 holds the value 0; bucket k (k >= 1) holds
// values in [2^(k-1), 2^k - 1] — i.e. a value lands in bucket bit_width(v).
// Quantiles interpolate linearly inside the winning bucket and are clamped
// to the exact observed min/max, so p0/p100 are exact and mid quantiles are
// within a factor of 2 (the bucket resolution).
#pragma once

#include <array>
#include <cstdint>

namespace asyncrd::telemetry {

class json_writer;

class histogram {
 public:
  static constexpr std::size_t bucket_count = 65;

  void record(std::uint64_t value) noexcept;
  void merge(const histogram& other) noexcept;
  void reset() noexcept { *this = histogram(); }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Quantile for q in [0, 1]: q = 0.5 is the median.  Returns 0 on an
  /// empty histogram.
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }

  /// Bucket index a value lands in (== bit_width(value)).
  static std::size_t bucket_of(std::uint64_t value) noexcept;
  /// Inclusive value range [lower, upper] of a bucket.
  static std::uint64_t bucket_lower(std::size_t b) noexcept;
  static std::uint64_t bucket_upper(std::size_t b) noexcept;

  std::uint64_t bucket(std::size_t b) const noexcept { return buckets_[b]; }

  /// {count, sum, min, max, mean, p50, p90, p99, buckets:[{lo,hi,count}...]}
  /// — empty buckets are omitted from the array.
  void write_json(json_writer& w) const;

 private:
  std::array<std::uint64_t, bucket_count> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace asyncrd::telemetry
