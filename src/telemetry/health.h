// Stall watchdog and flight-recorder postmortems — the "is this run still
// alive?" half of the runtime health layer (series in timeseries.h).
//
// The watchdog is a sim::health_probe that trips when, for a configurable
// window of virtual time, no component merged AND no application-level
// message was delivered while work remained pending (messages in flight or
// un-acked ARQ envelopes).  That predicate is exactly the
// phase-locked-retransmit livelock's signature: the wire can be empty (an
// outage window ate every retry) while the reliable link still owes
// deliveries, so the pending-work test must include the ARQ backlog, not
// just in-flight messages.  Trips are recorded as structured events for the
// run report's "watchdog" object; abort_on_trip additionally stops the
// event loop (run_result.stopped), which lets CLIs exit with a distinct
// status instead of burning the event cap.
//
// write_flight_dump serializes a sim::flight_recorder ring — the last K
// dispatched events with their cause ids — as a standalone JSON document
// for tools/trace_analyze --flight: the postmortem view when a watchdog
// trip or checker violation ends a run that was not paying full-trace cost.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.h"
#include "sim/flight_recorder.h"
#include "sim/network.h"

namespace asyncrd::telemetry {

class json_writer;

struct watchdog_config {
  /// Virtual-time window with no progress (while work is pending) that
  /// counts as a stall.  0 leaves the watchdog disarmed.
  sim::sim_time window = 0;
  /// How often the probe checks; 0 derives window / 4 (>= 1).
  sim::sim_time probe_interval = 0;
  /// Stop the event loop on the first trip (run_result.stopped).
  bool abort_on_trip = false;
  /// Cap on recorded trips (a non-aborting watchdog on a truly stuck run
  /// would otherwise accumulate one trip per window forever).
  std::size_t max_trips = 16;
};

/// One watchdog trip: the stall window [last_progress_at, at] and the
/// pending-work evidence at trip time.
struct watchdog_trip {
  sim::sim_time at = 0;
  sim::sim_time last_progress_at = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t arq_outstanding = 0;
  std::uint64_t app_deliveries = 0;
  std::uint64_t merges = 0;
};

class stall_watchdog final : public sim::health_probe {
 public:
  stall_watchdog(core::discovery_run& run, watchdog_config cfg);

  sim::sim_time on_probe(sim::network& net) override;

  bool tripped() const noexcept { return !trips_.empty(); }
  const std::vector<watchdog_trip>& trips() const noexcept { return trips_; }
  const watchdog_config& config() const noexcept { return cfg_; }

  /// The run report's "watchdog" object:
  /// {"armed": true, "window": W, "trips": [{...}, ...]}
  void write_json(json_writer& w) const;

 private:
  core::discovery_run* run_;
  watchdog_config cfg_;
  std::uint64_t last_signal_ = 0;  ///< app_deliveries + merges last seen
  sim::sim_time last_progress_at_ = 0;
  std::vector<watchdog_trip> trips_;
};

/// Human-readable name for a dispatch tag (core vocabulary + reliable-link
/// envelopes); "tag:<N>" for anything unknown, "wake"/"timer" handled by
/// the callers via the entry kind.
std::string dispatch_tag_name(std::uint8_t tag);

/// Serializes a flight-recorder ring as a standalone JSON document:
/// {"tool": "asyncrd", "kind": "flight", "capacity": K, "recorded": N,
///  "dropped": D, "events": [{"at", "kind", "id", "cause", "a", "b",
///  "tag", "type"}, ...]} — events oldest first, cause ids in the same
/// space as the causal tracer so edges link entries still in the ring.
void write_flight_dump(json_writer& w, const sim::flight_recorder& fr);
std::string flight_dump_json(const sim::flight_recorder& fr);
void write_flight_dump(std::ostream& os, const sim::flight_recorder& fr);

}  // namespace asyncrd::telemetry
