// Causal tracing: per-event message genealogy for a simulated run.
//
// The network assigns every *activation* (one wake callback or one delivery
// callback) a unique event id and publishes, while the activation runs, the
// two causal edges that produced it (sim::trace_context):
//
//   * cause   — genealogy: the activation in which the delivered message was
//               sent (Lamport's happened-before along the message);
//   * release — scheduling: the activation whose quiescence made the
//               adversary release a held message or inject a wake.
//
// The tracer observer snapshots that into a flat vector of trace_events and
// assigns each one a Lamport timestamp (causal depth): 1 for roots,
// max(parent lamports) + 1 otherwise.  Because every cause completes before
// its effects begin, parents always precede children in the vector and the
// timestamps are computed online in O(1) per event.
//
// Invariant (asserted in tests): when every delivery delay is exactly one
// time unit — the unit-delay scheduler, Theorem 1's staged-release
// adversary, Lemma 3.1's sequential wake-up — an activation's Lamport
// timestamp equals its sim_time, so the maximum Lamport timestamp equals
// the network's final sim_time: the critical path *is* the run's time
// complexity.  See telemetry/critical_path.h for the extraction.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "sim/network.h"

namespace asyncrd::telemetry {

/// "No such activation" (same sentinel the network uses).
inline constexpr std::uint64_t trace_none = sim::trace_context::none;

/// One traced activation with its causal parents and metadata.
struct trace_event {
  enum class kind : std::uint8_t { wake, deliver };
  std::uint64_t id = 0;
  std::uint64_t cause = trace_none;    ///< genealogy parent
  std::uint64_t release = trace_none;  ///< scheduling parent
  /// The binding parent — whichever of {cause, release} has the larger
  /// Lamport timestamp (the edge that actually delayed this event);
  /// trace_none for roots.
  std::uint64_t parent = trace_none;
  kind what = kind::wake;
  node_id from = invalid_node;  ///< deliver: the sender
  node_id to = invalid_node;    ///< deliver: receiver; wake: the woken node
  sim::sim_time at = 0;         ///< sim time of the activation
  sim::sim_time sent_at = 0;    ///< deliver: sim time the message left
  std::uint64_t lamport = 1;    ///< causal depth: max(parent lamports) + 1
  std::uint64_t bits = 0;       ///< deliver: message size in bits
  std::uint32_t sends = 0;      ///< messages sent from inside this activation
  std::string type;             ///< deliver: message type name
};

/// Observer that records the causal genealogy of a run.  Arm it with
/// net.add_observer(&tr) *before* the first wake; it must stay attached
/// (and alive) for the part of the execution you want traced.
class tracer final : public sim::observer {
 public:
  explicit tracer(sim::network& net) : net_(&net) {}

  void on_wake(sim::sim_time t, node_id v) override;
  void on_deliver(sim::sim_time t, node_id from, node_id to,
                  const sim::message& m) override;
  void on_send(sim::sim_time t, node_id from, node_id to,
               const sim::message& m) override;

  /// All traced activations, in dispatch order (parents precede children).
  const std::vector<trace_event>& events() const noexcept { return events_; }

  /// Lookup by activation id; nullptr if that activation was not traced.
  const trace_event* find(std::uint64_t id) const;

  /// The deepest causal chain seen so far (== critical-path hop count).
  std::uint64_t max_lamport() const noexcept { return max_lamport_; }

  /// Sends observed (delivered or still in flight).
  std::uint64_t sends_observed() const noexcept { return sends_observed_; }

  void clear();

 private:
  trace_event& push(trace_event ev);
  std::uint64_t lamport_of(std::uint64_t id) const;

  sim::network* net_;
  std::vector<trace_event> events_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::uint64_t max_lamport_ = 0;
  std::uint64_t sends_observed_ = 0;
};

}  // namespace asyncrd::telemetry
