// Dependency-free JSON: a streaming writer (the only serializer the
// telemetry layer needs) and a minimal recursive-descent parser used by
// round-trip tests and the bench-output validator (tools/json_check).
//
// The writer tracks container nesting and inserts commas itself, so call
// sites read like the document they produce:
//
//   json_writer w;
//   w.begin_object();
//   w.key("bench").value("thm5");
//   w.key("n_values").begin_array().value(64).value(128).end_array();
//   w.end_object();
//   std::string doc = w.take();
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace asyncrd::telemetry {

/// Escapes a string for inclusion in a JSON document (no surrounding
/// quotes): backslash, quote, and control characters per RFC 8259.
std::string json_escape(std::string_view s);

class json_writer {
 public:
  json_writer& begin_object();
  json_writer& end_object();
  json_writer& begin_array();
  json_writer& end_array();

  /// Emits an object key; must be followed by exactly one value or
  /// container.
  json_writer& key(std::string_view k);

  json_writer& value(std::string_view v);
  json_writer& value(const char* v) { return value(std::string_view(v)); }
  json_writer& value(bool v);
  json_writer& value(double v);  // NaN/Inf have no JSON spelling: emits null
  json_writer& value(std::uint64_t v);
  json_writer& value(std::int64_t v);
  json_writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  json_writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  json_writer& null();

  /// key(k) + value(v) in one call.
  template <typename T>
  json_writer& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The finished document (the writer is left empty).
  std::string take();
  const std::string& str() const noexcept { return out_; }

 private:
  void comma();

  std::string out_;
  /// One char per open container: 'o' / 'a'; paired with "first element
  /// already written" flags.
  std::vector<std::pair<char, bool>> stack_;
  bool after_key_ = false;
};

/// Parsed JSON value (null, bool, number, string, array, object).  Numbers
/// are doubles — exact for the integer magnitudes telemetry emits.
struct json_value {
  using array = std::vector<json_value>;
  using object = std::map<std::string, json_value>;

  std::variant<std::nullptr_t, bool, double, std::string, array, object> v =
      nullptr;

  /// Byte offset of this value's first character in the parsed document
  /// (0 for hand-built values).  Validators use it to point at the
  /// offending value when a semantic check fails.
  std::size_t offset = 0;

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(v); }
  bool is_number() const noexcept { return std::holds_alternative<double>(v); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(v); }
  bool is_array() const noexcept { return std::holds_alternative<array>(v); }
  bool is_object() const noexcept { return std::holds_alternative<object>(v); }

  bool as_bool() const { return std::get<bool>(v); }
  double as_number() const { return std::get<double>(v); }
  const std::string& as_string() const { return std::get<std::string>(v); }
  const array& as_array() const { return std::get<array>(v); }
  const object& as_object() const { return std::get<object>(v); }

  /// Object member lookup; nullptr if not an object or key absent.
  const json_value* find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).  On failure returns nullopt and, if `error` is
/// non-null, stores a message with the byte offset.
std::optional<json_value> json_parse(std::string_view text,
                                     std::string* error = nullptr);

}  // namespace asyncrd::telemetry
