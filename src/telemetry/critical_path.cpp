#include "telemetry/critical_path.h"

#include <algorithm>
#include <unordered_map>

namespace asyncrd::telemetry {

critical_path extract_critical_path(const std::vector<trace_event>& events) {
  critical_path out;
  if (events.empty()) return out;

  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    index.emplace(events[i].id, i);

  const trace_event* terminal = &events.front();
  for (const trace_event& e : events) {
    if (e.lamport > terminal->lamport ||
        (e.lamport == terminal->lamport &&
         (e.at > terminal->at ||
          (e.at == terminal->at && e.id > terminal->id))))
      terminal = &e;
  }

  // Walk binding-parent edges back to the root, then reverse.
  const trace_event* cur = terminal;
  for (;;) {
    out.chain.push_back(*cur);
    if (cur->parent == trace_none) break;
    const auto it = index.find(cur->parent);
    if (it == index.end()) break;  // tracer attached mid-run: partial chain
    cur = &events[it->second];
  }
  std::reverse(out.chain.begin(), out.chain.end());

  out.length = out.chain.size();
  out.makespan = terminal->at;
  for (const trace_event& e : out.chain) {
    const std::string key =
        e.what == trace_event::kind::wake ? "(wake)" : e.type;
    ++out.hops_by_type[key];
  }
  return out;
}

fanout_stats compute_fanout(const std::vector<trace_event>& events) {
  fanout_stats out;
  for (const trace_event& e : events) {
    ++out.activations;
    out.sends += e.sends;
    if (e.sends > out.max_fanout) {
      out.max_fanout = e.sends;
      out.max_fanout_event = e.id;
    }
  }
  if (out.activations > 0)
    out.mean_fanout = static_cast<double>(out.sends) /
                      static_cast<double>(out.activations);
  return out;
}

std::map<std::string, type_latency> latency_by_type(
    const std::vector<trace_event>& events) {
  std::map<std::string, type_latency> out;
  for (const trace_event& e : events) {
    if (e.what != trace_event::kind::deliver) continue;
    type_latency& tl = out[e.type];
    const std::uint64_t d = e.at >= e.sent_at ? e.at - e.sent_at : 0;
    ++tl.count;
    tl.total_delay += d;
    tl.max_delay = std::max(tl.max_delay, d);
  }
  return out;
}

}  // namespace asyncrd::telemetry
