// Shared result record for the comparison baselines (§1.1's related work):
// message count, bit count, and (for synchronous algorithms) round count.
#pragma once

#include <cstdint>

namespace asyncrd::baselines {

struct baseline_result {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t rounds = 0;  ///< 0 for asynchronous algorithms
  bool converged = false;    ///< every node/leader reached the goal state
};

}  // namespace asyncrd::baselines
