// Randomized cluster absorption — a Law & Siu (2000)-style synchronous
// algorithm, the second randomized baseline the paper cites (O(n log n)
// messages, O(log n) rounds w.h.p.).
//
// Substitution note (DESIGN.md §4): Law-Siu is only published as a brief
// announcement; we implement the standard absorption scheme it describes:
// the nodes are partitioned into rooted clusters (initially singletons).
// Each round every cluster root flips a fair coin: heads = caller, tails =
// callee.  A caller picks a uniformly random known outside id from its
// cluster's pooled knowledge and contacts it; the contacted node forwards
// to its root (one message); if that root is a callee this round, the
// caller's cluster is absorbed: its id census is shipped to the callee
// root.  With probability >= 1/4 per contact two clusters merge, so
// O(log n) rounds suffice w.h.p.
#pragma once

#include <cstdint>

#include "baselines/baseline_result.h"
#include "graph/digraph.h"

namespace asyncrd::baselines {

baseline_result run_absorption(const graph::digraph& g, std::uint64_t seed,
                               std::uint64_t max_rounds = 10'000);

}  // namespace asyncrd::baselines
