#include "baselines/flooding.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/bitmath.h"
#include "sim/network.h"

namespace asyncrd::baselines {

namespace {

struct flood_msg final : sim::message {
  explicit flood_msg(std::vector<node_id> v) : ids(std::move(v)) {}
  std::vector<node_id> ids;

  std::string_view type_name() const noexcept override { return "flood"; }
  std::size_t id_fields() const noexcept override { return ids.size(); }
};

class flood_process final : public sim::process {
 public:
  explicit flood_process(node_id self, std::set<node_id> neighbors)
      : self_(self), known_(std::move(neighbors)) {
    known_.insert(self_);
  }

  void on_wake(sim::context& ctx) override {
    // Announce everything we know to everyone we know.
    broadcast(ctx, {known_.begin(), known_.end()});
  }

  void on_message(sim::context& ctx, node_id from,
                  const sim::message_ptr& m) override {
    const auto& fm = static_cast<const flood_msg&>(*m);
    std::vector<node_id> fresh;
    if (known_.insert(from).second) fresh.push_back(from);
    for (const node_id v : fm.ids)
      if (known_.insert(v).second) fresh.push_back(v);
    if (!fresh.empty()) broadcast(ctx, fresh);
  }

  const std::set<node_id>& known() const noexcept { return known_; }

 private:
  void broadcast(sim::context& ctx, std::vector<node_id> delta) {
    auto msg = sim::make_message<flood_msg>(std::move(delta));
    for (const node_id v : known_)
      if (v != self_) ctx.send(v, msg);
  }

  node_id self_;
  std::set<node_id> known_;
};

}  // namespace

baseline_result run_flooding(const graph::digraph& g, std::uint64_t seed) {
  std::unique_ptr<sim::scheduler> sched;
  if (seed == 0)
    sched = std::make_unique<sim::unit_delay_scheduler>();
  else
    sched = std::make_unique<sim::random_delay_scheduler>(seed);

  sim::network net(*sched);
  for (const node_id v : g.nodes())
    net.add_node(v, std::make_unique<flood_process>(v, g.out(v)));
  if (g.node_count() > 2) net.set_id_bits(ceil_log2(g.node_count()));
  for (const node_id v : g.nodes()) net.wake(v);

  baseline_result r;
  const sim::run_result rr = net.run();
  r.messages = net.statistics().total_messages();
  r.bits = net.statistics().total_bits();
  r.converged = rr.completed;
  for (const auto& comp : g.weak_components()) {
    const std::set<node_id> expected(comp.begin(), comp.end());
    for (const node_id v : comp) {
      const auto* p = dynamic_cast<const flood_process*>(net.find(v));
      if (p == nullptr || p->known() != expected) r.converged = false;
    }
  }
  return r;
}

}  // namespace asyncrd::baselines
