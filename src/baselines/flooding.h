// Asynchronous flooding — the naive resource-discovery baseline.
//
// Every node pushes each newly learned id to every acquaintance.  Converges
// with every node knowing its entire weakly connected component (messages
// teach receivers the sender's id, so knowledge becomes symmetric), after
// which the maximum id is the de-facto leader.  Message complexity is
// Theta(n * |E|)-ish and bit complexity Theta(n^2 log n) on dense graphs —
// the contrast that motivates the paper's algorithms.
#pragma once

#include <cstdint>

#include "baselines/baseline_result.h"
#include "graph/digraph.h"

namespace asyncrd::baselines {

/// Runs flooding on `g` under random delivery delays derived from `seed`
/// (0 = unit delays); verifies convergence (every node knows exactly its
/// component) before reporting.
baseline_result run_flooding(const graph::digraph& g, std::uint64_t seed);

}  // namespace asyncrd::baselines
