#include "baselines/name_dropper.h"

#include <map>
#include <set>
#include <vector>

#include "common/bitmath.h"
#include "common/rng.h"

namespace asyncrd::baselines {

baseline_result run_name_dropper(const graph::digraph& g, std::uint64_t seed,
                                 std::uint64_t max_rounds) {
  rng r(seed);
  const std::size_t id_bits = ceil_log2(std::max<std::size_t>(g.node_count(), 2));

  // state[v] = v's current pointer set Gamma(v) (not counting v itself).
  std::map<node_id, std::set<node_id>> state;
  for (const node_id v : g.nodes()) {
    state[v] = g.out(v);
    state[v].erase(v);
  }

  // Target: each node's set = its component minus itself.
  std::map<node_id, const std::vector<node_id>*> component_of;
  const auto comps = g.weak_components();
  for (const auto& comp : comps)
    for (const node_id v : comp) component_of[v] = &comp;

  const auto converged = [&]() {
    for (const auto& [v, s] : state)
      if (s.size() + 1 != component_of.at(v)->size()) return false;
    return true;
  };

  baseline_result res;
  while (!converged() && res.rounds < max_rounds) {
    ++res.rounds;
    // Synchronous round: all sends computed against the start-of-round
    // state, applied together afterwards.
    std::vector<std::pair<node_id, std::vector<node_id>>> inboxes;
    for (const auto& [v, s] : state) {
      if (s.empty()) continue;
      auto it = s.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(r.below(s.size())));
      std::vector<node_id> payload(s.begin(), s.end());
      payload.push_back(v);  // name-dropping: the sender introduces itself
      res.messages += 1;
      res.bits += payload.size() * id_bits;
      inboxes.emplace_back(*it, std::move(payload));
    }
    for (auto& [to, payload] : inboxes) {
      auto& dst = state[to];
      for (const node_id v : payload)
        if (v != to) dst.insert(v);
    }
  }
  res.converged = converged();
  return res;
}

}  // namespace asyncrd::baselines
