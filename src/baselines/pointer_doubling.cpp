#include "baselines/pointer_doubling.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/bitmath.h"

namespace asyncrd::baselines {

baseline_result run_pointer_doubling(const graph::digraph& g,
                                     std::uint64_t max_rounds) {
  const std::size_t id_bits = ceil_log2(std::max<std::size_t>(g.node_count(), 2));
  baseline_result res;

  struct nstate {
    node_id candidate;
    std::set<node_id> contacts;  // E0 out-neighbors + heard-from
    std::set<node_id> known;     // all ids ever seen
  };
  std::map<node_id, nstate> st;
  for (const node_id v : g.nodes()) {
    nstate s;
    s.contacts = g.out(v);
    s.known = g.out(v);
    s.known.insert(v);
    s.candidate = *s.known.rbegin();
    st[v] = std::move(s);
  }

  // --- Phase 1: propagate the maximum id.
  bool changed = true;
  while (changed && res.rounds < max_rounds) {
    ++res.rounds;
    changed = false;
    std::vector<std::tuple<node_id, node_id, node_id>> mail;  // from,to,cand
    for (const auto& [v, s] : st)
      for (const node_id u : s.contacts) {
        mail.emplace_back(v, u, s.candidate);
        res.messages += 1;
        res.bits += id_bits;
      }
    for (const auto& [from, to, cand] : mail) {
      nstate& s = st[to];
      if (s.contacts.insert(from).second) changed = true;
      if (s.known.insert(from).second) changed = true;
      if (s.known.insert(cand).second) changed = true;
      if (cand > s.candidate) {
        s.candidate = cand;
        changed = true;
      }
      if (from > s.candidate) {
        s.candidate = from;
        changed = true;
      }
    }
  }

  // --- Phase 2: convergecast full knowledge to the candidate, then
  // broadcast the census back.
  ++res.rounds;
  for (const auto& [v, s] : st) {
    if (s.candidate == v) continue;
    res.messages += 1;
    res.bits += s.known.size() * id_bits;
  }
  std::map<node_id, std::set<node_id>> census;
  for (const auto& [v, s] : st) census[s.candidate].insert(s.known.begin(),
                                                           s.known.end());
  ++res.rounds;
  for (const auto& [leader, ids] : census) {
    for (const node_id v : ids) {
      if (v == leader) continue;
      res.messages += 1;
      res.bits += ids.size() * id_bits;
    }
  }

  // Verify: per component, all candidates agree on the max id and the
  // leader's census covers the component.
  res.converged = true;
  for (const auto& comp : g.weak_components()) {
    const node_id max_id = *std::max_element(comp.begin(), comp.end());
    for (const node_id v : comp)
      if (st[v].candidate != max_id) res.converged = false;
    const std::set<node_id> expected(comp.begin(), comp.end());
    std::set<node_id> have = census[max_id];
    have.insert(max_id);
    for (const node_id v : expected)
      if (!have.contains(v)) res.converged = false;
  }
  return res;
}

}  // namespace asyncrd::baselines
