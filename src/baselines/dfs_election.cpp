#include "baselines/dfs_election.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/bitmath.h"

namespace asyncrd::baselines {

baseline_result run_dfs_election(const graph::digraph& g) {
  baseline_result res;
  if (g.node_count() == 0) {
    res.converged = true;
    return res;
  }
  if (!g.is_strongly_connected()) return res;  // precondition violated

  const std::size_t id_bits = ceil_log2(std::max<std::size_t>(g.node_count(), 2));
  const auto nodes = g.nodes();
  const node_id start = *std::min_element(nodes.begin(), nodes.end());

  // Token DFS: each traversal of an edge is one message carrying the token
  // (the token itself carries the visited set; we charge one id per hop for
  // the incremental update, which is what a practical implementation ships).
  std::set<node_id> visited;
  std::vector<node_id> stack{start};
  std::map<node_id, std::set<node_id>::const_iterator> cursor;
  visited.insert(start);
  while (!stack.empty()) {
    const node_id v = stack.back();
    auto it = cursor.contains(v) ? cursor[v] : g.out(v).begin();
    bool descended = false;
    while (it != g.out(v).end()) {
      const node_id w = *it++;
      if (!visited.contains(w)) {
        cursor[v] = it;
        visited.insert(w);
        stack.push_back(w);
        res.messages += 1;  // token forward
        res.bits += id_bits;
        descended = true;
        break;
      }
    }
    if (!descended) {
      cursor[v] = it;
      stack.pop_back();
      if (!stack.empty()) {
        res.messages += 1;  // token backtrack (strong connectivity lets the
        res.bits += id_bits;  // token return via a known route)
      }
    }
  }

  // Election result: max id; initiator informs every node directly.
  for (const node_id v : nodes) {
    if (v == start) continue;
    res.messages += 1;
    res.bits += id_bits;
  }
  res.converged = visited.size() == g.node_count();
  return res;
}

}  // namespace asyncrd::baselines
