#include "baselines/absorption.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/bitmath.h"
#include "common/rng.h"
#include "unionfind/dsu.h"

namespace asyncrd::baselines {

baseline_result run_absorption(const graph::digraph& g, std::uint64_t seed,
                               std::uint64_t max_rounds) {
  baseline_result res;
  const auto nodes = g.nodes();
  const std::size_t n = nodes.size();
  if (n == 0) {
    res.converged = true;
    return res;
  }
  const std::size_t id_bits = ceil_log2(std::max<std::size_t>(n, 2));
  rng r(seed);

  // Dense index <-> node id.
  std::map<node_id, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[nodes[i]] = i;

  uf::dsu clusters(n);
  // Pooled outside knowledge per cluster root (indices).
  std::vector<std::set<std::size_t>> knowledge(n);
  for (std::size_t i = 0; i < n; ++i)
    for (const node_id w : g.out(nodes[i])) knowledge[i].insert(index.at(w));

  const auto cluster_count_target = g.weak_components().size();

  while (clusters.component_count() > cluster_count_target &&
         res.rounds < max_rounds) {
    ++res.rounds;
    // Collect current roots and their coin flips.
    std::map<std::size_t, bool> caller;  // root -> is caller this round
    for (std::size_t i = 0; i < n; ++i)
      if (clusters.find(i) == i) caller[i] = r.chance(0.5);

    // Callers act against the start-of-round cluster structure.
    struct absorb_req {
      std::size_t caller_root;
      std::size_t target;
    };
    std::vector<absorb_req> reqs;
    for (const auto& [root, is_caller] : caller) {
      if (!is_caller) continue;
      // Prune own-cluster ids lazily, then pick uniformly.
      auto& k = knowledge[root];
      for (auto it = k.begin(); it != k.end();)
        it = clusters.find(*it) == root ? k.erase(it) : ++it;
      if (k.empty()) continue;
      auto it = k.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(r.below(k.size())));
      reqs.push_back({root, *it});
      res.messages += 1;  // contact message to the known id
      res.bits += id_bits;
    }
    // Contacted nodes forward to their roots; callee roots absorb.
    for (const auto& req : reqs) {
      const std::size_t target_root = clusters.find(req.target);
      res.messages += 1;  // forward to root
      res.bits += id_bits;
      if (clusters.find(req.caller_root) == target_root) continue;
      if (caller.contains(target_root) && !caller.at(target_root)) {
        // Absorption: ship the caller cluster's census + knowledge.
        const std::size_t shipped =
            knowledge[req.caller_root].size() + 1;
        res.messages += 1;
        res.bits += shipped * id_bits;
        const std::size_t caller_root_now = clusters.find(req.caller_root);
        clusters.unite(caller_root_now, target_root);
        const std::size_t new_root = clusters.find(target_root);
        // Merge pooled knowledge into whichever root survived.
        std::set<std::size_t> merged = knowledge[caller_root_now];
        merged.insert(knowledge[target_root].begin(),
                      knowledge[target_root].end());
        knowledge[new_root] = std::move(merged);
      }
    }
  }

  // Converged when cluster structure matches the weak components.
  res.converged = clusters.component_count() == cluster_count_target;
  return res;
}

}  // namespace asyncrd::baselines
