// Token-DFS leader election + census for *strongly connected* knowledge
// graphs — the contrast case the paper cites Cidon-Gopal-Kutten for: on
// strongly connected networks an O(n)-message election exists, so the
// interesting regime for resource discovery is weak connectivity.
//
// Substitution note (DESIGN.md §4): CGK's O(n) algorithm is intricate; this
// baseline uses a single token performing a DFS traversal, which costs one
// message per edge traversal (O(|E|) total) plus n-1 notifications.  It
// preserves the qualitative contrast (linear in edges on strongly connected
// graphs, no log factor) without reproducing CGK verbatim.
#pragma once

#include "baselines/baseline_result.h"
#include "graph/digraph.h"

namespace asyncrd::baselines {

/// Requires g strongly connected (returns converged == false otherwise).
/// The token starts at the minimum id, collects every id, then the
/// initiator notifies all nodes of the leader (max id) directly.
baseline_result run_dfs_election(const graph::digraph& g);

}  // namespace asyncrd::baselines
