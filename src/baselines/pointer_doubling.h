// Deterministic synchronous discovery via max-propagation and a final
// convergecast — a Kutten-Peleg-Vishkin-flavored deterministic baseline
// (the exact KPV algorithm interleaves more machinery; this preserves its
// observable shape: deterministic, synchronous, leader = max id, message
// cost governed by |E0| and the component diameter).
//
// Phase 1 (max propagation): every round each node sends its current
// candidate leader (the largest id it has heard of) to all its contacts
// (initial out-neighbors plus everyone it has received from).  Stabilizes
// after <= diameter+1 rounds.
// Phase 2 (convergecast): every node ships its full known set to the
// stabilized candidate, which thereby learns the entire component; the
// candidate then broadcasts its id census back (one message per member).
#pragma once

#include <cstdint>

#include "baselines/baseline_result.h"
#include "graph/digraph.h"

namespace asyncrd::baselines {

baseline_result run_pointer_doubling(const graph::digraph& g,
                                     std::uint64_t max_rounds = 10'000);

}  // namespace asyncrd::baselines
