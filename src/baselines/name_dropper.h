// Name-Dropper — the randomized synchronous algorithm of Harchol-Balter,
// Leighton & Lewin (PODC 1999), the paper's primary prior-work baseline.
//
// Each round, every node picks one neighbor uniformly at random from its
// current pointer set and ships the whole set (plus its own id) to it.
// With high probability the pointer graph becomes complete (restricted to
// each weakly connected component) within O(log^2 n) rounds, for
// O(n log^2 n) messages and O(n^2 log^3 n) bits.
//
// Our engine detects global convergence exactly (every node's set equals
// its component) rather than relying on the probabilistic round bound, so
// reported round counts are the true convergence times.
#pragma once

#include <cstdint>

#include "baselines/baseline_result.h"
#include "graph/digraph.h"

namespace asyncrd::baselines {

baseline_result run_name_dropper(const graph::digraph& g, std::uint64_t seed,
                                 std::uint64_t max_rounds = 10'000);

}  // namespace asyncrd::baselines
