#include "common/bitmath.h"

#include <cmath>

namespace asyncrd {

std::size_t floor_log2(std::uint64_t x) noexcept {
  std::size_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

std::size_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 2) return 1;
  const std::size_t f = floor_log2(x);
  return ((std::uint64_t{1} << f) == x) ? f : f + 1;
}

double n_log_n(double n) noexcept {
  if (n < 2.0) return n;
  return n * std::log2(n);
}

}  // namespace asyncrd
