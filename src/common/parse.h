// Checked numeric parsing for CLI surfaces.
//
// Every number a user can type — flag values, spec fields like
// drop=P or KIND:N:EXTRA:SEED — must fail with a named flag and the
// documented usage exit code, never an uncaught std::invalid_argument out
// of std::stoull (which lands in std::terminate).  These helpers return
// nullopt on anything but a complete, in-range literal; each binary maps
// nullopt to its own usage() path so the error names the offending flag.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>

namespace asyncrd {

/// Full-string unsigned decimal parse: no sign, no whitespace, no trailing
/// characters, no overflow.  "12" -> 12; "abc", "12x", "", "-1" -> nullopt.
inline std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  std::uint64_t v = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return v;
}

/// Full-string floating-point parse (decimal or scientific).  Same
/// everything-or-nothing contract as parse_u64; "inf"/"nan" are rejected —
/// no CLI knob here (probabilities, tolerances) means anything non-finite.
inline std::optional<double> parse_double(std::string_view text) noexcept {
  double v = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] =
      std::from_chars(first, last, v, std::chars_format::general);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace asyncrd
