#include "common/rng.h"

namespace asyncrd {

std::uint64_t rng::next() noexcept {
  std::uint64_t z = (state_ += golden_gamma);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rng::below(std::uint64_t bound) noexcept {
  // Debiased via rejection from the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double rng::unit() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

}  // namespace asyncrd
