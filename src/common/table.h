// Minimal fixed-width text table used by the benchmark harnesses to print
// paper-style result rows (EXPERIMENTS.md records the same tables).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace asyncrd {

/// Collects rows of strings and renders them with aligned columns.
///
/// Usage:
///   text_table t({"n", "messages", "n log n", "ratio"});
///   t.add_row({"1024", "31873", "10240", "3.11"});
///   t.print(std::cout);
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a separator line under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
  /// quotes, or newlines) — for piping bench output into plotting tools.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (default 2 decimal places).
std::string fmt_double(double v, int precision = 2);

/// Formats a ratio "a/b" as a decimal, guarding division by zero.
std::string fmt_ratio(double a, double b, int precision = 3);

}  // namespace asyncrd
