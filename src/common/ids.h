// Node identifiers for the knowledge-graph model.
//
// The paper assigns each node a unique O(log n)-bit identifier ("this
// identifier can be thought of as the node's IP address", §1).  We model ids
// as dense 32-bit integers; the bit-accounting layer (sim/stats.h) charges
// ceil(log2 n) bits per id field, exactly as the paper's bit-complexity
// analysis does.
#pragma once

#include <cstdint>
#include <limits>

namespace asyncrd {

/// A node identifier.  Ids are opaque to the algorithms except for their
/// total order (used to break ties between leaders of equal phase).
using node_id = std::uint32_t;

/// Sentinel meaning "no node".  Never a valid id.
inline constexpr node_id invalid_node = std::numeric_limits<node_id>::max();

}  // namespace asyncrd
