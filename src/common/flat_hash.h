// Minimal open-addressed hash map: 64-bit key -> 32-bit index.
//
// Purpose-built for the simulator's dense-index tables (node id -> slot
// index, packed (from, to) channel key -> channel index): linear probing in
// one flat array, power-of-two capacity, no erase (the simulator never
// removes nodes or channels), fibonacci hashing.  Compared to std::map this
// removes the per-lookup pointer chase and allocation per insert; compared
// to std::unordered_map it removes the bucket indirection and keeps the
// whole table in a few cache lines for small systems.
//
// Key restriction: the all-ones 64-bit key is reserved as the empty marker.
// Both users satisfy this structurally — node ids are 32-bit values
// (zero-extended), channel keys pack two 32-bit *indices* of which at least
// the `from` half is a real slot index (< 2^32 - 1).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace asyncrd {

class flat_u64_map {
 public:
  /// Returned by find() for absent keys.  Never a valid mapped value.
  static constexpr std::uint32_t npos = ~std::uint32_t{0};

  flat_u64_map() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Pre-sizes for `n` keys without rehashing on the way there.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * max_load_num < n * max_load_den) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  /// Mapped value for `key`, or npos.
  std::uint32_t find(std::uint64_t key) const noexcept {
    assert(key != empty_key);
    if (slots_.empty()) return npos;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask) {
      const entry& e = slots_[i];
      if (e.key == key) return e.value;
      if (e.key == empty_key) return npos;
    }
  }

  /// Inserts (key -> value); the key must not be present.
  void insert(std::uint64_t key, std::uint32_t value) {
    assert(key != empty_key && value != npos);
    [[maybe_unused]] const bool inserted = try_insert(key, value);
    assert(inserted && "flat_u64_map::insert: duplicate key");
  }

  /// Single-probe upsert-if-absent: inserts (key -> value) and returns true,
  /// or returns false if the key is already present (value untouched).
  bool try_insert(std::uint64_t key, std::uint32_t value) {
    assert(key != empty_key && value != npos);
    if ((size_ + 1) * max_load_den > slots_.size() * max_load_num)
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask) {
      entry& e = slots_[i];
      if (e.key == key) return false;
      if (e.key == empty_key) {
        e.key = key;
        e.value = value;
        ++size_;
        return true;
      }
    }
  }

  void clear() noexcept {
    slots_.clear();
    size_ = 0;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    for (const entry& e : slots_)
      if (e.key != empty_key) f(e.key, e.value);
  }

 private:
  static constexpr std::uint64_t empty_key = ~std::uint64_t{0};
  // Max load factor 7/8: probes stay short while the table stays compact.
  static constexpr std::size_t max_load_num = 7;
  static constexpr std::size_t max_load_den = 8;

  struct entry {
    std::uint64_t key = empty_key;
    std::uint32_t value = 0;
  };

  std::size_t probe_start(std::uint64_t key) const noexcept {
    // Fibonacci hashing: multiply by 2^64 / phi, take the top bits.
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> shift_);
  }

  void rehash(std::size_t new_cap) {
    std::vector<entry> old = std::move(slots_);
    slots_.assign(new_cap, entry{});
    shift_ = 64;
    for (std::size_t c = new_cap; c > 1; c >>= 1) --shift_;
    size_ = 0;
    for (const entry& e : old)
      if (e.key != empty_key) insert(e.key, e.value);
  }

  std::vector<entry> slots_;
  std::size_t size_ = 0;
  unsigned shift_ = 64;
};

/// Membership-only companion to flat_u64_map: a hash set of 64-bit keys
/// (same empty-key restriction, no erase).  For sets that are queried and
/// grown on the hot path but whose *order* carries no meaning — e.g. the
/// discovery engine's knowledge-audit sets, where a sorted container would
/// pay an O(size) shift (flat vector) or a pointer chase per op (tree) for
/// ordering nobody reads.  Iteration via for_each is unspecified-order;
/// callers that need determinism must sort what they collect.
class flat_u64_set {
 public:
  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void reserve(std::size_t n) { map_.reserve(n); }
  void clear() noexcept { map_.clear(); }

  bool contains(std::uint64_t key) const noexcept {
    return map_.find(key) != flat_u64_map::npos;
  }

  /// Idempotent; returns true iff the key was newly inserted.
  bool insert(std::uint64_t key) { return map_.try_insert(key, 0); }

  /// Visits every key in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    map_.for_each([&f](std::uint64_t k, std::uint32_t) { f(k); });
  }

 private:
  flat_u64_map map_;
};

}  // namespace asyncrd
