// Sorted-vector set with std::set's ascending iteration order.
//
// The discovery engine's per-node id sets (local, more, done, unaware,
// unexplored, known, contacts) are queried and iterated far more often than
// they are mutated, and the protocol's bulk growth (info-message absorption)
// arrives as already-sorted ranges.  A red-black tree pays an allocation and
// a pointer chase per element for ordering the flat vector gets for free;
// profiles of large runs showed the _Rb_tree machinery among the simulator's
// hottest symbols.  flat_set keeps the elements contiguous: membership is a
// binary search, iteration is a linear scan, and bulk insertion is one
// merge.
//
// Determinism contract: iteration visits elements in strictly ascending
// order — exactly std::set's order — so every "pick the smallest" and
// "iterate members" decision in the engine is unchanged.
//
// Deliberate deviations from std::set:
//  * insert(value) returns bool (inserted?) instead of (iterator, bool);
//  * erase(first, last) erases a positional range (used by self_query's
//    prefix extraction);
//  * single-element insert/erase shift the vector tail: O(size) worst case,
//    which the engine's set sizes amortize well below tree-node overhead.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <set>
#include <vector>

namespace asyncrd {

template <typename T>
class flat_set {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;
  using iterator = const_iterator;  // elements are immutable in place

  flat_set() = default;
  flat_set(std::initializer_list<T> init) : data_(init) { normalize(); }
  template <typename It>
  flat_set(It first, It last) : data_(first, last) {
    normalize();
  }
  /// Adopts an ordered container (e.g. the std::set the harness API takes).
  explicit flat_set(const std::set<T>& s) : data_(s.begin(), s.end()) {}

  const_iterator begin() const noexcept { return data_.begin(); }
  const_iterator end() const noexcept { return data_.end(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  void clear() noexcept { data_.clear(); }

  bool contains(const T& v) const noexcept {
    return std::binary_search(data_.begin(), data_.end(), v);
  }
  std::size_t count(const T& v) const noexcept { return contains(v) ? 1 : 0; }

  const_iterator find(const T& v) const noexcept {
    const auto it = std::lower_bound(data_.begin(), data_.end(), v);
    return it != data_.end() && *it == v ? it : data_.end();
  }

  /// Inserts `v` if absent; returns true iff it was inserted.
  bool insert(const T& v) {
    const auto it = std::lower_bound(data_.begin(), data_.end(), v);
    if (it != data_.end() && *it == v) return false;
    data_.insert(it, v);
    return true;
  }

  /// Bulk insert: one merge, regardless of how the ranges interleave.
  /// The input need not be sorted or unique.
  template <typename It>
  void insert(It first, It last) {
    if (first == last) return;
    const std::size_t old = data_.size();
    data_.insert(data_.end(), first, last);
    std::sort(data_.begin() + static_cast<std::ptrdiff_t>(old), data_.end());
    std::inplace_merge(data_.begin(),
                       data_.begin() + static_cast<std::ptrdiff_t>(old),
                       data_.end());
    data_.erase(std::unique(data_.begin(), data_.end()), data_.end());
  }

  std::size_t erase(const T& v) {
    const auto it = std::lower_bound(data_.begin(), data_.end(), v);
    if (it == data_.end() || *it != v) return 0;
    data_.erase(it);
    return 1;
  }

  const_iterator erase(const_iterator pos) { return data_.erase(pos); }
  const_iterator erase(const_iterator first, const_iterator last) {
    return data_.erase(first, last);
  }

  friend bool operator==(const flat_set& a, const flat_set& b) {
    return a.data_ == b.data_;
  }
  /// Test convenience: compare against a std::set literal.
  friend bool operator==(const flat_set& a, const std::set<T>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  void normalize() {
    std::sort(data_.begin(), data_.end());
    data_.erase(std::unique(data_.begin(), data_.end()), data_.end());
  }

  std::vector<T> data_;
};

}  // namespace asyncrd
