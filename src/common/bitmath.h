// Small integer helpers shared by the bit-accounting and analysis layers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asyncrd {

/// ceil(log2(x)) for x >= 1; defined as 1 for x <= 2 so that an id field is
/// never charged zero bits (a 1-node network still needs one bit to name it).
std::size_t ceil_log2(std::uint64_t x) noexcept;

/// floor(log2(x)) for x >= 1.
std::size_t floor_log2(std::uint64_t x) noexcept;

/// n * ceil(log2(n)) convenience used by several theoretical bounds.
double n_log_n(double n) noexcept;

}  // namespace asyncrd
