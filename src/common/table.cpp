#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace asyncrd {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {}

void text_table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  const auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << r[c];
      if (c + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void text_table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool needs_quotes =
          cell.find_first_of(",\"\n") != std::string::npos;
      if (needs_quotes) {
        os << '"';
        for (const char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_ratio(double a, double b, int precision) {
  if (b == 0.0) return "n/a";
  return fmt_double(a / b, precision);
}

}  // namespace asyncrd
