// Deterministic pseudo-random generator used throughout the repository.
//
// All randomized executions (topology generation, random-delay scheduling,
// the Name-Dropper baseline) are seeded explicitly so that every test and
// benchmark run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace asyncrd {

/// splitmix64-based generator: tiny state, excellent statistical quality for
/// simulation purposes, and fully deterministic across platforms (unlike
/// std::uniform_int_distribution, whose output is implementation-defined).
class rng {
 public:
  explicit rng(std::uint64_t seed) noexcept : state_(seed + golden_gamma) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double unit() noexcept;

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent stream (for per-node or per-run substreams).
  rng fork() noexcept { return rng(next()); }

 private:
  static constexpr std::uint64_t golden_gamma = 0x9E3779B97F4A7C15ULL;
  std::uint64_t state_;
};

}  // namespace asyncrd
