// Always-on internal invariant checks.
//
// Protocol invariants (the "this message cannot arrive in this state"
// class) must hold in release builds too — a silent violation would corrupt
// an execution and invalidate measurements.  ASYNCRD_CHECK therefore does
// not compile away under NDEBUG; it aborts with a source location.
#pragma once

#include <cstdio>
#include <cstdlib>

#define ASYNCRD_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "ASYNCRD_CHECK failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
