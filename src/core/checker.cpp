#include "core/checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/bitmath.h"
#include "unionfind/ackermann.h"

namespace asyncrd::core {

namespace {

std::string describe(node_id v) { return "node " + std::to_string(v); }

}  // namespace

std::string check_report::to_string() const {
  std::ostringstream ss;
  for (const auto& v : violations) ss << v << '\n';
  return ss.str();
}

check_report check_final_state(const discovery_run& run,
                               const graph::digraph& g) {
  return check_final_state(run, g.weak_components());
}

check_report check_final_state(
    const discovery_run& run,
    const std::vector<std::vector<node_id>>& components) {
  check_report rep;
  auto fail = [&rep](const std::string& s) { rep.violations.push_back(s); };

  for (const auto& comp : components) {
    // --- property (4): exactly one leader per weakly connected component.
    std::vector<node_id> leaders;
    for (const node_id v : comp) {
      const node& nd = run.at(v);
      if (nd.status() == status_t::asleep)
        fail(describe(v) + " never woke up");
      if (nd.is_leader()) leaders.push_back(v);
    }
    if (leaders.size() != 1) {
      std::ostringstream ss;
      ss << "component of " << describe(comp.front()) << " has "
         << leaders.size() << " leaders (expected 1)";
      fail(ss.str());
      continue;
    }
    const node_id lid = leaders.front();
    const node& leader = run.at(lid);

    // --- property (2): the leader knows the ids of all its nodes.
    // At quiescence the explore loop has drained more/unexplored, so the
    // leader's `done` must equal the component exactly.
    const std::set<node_id> done(leader.done().begin(), leader.done().end());
    const std::set<node_id> expected(comp.begin(), comp.end());
    if (done != expected) {
      std::ostringstream ss;
      ss << "leader " << lid << " done-set mismatch: knows " << done.size()
         << " of " << expected.size() << " ids";
      for (const node_id v : expected)
        if (!done.contains(v)) ss << "; missing " << v;
      for (const node_id v : done)
        if (!expected.contains(v)) ss << "; extraneous " << v;
      fail(ss.str());
    }
    if (!leader.more().empty())
      fail("leader " + std::to_string(lid) + " has a non-empty more set");
    if (!leader.unaware().empty())
      fail("leader " + std::to_string(lid) + " has a non-empty unaware set");

    // --- properties (1) and (3)/(3a,3b): non-leaders are inactive and
    // know / can reach the leader.
    for (const node_id v : comp) {
      if (v == lid) continue;
      const node& nd = run.at(v);
      if (nd.status() != status_t::inactive)
        fail(describe(v) + " finished in state " +
             std::string(to_string(nd.status())) + " (expected inactive)");
      if (run.cfg().algo == variant::adhoc) {
        // (3b): next pointers induce a directed path to the leader.
        node_id cur = v;
        std::size_t hops = 0;
        while (cur != lid && hops <= comp.size()) {
          const node_id nxt = run.at(cur).next();
          if (nxt == cur) break;
          cur = nxt;
          ++hops;
        }
        if (cur != lid)
          fail(describe(v) + " next-pointer chain does not reach leader " +
               std::to_string(lid));
      } else {
        // (3): all nodes know the id of their leader directly.
        if (nd.next() != lid)
          fail(describe(v) + " next = " + std::to_string(nd.next()) +
               " but leader is " + std::to_string(lid));
      }
      // No parked work may remain anywhere.
      if (nd.has_deferred()) {
        std::string types;
        for (const auto& t : nd.deferred_types()) types += " " + t;
        fail(describe(v) + " still holds deferred messages:" + types);
      }
      if (nd.pending_queue_depth() != 0)
        fail(describe(v) + " still holds queued search/probe requests");
    }
    if (leader.has_deferred()) {
      std::string types;
      for (const auto& t : leader.deferred_types()) types += " " + t;
      fail(describe(lid) + " (leader) still holds deferred messages:" + types);
    }

    // Bounded: Theorem 4 — the leader detects termination.
    if (run.cfg().algo == variant::bounded &&
        leader.status() != status_t::terminated)
      fail("bounded leader " + std::to_string(lid) +
           " did not detect termination");
  }
  return rep;
}

check_report check_membership(
    const std::vector<member_state>& members,
    const std::vector<std::vector<node_id>>& components, variant algo) {
  check_report rep;
  auto fail = [&rep](const std::string& s) { rep.violations.push_back(s); };

  std::map<node_id, const member_state*> by_id;
  for (const member_state& m : members) {
    if (!by_id.emplace(m.id, &m).second)
      fail(describe(m.id) + " reported twice");
  }

  for (const auto& comp : components) {
    // --- property (4): exactly one leader per weakly connected component.
    std::vector<node_id> leaders;
    bool complete = true;
    for (const node_id v : comp) {
      const auto it = by_id.find(v);
      if (it == by_id.end()) {
        fail(describe(v) + " missing from the membership report");
        complete = false;
        continue;
      }
      const member_state& m = *it->second;
      if (m.status == status_t::asleep) fail(describe(v) + " never woke up");
      if (m.is_leader()) leaders.push_back(v);
    }
    if (!complete) continue;
    if (leaders.size() != 1) {
      std::ostringstream ss;
      ss << "component of " << describe(comp.front()) << " has "
         << leaders.size() << " leaders (expected 1)";
      fail(ss.str());
      continue;
    }
    const node_id lid = leaders.front();
    const member_state& leader = *by_id.at(lid);

    // --- property (2): the leader knows the ids of all its nodes.
    const std::set<node_id> done(leader.done.begin(), leader.done.end());
    const std::set<node_id> expected(comp.begin(), comp.end());
    if (done != expected) {
      std::ostringstream ss;
      ss << "leader " << lid << " done-set mismatch: knows " << done.size()
         << " of " << expected.size() << " ids";
      for (const node_id v : expected)
        if (!done.contains(v)) ss << "; missing " << v;
      for (const node_id v : done)
        if (!expected.contains(v)) ss << "; extraneous " << v;
      fail(ss.str());
    }
    if (!leader.more_empty)
      fail("leader " + std::to_string(lid) + " has a non-empty more set");
    if (!leader.unaware_empty)
      fail("leader " + std::to_string(lid) + " has a non-empty unaware set");

    // --- properties (1) and (3)/(3a,3b): non-leaders are inactive and
    // know / can reach the leader.
    for (const node_id v : comp) {
      const member_state& m = *by_id.at(v);
      if (v != lid) {
        if (m.status != status_t::inactive)
          fail(describe(v) + " finished in state " +
               std::string(to_string(m.status)) + " (expected inactive)");
        if (algo == variant::adhoc) {
          // (3b): next pointers induce a directed path to the leader.
          node_id cur = v;
          std::size_t hops = 0;
          while (cur != lid && hops <= comp.size()) {
            const auto cit = by_id.find(cur);
            if (cit == by_id.end()) break;
            const node_id nxt = cit->second->next;
            if (nxt == cur) break;
            cur = nxt;
            ++hops;
          }
          if (cur != lid)
            fail(describe(v) + " next-pointer chain does not reach leader " +
                 std::to_string(lid));
        } else {
          // (3): all nodes know the id of their leader directly.
          if (m.next != lid)
            fail(describe(v) + " next = " + std::to_string(m.next) +
                 " but leader is " + std::to_string(lid));
        }
      }
      // No parked work may remain anywhere.
      if (m.has_deferred)
        fail(describe(v) + " still holds deferred messages");
      if (m.has_pending)
        fail(describe(v) + " still holds queued search/probe requests");
    }

    // Bounded: Theorem 4 — the leader detects termination.
    if (algo == variant::bounded && leader.status != status_t::terminated)
      fail("bounded leader " + std::to_string(lid) +
           " did not detect termination");
  }
  return rep;
}

void liveness_monitor::on_deliver(sim::sim_time t, node_id, node_id,
                                  const sim::message&) {
  for (const auto& comp : components_) {
    bool has_leader = false;
    for (const node_id v : comp) {
      if (run_->at(v).is_leader()) {
        has_leader = true;
        break;
      }
    }
    if (!has_leader) {
      std::ostringstream ss;
      ss << "t=" << t << ": component of node " << comp.front()
         << " has no leader (Lemma 5.1 violated)";
      violations_.push_back(ss.str());
      if (violations_.size() > 16) return;  // avoid flooding
    }
  }
}

void structure_monitor::on_deliver(sim::sim_time t, node_id from, node_id to,
                                   const sim::message& m) {
  if (violations_.size() < 16) {
    for (const node_id v : run_->ids()) {
      const node& nd = run_->at(v);
      if (nd.status() != status_t::inactive) continue;
      // Walk the chain; it must exit the inactive set within n hops.
      node_id cur = v;
      std::size_t hops = 0;
      const std::size_t limit = run_->ids().size() + 1;
      while (run_->at(cur).status() == status_t::inactive && hops <= limit) {
        const node_id nxt = run_->at(cur).next();
        if (nxt == cur) break;  // self-pointing inactive node: broken
        cur = nxt;
        ++hops;
      }
      // Still inactive after the walk => self-pointer or a cycle.
      if (run_->at(cur).status() == status_t::inactive) {
        std::ostringstream ss;
        ss << "t=" << t << ": routing chain from inactive node " << v
           << " does not leave the inactive set (cycle or self-pointer)";
        violations_.push_back(ss.str());
      }
    }
  }
  if (chain_ != nullptr) chain_->on_deliver(t, from, to, m);
}

std::vector<bound_row> check_message_bounds(const sim::stats& st,
                                            std::size_t n, variant algo,
                                            double search_release_constant) {
  const double dn = static_cast<double>(n);
  const double log_n = n >= 2 ? std::max(1.0, std::log2(dn)) : 1.0;
  const double alpha =
      static_cast<double>(uf::inverse_ackermann(n, std::max<std::size_t>(n, 1)));

  std::vector<bound_row> rows;
  rows.push_back({"query+query_reply (Lem 5.5: <=4n)",
                  st.messages_of_any({"query", "query_reply"}), 4.0 * dn});
  rows.push_back({"search+release (Lem 5.6: O(n a(n,n)))",
                  st.messages_of_any({"search", "release"}),
                  search_release_constant * dn * alpha});
  // Reproduction note (documented in EXPERIMENTS.md): Lemma 5.7 states 2n,
  // but its proof assumes a node sends at most one release-merge ever.
  // Fig 4 allows passive -> conquered again after a merge fail, so a node
  // can offer repeatedly; each *failed* offer still consumes a distinct
  // initiator's leadership, giving <= n failures + 2(n-1) accept/info
  // messages = 3n - 2.  Executions measurably exceed 2n (~2.2n observed);
  // we audit against the corrected O(n) constant.
  rows.push_back({"merge_accept+merge_fail+info (Lem 5.7: <=3n-2, paper says 2n)",
                  st.messages_of_any({"merge_accept", "merge_fail", "info"}),
                  3.0 * dn});
  double conquer_cap = 0.0;
  switch (algo) {
    case variant::generic: conquer_cap = 2.0 * dn * log_n; break;
    case variant::bounded: conquer_cap = 2.0 * dn; break;
    case variant::adhoc: conquer_cap = 0.0; break;
  }
  rows.push_back({"conquer+more_done (Lem 5.8)",
                  st.messages_of_any({"conquer", "more_done"}), conquer_cap});
  return rows;
}

}  // namespace asyncrd::core
