#include "core/runner.h"

#include <stdexcept>

#include "common/bitmath.h"
#include "sim/parallel_engine.h"

namespace asyncrd::core {

discovery_run::discovery_run(const graph::digraph& g, config cfg,
                             sim::scheduler& sched)
    : cfg_(cfg), net_(sched) {
  // The merge tracker sits between the nodes and any user trace sink for
  // the whole run; a trace passed in via cfg becomes its forward target.
  merge_tracker_.net = &net_;
  merge_tracker_.user = cfg_.trace;
  cfg_.trace = &merge_tracker_;
  std::map<node_id, std::size_t> sizes;
  if (cfg_.algo == variant::bounded) sizes = g.weak_component_sizes();
  // g.nodes() is ascending, and every generator hands out ids 0..n-1, so
  // the network's slot indices coincide with ids (the dense fast path);
  // arbitrary id sets still work through the hash fallback.
  net_.reserve_nodes(g.node_count());
  for (const node_id v : g.nodes()) {
    const std::size_t csize =
        cfg_.algo == variant::bounded ? sizes.at(v) : std::size_t{0};
    net_.add_node(v, std::make_unique<node>(v, cfg_, g.out(v), csize));
  }
  if (g.node_count() > 2) net_.set_id_bits(ceil_log2(g.node_count()));
}

node& discovery_run::at(node_id id) {
  auto* p = dynamic_cast<node*>(net_.find(id));
  if (p == nullptr) throw std::invalid_argument("unknown node id");
  return *p;
}

const node& discovery_run::at(node_id id) const {
  const auto* p = dynamic_cast<const node*>(net_.find(id));
  if (p == nullptr) throw std::invalid_argument("unknown node id");
  return *p;
}

void discovery_run::enable_chaos(const sim::fault_plan& plan,
                                 sim::reliable_link_config link_cfg) {
  if (rl_ != nullptr) throw std::logic_error("enable_chaos called twice");
  net_.set_fault_plan(plan);
  rl_ = std::make_unique<sim::reliable_link_layer>(net_, link_cfg);
  net_.set_link_adapter(rl_.get());
}

void discovery_run::wake_all() {
  for (const node_id v : net_.node_ids()) net_.wake(v);
}

sim::run_result discovery_run::run(std::uint64_t max_events) {
  return net_.run(max_events);
}

sim::run_result discovery_run::run_parallel(std::size_t shards,
                                            std::uint64_t max_events) {
  sim::parallel_config pcfg;
  pcfg.shards = shards;
  pcfg.user_replay = [this](std::uint64_t n, std::uint64_t from,
                            std::uint64_t to) {
    merge_tracker_.apply(static_cast<node_id>(n), static_cast<status_t>(from),
                         static_cast<status_t>(to));
  };
  sim::parallel_engine engine(net_, pcfg);
  return engine.run(max_events);
}

void discovery_run::add_node_dynamic(node_id id,
                                     std::set<node_id> initial_local) {
  // "there is no difference between a node joining the system at a certain
  // time and a node that wakes up at that time" (§6).
  net_.add_node(id, std::make_unique<node>(id, cfg_, std::move(initial_local),
                                           std::size_t{0}));
  net_.wake(id);
}

void discovery_run::add_link_dynamic(node_id u, node_id v) {
  at(u).add_link(net_, v);
}

void discovery_run::probe(node_id u) { at(u).initiate_probe(net_); }

std::size_t discovery_run::chain_length(node_id v, std::size_t max_hops) const {
  std::size_t hops = 0;
  node_id cur = v;
  while (hops < max_hops) {
    const auto* p = dynamic_cast<const node*>(net_.find(cur));
    if (p == nullptr) break;
    const node_id nxt = p->next();
    if (nxt == invalid_node || nxt == cur) break;
    ++hops;
    cur = nxt;
  }
  return hops;
}

std::vector<node_id> discovery_run::leaders() const {
  std::vector<node_id> out;
  for (const node_id v : net_.node_ids())
    if (at(v).is_leader()) out.push_back(v);
  return out;
}

run_summary run_discovery(const graph::digraph& g, variant algo,
                          std::uint64_t seed, trace_sink* trace) {
  std::unique_ptr<sim::scheduler> sched;
  if (seed == 0)
    sched = std::make_unique<sim::unit_delay_scheduler>();
  else
    sched = std::make_unique<sim::random_delay_scheduler>(seed);

  config cfg;
  cfg.algo = algo;
  cfg.trace = trace;
  discovery_run run(g, cfg, *sched);
  run.wake_all();
  const sim::run_result r = run.run();

  run_summary s;
  s.messages = run.statistics().total_messages();
  s.bits = run.statistics().total_bits();
  s.events = r.events_processed;
  s.completion_time = run.net().now();
  s.wall_ms = run.net().timing().wall_ms();
  s.by_type = run.statistics().by_type();
  s.leaders = run.leaders();
  s.completed = r.completed;
  return s;
}

}  // namespace asyncrd::core
