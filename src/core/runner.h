// Harness that instantiates the algorithm on a knowledge graph, drives the
// simulator, and exposes the pieces benches/tests need.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/node.h"
#include "core/trace.h"
#include "graph/digraph.h"
#include "sim/network.h"
#include "sim/reliable_link.h"
#include "sim/scheduler.h"

namespace asyncrd::core {

/// One resource-discovery execution: owns the network, the shared config,
/// and (via the network) the nodes.
class discovery_run {
 public:
  /// Builds one node per graph vertex, each initialized with its
  /// E0 out-neighborhood.  For variant::bounded every node receives its
  /// weakly-connected-component size (the Bounded model's extra knowledge).
  discovery_run(const graph::digraph& g, config cfg, sim::scheduler& sched);

  discovery_run(const discovery_run&) = delete;
  discovery_run& operator=(const discovery_run&) = delete;

  sim::network& net() noexcept { return net_; }
  const sim::network& net() const noexcept { return net_; }
  const config& cfg() const noexcept { return cfg_; }

  /// Arms (or, with nullptr, disarms) the state-transition trace for the
  /// rest of the execution — nodes consult the shared config on every
  /// transition, so this works after construction (telemetry uses it).
  /// The run keeps its own merge tracker permanently installed and forwards
  /// every transition to `sink`, so merge accounting (below) always works.
  void set_trace(trace_sink* sink) noexcept { merge_tracker_.user = sink; }

  /// Component merges so far: transitions of a node from a leader status to
  /// a non-leader status (paper §4's leader definition).  Every merge
  /// retires exactly one leader, so live components = nodes - merges.
  std::uint64_t merges() const noexcept { return merge_tracker_.merges; }

  /// Virtual time of the most recent merge (0 before the first) — one of
  /// the stall watchdog's progress signals.
  sim::sim_time last_merge_at() const noexcept {
    return merge_tracker_.last_merge_at;
  }

  /// Live components remaining by merge accounting.
  std::uint64_t components_remaining() const noexcept {
    return net_.node_count() - merge_tracker_.merges;
  }

  /// Length of the next-pointer routing chain starting at `v` (0 when v's
  /// next points nowhere / at itself), capped at `max_hops`.  The series
  /// sampler uses this for pointer-chain hi-water marks; path compression
  /// should keep real chains short (Lemma 5.4's amortization argument).
  std::size_t chain_length(node_id v, std::size_t max_hops = 64) const;

  /// The node object for an id (throws if unknown).
  node& at(node_id id);
  const node& at(node_id id) const;

  /// Arms the chaos transport: installs `plan` on the network and layers
  /// the reliable-delivery adapter above it, so the algorithms run
  /// unmodified on the lossy wire.  Must be called before any traffic;
  /// mutually exclusive with manual mode.
  void enable_chaos(const sim::fault_plan& plan,
                    sim::reliable_link_config link_cfg = {});

  /// The reliable-delivery adapter, or nullptr when chaos is off
  /// (telemetry reads its retransmit/ack counters).
  const sim::reliable_link_layer* reliable_links() const noexcept {
    return rl_.get();
  }

  /// Arms the binary wire codec: every application send is encoded into a
  /// compact frame at the network choke point and delivered as encoded
  /// bytes (sim/wire.h); the network counts the frame sizes per type.
  /// Replay semantics, stats, and traces are byte-identical with the
  /// struct path.  Idempotent; must be called before any traffic.
  void enable_wire() {
    if (!net_.wire_enabled()) net_.set_wire_codec(&wire::codec());
  }

  /// Schedules wake events for every node.
  void wake_all();

  /// Runs to completion (quiescence + scheduler hooks exhausted).
  sim::run_result run(std::uint64_t max_events = sim::network::default_event_cap);

  /// Same execution, sharded across worker threads by the parallel engine
  /// (sim/parallel_engine.h) — byte-identical with run() at every shard
  /// count, including merge accounting and any armed trace sink (their
  /// records defer to the window barrier and replay in serial order).
  /// shards == 0 picks the hardware concurrency; 1 degrades gracefully to
  /// a windowed serial execution.
  sim::run_result run_parallel(
      std::size_t shards,
      std::uint64_t max_events = sim::network::default_event_cap);

  /// §6 dynamic addition: a brand-new node that knows `initial_local`.
  void add_node_dynamic(node_id id, std::set<node_id> initial_local);

  /// §6 dynamic addition: new link (u -> v) appears now.
  void add_link_dynamic(node_id u, node_id v);

  /// §4.5.2: node u requests a component snapshot (Ad-hoc).
  void probe(node_id u);

  const sim::stats& statistics() const noexcept { return net_.statistics(); }

  /// Current leaders (nodes in a leader state), ascending by id.
  std::vector<node_id> leaders() const;

  std::vector<node_id> ids() const { return net_.node_ids(); }

 private:
  /// Permanently installed trace sink: counts leader -> non-leader
  /// transitions (component merges) and forwards everything to the
  /// user-armed sink, so telemetry can trace without losing merge counts.
  struct merge_tracker final : trace_sink {
    void on_transition(node_id n, status_t from, status_t to) override {
      // Inside a parallel window phase the counters (and the user sink)
      // must not be touched from worker threads: park the transition in
      // the worker's deferral log; run_parallel's user_replay callback
      // feeds it back through apply() at the barrier, in serial order.
      if (net->deferred_phase()) {
        net->defer_user_record(n, static_cast<std::uint64_t>(from),
                               static_cast<std::uint64_t>(to));
        return;
      }
      apply(n, from, to);
    }
    void apply(node_id n, status_t from, status_t to) {
      if (is_leader_status(from) && !is_leader_status(to)) {
        ++merges;
        last_merge_at = net->now();
      }
      if (user != nullptr) user->on_transition(n, from, to);
    }
    std::uint64_t merges = 0;
    sim::sim_time last_merge_at = 0;
    sim::network* net = nullptr;
    trace_sink* user = nullptr;
  };

  config cfg_;  // nodes keep a pointer into this; must outlive them
  sim::network net_;
  merge_tracker merge_tracker_;
  /// Chaos mode only; declared after net_ so it is destroyed first (the
  /// network holds a non-owning adapter pointer into it).
  std::unique_ptr<sim::reliable_link_layer> rl_;
};

/// Convenience summary used by benches: run a fresh execution end to end.
struct run_summary {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t events = 0;
  /// Virtual time at quiescence.  Under the unit-delay scheduler this is
  /// the longest message chain, i.e. the execution's time complexity in
  /// the standard asynchronous measure (paper §7 discusses O(T + n)).
  sim::sim_time completion_time = 0;
  /// Host wall-clock time spent in the event loop (sim::run_timing).
  double wall_ms = 0.0;
  /// Per-type message/bit counts (telemetry reports aggregate these).
  std::map<std::string, sim::type_stats, std::less<>> by_type;
  std::vector<node_id> leaders;
  bool completed = false;
};

/// Runs `algo` on `g` with uniformly random delays derived from `seed`
/// (seed == 0 selects unit delays), waking all nodes at the start.
run_summary run_discovery(const graph::digraph& g, variant algo,
                          std::uint64_t seed, trace_sink* trace = nullptr);

}  // namespace asyncrd::core
