// Adversarial schedulers realizing the executions used in the paper's
// lower-bound proofs.
//
//  * staged_release_scheduler — Theorem 1: "an adversary that controls the
//    time that each message arrives can force any algorithm to spend
//    messages" by stalling every message a chosen sender emits until the
//    rest of the system quiesces.  For the binary tree T(i) the release
//    order is the post-order over internal nodes: both subtrees of a node
//    finish completely before the node's own messages are let through.
//
//  * sequential_wakeup_scheduler — Lemma 3.1: "Start from the first
//    operation in U ... wake up node u_ij ... wait until the algorithm has
//    no more messages to send, move to the next operation."  One wake per
//    quiescence point.
#pragma once

#include <vector>

#include "common/ids.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace asyncrd::core {

class staged_release_scheduler final : public sim::scheduler {
 public:
  /// `release_order`: senders to stall, released one per quiescence point
  /// in this order.
  explicit staged_release_scheduler(std::vector<node_id> release_order)
      : order_(std::move(release_order)) {}

  /// Blocks every stalled sender.  Call before any traffic flows.
  void arm(sim::network& net);

  sim::sim_time delay(node_id, node_id, const sim::message&) override {
    return 1;
  }
  bool on_quiescence(sim::network& net) override;

  std::size_t released() const noexcept { return next_; }

 private:
  std::vector<node_id> order_;
  std::size_t next_ = 0;
};

class sequential_wakeup_scheduler final : public sim::scheduler {
 public:
  explicit sequential_wakeup_scheduler(std::vector<node_id> wake_order)
      : order_(std::move(wake_order)) {}

  sim::sim_time delay(node_id, node_id, const sim::message&) override {
    return 1;
  }
  bool on_quiescence(sim::network& net) override;

 private:
  std::vector<node_id> order_;
  std::size_t next_ = 0;
};

/// Randomized adversary for property sweeps: blocks a random subset of
/// senders before the run, releases them in a random order (one per
/// quiescence point), and draws random per-message delays.  This explores
/// executions no fixed-delay schedule reaches — whole nodes appearing to
/// "freeze" for arbitrarily long — while staying inside the model
/// (reliable, finite-delay delivery).
class random_staged_scheduler final : public sim::scheduler {
 public:
  /// Blocks each of `candidates` independently with probability
  /// `block_fraction`.
  random_staged_scheduler(std::uint64_t seed, std::vector<node_id> candidates,
                          double block_fraction = 0.3,
                          sim::sim_time max_delay = 16);

  /// Call before any traffic flows.
  void arm(sim::network& net);

  sim::sim_time delay(node_id, node_id, const sim::message&) override;
  bool on_quiescence(sim::network& net) override;

  std::size_t blocked_count() const noexcept { return release_order_.size(); }

 private:
  rng rng_;
  std::vector<node_id> release_order_;
  std::size_t next_ = 0;
  sim::sim_time max_delay_;
};

}  // namespace asyncrd::core
