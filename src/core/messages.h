// The message vocabulary of the Generic algorithm and its variants (paper
// §4, Figures 3-6), plus the Ad-hoc extensions of §4.5.2 and §6.
//
// Bit accounting follows the paper's conventions: ids and integers (phase,
// requested-count) are O(log n) bits; tags and booleans are O(1) bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "sim/message.h"
#include "sim/wire.h"

namespace asyncrd::core {

/// Phase counter.  Grows like a union-by-rank rank: never exceeds log2 n.
using phase_t = std::uint32_t;

/// Id-set payload storage.  Pool-allocated so that struct-mode id sets are
/// visible to the message pool's byte accounting — the footprint comparison
/// against wire mode (encoded frames in the same pool) stays honest.
using id_vec = std::vector<node_id, sim::pool_allocator<node_id>>;

/// Dispatch tags for the core vocabulary (sim::message::dispatch_tag).
/// node::accepts/handle switch on these instead of chaining dynamic_casts —
/// the receive path runs once per delivered message, which makes RTTI
/// dispatch the single hottest branch tree in a large run.  Zero stays
/// reserved for "untagged" (foreign message types defer forever, exactly as
/// the old cast chain rejected them).
enum class msg_kind : std::uint8_t {
  query = 1,
  query_reply,
  search,
  release,
  merge_accept,
  merge_fail,
  info,
  conquer,
  member_reply,
  probe,
  probe_reply,
  report,
  report_ack,
};

constexpr std::uint8_t tag_of(msg_kind k) noexcept {
  return static_cast<std::uint8_t>(k);
}

/// Lexicographic (phase, id) order used for all conquest decisions.
inline bool lex_greater(phase_t pa, node_id a, phase_t pb, node_id b) noexcept {
  return pa != pb ? pa > pb : a > b;
}

// ---------------------------------------------------------------------------
// §4.1 Finding an unexplored node
// ---------------------------------------------------------------------------

/// Leader -> member: "remove min{k, |local|} ids from your local set and
/// send them back".
struct query_msg final : sim::message {
  explicit query_msg(std::size_t k)
      : sim::message(tag_of(msg_kind::query)), requested(k) {}
  std::size_t requested;

  std::string_view type_name() const noexcept override { return "query"; }
  std::size_t id_fields() const noexcept override { return 0; }
  std::size_t int_fields() const noexcept override { return 1; }
};

/// Member -> leader: the extracted ids; done_flag means "my local set is now
/// empty" (move me from `more` to `done`).
struct query_reply_msg final : sim::message {
  query_reply_msg(id_vec s, bool done)
      : sim::message(tag_of(msg_kind::query_reply)),
        ids(std::move(s)),
        done_flag(done) {}
  id_vec ids;
  bool done_flag;

  std::string_view type_name() const noexcept override { return "query_reply"; }
  std::size_t id_fields() const noexcept override { return ids.size(); }
  std::size_t flag_bits() const noexcept override { return 1; }
};

// ---------------------------------------------------------------------------
// §4.2 Reaching the current leader of another node
// ---------------------------------------------------------------------------

/// ⟨v.id, v.phase, u.id, new⟩ — follows `next` pointers from the unexplored
/// node u toward its current leader.  `new_flag` is set by u itself when it
/// did not previously know the initiator (so u's leader moves u back from
/// `done` to `more`).
struct search_msg final : sim::message {
  search_msg(node_id init, phase_t ph, node_id tgt, bool nf)
      : sim::message(tag_of(msg_kind::search)),
        initiator(init),
        initiator_phase(ph),
        target(tgt),
        new_flag(nf) {}
  node_id initiator;
  phase_t initiator_phase;
  node_id target;
  bool new_flag;

  std::string_view type_name() const noexcept override { return "search"; }
  std::size_t id_fields() const noexcept override { return 2; }
  std::size_t int_fields() const noexcept override { return 1; }
  std::size_t flag_bits() const noexcept override { return 1; }
};

/// ⟨l, answer, v⟩ — travels the reverse of the search path (via the
/// `previous` queues), performing path compression (`next := l`) at every
/// hop.  answer == merge means l asks to merge into v; abort means v lost.
struct release_msg final : sim::message {
  enum class answer_t : std::uint8_t { merge, abort };
  release_msg(node_id l, phase_t lp, answer_t a, node_id v)
      : sim::message(tag_of(msg_kind::release)),
        from_leader(l),
        from_phase(lp),
        answer(a),
        initiator(v) {}
  node_id from_leader;
  /// Phase of the responding leader.  Not in the paper's ⟨l, answer, v⟩
  /// format; carried so path compression can keep next-pointer updates
  /// monotone in (phase, id).  Costs O(log n) bits per release, which the
  /// Theorem 7 accounting already grants every message.
  phase_t from_phase;
  answer_t answer;
  node_id initiator;

  std::string_view type_name() const noexcept override { return "release"; }
  std::size_t id_fields() const noexcept override { return 2; }
  std::size_t int_fields() const noexcept override { return 1; }
  std::size_t flag_bits() const noexcept override { return 1; }
};

// ---------------------------------------------------------------------------
// §4.3 Merging of two leaders
// ---------------------------------------------------------------------------

/// Conqueror -> conquered: "your merge request is accepted, ship your data".
struct merge_accept_msg final : sim::message {
  merge_accept_msg(node_id c, phase_t cp)
      : sim::message(tag_of(msg_kind::merge_accept)),
        conqueror(c),
        conqueror_phase(cp) {}
  node_id conqueror;
  phase_t conqueror_phase;

  std::string_view type_name() const noexcept override { return "merge_accept"; }
  std::size_t id_fields() const noexcept override { return 1; }
  std::size_t int_fields() const noexcept override { return 1; }
};

/// Sent to a would-be conqueror that is no longer able to accept the merge
/// (it was itself conquered, went passive, or became inactive meanwhile).
struct merge_fail_msg final : sim::message {
  merge_fail_msg() : sim::message(tag_of(msg_kind::merge_fail)) {}

  std::string_view type_name() const noexcept override { return "merge_fail"; }
  std::size_t id_fields() const noexcept override { return 0; }
};

/// Conquered leader -> conqueror: everything it gathered.  The Generic
/// algorithm ships (phase, more, done, unaware, unexplored); the variants of
/// §4.5 drop the unaware set.
struct info_msg final : sim::message {
  info_msg(phase_t ph, id_vec m, id_vec d, id_vec ua, id_vec ux)
      : sim::message(tag_of(msg_kind::info)),
        phase(ph),
        more(std::move(m)),
        done(std::move(d)),
        unaware(std::move(ua)),
        unexplored(std::move(ux)) {}
  phase_t phase;
  id_vec more;
  id_vec done;
  id_vec unaware;
  id_vec unexplored;

  std::string_view type_name() const noexcept override { return "info"; }
  std::size_t id_fields() const noexcept override {
    return more.size() + done.size() + unaware.size() + unexplored.size();
  }
  std::size_t int_fields() const noexcept override { return 1; }
};

// ---------------------------------------------------------------------------
// §4.4 Conquering unaware nodes
// ---------------------------------------------------------------------------

/// Leader -> member: "I am your leader now" (carries the phase so members
/// ignore stale conquerors, per the §4.4 text).
struct conquer_msg final : sim::message {
  conquer_msg(node_id l, phase_t ph)
      : sim::message(tag_of(msg_kind::conquer)), leader(l), phase(ph) {}
  node_id leader;
  phase_t phase;

  std::string_view type_name() const noexcept override { return "conquer"; }
  std::size_t id_fields() const noexcept override { return 1; }
  std::size_t int_fields() const noexcept override { return 1; }
};

/// Member -> leader: the "more/done message" answering a conquer — one bit
/// saying whether the member's local set still holds unreported ids.
struct member_reply_msg final : sim::message {
  explicit member_reply_msg(bool more)
      : sim::message(tag_of(msg_kind::member_reply)), has_more(more) {}
  bool has_more;

  std::string_view type_name() const noexcept override { return "more_done"; }
  std::size_t id_fields() const noexcept override { return 0; }
  std::size_t flag_bits() const noexcept override { return 1; }
};

// ---------------------------------------------------------------------------
// §4.5.2 Ad-hoc Resource Discovery: probing the leader
// ---------------------------------------------------------------------------

/// "When a node wants to know the current snapshot of the ids in the
/// component, it sends a message to the leader (similar to the search
/// messages)".  Routed via `next` pointers and the `previous` queues.
struct probe_msg final : sim::message {
  explicit probe_msg(node_id r)
      : sim::message(tag_of(msg_kind::probe)), requester(r) {}
  node_id requester;

  std::string_view type_name() const noexcept override { return "probe"; }
  std::size_t id_fields() const noexcept override { return 1; }
};

/// Leader's answer, "performs a path compression on the reply (similar to
/// the release messages)".  Optionally carries the id census.
struct probe_reply_msg final : sim::message {
  probe_reply_msg(node_id l, phase_t lp, node_id r, id_vec census_ids)
      : sim::message(tag_of(msg_kind::probe_reply)),
        leader(l),
        leader_phase(lp),
        requester(r),
        census(std::move(census_ids)) {}
  node_id leader;
  phase_t leader_phase;
  node_id requester;
  id_vec census;

  std::string_view type_name() const noexcept override { return "probe_reply"; }
  std::size_t id_fields() const noexcept override { return 2 + census.size(); }
  std::size_t int_fields() const noexcept override { return 1; }
};

// ---------------------------------------------------------------------------
// §6 Dynamic link additions
// ---------------------------------------------------------------------------

/// "u initiates a search message towards its leader with the new flag set to
/// true" — realized as a dedicated report that rides the search routing
/// machinery; the leader moves u from `done` back to `more`.
struct report_msg final : sim::message {
  explicit report_msg(node_id r)
      : sim::message(tag_of(msg_kind::report)), reporter(r) {}
  node_id reporter;

  std::string_view type_name() const noexcept override { return "report"; }
  std::size_t id_fields() const noexcept override { return 1; }
};

/// Acknowledgement routed back with path compression.
struct report_ack_msg final : sim::message {
  report_ack_msg(node_id l, phase_t lp, node_id r)
      : sim::message(tag_of(msg_kind::report_ack)),
        leader(l),
        leader_phase(lp),
        reporter(r) {}
  node_id leader;
  phase_t leader_phase;
  node_id reporter;

  std::string_view type_name() const noexcept override { return "report_ack"; }
  std::size_t id_fields() const noexcept override { return 2; }
  std::size_t int_fields() const noexcept override { return 1; }
};

}  // namespace asyncrd::core

// ---------------------------------------------------------------------------
// Wire codec for the core vocabulary (DESIGN.md §10)
// ---------------------------------------------------------------------------
//
// Frame = header byte (sim::wire::wire_bit | tag_of(kind)), then the
// message's scalar fields as varints in declaration order (booleans and
// enums as one byte), then its id sets as varint delta sets.  The typed
// *_view structs below mirror the struct messages' field names, so node
// handlers templated over a "field carrier" accept either representation;
// id-set fields decode to sim::wire::id_set_view — iterated in place, never
// materialized.

namespace asyncrd::core::wire {

/// Encoder table for all 13 core message types, applied by the network at
/// the send choke point (sim::network::set_wire_codec).
const sim::wire_codec& codec() noexcept;

struct query_view {
  std::size_t requested;
};
struct query_reply_view {
  sim::wire::id_set_view ids;
  bool done_flag;
};
struct search_view {
  node_id initiator;
  phase_t initiator_phase;
  node_id target;
  bool new_flag;
};
struct release_view {
  node_id from_leader;
  phase_t from_phase;
  release_msg::answer_t answer;
  node_id initiator;
};
struct merge_accept_view {
  node_id conqueror;
  phase_t conqueror_phase;
};
struct info_view {
  phase_t phase;
  sim::wire::id_set_view more;
  sim::wire::id_set_view done;
  sim::wire::id_set_view unaware;
  sim::wire::id_set_view unexplored;
};
struct conquer_view {
  node_id leader;
  phase_t phase;
};
struct member_reply_view {
  bool has_more;
};
struct probe_view {
  node_id requester;
};
struct probe_reply_view {
  node_id leader;
  phase_t leader_phase;
  node_id requester;
  sim::wire::id_set_view census;
};
struct report_view {
  node_id reporter;
};
struct report_ack_view {
  node_id leader;
  phase_t leader_phase;
  node_id reporter;
};

// Zero-copy decoders: each checks the frame's inner tag, parses the payload
// with bounds checks, and throws sim::wire::decode_error on any malformed
// input (truncation, bad tag, unsorted deltas, trailing bytes).
query_view decode_query(const sim::wire_msg& w);
query_reply_view decode_query_reply(const sim::wire_msg& w);
search_view decode_search(const sim::wire_msg& w);
release_view decode_release(const sim::wire_msg& w);
merge_accept_view decode_merge_accept(const sim::wire_msg& w);
info_view decode_info(const sim::wire_msg& w);
conquer_view decode_conquer(const sim::wire_msg& w);
member_reply_view decode_member_reply(const sim::wire_msg& w);
probe_view decode_probe(const sim::wire_msg& w);
probe_reply_view decode_probe_reply(const sim::wire_msg& w);
report_view decode_report(const sim::wire_msg& w);
report_ack_view decode_report_ack(const sim::wire_msg& w);

/// type_name of the core message with inner tag `tag` ("" if the tag is not
/// in the vocabulary).  Static storage duration — safe to hand to the
/// raw-frame sim::wire_msg constructor.
std::string_view tag_name(std::uint8_t tag) noexcept;

/// Full validation of one encoded frame (header byte included) as received
/// off a socket: known inner tag, payload parses under that tag's grammar,
/// no trailing bytes.  Throws sim::wire::decode_error on anything hostile;
/// a frame that passes is safe to box as a wire_msg and deliver.
void validate_frame(const std::uint8_t* data, std::size_t len);

}  // namespace asyncrd::core::wire
