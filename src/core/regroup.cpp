#include "core/regroup.h"

#include <sstream>

namespace asyncrd::core {

graph::digraph surviving_knowledge(const discovery_run& before,
                                   const std::set<node_id>& removed) {
  graph::digraph g;
  for (const node_id v : before.ids()) {
    if (removed.contains(v)) continue;
    g.add_node(v);
    for (const node_id w : before.at(v).known_ids())
      if (!removed.contains(w) && before.net().has_node(w)) g.add_edge(v, w);
  }
  return g;
}

std::unique_ptr<discovery_run> regroup_after_removal(
    const discovery_run& before, const std::set<node_id>& removed,
    const config& cfg, sim::scheduler& sched) {
  const graph::digraph g = surviving_knowledge(before, removed);
  auto run = std::make_unique<discovery_run>(g, cfg, sched);
  run->wake_all();
  run->run();
  return run;
}

std::string forest_to_dot(const discovery_run& run) {
  std::ostringstream ss;
  ss << "digraph discovery_forest {\n  rankdir=BT;\n";
  for (const node_id v : run.ids()) {
    const node& nd = run.at(v);
    ss << "  n" << v << " [label=\"" << v << "\\n" << to_string(nd.status())
       << " p" << nd.phase() << "\"";
    if (nd.is_leader()) ss << ", shape=doublecircle";
    ss << "];\n";
  }
  for (const node_id v : run.ids()) {
    const node& nd = run.at(v);
    if (!nd.is_leader() && nd.next() != v)
      ss << "  n" << v << " -> n" << nd.next() << ";\n";
  }
  ss << "}\n";
  return ss.str();
}

}  // namespace asyncrd::core
