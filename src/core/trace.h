// State-transition tracing used to validate Figure 1 empirically
// (bench_fig1_transitions) and to debug executions.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/status.h"

namespace asyncrd::core {

/// Receives every node state transition.  Implemented by the recorder below;
/// the engine calls it if config::trace is non-null.
class trace_sink {
 public:
  virtual ~trace_sink() = default;
  virtual void on_transition(node_id n, status_t from, status_t to) = 0;
};

/// Collects the set of distinct transitions (with multiplicities).
class transition_recorder final : public trace_sink {
 public:
  void on_transition(node_id n, status_t from, status_t to) override;

  using edge = std::pair<status_t, status_t>;

  const std::map<edge, std::uint64_t>& edges() const noexcept { return edges_; }

  /// The transition relation of Figure 1, as implemented (see node.cpp for
  /// the paper-typo notes).  Any observed edge outside this set is a bug.
  static const std::set<edge>& legal_edges();

  /// Edges observed that are not in legal_edges() — empty on a correct run.
  std::vector<edge> illegal_edges() const;

  /// Multiplicities keyed by the human-readable edge name ("explore -> wait")
  /// — the serialization-friendly view used by telemetry run reports.
  std::map<std::string, std::uint64_t> edge_multiplicities() const;

  std::uint64_t total() const noexcept { return total_; }

  void clear();

 private:
  std::map<edge, std::uint64_t> edges_;
  std::uint64_t total_ = 0;
};

/// "explore -> wait" rendered as a human-readable string.
std::string edge_to_string(const transition_recorder::edge& e);

}  // namespace asyncrd::core
