#include "core/uf_reduction.h"

#include <sstream>

#include "sim/scheduler.h"

namespace asyncrd::core {

uf_reduction::uf_reduction(std::size_t n, std::vector<uf::uf_op> schedule,
                           variant algo)
    : n_(n), schedule_(std::move(schedule)) {
  for (node_id s = 0; s < n_; ++s) g_.add_node(s);
  node_id next_id = static_cast<node_id>(n_);
  op_node_.reserve(schedule_.size());
  for (const uf::uf_op& op : schedule_) {
    const node_id v = next_id++;
    g_.add_edge(v, static_cast<node_id>(op.a));
    if (op.op == uf::uf_op::kind::unite)
      g_.add_edge(v, static_cast<node_id>(op.b));
    op_node_.push_back(v);
  }
  total_nodes_ = g_.node_count();

  sched_ = std::make_unique<sim::unit_delay_scheduler>();
  config cfg;
  cfg.algo = algo;
  run_ = std::make_unique<discovery_run>(g_, cfg, *sched_);
}

node_id uf_reduction::leader_of(std::size_t set_index) const {
  node_id cur = static_cast<node_id>(set_index);
  // Follow next pointers; at quiescence they form a path to the leader
  // (property 3b).  The hop bound guards against cycles (which would be a
  // protocol bug reported by the caller's checks).
  for (std::size_t hops = 0; hops <= total_nodes_; ++hops) {
    const node& nd = run_->at(cur);
    if (nd.is_leader()) return cur;
    if (nd.next() == cur) return cur;  // stuck (passive ex-leader)
    cur = nd.next();
  }
  return invalid_node;
}

bool uf_reduction::execute() {
  uf::dsu reference(n_);
  for (std::size_t step = 0; step < schedule_.size(); ++step) {
    const uf::uf_op& op = schedule_[step];
    run_->net().wake(op_node_[step]);
    const sim::run_result r = run_->net().run_to_quiescence();
    if (!r.completed) {
      errors_.push_back("event cap exceeded at step " + std::to_string(step));
      return false;
    }
    if (op.op == uf::uf_op::kind::unite) {
      reference.unite(op.a, op.b);
      if (leader_of(op.a) != leader_of(op.b)) {
        std::ostringstream ss;
        ss << "step " << step << ": union(" << op.a << ", " << op.b
           << ") but leaders differ: " << leader_of(op.a) << " vs "
           << leader_of(op.b);
        errors_.push_back(ss.str());
      }
    } else {
      reference.find(op.a);
      // The find node f must have been absorbed by s_a's component: the
      // leader must know f's id (that is what forces the find computation).
      const node_id leader = leader_of(op.a);
      const node& lnode = run_->at(leader);
      if (!lnode.done().contains(op_node_[step]) &&
          !lnode.more().contains(op_node_[step])) {
        std::ostringstream ss;
        ss << "step " << step << ": find(" << op.a << ") — leader " << leader
           << " does not know probe node " << op_node_[step];
        errors_.push_back(ss.str());
      }
    }
    // Distributed components must agree with the reference DSU: probe the
    // operands of this operation against a rotating witness.
    const std::size_t witness = (step * 31) % n_;
    const bool dist_same = leader_of(op.a) == leader_of(witness);
    const bool ref_same = reference.same(op.a, witness);
    if (dist_same != ref_same) {
      std::ostringstream ss;
      ss << "step " << step << ": component disagreement between distributed"
         << " execution and reference DSU for sets " << op.a << " and "
         << witness;
      errors_.push_back(ss.str());
    }
  }
  // Wake anything never referenced by the schedule, then settle.
  for (const node_id v : run_->ids())
    if (!run_->net().is_awake(v)) run_->net().wake(v);
  run_->net().run_to_quiescence();
  return errors_.empty();
}

}  // namespace asyncrd::core
