#include "core/trace.h"

#include <sstream>

namespace asyncrd::core {

void transition_recorder::on_transition(node_id, status_t from, status_t to) {
  ++edges_[{from, to}];
  ++total_;
}

const std::set<transition_recorder::edge>& transition_recorder::legal_edges() {
  using s = status_t;
  static const std::set<edge> legal = {
      // wake-up: a node begins its execution in explore
      {s::asleep, s::explore},
      // Fig 1: explore -> wait (search sent, or unexplored and more empty)
      {s::explore, s::wait},
      // paper §4.1 text: an out-of-work waiting leader resumes exploring
      // when its `more` set becomes non-empty again
      {s::wait, s::explore},
      // Fig 1: search with higher (phase, id) arrives
      {s::wait, s::conquered},
      {s::passive, s::conquered},
      // Fig 1: release-abort arrives
      {s::wait, s::passive},
      // Fig 1: release-merge arrives (merge accept sent)
      {s::wait, s::conqueror},
      // Fig 1: merge fail arrives
      {s::conquered, s::passive},
      // Fig 1: merge accept arrives, info sent
      {s::conquered, s::inactive},
      // Fig 1: unaware set becomes empty
      {s::conqueror, s::explore},
      // Bounded variant (§4.5.1): |done| = n, final conquer broadcast sent.
      // Always reached via explore (a finishing conqueror re-enters explore
      // and the size check runs at the top of the explore loop).
      {s::explore, s::terminated},
  };
  return legal;
}

std::vector<transition_recorder::edge> transition_recorder::illegal_edges()
    const {
  std::vector<edge> bad;
  for (const auto& [e, count] : edges_)
    if (!legal_edges().contains(e)) bad.push_back(e);
  return bad;
}

std::map<std::string, std::uint64_t> transition_recorder::edge_multiplicities()
    const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [e, count] : edges_) out[edge_to_string(e)] = count;
  return out;
}

void transition_recorder::clear() {
  edges_.clear();
  total_ = 0;
}

std::string edge_to_string(const transition_recorder::edge& e) {
  std::ostringstream ss;
  ss << to_string(e.first) << " -> " << to_string(e.second);
  return ss.str();
}

}  // namespace asyncrd::core
