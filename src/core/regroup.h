// Node removals — the paper's closing open problem, treated pragmatically.
//
// §7: "Another interesting remaining open question is how to deal
// efficiently with dynamic node removals.  This topic is related to
// increasing the robustness of Resource Discovery."  And §1's motivation:
// "Consider a system in which many of the nodes were either reset or
// totally removed ... The first step toward rebuilding such a system is
// discovering and regrouping all the currently online nodes."
//
// We implement exactly that first step as a library operation: crash-stop
// an arbitrary node set and *regroup* the survivors by re-running resource
// discovery on the knowledge they retained (each survivor's accumulated id
// set, filtered to survivors).  This is not a new algorithm — the paper
// leaves sub-restart-cost removal open — but it packages the paper's own
// suggested remediation with the right complexity: the regroup costs what
// a fresh discovery on the surviving knowledge graph costs, independent of
// the pre-crash history.
#pragma once

#include <memory>
#include <set>

#include "core/runner.h"
#include "graph/digraph.h"

namespace asyncrd::core {

/// The surviving knowledge graph: one vertex per survivor, an edge
/// (u -> v) iff survivor u had learned survivor v's id in `before`.
/// Survivors = all nodes of `before` not in `removed`.
graph::digraph surviving_knowledge(const discovery_run& before,
                                   const std::set<node_id>& removed);

/// Crash-stops `removed` and regroups the survivors: builds a fresh
/// discovery_run over surviving_knowledge(), wakes everyone, and runs it
/// to quiescence.  The returned run owns the new network; check it with
/// check_final_state(run, surviving_knowledge(...)).
std::unique_ptr<discovery_run> regroup_after_removal(
    const discovery_run& before, const std::set<node_id>& removed,
    const config& cfg, sim::scheduler& sched);

/// Graphviz DOT rendering of a discovery outcome: the next-pointer forest
/// (solid arrows), with leaders double-circled and node labels annotated
/// with status and phase.  Feed to `dot -Tpng` alongside
/// graph::to_dot(E0) to see what discovery built on top of the knowledge
/// graph.
std::string forest_to_dot(const discovery_run& run);

}  // namespace asyncrd::core
