// Lemma 3.1: the reduction from classic Union-Find to Ad-hoc Resource
// Discovery, implemented as a driver around a real distributed execution.
//
// For a universe of n sets and a schedule U of unions and finds:
//   * one node s_i per set S_i                      (ids 0 .. n-1)
//   * per U(i, j): a node u with edges u->s_i, u->s_j
//   * per F(i):    a node f with edge  f->s_i
// The driver wakes the operation nodes in schedule order, running the
// network to quiescence between operations — exactly the adversarial
// wake-up sequence of the lemma's proof.  Waking u forces the algorithm to
// merge the components of s_i and s_j (a union); waking f forces a
// computation from s_i to reach the leader (a find).
//
// This gives both (a) the Theorem 2 lower-bound workload for the message
// benchmark, and (b) a distributed Union-Find whose answers are checked
// against a sequential reference DSU after every operation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "graph/digraph.h"
#include "unionfind/dsu.h"

namespace asyncrd::core {

class uf_reduction {
 public:
  /// Builds the reduction network for a schedule over sets {0, .., n-1}.
  /// `algo` defaults to the Ad-hoc variant (the lemma's subject) but the
  /// Generic algorithm can be driven through the same workload.
  uf_reduction(std::size_t n, std::vector<uf::uf_op> schedule,
               variant algo = variant::adhoc);

  /// Runs the whole wake-up sequence.  After every operation the
  /// distributed answer is compared with the sequential reference DSU;
  /// mismatches are recorded in errors().  Returns errors().empty().
  bool execute();

  /// Leader currently reachable from set node s_i via next pointers.
  node_id leader_of(std::size_t set_index) const;

  /// Total nodes in the reduction network (2n - 1 + m in the lemma).
  std::size_t network_size() const noexcept { return total_nodes_; }

  const sim::stats& statistics() const { return run_->statistics(); }
  discovery_run& run() noexcept { return *run_; }
  const std::vector<std::string>& errors() const noexcept { return errors_; }

 private:
  std::size_t n_;
  std::vector<uf::uf_op> schedule_;
  /// Operation node id for each schedule entry.
  std::vector<node_id> op_node_;
  std::size_t total_nodes_ = 0;
  graph::digraph g_;
  std::unique_ptr<sim::scheduler> sched_;
  std::unique_ptr<discovery_run> run_;
  std::vector<std::string> errors_;
};

}  // namespace asyncrd::core
