// Verification of the Asynchronous Resource Discovery specification
// (paper §1.2) against a finished or in-flight execution.
//
//  * check_final_state — the steady-state requirements: safety (1)-(3)
//    [or (3a)/(3b) for Ad-hoc] plus liveness (4): exactly one leader per
//    weakly connected component, the leader knows every id, every
//    non-leader knows (or can reach, in the Ad-hoc relaxation) the leader.
//  * liveness_monitor — checked after *every* delivery: at least one node
//    per component remains in a leader state (Lemma 5.1).
//  * check_message_bounds — Lemmas 5.5-5.8 per-message-type caps.
#pragma once

#include <string>
#include <vector>

#include "core/runner.h"
#include "graph/digraph.h"
#include "sim/network.h"
#include "sim/stats.h"

namespace asyncrd::core {

struct check_report {
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
  /// All violations joined with newlines (for gtest failure messages).
  std::string to_string() const;
};

/// Verifies the final state of `run` against the weak components of `g`.
/// Assumes every node was woken.  `g` must describe the final topology
/// (including any dynamic additions).
check_report check_final_state(const discovery_run& run,
                               const graph::digraph& g);

/// Same, against explicit component lists (each sorted ascending).
check_report check_final_state(
    const discovery_run& run,
    const std::vector<std::vector<node_id>>& components);

/// Portable snapshot of one node's checkable final state — what a
/// service-mode process reports over the control plane (net/envelope.h
/// dg_state) so the orchestrator can verify a cluster it does not host.
/// Mirrors exactly the fields check_final_state reads off a live node.
struct member_state {
  node_id id = invalid_node;
  status_t status = status_t::asleep;
  node_id next = invalid_node;
  bool has_deferred = false;
  bool has_pending = false;   ///< pending_queue_depth() != 0
  bool more_empty = true;
  bool unaware_empty = true;
  /// The node's done set (leaders only need it; harmless elsewhere).
  std::vector<node_id> done;

  bool is_leader() const noexcept { return is_leader_status(status); }
};

/// check_final_state's logic over member_state snapshots instead of a live
/// discovery_run: exactly one leader per weak component, leader's done set
/// equals the component, non-leaders inactive and routed to the leader
/// (next-pointer chain for adhoc), no parked work anywhere, bounded leader
/// terminated.  Members missing from `members` are reported as violations.
check_report check_membership(
    const std::vector<member_state>& members,
    const std::vector<std::vector<node_id>>& components, variant algo);

/// Lemma 5.1 invariant, evaluated after every delivery when installed as
/// the network observer: every component retains >= 1 leader-state node.
/// Violations are accumulated (with timestamps) rather than thrown.
class liveness_monitor final : public sim::observer {
 public:
  liveness_monitor(const discovery_run& run,
                   std::vector<std::vector<node_id>> components)
      : run_(&run), components_(std::move(components)) {}

  void on_deliver(sim::sim_time t, node_id from, node_id to,
                  const sim::message& m) override;

  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  bool ok() const noexcept { return violations_.empty(); }

 private:
  const discovery_run* run_;
  std::vector<std::vector<node_id>> components_;
  std::vector<std::string> violations_;
};

/// Structural invariant, checked after every delivery when installed as an
/// observer (chain through liveness_monitor via `chain`): the next-pointer
/// graph restricted to inactive nodes is acyclic — every routing chain
/// reaches a non-inactive node within n hops.  A cycle would wedge every
/// search routed into it; the engine prevents cycles by keeping pointer
/// updates monotone in (phase, id).
class structure_monitor final : public sim::observer {
 public:
  explicit structure_monitor(const discovery_run& run, sim::observer* chain = nullptr)
      : run_(&run), chain_(chain) {}

  void on_deliver(sim::sim_time t, node_id from, node_id to,
                  const sim::message& m) override;
  void on_send(sim::sim_time t, node_id from, node_id to,
               const sim::message& m) override {
    if (chain_ != nullptr) chain_->on_send(t, from, to, m);
  }
  void on_wake(sim::sim_time t, node_id v) override {
    if (chain_ != nullptr) chain_->on_wake(t, v);
  }

  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  bool ok() const noexcept { return violations_.empty(); }

 private:
  const discovery_run* run_;
  sim::observer* chain_;
  std::vector<std::string> violations_;
};

/// Measured-vs-cap row for one of the Lemma 5.5-5.8 bounds.
struct bound_row {
  std::string name;
  std::uint64_t measured = 0;
  double cap = 0.0;
  bool ok() const noexcept { return static_cast<double>(measured) <= cap; }
};

/// Evaluates the paper's per-message-type caps for an n-node run:
///   Lemma 5.5: query + query_reply          <= 4n
///   Lemma 5.6: search + release             <= C * n * alpha(n, n)
///   Lemma 5.7: merge_accept + merge_fail + info <= 2n
///   Lemma 5.8: conquer + more_done          <= 2 n log n  (generic)
///                                           <= 2n         (bounded)
///                                           == 0          (adhoc)
/// `search_release_constant` is the constant for the asymptotic Lemma 5.6
/// bound (the paper proves O(n alpha); we audit with an explicit C).
std::vector<bound_row> check_message_bounds(const sim::stats& st,
                                            std::size_t n, variant algo,
                                            double search_release_constant = 8.0);

}  // namespace asyncrd::core
