// Binary wire codec for the core message vocabulary.  Grammar in
// DESIGN.md §10; primitives in sim/wire.h.
//
// Encoders write the full frame — header byte first, then scalar fields as
// varints in declaration order (booleans/enums as one byte), then id sets
// as varint delta sets.  Decoders re-check everything the encoders
// guarantee, because the same functions back the malformed-input test
// suite (and, later, a socket backend fed by untrusted peers).

#include <limits>

#include "core/messages.h"

namespace asyncrd::core::wire {

namespace {

using sim::wire::put_id_set;
using sim::wire::put_varint;
using sim::wire::reader;
using sim::wire::wire_bit;

void put_header(std::vector<std::uint8_t>& out, msg_kind k) {
  out.push_back(static_cast<std::uint8_t>(wire_bit | tag_of(k)));
}

template <typename M>
const M& as(const sim::message& m) {
  return static_cast<const M&>(m);
}

// --- encoders (one per type, indexed by tag in codec()) -------------------

void enc_query(const sim::message& m, std::vector<std::uint8_t>& out) {
  put_header(out, msg_kind::query);
  put_varint(out, as<query_msg>(m).requested);
}

void enc_query_reply(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& q = as<query_reply_msg>(m);
  put_header(out, msg_kind::query_reply);
  put_id_set(out, q.ids);
  out.push_back(q.done_flag ? 1 : 0);
}

void enc_search(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& s = as<search_msg>(m);
  put_header(out, msg_kind::search);
  put_varint(out, s.initiator);
  put_varint(out, s.initiator_phase);
  put_varint(out, s.target);
  out.push_back(s.new_flag ? 1 : 0);
}

void enc_release(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& r = as<release_msg>(m);
  put_header(out, msg_kind::release);
  put_varint(out, r.from_leader);
  put_varint(out, r.from_phase);
  out.push_back(r.answer == release_msg::answer_t::merge ? 0 : 1);
  put_varint(out, r.initiator);
}

void enc_merge_accept(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& a = as<merge_accept_msg>(m);
  put_header(out, msg_kind::merge_accept);
  put_varint(out, a.conqueror);
  put_varint(out, a.conqueror_phase);
}

void enc_merge_fail(const sim::message&, std::vector<std::uint8_t>& out) {
  put_header(out, msg_kind::merge_fail);
}

void enc_info(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& i = as<info_msg>(m);
  put_header(out, msg_kind::info);
  put_varint(out, i.phase);
  put_id_set(out, i.more);
  put_id_set(out, i.done);
  put_id_set(out, i.unaware);
  put_id_set(out, i.unexplored);
}

void enc_conquer(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& c = as<conquer_msg>(m);
  put_header(out, msg_kind::conquer);
  put_varint(out, c.leader);
  put_varint(out, c.phase);
}

void enc_member_reply(const sim::message& m, std::vector<std::uint8_t>& out) {
  put_header(out, msg_kind::member_reply);
  out.push_back(as<member_reply_msg>(m).has_more ? 1 : 0);
}

void enc_probe(const sim::message& m, std::vector<std::uint8_t>& out) {
  put_header(out, msg_kind::probe);
  put_varint(out, as<probe_msg>(m).requester);
}

void enc_probe_reply(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& p = as<probe_reply_msg>(m);
  put_header(out, msg_kind::probe_reply);
  put_varint(out, p.leader);
  put_varint(out, p.leader_phase);
  put_varint(out, p.requester);
  put_id_set(out, p.census);
}

void enc_report(const sim::message& m, std::vector<std::uint8_t>& out) {
  put_header(out, msg_kind::report);
  put_varint(out, as<report_msg>(m).reporter);
}

void enc_report_ack(const sim::message& m, std::vector<std::uint8_t>& out) {
  const auto& r = as<report_ack_msg>(m);
  put_header(out, msg_kind::report_ack);
  put_varint(out, r.leader);
  put_varint(out, r.leader_phase);
  put_varint(out, r.reporter);
}

// --- decode helpers -------------------------------------------------------

reader open(const sim::wire_msg& w, msg_kind want) {
  if (w.inner_tag() != tag_of(want))
    throw sim::wire::decode_error("wire: frame tag does not match decoder");
  return reader(w.payload(), w.payload_size());
}

node_id rd_id(reader& r) {
  const std::uint64_t v = r.varint();
  if (v > std::numeric_limits<node_id>::max())
    throw sim::wire::decode_error("wire: id field exceeds node_id range");
  return static_cast<node_id>(v);
}

phase_t rd_phase(reader& r) {
  const std::uint64_t v = r.varint();
  if (v > std::numeric_limits<phase_t>::max())
    throw sim::wire::decode_error("wire: phase field exceeds 32 bits");
  return static_cast<phase_t>(v);
}

bool rd_bool(reader& r) {
  const std::uint8_t b = r.byte();
  if (b > 1) throw sim::wire::decode_error("wire: boolean byte not 0/1");
  return b != 0;
}

}  // namespace

const sim::wire_codec& codec() noexcept {
  static const sim::wire_codec table = [] {
    sim::wire_codec c;
    c.encode[tag_of(msg_kind::query)] = enc_query;
    c.encode[tag_of(msg_kind::query_reply)] = enc_query_reply;
    c.encode[tag_of(msg_kind::search)] = enc_search;
    c.encode[tag_of(msg_kind::release)] = enc_release;
    c.encode[tag_of(msg_kind::merge_accept)] = enc_merge_accept;
    c.encode[tag_of(msg_kind::merge_fail)] = enc_merge_fail;
    c.encode[tag_of(msg_kind::info)] = enc_info;
    c.encode[tag_of(msg_kind::conquer)] = enc_conquer;
    c.encode[tag_of(msg_kind::member_reply)] = enc_member_reply;
    c.encode[tag_of(msg_kind::probe)] = enc_probe;
    c.encode[tag_of(msg_kind::probe_reply)] = enc_probe_reply;
    c.encode[tag_of(msg_kind::report)] = enc_report;
    c.encode[tag_of(msg_kind::report_ack)] = enc_report_ack;
    // Only the id-set carriers trade their structs (plus pooled vectors)
    // for the compact frame; fixed-field messages are already minimal and
    // just have their frame bytes counted.
    c.materialize[tag_of(msg_kind::query_reply)] = true;
    c.materialize[tag_of(msg_kind::info)] = true;
    c.materialize[tag_of(msg_kind::probe_reply)] = true;
    return c;
  }();
  return table;
}

query_view decode_query(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::query);
  query_view v{static_cast<std::size_t>(r.varint())};
  r.expect_end();
  return v;
}

query_reply_view decode_query_reply(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::query_reply);
  query_reply_view v;
  v.ids = sim::wire::id_set_view::parse(r);
  v.done_flag = rd_bool(r);
  r.expect_end();
  return v;
}

search_view decode_search(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::search);
  search_view v;
  v.initiator = rd_id(r);
  v.initiator_phase = rd_phase(r);
  v.target = rd_id(r);
  v.new_flag = rd_bool(r);
  r.expect_end();
  return v;
}

release_view decode_release(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::release);
  release_view v;
  v.from_leader = rd_id(r);
  v.from_phase = rd_phase(r);
  v.answer = rd_bool(r) ? release_msg::answer_t::abort
                        : release_msg::answer_t::merge;
  v.initiator = rd_id(r);
  r.expect_end();
  return v;
}

merge_accept_view decode_merge_accept(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::merge_accept);
  merge_accept_view v;
  v.conqueror = rd_id(r);
  v.conqueror_phase = rd_phase(r);
  r.expect_end();
  return v;
}

info_view decode_info(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::info);
  info_view v;
  v.phase = rd_phase(r);
  v.more = sim::wire::id_set_view::parse(r);
  v.done = sim::wire::id_set_view::parse(r);
  v.unaware = sim::wire::id_set_view::parse(r);
  v.unexplored = sim::wire::id_set_view::parse(r);
  r.expect_end();
  return v;
}

conquer_view decode_conquer(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::conquer);
  conquer_view v;
  v.leader = rd_id(r);
  v.phase = rd_phase(r);
  r.expect_end();
  return v;
}

member_reply_view decode_member_reply(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::member_reply);
  member_reply_view v{rd_bool(r)};
  r.expect_end();
  return v;
}

probe_view decode_probe(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::probe);
  probe_view v{rd_id(r)};
  r.expect_end();
  return v;
}

probe_reply_view decode_probe_reply(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::probe_reply);
  probe_reply_view v;
  v.leader = rd_id(r);
  v.leader_phase = rd_phase(r);
  v.requester = rd_id(r);
  v.census = sim::wire::id_set_view::parse(r);
  r.expect_end();
  return v;
}

report_view decode_report(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::report);
  report_view v{rd_id(r)};
  r.expect_end();
  return v;
}

report_ack_view decode_report_ack(const sim::wire_msg& w) {
  reader r = open(w, msg_kind::report_ack);
  report_ack_view v;
  v.leader = rd_id(r);
  v.leader_phase = rd_phase(r);
  v.reporter = rd_id(r);
  r.expect_end();
  return v;
}

std::string_view tag_name(std::uint8_t tag) noexcept {
  // Must mirror the struct type_name() literals exactly: service-mode wire
  // accounting keys frames by these names and is compared against sim runs.
  switch (static_cast<msg_kind>(tag)) {
    case msg_kind::query: return "query";
    case msg_kind::query_reply: return "query_reply";
    case msg_kind::search: return "search";
    case msg_kind::release: return "release";
    case msg_kind::merge_accept: return "merge_accept";
    case msg_kind::merge_fail: return "merge_fail";
    case msg_kind::info: return "info";
    case msg_kind::conquer: return "conquer";
    case msg_kind::member_reply: return "more_done";
    case msg_kind::probe: return "probe";
    case msg_kind::probe_reply: return "probe_reply";
    case msg_kind::report: return "report";
    case msg_kind::report_ack: return "report_ack";
  }
  return "";
}

void validate_frame(const std::uint8_t* data, std::size_t len) {
  if (len == 0) throw sim::wire::decode_error("wire: empty frame");
  const std::uint8_t header = data[0];
  if ((header & sim::wire::wire_bit) == 0)
    throw sim::wire::decode_error("wire: header missing wire bit");
  const auto tag = static_cast<std::uint8_t>(header & ~sim::wire::wire_bit);
  reader r(data + 1, len - 1);
  // One arm per type, parsing exactly what the matching decoder parses —
  // every scalar range check, delta-set rule, and the no-trailing-bytes
  // rule — without materializing a view struct.  A frame that passes here
  // is safe to box as a wire_msg and hand to node::handle_wire.
  switch (static_cast<msg_kind>(tag)) {
    case msg_kind::query:
      r.varint();
      break;
    case msg_kind::query_reply:
      sim::wire::id_set_view::parse(r);
      rd_bool(r);
      break;
    case msg_kind::search:
      rd_id(r);
      rd_phase(r);
      rd_id(r);
      rd_bool(r);
      break;
    case msg_kind::release:
      rd_id(r);
      rd_phase(r);
      rd_bool(r);
      rd_id(r);
      break;
    case msg_kind::merge_accept:
      rd_id(r);
      rd_phase(r);
      break;
    case msg_kind::merge_fail:
      break;
    case msg_kind::info:
      rd_phase(r);
      sim::wire::id_set_view::parse(r);
      sim::wire::id_set_view::parse(r);
      sim::wire::id_set_view::parse(r);
      sim::wire::id_set_view::parse(r);
      break;
    case msg_kind::conquer:
      rd_id(r);
      rd_phase(r);
      break;
    case msg_kind::member_reply:
      rd_bool(r);
      break;
    case msg_kind::probe:
      rd_id(r);
      break;
    case msg_kind::probe_reply:
      rd_id(r);
      rd_phase(r);
      rd_id(r);
      sim::wire::id_set_view::parse(r);
      break;
    case msg_kind::report:
      rd_id(r);
      break;
    case msg_kind::report_ack:
      rd_id(r);
      rd_phase(r);
      rd_id(r);
      break;
    default:
      throw sim::wire::decode_error("wire: unknown frame tag");
  }
  r.expect_end();
}

}  // namespace asyncrd::core::wire
