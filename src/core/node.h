// The Generic asynchronous resource-discovery algorithm (paper §4) as an
// event-driven state machine, with the policy knobs of §4.5 selecting the
// Bounded and Ad-hoc variants.
//
// The paper's pseudocode (Figures 3-6) is written in blocking "wait for
// message" style; this engine realizes the same semantics with *selective
// receive*: every state declares which message types it consumes, and
// anything else is parked in a per-node deferred queue that is re-scanned
// after every state change.  FIFO order among same-type messages from the
// same sender is preserved.
//
// Paper typos handled here (also listed in DESIGN.md):
//  * Fig 4, WAIT, release-merge arm reads "state := conqueror; send merge
//    accept; state := conquered; goto CONQUEROR" — the stray assignment is
//    ignored; the transition is wait -> conqueror (matching Fig 1).
//  * Fig 5's conquer handler omits the phase guard the §4.4 text requires;
//    we follow the text: `next` is only redirected when the conqueror's
//    (phase, id) is lexicographically above the currently known leader's.
//  * WAIT doubles as "awaiting my release" and "out of work"; §4.1's text
//    ("the leader v waits until v.more becomes non-empty") implies an
//    out-of-work waiting leader resumes EXPLORE when work appears, so the
//    engine tracks awaiting_release_ explicitly.
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "common/flat_hash.h"
#include "common/flat_set.h"
#include "common/ids.h"
#include "core/messages.h"
#include "core/status.h"
#include "core/trace.h"
#include "sim/network.h"

namespace asyncrd::core {

/// Which of the paper's three algorithms the engine runs (§4.5).
enum class variant : unsigned char {
  generic,  ///< Oblivious model: component size unknown, conquer per phase
  bounded,  ///< §4.5.1: size known; final conquer broadcast; terminates
  adhoc,    ///< §4.5.2: no conquer messages; probe-to-leader on demand
};

constexpr std::string_view to_string(variant v) noexcept {
  switch (v) {
    case variant::generic: return "generic";
    case variant::bounded: return "bounded";
    case variant::adhoc: return "adhoc";
  }
  return "?";
}

/// Per-run configuration shared by all nodes (owned by the runner).
struct config {
  variant algo = variant::generic;
  /// Probe replies carry the full id census (true) or just the leader id.
  bool census_in_probe_reply = true;
  /// Ablation knob: disable path compression on release/reply routing
  /// (intermediate nodes keep their old `next` pointer).
  bool path_compression = true;
  /// Ablation knob: disable the phase mechanism (all comparisons fall back
  /// to id order, i.e. no union-by-rank analogue).
  bool use_phases = true;
  /// Ablation knob: disable the balanced query mechanism.  The paper's
  /// leaders request exactly min{|more|+|done|+1, |local|} ids per query —
  /// "leader nodes receive just as many ids as needed in order to
  /// progress" (§4.1); this is what keeps the exploration frontier small
  /// (Lemma 5.10's invariant) and improves the bit complexity over Kutten
  /// & Peleg [3].  With false, a query drains the member's whole local set
  /// at once ("the trivial solution ... would lead to a higher bit
  /// complexity O(|E0| log^2 n)").
  bool balanced_queries = true;
  /// Optional transition trace.
  trace_sink* trace = nullptr;
};

/// Result of an Ad-hoc census probe, observed by the requesting node.
struct census_result {
  node_id leader = invalid_node;
  std::vector<node_id> ids;
  sim::sim_time completed_at = 0;
};

class node final : public sim::process {
 public:
  /// `initial_local` is the node's out-neighborhood in E0; `component_size`
  /// is required for variant::bounded (the Bounded model's extra knowledge)
  /// and ignored otherwise.
  node(node_id id, const config& cfg, std::set<node_id> initial_local,
       std::size_t component_size = 0);

  // --- sim::process ------------------------------------------------------
  void on_wake(sim::context& ctx) override;
  void on_message(sim::context& ctx, node_id from,
                  const sim::message_ptr& m) override;

  // --- external stimuli (harness API) -------------------------------------
  /// Ad-hoc: ask for the current component snapshot (§4.5.2).  The reply
  /// lands in last_census() after the network runs.
  void initiate_probe(sim::network& net);

  /// §6: a new link (this -> target) appears at run time.
  void add_link(sim::network& net, node_id target);

  // --- inspection (checker / benches) -------------------------------------
  node_id id() const noexcept { return id_; }
  status_t status() const noexcept { return status_; }
  bool is_leader() const noexcept { return is_leader_status(status_); }
  phase_t phase() const noexcept { return phase_; }
  node_id next() const noexcept { return next_; }

  const flat_set<node_id>& local() const noexcept { return local_; }
  const flat_set<node_id>& more() const noexcept { return more_; }
  const flat_set<node_id>& done() const noexcept { return done_; }
  const flat_set<node_id>& unaware() const noexcept { return unaware_; }
  const flat_set<node_id>& unexplored() const noexcept {
    return unexplored_;
  }

  /// Members this leader would report: more ∪ done ∪ unaware.
  std::vector<node_id> known_members() const;

  const std::optional<census_result>& last_census() const noexcept {
    return census_;
  }
  std::size_t pending_queue_depth() const noexcept { return previous_.size(); }
  bool has_deferred() const noexcept { return !deferred_.empty(); }
  /// Type names of parked messages (diagnostics; empty when none).
  std::vector<std::string> deferred_types() const;

  /// Knowledge-graph audit: true iff this node has ever learned `v`'s id
  /// through any channel the model admits (initial edges, message payloads,
  /// message receipt).  Every send this node performs must target a node
  /// for which knows_id() holds — tests enforce this discipline.
  bool knows_id(node_id v) const;

  /// Every id this node currently knows (the union knows_id draws from,
  /// minus itself).  This is what survives a crash-stop of other nodes:
  /// core/regroup.h seeds the post-removal re-discovery from it.
  std::set<node_id> known_ids() const;

 private:
  // -- state transitions ----------------------------------------------------
  void set_status(status_t s);
  void wake_body(sim::context& ctx);

  // -- message dispatch ------------------------------------------------------
  //
  // Every handler that can receive an id set is a member template over a
  // "field carrier": the struct message and its wire view (core::wire)
  // share field names, so one definition serves both representations and
  // the wire path iterates encoded delta sets in place — no vector is
  // materialized on delivery.  Templates are defined in node.cpp; every
  // instantiation happens there too.
  bool accepts(const sim::message& m) const;
  /// The status-only part of accepts() — every kind whose answer needs no
  /// payload peek.
  bool accepts_kind(msg_kind k) const;
  bool accepts_release(node_id initiator) const;
  bool accepts_probe_reply(node_id requester) const;
  bool accepts_report_ack(node_id reporter) const;
  void handle(sim::context& ctx, node_id from, const sim::message_ptr& m);
  /// Decodes an encoded frame (sim::wire_msg) and dispatches it through the
  /// same handlers as the struct path.
  void handle_wire(sim::context& ctx, node_id from, const sim::message_ptr& m);
  /// Shared search body (Fig 5 preprocessing + inactive/leader split).
  /// `original` is the delivered message — forwarded as-is on the routing
  /// path unless preprocessing flipped the new flag.
  void handle_search(sim::context& ctx, node_id from, const search_msg& s,
                     const sim::message_ptr& original);
  void handle_release(sim::context& ctx, node_id from, const release_msg& r,
                      const sim::message_ptr& original);
  template <typename PR>
  void handle_probe_reply(sim::context& ctx, const PR& pr,
                          const sim::message_ptr& original);
  void handle_report_ack(sim::context& ctx, node_id leader, phase_t lp,
                         node_id reporter, const sim::message_ptr& original);
  void drain_deferred(sim::context& ctx);

  // -- EXPLORE (Fig 3) -------------------------------------------------------
  void enter_explore(sim::context& ctx);
  void explore_step(sim::context& ctx);
  template <typename Ids>
  void apply_query_reply(sim::context& ctx, node_id from, const Ids& ids,
                         bool done_flag);
  /// "v itself may appear in v.more, in this case v simulates the message
  /// sending internally" (§4.1).
  void self_query(std::size_t k, id_vec& out, bool& done_flag);

  // -- WAIT / PASSIVE (Fig 4) --------------------------------------------------
  void leader_on_search(sim::context& ctx, node_id from, const search_msg& m);
  void leader_on_own_release(sim::context& ctx, const release_msg& m);
  void maybe_resume_explore(sim::context& ctx);

  // -- CONQUERED / CONQUEROR (Fig 6) -------------------------------------------
  void on_merge_accept(sim::context& ctx, const merge_accept_msg& m);
  void on_merge_fail(sim::context& ctx);
  template <typename Info>
  void on_info(sim::context& ctx, node_id from, const Info& m);
  void on_member_reply(sim::context& ctx, node_id from,
                       const member_reply_msg& m);
  void conquest_maybe_finished(sim::context& ctx);
  void finalize_bounded(sim::context& ctx);

  // -- INACTIVE routing (Fig 5) --------------------------------------------------
  void inactive_on_query(sim::context& ctx, node_id from, const query_msg& m);
  void route_request(sim::context& ctx, node_id from, sim::message_ptr m);
  void route_reply(sim::context& ctx, node_id new_next, sim::message_ptr m,
                   node_id final_target);
  void on_conquer(sim::context& ctx, node_id from, const conquer_msg& m);

  // -- leader-side request handling -----------------------------------------
  void leader_on_probe(sim::context& ctx, node_id from, const probe_msg& m);
  void leader_on_report(sim::context& ctx, node_id from, const report_msg& m);

  // -- misc helpers -------------------------------------------------------------
  bool is_member(node_id v) const;
  void prune_unexplored();
  void send_search(sim::context& ctx, node_id u);
  id_vec census_ids() const;
  /// Monotone next-pointer update: redirect only toward a lexicographically
  /// higher (phase, id) key, so routing chains never cycle.
  void maybe_update_next(phase_t ph, node_id leader);
  /// Knowledge-graph growth: record a newly learned id and guarantee it is
  /// eventually reported to (or explored by) the current leader.  Used by
  /// §6 link additions and by the refused-merge path (see node.cpp).
  void learn_id(sim::context& ctx, node_id w);
  template <typename Ids>
  void absorb_query_reply(node_id w, const Ids& ids, bool done_flag);

  // -- identity & configuration --
  node_id id_;
  const config* cfg_;
  std::size_t component_size_;

  // -- Fig 2 data structures --
  status_t status_ = status_t::asleep;
  // All id sets are sorted flat vectors (common/flat_set.h): same ascending
  // iteration order as the std::set they replace, so every deterministic
  // "smallest first" choice is preserved, at a fraction of the per-element
  // cost on the delivery hot path.
  flat_set<node_id> local_;
  /// Every id this node has ever had in `local` (E0 out-neighborhood plus
  /// ids learned from search preprocessing and dynamic link additions).
  /// Audit-only (membership queries; never iterated for protocol
  /// decisions), so a hash set: grown once per search at hub nodes.
  flat_u64_set known_;
  /// Every node this node has ever received a message from (the model also
  /// grows E on receipt: a message implicitly carries its sender's id).
  /// Only used by knows_id() for the knowledge-discipline audit — a hash
  /// set: one idempotent insert per delivered message is the single most
  /// frequent set operation in the engine.
  flat_u64_set contacts_;
  flat_set<node_id> more_, done_, unaware_, unexplored_;
  /// FIFO of (routed request, node it arrived from) awaiting this node's
  /// `next` hop; only the head is in flight at any time.
  std::deque<std::pair<sim::message_ptr, node_id>> previous_;
  node_id next_;
  phase_t phase_ = 1;
  /// Phase of the leader `next_` points at (for the conquer guard).
  phase_t next_phase_ = 1;

  // -- engine bookkeeping --
  /// Target of the query currently in flight (EXPLORE), or invalid.
  node_id pending_query_ = invalid_node;
  /// True iff this leader has an outstanding search (WAIT awaits a release).
  bool awaiting_release_ = false;
  /// Messages the current state does not consume, in arrival order.
  std::deque<std::pair<node_id, sim::message_ptr>> deferred_;
  /// Latest completed census (Ad-hoc probes).
  std::optional<census_result> census_;
  /// Probe requested before wake / while asleep — sent on wake.
  bool probe_queued_ = false;
  /// Re-entrancy guard for drain_deferred.
  bool draining_ = false;
};

}  // namespace asyncrd::core
