// Node statuses (paper Figure 1 / Figure 2's STATUS type) plus the two
// statuses the formal model implies but the figure leaves implicit:
// `asleep` (before the node's asynchronous wake-up) and `terminated` (the
// Bounded variant's explicit termination, §4.5.1 / Theorem 4).
#pragma once

#include <string_view>

namespace asyncrd::core {

enum class status_t : unsigned char {
  asleep,      ///< not yet woken (no global initialization time, §1.2)
  explore,     ///< leader searching for unexplored nodes (Fig 3)
  wait,        ///< leader waiting for a search or release (Fig 4)
  passive,     ///< lost leader: waits to be found and conquered (Fig 4)
  conqueror,   ///< leader collecting info / more-done replies (Fig 6)
  conquered,   ///< awaiting merge accept / merge fail (Fig 6)
  inactive,    ///< absorbed: pure message router (Fig 5)
  terminated,  ///< Bounded variant only: |done| reached the component size
};

/// Paper §4: "We will call a node leader if its state is not conquered or
/// inactive or passive."  `asleep` nodes are leaders-to-be (their initial
/// state is explore) and `terminated` is the Bounded leader's final state.
constexpr bool is_leader_status(status_t s) noexcept {
  return s == status_t::asleep || s == status_t::explore ||
         s == status_t::wait || s == status_t::conqueror ||
         s == status_t::terminated;
}

constexpr std::string_view to_string(status_t s) noexcept {
  switch (s) {
    case status_t::asleep: return "asleep";
    case status_t::explore: return "explore";
    case status_t::wait: return "wait";
    case status_t::passive: return "passive";
    case status_t::conqueror: return "conqueror";
    case status_t::conquered: return "conquered";
    case status_t::inactive: return "inactive";
    case status_t::terminated: return "terminated";
  }
  return "?";
}

}  // namespace asyncrd::core
