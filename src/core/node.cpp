// Implementation of the Generic algorithm (paper §4, Figures 3-6) and its
// Bounded / Ad-hoc variants (§4.5, §6).  See node.h for the selective-
// receive architecture and the list of paper typos handled.
#include "core/node.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace asyncrd::core {

namespace {

/// set difference helper: items of `src` not present in any of the filters.
/// Survivors are collected first so the destination grows by one merge
/// instead of |src| individual inserts (info absorption ships whole sets).
/// `src` is any ascending id range: an id_vec or a wire::id_set_view (wire
/// mode walks the encoded deltas in place, never materializing a vector).
template <typename Range, typename... Sets>
void insert_unknown(flat_set<node_id>& dst, const Range& src, node_id self,
                    const Sets&... filters) {
  // Scratch survives across calls: this runs once per absorbed reply/info,
  // and a fresh vector here was a measurable slice of the run's mallocs.
  // Safe: insert_unknown never re-enters itself.
  static thread_local std::vector<node_id> keep;
  keep.clear();
  keep.reserve(src.size());
  for (const auto raw : src) {
    const node_id v = static_cast<node_id>(raw);
    if (v == self) continue;
    if ((filters.contains(v) || ...)) continue;
    keep.push_back(v);
  }
  dst.insert(keep.begin(), keep.end());
}

id_vec to_vector(const flat_set<node_id>& s) { return {s.begin(), s.end()}; }

}  // namespace

node::node(node_id id, const config& cfg, std::set<node_id> initial_local,
           std::size_t component_size)
    : id_(id),
      cfg_(&cfg),
      component_size_(component_size),
      local_(initial_local),  // ordered input: adopted without a re-sort
      next_(id) {
  local_.erase(id_);  // a node trivially knows itself; never reported
  for (const node_id v : local_) known_.insert(v);
  known_.insert(id_);
  more_.insert(id_);  // Fig 2: more initially contains {id}
}

// ---------------------------------------------------------------------------
// wake-up
// ---------------------------------------------------------------------------

void node::on_wake(sim::context& ctx) { wake_body(ctx); }

void node::wake_body(sim::context& ctx) {
  ASYNCRD_CHECK(status_ == status_t::asleep);
  enter_explore(ctx);
  if (probe_queued_) {
    probe_queued_ = false;
    // A freshly woken node is its own leader: the census is its own view.
    const id_vec c = census_ids();
    census_ = census_result{id_, {c.begin(), c.end()}, ctx.now()};
  }
}

// ---------------------------------------------------------------------------
// dispatch: selective receive
// ---------------------------------------------------------------------------

void node::on_message(sim::context& ctx, node_id from,
                      const sim::message_ptr& m) {
  contacts_.insert(from);
  if (accepts(*m))
    handle(ctx, from, m);
  else
    deferred_.emplace_back(from, m);
}

bool node::knows_id(node_id v) const {
  return v == id_ || known_.contains(v) || local_.contains(v) ||
         is_member(v) || unexplored_.contains(v) || contacts_.contains(v) ||
         next_ == v;
}

std::set<node_id> node::known_ids() const {
  std::set<node_id> out;
  known_.for_each([&out](std::uint64_t k) {
    out.insert(static_cast<node_id>(k));
  });
  out.insert(local_.begin(), local_.end());
  out.insert(more_.begin(), more_.end());
  out.insert(done_.begin(), done_.end());
  out.insert(unaware_.begin(), unaware_.end());
  out.insert(unexplored_.begin(), unexplored_.end());
  contacts_.for_each([&out](std::uint64_t k) {
    out.insert(static_cast<node_id>(k));
  });
  if (next_ != id_) out.insert(next_);
  out.erase(id_);
  return out;
}

bool node::accepts(const sim::message& m) const {
  const std::uint8_t raw = m.dispatch_tag();
  if ((raw & sim::wire::wire_bit) == 0) {
    switch (static_cast<msg_kind>(raw)) {
      case msg_kind::release:
        return accepts_release(static_cast<const release_msg&>(m).initiator);
      case msg_kind::probe_reply:
        return accepts_probe_reply(
            static_cast<const probe_reply_msg&>(m).requester);
      case msg_kind::report_ack:
        return accepts_report_ack(
            static_cast<const report_ack_msg&>(m).reporter);
      default:
        return accepts_kind(static_cast<msg_kind>(raw));
    }
  }
  // Encoded frame: same selective-receive decisions, peeking the three
  // kinds whose answer depends on a payload field.  (Tags with the wire
  // bit set are reserved for frames on the node delivery path; a foreign
  // high-tag message falls through accepts_kind to "never consumed".)
  const std::uint8_t inner = raw & static_cast<std::uint8_t>(~sim::wire::wire_bit);
  switch (static_cast<msg_kind>(inner)) {
    case msg_kind::release:
      return accepts_release(
          wire::decode_release(static_cast<const sim::wire_msg&>(m)).initiator);
    case msg_kind::probe_reply:
      return accepts_probe_reply(
          wire::decode_probe_reply(static_cast<const sim::wire_msg&>(m))
              .requester);
    case msg_kind::report_ack:
      return accepts_report_ack(
          wire::decode_report_ack(static_cast<const sim::wire_msg&>(m))
              .reporter);
    default:
      return accepts_kind(static_cast<msg_kind>(inner));
  }
}

bool node::accepts_kind(msg_kind k) const {
  using s = status_t;
  switch (k) {
    case msg_kind::query:
      // query is a pure local_-set transaction; answerable in any awake
      // state.
      return true;

    case msg_kind::query_reply:
      return status_ == s::explore;

    case msg_kind::search:
      // Terminated (Bounded) leaders still answer stragglers: a search sent
      // by an ex-leader *before* it was conquered may be delayed arbitrarily
      // and arrive after termination; without a release-abort the routing
      // queues along its path would stay wedged forever.
      return status_ == s::wait || status_ == s::passive ||
             status_ == s::inactive || status_ == s::terminated;

    case msg_kind::merge_accept:
    case msg_kind::merge_fail:
      return status_ == s::conquered;

    case msg_kind::info:
      return status_ == s::conqueror;

    case msg_kind::conquer:
      return status_ == s::inactive;

    case msg_kind::member_reply:
      return status_ == s::conqueror || status_ == s::terminated;

    case msg_kind::probe:
      return status_ == s::wait || status_ == s::inactive ||
             status_ == s::terminated;

    case msg_kind::report:
      return status_ == s::wait || status_ == s::passive ||
             status_ == s::inactive || status_ == s::terminated;

    default:
      return false;  // untagged / foreign message: never consumed
  }
}

bool node::accepts_release(node_id initiator) const {
  using s = status_t;
  if (initiator == id_)
    return status_ == s::wait || status_ == s::passive ||
           status_ == s::conquered || status_ == s::inactive;
  return status_ == s::inactive;  // routing hop
}

bool node::accepts_probe_reply(node_id requester) const {
  if (requester == id_) return true;
  return status_ == status_t::inactive;
}

bool node::accepts_report_ack(node_id reporter) const {
  if (reporter == id_) return true;
  return status_ == status_t::inactive;
}

void node::handle(sim::context& ctx, node_id from, const sim::message_ptr& m) {
  if ((m->dispatch_tag() & sim::wire::wire_bit) != 0) {
    handle_wire(ctx, from, m);
    return;
  }
  switch (static_cast<msg_kind>(m->dispatch_tag())) {
  case msg_kind::query: {
    const auto* q = static_cast<const query_msg*>(m.get());
    inactive_on_query(ctx, from, *q);
    return;
  }
  case msg_kind::query_reply: {
    const auto* qr = static_cast<const query_reply_msg*>(m.get());
    apply_query_reply(ctx, from, qr->ids, qr->done_flag);
    return;
  }
  case msg_kind::search: {
    handle_search(ctx, from, *static_cast<const search_msg*>(m.get()), m);
    return;
  }
  case msg_kind::release: {
    handle_release(ctx, from, *static_cast<const release_msg*>(m.get()), m);
    return;
  }
  case msg_kind::merge_accept: {
    on_merge_accept(ctx, *static_cast<const merge_accept_msg*>(m.get()));
    return;
  }
  case msg_kind::merge_fail: {
    on_merge_fail(ctx);
    return;
  }
  case msg_kind::info: {
    on_info(ctx, from, *static_cast<const info_msg*>(m.get()));
    return;
  }
  case msg_kind::conquer: {
    on_conquer(ctx, from, *static_cast<const conquer_msg*>(m.get()));
    return;
  }
  case msg_kind::member_reply: {
    const auto* mr = static_cast<const member_reply_msg*>(m.get());
    if (status_ == status_t::conqueror) on_member_reply(ctx, from, *mr);
    // terminated (Bounded): the final conquer's replies are absorbed.
    return;
  }
  case msg_kind::probe: {
    const auto* p = static_cast<const probe_msg*>(m.get());
    if (status_ == status_t::inactive)
      route_request(ctx, from, m);
    else
      leader_on_probe(ctx, from, *p);
    return;
  }
  case msg_kind::probe_reply: {
    handle_probe_reply(ctx, *static_cast<const probe_reply_msg*>(m.get()), m);
    return;
  }
  case msg_kind::report: {
    const auto* rep = static_cast<const report_msg*>(m.get());
    if (status_ == status_t::inactive)
      route_request(ctx, from, m);
    else
      leader_on_report(ctx, from, *rep);
    return;
  }
  case msg_kind::report_ack: {
    const auto* ra = static_cast<const report_ack_msg*>(m.get());
    handle_report_ack(ctx, ra->leader, ra->leader_phase, ra->reporter, m);
    return;
  }
  default:
    ASYNCRD_CHECK(false && "unhandled message type");
  }
}

void node::handle_wire(sim::context& ctx, node_id from,
                       const sim::message_ptr& m) {
  // Fixed-field kinds decode onto the stack (a handful of varints); the
  // id-set-carrying kinds (query_reply, info, probe_reply) hand zero-copy
  // views to the templated handlers.  Routed kinds forward the original
  // frame untouched — the next hop retransmits the same bytes.
  const auto& wm = static_cast<const sim::wire_msg&>(*m);
  switch (static_cast<msg_kind>(wm.inner_tag())) {
  case msg_kind::query: {
    const query_msg q(wire::decode_query(wm).requested);
    inactive_on_query(ctx, from, q);
    return;
  }
  case msg_kind::query_reply: {
    const auto v = wire::decode_query_reply(wm);
    apply_query_reply(ctx, from, v.ids, v.done_flag);
    return;
  }
  case msg_kind::search: {
    const auto v = wire::decode_search(wm);
    const search_msg s(v.initiator, v.initiator_phase, v.target, v.new_flag);
    handle_search(ctx, from, s, m);
    return;
  }
  case msg_kind::release: {
    const auto v = wire::decode_release(wm);
    const release_msg r(v.from_leader, v.from_phase, v.answer, v.initiator);
    handle_release(ctx, from, r, m);
    return;
  }
  case msg_kind::merge_accept: {
    const auto v = wire::decode_merge_accept(wm);
    on_merge_accept(ctx, merge_accept_msg(v.conqueror, v.conqueror_phase));
    return;
  }
  case msg_kind::merge_fail: {
    on_merge_fail(ctx);
    return;
  }
  case msg_kind::info: {
    on_info(ctx, from, wire::decode_info(wm));
    return;
  }
  case msg_kind::conquer: {
    const auto v = wire::decode_conquer(wm);
    on_conquer(ctx, from, conquer_msg(v.leader, v.phase));
    return;
  }
  case msg_kind::member_reply: {
    if (status_ == status_t::conqueror)
      on_member_reply(ctx, from,
                      member_reply_msg(wire::decode_member_reply(wm).has_more));
    // terminated (Bounded): the final conquer's replies are absorbed.
    return;
  }
  case msg_kind::probe: {
    if (status_ == status_t::inactive) {
      route_request(ctx, from, m);
      return;
    }
    leader_on_probe(ctx, from, probe_msg(wire::decode_probe(wm).requester));
    return;
  }
  case msg_kind::probe_reply: {
    handle_probe_reply(ctx, wire::decode_probe_reply(wm), m);
    return;
  }
  case msg_kind::report: {
    if (status_ == status_t::inactive) {
      route_request(ctx, from, m);
      return;
    }
    leader_on_report(ctx, from, report_msg(wire::decode_report(wm).reporter));
    return;
  }
  case msg_kind::report_ack: {
    const auto v = wire::decode_report_ack(wm);
    handle_report_ack(ctx, v.leader, v.leader_phase, v.reporter, m);
    return;
  }
  default:
    ASYNCRD_CHECK(false && "unhandled wire frame tag");
  }
}

void node::handle_search(sim::context& ctx, node_id from, const search_msg& s,
                         const sim::message_ptr& original) {
  // --- Fig 5 target-side preprocessing, shared by every receiver role:
  // "if id == u.id and v.id ∉ local then local := local ∪ {v};
  //  M.new := true".  The literal test against `local` (not against
  // everything ever known) is load-bearing: when the initiator later goes
  // passive, re-injecting its id into the target's unreported pool is what
  // lets the surviving leader re-discover it — this is exactly the
  // bidirectional-edge argument in the proof of Lemma 5.4.
  bool new_flag = s.new_flag;
  if (s.target == id_ && s.initiator != id_ &&
      !local_.contains(s.initiator)) {
    known_.insert(s.initiator);
    local_.insert(s.initiator);
    new_flag = true;
  }
  // "if new == true and u ∈ done then done := done \ {u};
  //  more := more ∪ {u}" — meaningful at the leader; a routing hop has
  // empty more/done so this is a no-op there.  A terminated Bounded
  // leader skips it: its census is already complete (done == component),
  // so the "new" id is necessarily a member it knows.
  if (status_ != status_t::terminated && new_flag && done_.contains(s.target)) {
    done_.erase(s.target);
    more_.insert(s.target);
  }
  if (status_ == status_t::inactive) {
    sim::message_ptr fwd = original;
    if (new_flag != s.new_flag)
      fwd = sim::make_message<search_msg>(s.initiator, s.initiator_phase,
                                          s.target, new_flag);
    route_request(ctx, from, std::move(fwd));
  } else {
    leader_on_search(ctx, from, s);
  }
}

void node::handle_release(sim::context& ctx, node_id /*from*/,
                          const release_msg& r,
                          const sim::message_ptr& original) {
  if (r.initiator == id_) {
    if (status_ == status_t::wait) {
      leader_on_own_release(ctx, r);
    } else {
      // passive / conquered / inactive: Fig 4-6 — a merge request can no
      // longer be honored; an abort needs no action.
      if (r.answer == release_msg::answer_t::merge) {
        contacts_.insert(r.from_leader);  // id learned from the payload
        ctx.send(r.from_leader, sim::make_message<merge_fail_msg>());
        // The knowledge graph grew: we just received from_leader's id
        // (§1: "the edge set E grows each time a node receives an id of
        // a node it did not know of").  The refused merger will go
        // passive; if its id were dropped here, no leader could ever
        // rediscover it and liveness (property 4) would fail.  A node
        // that still owns its sets passes the tip along in its info
        // (unexplored ships to the conqueror); an inactive node feeds it
        // through the unreported pool + §6 report machinery.
        if (status_ == status_t::inactive)
          learn_id(ctx, r.from_leader);
        else if (!is_member(r.from_leader))
          unexplored_.insert(r.from_leader);
      }
    }
  } else {
    // Fig 5: next := l happens before the queued search is re-forwarded.
    if (cfg_->path_compression)
      maybe_update_next(r.from_phase, r.from_leader);
    route_reply(ctx, r.from_leader, original, r.initiator);
  }
}

template <typename PR>
void node::handle_probe_reply(sim::context& ctx, const PR& pr,
                              const sim::message_ptr& original) {
  if (pr.requester == id_) {
    census_ = census_result{
        pr.leader, std::vector<node_id>(pr.census.begin(), pr.census.end()),
        ctx.now()};
    // The requester is the deepest node on the find path; compress it too.
    if (status_ == status_t::inactive && cfg_->path_compression)
      maybe_update_next(pr.leader_phase, pr.leader);
  } else {
    if (cfg_->path_compression) maybe_update_next(pr.leader_phase, pr.leader);
    route_reply(ctx, pr.leader, original, pr.requester);
  }
}

void node::handle_report_ack(sim::context& ctx, node_id leader, phase_t lp,
                             node_id reporter,
                             const sim::message_ptr& original) {
  if (reporter == id_) {  // our report reached the leader
    if (status_ == status_t::inactive && cfg_->path_compression)
      maybe_update_next(lp, leader);
    return;
  }
  if (cfg_->path_compression) maybe_update_next(lp, leader);
  route_reply(ctx, leader, original, reporter);
}

void node::drain_deferred(sim::context& ctx) {
  if (draining_) return;
  draining_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < deferred_.size();) {
      if (accepts(*deferred_[i].second)) {
        auto [from, m] = deferred_[i];
        deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
        handle(ctx, from, m);
        progress = true;
        i = 0;  // state may have changed; rescan from the front (FIFO)
      } else {
        ++i;
      }
    }
  }
  draining_ = false;
}

void node::set_status(status_t s) {
  if (s == status_) return;
  if (cfg_->trace != nullptr) cfg_->trace->on_transition(id_, status_, s);
  status_ = s;
}

// ---------------------------------------------------------------------------
// EXPLORE (Fig 3)
// ---------------------------------------------------------------------------

void node::enter_explore(sim::context& ctx) {
  set_status(status_t::explore);
  explore_step(ctx);
}

void node::explore_step(sim::context& ctx) {
  ASYNCRD_CHECK(status_ == status_t::explore);
  for (;;) {
    // §4.5.1 Bounded: "when a leader node reaches |done| = n, it sends a
    // conquer message to all the nodes in done and terminates."
    if (cfg_->algo == variant::bounded && component_size_ > 0 &&
        done_.size() == component_size_) {
      finalize_bounded(ctx);
      return;
    }

    // Stale entries: ids discovered while unexplored that since became
    // members (absorbed via a merge).  Exploring a member would route a
    // search back to ourselves; prune at pick time.  The prune and the pick
    // are erased as one prefix so the frontier shifts once, not per entry.
    auto pick = unexplored_.begin();
    while (pick != unexplored_.end() && (is_member(*pick) || *pick == id_))
      ++pick;

    if (pick != unexplored_.end()) {
      const node_id u = *pick;
      unexplored_.erase(unexplored_.begin(), pick + 1);
      send_search(ctx, u);
      awaiting_release_ = true;
      set_status(status_t::wait);
      drain_deferred(ctx);
      return;
    }
    // Entirely stale frontier: drop it (as the per-entry prune did).
    unexplored_.erase(unexplored_.begin(), pick);

    if (more_.empty()) {
      // Out of work: wait until a search with the new flag (or a §6 report)
      // repopulates `more` (§4.1 text).
      awaiting_release_ = false;
      set_status(status_t::wait);
      drain_deferred(ctx);
      return;
    }

    const node_id w = *more_.begin();
    const std::size_t k = cfg_->balanced_queries
                              ? more_.size() + done_.size() + 1
                              : std::numeric_limits<std::size_t>::max();
    if (w == id_) {
      // "v itself may appear in v.more, in this case v simulates the
      // message sending internally" — zero messages.
      id_vec extracted;
      bool done_flag = false;
      self_query(k, extracted, done_flag);
      absorb_query_reply(w, extracted, done_flag);
      continue;
    }
    ctx.send(w, sim::make_message<query_msg>(k));
    pending_query_ = w;
    return;  // remain in explore awaiting the query reply
  }
}

void node::self_query(std::size_t k, id_vec& out, bool& done_flag) {
  if (local_.size() <= k) {
    out.assign(local_.begin(), local_.end());
    local_.clear();
    done_flag = true;
    return;
  }
  done_flag = false;
  // flat_set iterates ascending, so the extracted prefix is exactly the k
  // smallest ids — the same picks std::set made — removable in one shift.
  const auto cut = local_.begin() + static_cast<std::ptrdiff_t>(k);
  out.assign(local_.begin(), cut);
  local_.erase(local_.begin(), cut);
}

template <typename Ids>
void node::absorb_query_reply(node_id w, const Ids& ids, bool done_flag) {
  if (done_flag && more_.contains(w)) {
    more_.erase(w);
    done_.insert(w);
  }
  insert_unknown(unexplored_, ids, id_, more_, done_, unaware_);
}

template <typename Ids>
void node::apply_query_reply(sim::context& ctx, node_id from, const Ids& ids,
                             bool done_flag) {
  ASYNCRD_CHECK(from == pending_query_);
  pending_query_ = invalid_node;
  absorb_query_reply(from, ids, done_flag);
  explore_step(ctx);
}

// ---------------------------------------------------------------------------
// WAIT / PASSIVE (Fig 4)
// ---------------------------------------------------------------------------

void node::leader_on_search(sim::context& ctx, node_id from,
                            const search_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::wait || status_ == status_t::passive ||
                status_ == status_t::terminated);
  if (status_ == status_t::terminated) {
    // A terminated leader conquered every node in its component, so its
    // (phase, id) dominates any key a member's stale search can carry.
    ASYNCRD_CHECK(!lex_greater(m.initiator_phase, m.initiator, phase_, id_));
    ctx.send(from,
             sim::make_message<release_msg>(id_, phase_,
                                            release_msg::answer_t::abort,
                                            m.initiator));
    return;
  }
  if (lex_greater(m.initiator_phase, m.initiator, phase_, id_)) {
    ctx.send(from,
             sim::make_message<release_msg>(id_, phase_,
                                            release_msg::answer_t::merge,
                                            m.initiator));
    set_status(status_t::conquered);
    drain_deferred(ctx);
  } else {
    ctx.send(from,
             sim::make_message<release_msg>(id_, phase_,
                                            release_msg::answer_t::abort,
                                            m.initiator));
    // The search's new flag may have moved its target back into `more`
    // (handled in the shared preprocessing); an idle waiting leader resumes.
    maybe_resume_explore(ctx);
  }
}

void node::leader_on_own_release(sim::context& ctx, const release_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::wait);
  ASYNCRD_CHECK(awaiting_release_);
  awaiting_release_ = false;
  if (m.answer == release_msg::answer_t::abort) {
    // "A leader receiving a release message with an abort value stops
    // sending new search messages" — passive until found.
    set_status(status_t::passive);
    drain_deferred(ctx);
    return;
  }
  // Fig 4's release-merge arm (typo corrected): wait -> conqueror.
  contacts_.insert(m.from_leader);  // id learned from the release payload
  ctx.send(m.from_leader, sim::make_message<merge_accept_msg>(id_, phase_));
  set_status(status_t::conqueror);
  drain_deferred(ctx);
}

void node::maybe_resume_explore(sim::context& ctx) {
  if (status_ == status_t::wait && !awaiting_release_ &&
      (!more_.empty() || !unexplored_.empty()))
    enter_explore(ctx);
}

// ---------------------------------------------------------------------------
// CONQUERED / CONQUEROR (Fig 6)
// ---------------------------------------------------------------------------

void node::on_merge_accept(sim::context& ctx, const merge_accept_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::conquered);
  contacts_.insert(m.conqueror);  // id learned from the payload
  maybe_update_next(m.conqueror_phase, m.conqueror);
  // If our unreported pool regrew after we had emptied it (a search's new
  // flag or a refused merge re-injected an id), we must ship ourselves in
  // `more`, not `done`, or the conqueror would never query us again and the
  // re-injected ids would be dead knowledge.
  if (!local_.empty() && done_.contains(id_)) {
    done_.erase(id_);
    more_.insert(id_);
  }
  const bool ship_unaware = cfg_->algo == variant::generic;
  ctx.send(m.conqueror,
           sim::make_message<info_msg>(
               phase_, to_vector(more_), to_vector(done_),
               ship_unaware ? to_vector(unaware_) : id_vec{},
               to_vector(unexplored_)));
  more_.clear();
  done_.clear();
  unaware_.clear();
  unexplored_.clear();
  set_status(status_t::inactive);
  drain_deferred(ctx);
}

void node::on_merge_fail(sim::context& ctx) {
  ASYNCRD_CHECK(status_ == status_t::conquered);
  set_status(status_t::passive);
  drain_deferred(ctx);
}

template <typename Info>
void node::on_info(sim::context& ctx, node_id from, const Info& m) {
  ASYNCRD_CHECK(status_ == status_t::conqueror);
  (void)from;
  if (cfg_->algo == variant::generic) {
    ASYNCRD_CHECK(unaware_.empty());
    insert_unknown(unaware_, m.more, id_, more_, done_);
    insert_unknown(unaware_, m.done, id_, more_, done_);
    insert_unknown(unaware_, m.unaware, id_, more_, done_);
    insert_unknown(unexplored_, m.unexplored, id_, more_, done_, unaware_);
    prune_unexplored();
    const std::size_t members = more_.size() + done_.size() + unaware_.size();
    if (cfg_->use_phases &&
        (phase_ == m.phase || members >= (std::size_t{1} << (phase_ + 1)))) {
      ++phase_;
      next_phase_ = phase_;
    }
    for (const node_id u : unaware_)
      ctx.send(u, sim::make_message<conquer_msg>(id_, phase_));
  } else {
    // §4.5 variants: merge each set directly; no unaware bookkeeping.
    insert_unknown(more_, m.more, id_);
    insert_unknown(done_, m.done, id_, more_);
    insert_unknown(unexplored_, m.unexplored, id_, more_, done_);
    prune_unexplored();
    const std::size_t members = more_.size() + done_.size();
    if (cfg_->use_phases &&
        (phase_ == m.phase || members >= (std::size_t{1} << (phase_ + 1)))) {
      ++phase_;
      next_phase_ = phase_;
    }
  }
  conquest_maybe_finished(ctx);
}

void node::on_member_reply(sim::context& ctx, node_id from,
                           const member_reply_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::conqueror);
  const auto it = unaware_.find(from);
  if (it == unaware_.end()) return;  // stale duplicate; ignore
  unaware_.erase(it);
  (m.has_more ? more_ : done_).insert(from);
  conquest_maybe_finished(ctx);
}

void node::conquest_maybe_finished(sim::context& ctx) {
  if (unaware_.empty()) enter_explore(ctx);
}

void node::finalize_bounded(sim::context& ctx) {
  ASYNCRD_CHECK(cfg_->algo == variant::bounded);
  for (const node_id u : done_)
    if (u != id_) ctx.send(u, sim::make_message<conquer_msg>(id_, phase_));
  set_status(status_t::terminated);
  drain_deferred(ctx);
}

// ---------------------------------------------------------------------------
// INACTIVE (Fig 5)
// ---------------------------------------------------------------------------

void node::inactive_on_query(sim::context& ctx, node_id from,
                             const query_msg& m) {
  id_vec extracted;
  bool done_flag = false;
  self_query(m.requested, extracted, done_flag);
  ctx.send(from, sim::make_message<query_reply_msg>(std::move(extracted),
                                                    done_flag));
}

void node::route_request(sim::context& ctx, node_id from, sim::message_ptr m) {
  ASYNCRD_CHECK(status_ == status_t::inactive);
  ASYNCRD_CHECK(next_ != id_);
  previous_.emplace_back(std::move(m), from);
  // Only the head of the queue is in flight; the rest wait for its reply
  // (this serialization is what makes the search/release cost amortize like
  // a sequential union-find execution).
  if (previous_.size() == 1) ctx.send(next_, previous_.front().first);
}

void node::route_reply(sim::context& ctx, node_id /*new_next*/,
                       sim::message_ptr m, node_id /*final_target*/) {
  ASYNCRD_CHECK(status_ == status_t::inactive);
  ASYNCRD_CHECK(!previous_.empty());
  const node_id y = previous_.front().second;
  previous_.pop_front();
  ctx.send(y, std::move(m));
  // Release the next queued request toward next_ — the caller has already
  // applied path compression (Fig 5 sets next := l before forwarding).
  if (!previous_.empty()) ctx.send(next_, previous_.front().first);
}

void node::on_conquer(sim::context& ctx, node_id from, const conquer_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::inactive);
  (void)from;
  contacts_.insert(m.leader);  // id learned from the payload
  // §4.4 text: only "a phase higher than its current leader" redirects the
  // pointer (Fig 5 omits the guard; see node.h).
  maybe_update_next(m.phase, m.leader);
  ctx.send(m.leader, sim::make_message<member_reply_msg>(!local_.empty()));
}

// ---------------------------------------------------------------------------
// leader-side probe / report handling (§4.5.2, §6)
// ---------------------------------------------------------------------------

void node::leader_on_probe(sim::context& ctx, node_id from,
                           const probe_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::wait || status_ == status_t::terminated);
  ctx.send(from, sim::make_message<probe_reply_msg>(
                     id_, phase_, m.requester,
                     cfg_->census_in_probe_reply ? census_ids() : id_vec{}));
}

void node::leader_on_report(sim::context& ctx, node_id from,
                            const report_msg& m) {
  ASYNCRD_CHECK(status_ == status_t::wait || status_ == status_t::passive ||
                status_ == status_t::terminated);
  // A terminated Bounded leader only acknowledges: its census is complete,
  // so whatever id regrew the reporter's local pool is already a member
  // (late reports come from the refused-merge retention path, whose
  // subject was conquered before |done| could reach n).
  if (status_ != status_t::terminated && done_.contains(m.reporter)) {
    done_.erase(m.reporter);
    more_.insert(m.reporter);
  }
  ctx.send(from, sim::make_message<report_ack_msg>(id_, phase_, m.reporter));
  maybe_resume_explore(ctx);
}

// ---------------------------------------------------------------------------
// harness API (§4.5.2 probes, §6 dynamic links)
// ---------------------------------------------------------------------------

void node::initiate_probe(sim::network& net) {
  sim::context ctx(net, id_);
  if (status_ == status_t::asleep) {
    probe_queued_ = true;
    net.wake(id_);
    return;
  }
  if (is_leader() || next_ == id_) {
    // We are the leader (or a passive ex-leader that still heads its own
    // chain): the snapshot is our own census.
    const id_vec c = census_ids();
    census_ = census_result{id_, {c.begin(), c.end()}, ctx.now()};
    return;
  }
  ctx.send(next_, sim::make_message<probe_msg>(id_));
}

void node::add_link(sim::network& net, node_id target) {
  if (target == id_ || known_.contains(target)) return;
  sim::context ctx(net, id_);
  learn_id(ctx, target);
}

void node::learn_id(sim::context& ctx, node_id w) {
  if (w == id_ || is_member(w) || local_.contains(w)) return;
  known_.insert(w);
  if (status_ == status_t::asleep) {
    local_.insert(w);  // reported naturally after wake-up
    return;
  }
  if (is_leader()) {
    // A leader folds new knowledge straight into its frontier.
    unexplored_.insert(w);
    maybe_resume_explore(ctx);
    return;
  }
  const bool had_reported_all = local_.empty();
  local_.insert(w);
  if (!had_reported_all) return;  // §6 case 1: rides the unreported pool
  if (status_ == status_t::passive || status_ == status_t::conquered) {
    // We still head our own chain; fix our own bookkeeping so the id ships
    // (in `more`) when we are eventually conquered.
    if (done_.contains(id_)) {
      done_.erase(id_);
      more_.insert(id_);
    }
    return;
  }
  // §6 case 2 (inactive): "u initiates a search message towards its leader
  // with the new flag set to true" — our dedicated report message.
  ctx.send(next_, sim::make_message<report_msg>(id_));
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

bool node::is_member(node_id v) const {
  return more_.contains(v) || done_.contains(v) || unaware_.contains(v);
}

void node::prune_unexplored() {
  for (auto it = unexplored_.begin(); it != unexplored_.end();) {
    if (*it == id_ || is_member(*it))
      it = unexplored_.erase(it);
    else
      ++it;
  }
}

void node::send_search(sim::context& ctx, node_id u) {
  known_.insert(u);  // u was just popped from unexplored_; keep the audit trail
  ctx.send(u, sim::make_message<search_msg>(id_, phase_, u, false));
}

id_vec node::census_ids() const {
  flat_set<node_id> all = more_;
  all.insert(done_.begin(), done_.end());
  all.insert(unaware_.begin(), unaware_.end());
  all.insert(id_);
  return to_vector(all);
}

void node::maybe_update_next(phase_t ph, node_id leader) {
  if (lex_greater(ph, leader, next_phase_, next_)) {
    next_ = leader;
    next_phase_ = ph;
  }
}

std::vector<node_id> node::known_members() const {
  const id_vec c = census_ids();
  return {c.begin(), c.end()};
}

std::vector<std::string> node::deferred_types() const {
  std::vector<std::string> out;
  out.reserve(deferred_.size());
  for (const auto& [from, m] : deferred_)
    out.emplace_back(m->type_name());
  return out;
}

}  // namespace asyncrd::core
