#include "core/adversary.h"

namespace asyncrd::core {

void staged_release_scheduler::arm(sim::network& net) {
  for (const node_id v : order_) net.block_sender(v);
}

bool staged_release_scheduler::on_quiescence(sim::network& net) {
  if (next_ >= order_.size()) return false;
  net.unblock_sender(order_[next_++]);
  return true;
}

bool sequential_wakeup_scheduler::on_quiescence(sim::network& net) {
  // Skip nodes that were already woken by message arrivals.
  while (next_ < order_.size() && net.is_awake(order_[next_])) ++next_;
  if (next_ >= order_.size()) return false;
  net.wake(order_[next_++]);
  return true;
}

random_staged_scheduler::random_staged_scheduler(
    std::uint64_t seed, std::vector<node_id> candidates,
    double block_fraction, sim::sim_time max_delay)
    : rng_(seed), max_delay_(max_delay == 0 ? 1 : max_delay) {
  for (const node_id v : candidates)
    if (rng_.chance(block_fraction)) release_order_.push_back(v);
  rng_.shuffle(release_order_);
}

void random_staged_scheduler::arm(sim::network& net) {
  for (const node_id v : release_order_) net.block_sender(v);
}

sim::sim_time random_staged_scheduler::delay(node_id, node_id,
                                             const sim::message&) {
  return rng_.between(1, max_delay_);
}

bool random_staged_scheduler::on_quiescence(sim::network& net) {
  if (next_ >= release_order_.size()) return false;
  net.unblock_sender(release_order_[next_++]);
  return true;
}

}  // namespace asyncrd::core
