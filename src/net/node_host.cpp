#include "net/node_host.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/bitmath.h"
#include "net/envelope.h"
#include "sim/wire.h"

namespace asyncrd::net {

node_host::node_host(const graph::digraph& g, const core::config& cfg,
                     std::size_t proc, std::size_t procs, std::uint64_t seed)
    : g_(&g),
      cfg_(&cfg),
      proc_(proc),
      procs_(procs == 0 ? 1 : procs),
      seed_(seed),
      transport_(sock_, seed),
      arq_(transport_),
      gateway_(*this),
      net_(sched_) {
  if (proc_ >= procs_)
    throw std::invalid_argument("node_host: proc index out of range");
  sock_.bind_loopback();

  transport_.set_adapter(&arq_);
  transport_.set_frame_hooks(&core::wire::validate_frame,
                             &core::wire::tag_name);
  transport_.set_local([this](node_id v) { return hosts(v); });
  transport_.set_deliver(
      [this](node_id to, node_id from, const sim::message_ptr& m) {
        on_deliver_remote(to, from, m);
      });
  transport_.set_route([this](node_id to) {
    return loopback(peer_ports_[static_cast<std::size_t>(to) % procs_]);
  });

  // The local network runs in wire mode (frames are the unit the cluster
  // exchanges) with the gateway as its egress for non-hosted destinations.
  net_.set_wire_codec(&core::wire::codec());
  net_.set_remote_gateway(&gateway_);

  std::map<node_id, std::size_t> sizes;
  if (cfg_->algo == core::variant::bounded) sizes = g.weak_component_sizes();
  for (const node_id v : g.nodes()) {
    if (!hosts(v)) continue;
    const std::size_t csize =
        cfg_->algo == core::variant::bounded ? sizes.at(v) : std::size_t{0};
    auto owned = std::make_unique<core::node>(v, *cfg_, g.out(v), csize);
    nodes_.push_back(owned.get());
    local_.push_back(v);
    net_.add_node(v, std::move(owned));
  }
  // Bit accounting uses the *cluster* id width: ids are drawn from the full
  // graph even though this process hosts a slice of it.
  if (g.node_count() > 2) net_.set_id_bits(ceil_log2(g.node_count()));
  rxbuf_.resize(max_datagram);
}

void node_host::set_peers(std::vector<std::uint16_t> peer_ports) {
  if (peer_ports.size() != procs_)
    throw std::invalid_argument("node_host: peer map size != procs");
  peer_ports_ = std::move(peer_ports);
}

void node_host::gateway::remote_send(node_id from, node_id to,
                                     sim::message_ptr m) {
  // Types the codec materializes already arrive as encoded frames; the
  // fixed-field types arrive as structs (the sim keeps them that way
  // because re-boxing would grow them) and are encoded here, at the edge.
  if ((m->dispatch_tag() & sim::wire::wire_bit) == 0) {
    const std::uint8_t tag = m->dispatch_tag();
    const sim::wire_encode_fn fn =
        tag < core::wire::codec().encode.size()
            ? core::wire::codec().encode[tag]
            : nullptr;
    if (fn == nullptr)
      throw std::logic_error(
          "node_host: remote send of a message with no wire form");
    host_->scratch_.clear();
    fn(*m, host_->scratch_);
    m = sim::make_message<sim::wire_msg>(*m, host_->scratch_.data(),
                                         host_->scratch_.size());
  }
  host_->arq_.app_send(from, to, std::move(m));
}

void node_host::on_deliver_remote(node_id to, node_id from,
                                  const sim::message_ptr& m) {
  net_.inject_remote(to, from, m);
}

void node_host::start() {
  if (peer_ports_.empty())
    throw std::logic_error("node_host: start() before set_peers()");
  if (started_) return;  // idempotent: the control plane may re-send START
  started_ = true;
  for (const node_id v : local_) net_.wake(v);
  const sim::run_result res = net_.run_to_quiescence();
  events_ += res.events_processed;
}

void node_host::pump() {
  transport_.advance_to(clock_.ticks());
  endpoint from;
  for (;;) {
    const std::ptrdiff_t n = sock_.recv_from(from, rxbuf_.data(),
                                             rxbuf_.size());
    if (n < 0) break;
    const auto len = static_cast<std::size_t>(n);
    if (len > 0 && is_control_tag(rxbuf_[0])) {
      if (!control_ || !control_(from, rxbuf_.data(), len))
        transport_.count_decode_error();
    } else {
      transport_.on_datagram(rxbuf_.data(), len);
    }
  }
  // Injected deliveries queued follow-on local work; drain it, emitting
  // further remote sends through the gateway as it goes.
  const sim::run_result res = net_.run_to_quiescence();
  events_ += res.events_processed;
}

void node_host::poll_once(int max_wait_ms) {
  int wait = max_wait_ms;
  const sim::sim_time dl = transport_.next_deadline();
  if (dl != static_cast<sim::sim_time>(-1)) {
    const sim::sim_time now = clock_.ticks();
    const std::uint64_t ahead_ms = dl > now ? (dl - now) / 10 : 0;
    if (ahead_ms < static_cast<std::uint64_t>(wait))
      wait = static_cast<int>(ahead_ms);
  }
  if (wait > 0) wait_readable(sock_.fd(), wait);
  pump();
}

std::uint64_t node_host::progress() const noexcept {
  return net_.app_deliveries() + transport_.stats().datagrams_received;
}

std::uint64_t node_host::outstanding() const noexcept {
  return arq_.outstanding() + net_.in_flight() + net_.queue_depth();
}

const core::node& node_host::at(node_id v) const {
  const auto it = std::find(local_.begin(), local_.end(), v);
  if (it == local_.end())
    throw std::invalid_argument("node_host: node not hosted here");
  return *nodes_[static_cast<std::size_t>(it - local_.begin())];
}

telemetry::run_report node_host::report(bool completed) const {
  telemetry::run_report rep;
  rep.label = "discoveryd";
  rep.variant = std::string(core::to_string(cfg_->algo));
  rep.seed = seed_;
  rep.nodes = local_.size();
  for (const node_id v : local_)
    rep.edges += g_->out(v).size();
  rep.completed = completed;
  for (const core::node* n : nodes_)
    if (n->is_leader()) ++rep.leaders;
  rep.events_processed = events_;
  rep.completion_time = net_.now();
  rep.wall_ms = clock_.elapsed_ms();
  rep.events_per_sec =
      rep.wall_ms > 0.0 ? static_cast<double>(events_) / (rep.wall_ms / 1e3)
                        : 0.0;
  const sim::stats& st = net_.statistics();
  rep.total_messages = st.total_messages();
  rep.total_bits = st.total_bits();
  rep.id_bits = st.id_bits();
  rep.messages_by_type = st.by_type();

  const udp_transport::counters& tc = transport_.stats();
  rep.wire.enabled = true;
  rep.wire.bytes_sent = net_.wire_bytes_sent();
  rep.wire.frames = net_.wire_frames();
  rep.wire.decode_errors = tc.decode_errors;
  for (const auto& slot : net_.wire_by_tag()) {
    if (slot.frames == 0) continue;
    auto& entry = rep.wire.by_type[std::string(slot.name)];
    entry.count += slot.frames;
    entry.bytes += slot.bytes;
  }

  // The UDP wire is the chaos transport of service mode: datagram counters
  // map onto the fault-plan slots, ARQ recovery counters carry over as-is.
  const sim::reliable_link_stats rl = arq_.stats();
  rep.chaos.enabled = true;
  rep.chaos.transmissions = tc.datagrams_sent;
  rep.chaos.drops = tc.fault_drops + tc.send_failures;
  rep.chaos.duplicates = tc.fault_duplicates;
  rep.chaos.data_sent = rl.data_sent;
  rep.chaos.retransmits = rl.retransmits;
  rep.chaos.acks_sent = rl.acks_sent;
  rep.chaos.dup_suppressed = rl.dup_suppressed;
  rep.chaos.timer_fires = rl.timer_fires;
  rep.chaos.rto_backoffs = rl.rto_backoffs;
  rep.chaos.max_rto = rl.max_rto;

  rep.extra["proc"] = static_cast<double>(proc_);
  rep.extra["procs"] = static_cast<double>(procs_);
  rep.extra["cluster_nodes"] = static_cast<double>(g_->node_count());
  rep.extra["datagrams_sent"] = static_cast<double>(tc.datagrams_sent);
  rep.extra["datagrams_received"] = static_cast<double>(tc.datagrams_received);
  rep.extra["datagram_bytes_sent"] = static_cast<double>(tc.bytes_sent);
  rep.extra["datagram_bytes_received"] =
      static_cast<double>(tc.bytes_received);
  rep.extra["decode_errors"] = static_cast<double>(tc.decode_errors);
  rep.extra["arq_outstanding"] = static_cast<double>(arq_.outstanding());
  return rep;
}

}  // namespace asyncrd::net
