// One process's share of a service-mode discovery cluster.
//
// A node_host owns a real sim::network (unit-delay scheduler, wire codec
// armed, no local fault plan) hosting the nodes this process is
// responsible for — node v belongs to process v mod P — plus the machinery
// that splices that network into a UDP cluster:
//
//   * a remote_gateway implementation: application sends whose destination
//     is not hosted here exit network::send_internal into remote_send,
//     which boxes the message into its encoded wire frame (if the codec
//     did not already materialize it) and hands it to a *second*
//     reliable_link_layer instance — the UDP-side ARQ — whose transport is
//     net/udp_transport.h over this host's data socket;
//   * the inbound path: udp_transport validates + reboxes arriving
//     envelopes, the ARQ releases application frames in FIFO order, and
//     the release callback re-enters the simulator via
//     network::inject_remote, which runs one delivery activation exactly
//     like a local delivery (observers, stats, tracing all see it);
//   * pump(): advances the wall-clock tick timers (retransmits), drains
//     every pending datagram from the socket, and runs the simulator to
//     quiescence, emitting further remote sends as it goes.
//
// All three algorithm variants run unmodified: every process constructs
// the identical full graph from the shared spec, instantiates only its own
// nodes (with their true E0 out-neighborhoods and, for variant::bounded,
// their true component sizes), and the engine cannot tell a remote
// neighbor from a local one.
//
// Control datagrams (net/envelope.h, tags 0xC1..0xC9) are not handled
// here: pump() routes them to an optional callback so the discoveryd
// binary owns orchestration while in-process tests drive hosts directly.
// If the callback declines a control datagram (wrong source endpoint), it
// is counted as a decode drop like any other garbage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/messages.h"
#include "core/node.h"
#include "graph/digraph.h"
#include "net/clock.h"
#include "net/udp.h"
#include "net/udp_transport.h"
#include "sim/network.h"
#include "sim/reliable_link.h"
#include "sim/scheduler.h"
#include "telemetry/report.h"

namespace asyncrd::net {

class node_host {
 public:
  /// True when the callback consumed the control datagram; false routes it
  /// to the decode-drop counter (untrusted source, malformed).
  using control_fn =
      std::function<bool(const endpoint& from, const std::uint8_t* data,
                         std::size_t len)>;

  /// Builds this process's shard of the cluster: `proc` of `procs` total,
  /// hosting every node v of `g` with v % procs == proc.  The graph and
  /// config must outlive the host.  Binds the data socket to an ephemeral
  /// loopback port (port()).
  node_host(const graph::digraph& g, const core::config& cfg,
            std::size_t proc, std::size_t procs, std::uint64_t seed);

  node_host(const node_host&) = delete;
  node_host& operator=(const node_host&) = delete;

  std::size_t proc() const noexcept { return proc_; }
  std::size_t procs() const noexcept { return procs_; }
  std::uint16_t port() const noexcept { return sock_.port(); }
  int fd() const noexcept { return sock_.fd(); }
  bool hosts(node_id v) const noexcept {
    return static_cast<std::size_t>(v) % procs_ == proc_;
  }
  const std::vector<node_id>& local_nodes() const noexcept { return local_; }

  /// Installs the node -> data-port map (index p owns port peer_ports[p]).
  void set_peers(std::vector<std::uint16_t> peer_ports);
  void set_control(control_fn f) { control_ = std::move(f); }
  /// Test hooks, forwarded to the transport.
  udp_transport& transport() noexcept { return transport_; }
  const sim::reliable_link_layer& arq() const noexcept { return arq_; }

  /// Sends one raw datagram from the data socket (control-plane replies;
  /// best-effort like everything UDP).
  bool send_control(const endpoint& to, const std::uint8_t* data,
                    std::size_t len) {
    return sock_.send_to(to, data, len);
  }

  /// Wakes every local node and drains the first burst of sends.
  /// Requires set_peers() first.
  void start();
  bool started() const noexcept { return started_; }

  /// One service iteration: advance retransmit timers to the wall clock,
  /// drain pending datagrams, run the simulator to quiescence.
  void pump();

  /// Sleeps until the socket is readable, the next retransmit deadline, or
  /// max_wait_ms — whichever is first — then pump()s.
  void poll_once(int max_wait_ms);

  /// Monotone activity counter (app deliveries + datagrams in): stalls
  /// show as two equal reads across a convergence-poll round trip.
  std::uint64_t progress() const noexcept;
  /// Unfinished work visible from this process: unacked ARQ envelopes plus
  /// undelivered local messages.  Zero everywhere <=> converged.
  std::uint64_t outstanding() const noexcept;
  std::uint64_t decode_errors() const noexcept {
    return transport_.stats().decode_errors;
  }

  const core::node& at(node_id v) const;
  sim::network& net() noexcept { return net_; }

  /// Snapshot of this shard for the run report (same schema as sim runs;
  /// json_check-valid).  `completed` is the caller's verdict.
  telemetry::run_report report(bool completed) const;

 private:
  class gateway final : public sim::remote_gateway {
   public:
    explicit gateway(node_host& h) noexcept : host_(&h) {}
    void remote_send(node_id from, node_id to, sim::message_ptr m) override;

   private:
    node_host* host_;
  };

  void on_deliver_remote(node_id to, node_id from, const sim::message_ptr& m);

  const graph::digraph* g_;
  const core::config* cfg_;
  std::size_t proc_;
  std::size_t procs_;
  std::uint64_t seed_;

  tick_clock clock_;
  udp_socket sock_;
  udp_transport transport_;
  sim::reliable_link_layer arq_;  ///< UDP-side ARQ (go-back-N over datagrams)
  gateway gateway_;

  sim::unit_delay_scheduler sched_;
  sim::network net_;

  control_fn control_;
  std::vector<node_id> local_;
  std::vector<core::node*> nodes_;  ///< parallel to local_; owned by net_
  std::vector<std::uint16_t> peer_ports_;
  std::vector<std::uint8_t> scratch_;  ///< frame encode scratch (gateway)
  std::vector<std::uint8_t> rxbuf_;
  std::uint64_t events_ = 0;  ///< sim events processed across pumps
  bool started_ = false;
};

}  // namespace asyncrd::net
