// sim::transport driver over a real UDP socket (service mode).
//
// This is the second implementation of the transport seam carved out in
// sim/transport.h: sim::network drives the reliable-link ARQ from the
// calendar queue in simulation; udp_transport drives the *same adapter
// object, byte for byte the same state machine* from a non-blocking socket
// and a wall-clock tick source.
//
//   * transport_send serializes the ARQ envelope (rl_data with its inner
//     wire frame, or rl_ack) into a datagram and sendto()s it at the
//     destination node's owning process (the route callback).
//   * on_datagram parses an arriving data-plane datagram, validates the
//     embedded wire frame through the protocol validator *before* the ARQ
//     sees it, boxes it back into the envelope types, and feeds
//     adapter->transport_deliver.  Anything malformed — truncated varints,
//     an unknown tag, a bad id set, a destination this process does not
//     host — is counted in stats().decode_errors and dropped; a garbage
//     datagram can cost a retransmit, never a crash (ISSUE 10 satellite).
//   * Timers: schedule_adapter_timer parks (deadline, key) in a min-heap;
//     advance_to(wall) pops due timers, pinning now() to each popped
//     deadline exactly while its callback runs.  The ARQ detects orphaned
//     timers by `now() == deadline` equality (reliable_link.cpp), so that
//     pin is load-bearing: a live timer firing with now() past its
//     deadline would be mistaken for an orphan and the channel would stop
//     retransmitting.  now() therefore only ever advances inside
//     advance_to — every pending deadline is strictly above the current
//     wall when the loop exits, so the final now_ = wall never overtakes
//     a live timer.
//
// Fault injection: real loopback rarely drops, so the conformance tests
// inject drop/duplicate software faults at the send choke point (mirroring
// the simulator's fault_plan semantics: rule per transmission, seeded rng)
// plus a blackhole toggle for outage-recovery scenarios.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/udp.h"
#include "sim/network.h"
#include "sim/transport.h"

namespace asyncrd::net {

class udp_transport final : public sim::transport {
 public:
  /// Software wire faults applied per transmission at the send choke point.
  struct fault_profile {
    double drop = 0.0;       ///< P(datagram silently discarded)
    double duplicate = 0.0;  ///< P(datagram sent twice)
    std::uint64_t seed = 1;
    bool enabled() const noexcept { return drop > 0.0 || duplicate > 0.0; }
  };

  struct counters {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t decode_errors = 0;   ///< malformed/misrouted, dropped
    std::uint64_t fault_drops = 0;     ///< injector + blackhole discards
    std::uint64_t fault_duplicates = 0;
    std::uint64_t send_failures = 0;   ///< kernel refused; counts as a drop
    std::uint64_t timer_fires = 0;
  };

  /// Validates one wire frame; throws sim::wire::decode_error on anything
  /// malformed (core::wire::validate_frame).  Kept as a function pointer so
  /// the net library stays protocol-agnostic like sim/wire.h.
  using validate_fn = void (*)(const std::uint8_t*, std::size_t);
  /// Static-storage type name for a frame tag (core::wire::tag_name).
  using name_fn = std::string_view (*)(std::uint8_t);

  using route_fn = std::function<endpoint(node_id)>;
  using deliver_fn =
      std::function<void(node_id to, node_id from, const sim::message_ptr&)>;
  using local_fn = std::function<bool(node_id)>;

  udp_transport(udp_socket& sock, std::uint64_t seed)
      : sock_(&sock), seed_(seed) {}

  void set_adapter(sim::link_adapter* a) noexcept { adapter_ = a; }
  /// Destination node -> owning process's data endpoint.
  void set_route(route_fn r) { route_ = std::move(r); }
  /// Sink for in-order application messages released by the ARQ.
  void set_deliver(deliver_fn f) { deliver_ = std::move(f); }
  /// Frame validation + naming (protocol hooks; both or neither).
  void set_frame_hooks(validate_fn v, name_fn n) noexcept {
    validate_ = v;
    name_ = n;
  }
  /// True iff this process hosts `id`; data for other nodes is a misroute
  /// and counts as a decode drop.
  void set_local(local_fn f) { local_ = std::move(f); }
  void set_faults(const fault_profile& f) {
    faults_ = f;
    fault_rng_ = rng(f.seed);
  }
  /// While on, every outgoing datagram is discarded (outage injection).
  void set_blackhole(bool on) noexcept { blackhole_ = on; }

  // --- sim::transport ----------------------------------------------------
  sim::sim_time now() const noexcept override { return now_; }
  void transport_send(node_id from, node_id to, sim::message_ptr m) override;
  void app_deliver(node_id to, node_id from,
                   const sim::message_ptr& m) override {
    deliver_(to, from, m);
  }
  void schedule_adapter_timer(sim::sim_time delay,
                              std::uint64_t key) override;
  std::uint64_t link_seed() const noexcept override { return seed_; }

  // --- driver surface ----------------------------------------------------

  /// Fires every timer with deadline <= wall (now() pinned to each exact
  /// deadline during its callback), then advances now() to wall.
  void advance_to(sim::sim_time wall);

  /// Parses one received data-plane datagram.  Returns true if it was
  /// structurally valid and handed to the ARQ; false if it was counted as
  /// a decode drop.
  bool on_datagram(const std::uint8_t* data, std::size_t len);

  /// Earliest pending timer deadline, or sim::sim_time(-1) when none — the
  /// poll loop sizes its sleep with this.
  sim::sim_time next_deadline() const noexcept {
    return timers_.empty() ? static_cast<sim::sim_time>(-1)
                           : timers_.top().deadline;
  }

  /// External decode failure (e.g. a control datagram from an untrusted
  /// endpoint) accounted alongside the transport's own.
  void count_decode_error() noexcept { ++counters_.decode_errors; }

  const counters& stats() const noexcept { return counters_; }

 private:
  struct timer_ev {
    sim::sim_time deadline;
    std::uint64_t key;
    std::uint64_t tie;  ///< arm order; makes equal-deadline pops FIFO
    bool operator>(const timer_ev& o) const noexcept {
      return deadline != o.deadline ? deadline > o.deadline : tie > o.tie;
    }
  };

  void emit(node_id to);

  udp_socket* sock_;
  std::uint64_t seed_;
  sim::link_adapter* adapter_ = nullptr;
  route_fn route_;
  deliver_fn deliver_;
  local_fn local_;
  validate_fn validate_ = nullptr;
  name_fn name_ = nullptr;

  sim::sim_time now_ = 0;
  std::priority_queue<timer_ev, std::vector<timer_ev>, std::greater<>>
      timers_;
  std::uint64_t timer_ties_ = 0;

  fault_profile faults_;
  rng fault_rng_{1};
  bool blackhole_ = false;

  std::vector<std::uint8_t> buf_;  ///< scratch datagram being serialized
  counters counters_;
};

}  // namespace asyncrd::net
