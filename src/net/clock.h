// Wall-clock tick source for service mode.
//
// The ARQ's retransmit policy (sim/reliable_link.h) is stated in abstract
// sim_time units: rto_initial = 256, rto_max = 16384, jitter drawn below
// rto/2.  Service mode keeps the exact same config numbers and maps one
// tick to 100 microseconds of steady_clock time, so the first retransmit
// fires after ~25.6 ms (comfortably above a loopback round trip) and the
// backoff cap sits at ~1.6 s.  udp_transport::advance_to() consumes these
// ticks; it never reads the clock itself, which keeps the transport
// testable with a hand-fed time source.
#pragma once

#include <chrono>
#include <cstdint>

#include "sim/scheduler.h"

namespace asyncrd::net {

/// Nanoseconds per sim_time tick in service mode.
inline constexpr std::uint64_t tick_ns = 100'000;  // 100 µs

class tick_clock {
 public:
  tick_clock() noexcept : origin_(std::chrono::steady_clock::now()) {}

  /// Monotone ticks elapsed since construction.
  sim::sim_time ticks() const noexcept {
    const auto dt = std::chrono::steady_clock::now() - origin_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    return static_cast<sim::sim_time>(static_cast<std::uint64_t>(ns) /
                                      tick_ns);
  }

  /// Milliseconds elapsed since construction (run-report wall_ms).
  double elapsed_ms() const noexcept {
    const auto dt = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double, std::milli>(dt).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace asyncrd::net
