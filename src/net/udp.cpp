#include "net/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace asyncrd::net {

namespace {

sockaddr_in to_sockaddr(const endpoint& ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.ip);
  sa.sin_port = htons(ep.port);
  return sa;
}

endpoint from_sockaddr(const sockaddr_in& sa) {
  return {ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

[[noreturn]] void die(const char* what) {
  throw std::runtime_error(std::string("udp_socket: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

udp_socket::udp_socket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) die("socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    die("fcntl(O_NONBLOCK)");
  }
}

udp_socket::~udp_socket() {
  if (fd_ >= 0) ::close(fd_);
}

void udp_socket::bind_loopback(std::uint16_t port) {
  sockaddr_in sa = to_sockaddr(loopback(port));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0)
    die("bind");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    die("getsockname");
  port_ = ntohs(bound.sin_port);
}

bool udp_socket::send_to(const endpoint& to, const std::uint8_t* data,
                         std::size_t len) {
  const sockaddr_in sa = to_sockaddr(to);
  const ssize_t n =
      ::sendto(fd_, data, len, 0, reinterpret_cast<const sockaddr*>(&sa),
               sizeof(sa));
  return n == static_cast<ssize_t>(len);
}

std::ptrdiff_t udp_socket::recv_from(endpoint& from, std::uint8_t* buf,
                                     std::size_t cap) {
  sockaddr_in sa{};
  socklen_t salen = sizeof(sa);
  const ssize_t n = ::recvfrom(fd_, buf, cap, 0,
                               reinterpret_cast<sockaddr*>(&sa), &salen);
  if (n < 0) return -1;  // EWOULDBLOCK and friends: nothing pending
  from = from_sockaddr(sa);
  return n;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN) != 0;
}

}  // namespace asyncrd::net
