#include "net/udp_transport.h"

#include <stdexcept>

#include "net/envelope.h"
#include "sim/reliable_link.h"
#include "sim/wire.h"

namespace asyncrd::net {

namespace {

/// Datagram node-id fields must fit node_id and never be the sentinel.
node_id checked_id(std::uint64_t v) {
  if (v >= static_cast<std::uint64_t>(invalid_node))
    throw sim::wire::decode_error("datagram: node id out of range");
  return static_cast<node_id>(v);
}

}  // namespace

void udp_transport::transport_send(node_id from, node_id to,
                                   sim::message_ptr m) {
  buf_.clear();
  switch (m->dispatch_tag()) {
    case sim::rl_data_tag: {
      const auto& env = static_cast<const sim::rl_data_msg&>(*m);
      // Service mode ships encoded frames only: the gateway boxes every
      // application message into a wire_msg before app_send, so the inner
      // message here always carries its own bytes.
      if ((env.inner->dispatch_tag() & sim::wire::wire_bit) == 0)
        throw std::logic_error(
            "udp_transport: rl.data inner message is not wire-encoded");
      const auto& frame = static_cast<const sim::wire_msg&>(*env.inner);
      buf_.push_back(dg_data);
      sim::wire::put_varint(buf_, from);
      sim::wire::put_varint(buf_, to);
      sim::wire::put_varint(buf_, env.seq);
      buf_.insert(buf_.end(), frame.data(), frame.data() + frame.size());
      break;
    }
    case sim::rl_ack_tag: {
      const auto& ack = static_cast<const sim::rl_ack_msg&>(*m);
      buf_.push_back(dg_ack);
      sim::wire::put_varint(buf_, from);
      sim::wire::put_varint(buf_, to);
      sim::wire::put_varint(buf_, ack.ack);
      break;
    }
    default:
      // Only the ARQ rides the socket; a raw application message here means
      // the gateway was bypassed.
      throw std::logic_error("udp_transport: only ARQ envelopes ride UDP");
  }

  if (blackhole_) {
    ++counters_.fault_drops;
    return;
  }
  std::size_t copies = 1;
  if (faults_.enabled()) {
    // Rule per transmission, like the simulator's fault_plan: retransmits
    // of the same envelope draw independently.
    if (faults_.drop > 0.0 && fault_rng_.chance(faults_.drop)) {
      ++counters_.fault_drops;
      return;
    }
    if (faults_.duplicate > 0.0 && fault_rng_.chance(faults_.duplicate)) {
      ++counters_.fault_duplicates;
      copies = 2;
    }
  }
  for (; copies > 0; --copies) emit(to);
}

void udp_transport::emit(node_id to) {
  if (sock_->send_to(route_(to), buf_.data(), buf_.size())) {
    ++counters_.datagrams_sent;
    counters_.bytes_sent += buf_.size();
  } else {
    // Kernel refused (full buffer): a wire drop, recovered by retransmit.
    ++counters_.send_failures;
  }
}

void udp_transport::schedule_adapter_timer(sim::sim_time delay,
                                           std::uint64_t key) {
  const sim::sim_time at = now_ + (delay == 0 ? 1 : delay);
  timers_.push({at, key, timer_ties_++});
}

void udp_transport::advance_to(sim::sim_time wall) {
  while (!timers_.empty() && timers_.top().deadline <= wall) {
    const timer_ev ev = timers_.top();
    timers_.pop();
    // Pin the clock to the event's exact deadline: the ARQ's orphan check
    // is `now() == deadline`, so a live timer must observe equality.
    if (ev.deadline > now_) now_ = ev.deadline;
    ++counters_.timer_fires;
    if (adapter_ != nullptr) adapter_->on_timer(ev.key);
    // A callback may arm a new timer with deadline <= wall (a stalled
    // process catching up through several backoff rounds); the loop
    // condition re-reads the heap and fires it in this same call.
  }
  if (wall > now_) now_ = wall;
}

bool udp_transport::on_datagram(const std::uint8_t* data, std::size_t len) {
  ++counters_.datagrams_received;
  counters_.bytes_received += len;
  try {
    if (len == 0) throw sim::wire::decode_error("datagram: empty");
    sim::wire::reader r(data + 1, len - 1);
    switch (data[0]) {
      case dg_data: {
        const node_id src = checked_id(r.varint());
        const node_id dst = checked_id(r.varint());
        const std::uint64_t seq = r.varint();
        if (local_ && !local_(dst))
          throw sim::wire::decode_error("datagram: destination not hosted");
        const std::uint8_t* frame = r.pos();
        const std::size_t flen = r.remaining();
        // Full protocol-grammar validation *before* the ARQ touches the
        // frame: after this line the bytes are safe to box, buffer
        // out-of-order, retransmit-dedup, and eventually decode at the
        // destination node without re-checking.
        if (validate_ != nullptr) {
          validate_(frame, flen);
        } else if (flen == 0 || (frame[0] & sim::wire::wire_bit) == 0) {
          throw sim::wire::decode_error("datagram: missing wire frame");
        }
        const std::string_view name =
            name_ != nullptr
                ? name_(frame[0] &
                        static_cast<std::uint8_t>(~sim::wire::wire_bit))
                : std::string_view("wire");
        auto inner = sim::make_message<sim::wire_msg>(frame, flen, name);
        auto env = sim::make_message<sim::rl_data_msg>(std::move(inner), seq);
        if (adapter_ != nullptr) adapter_->transport_deliver(src, dst, env);
        return true;
      }
      case dg_ack: {
        const node_id src = checked_id(r.varint());
        const node_id dst = checked_id(r.varint());
        const std::uint64_t ackv = r.varint();
        r.expect_end();
        // Acks mutate the *local* sender's ARQ state: dst must be ours.
        if (local_ && !local_(dst))
          throw sim::wire::decode_error("datagram: ack for a foreign sender");
        auto env = sim::make_message<sim::rl_ack_msg>(ackv);
        if (adapter_ != nullptr) adapter_->transport_deliver(src, dst, env);
        return true;
      }
      default:
        throw sim::wire::decode_error("datagram: unknown tag");
    }
  } catch (const sim::wire::decode_error&) {
    // Counted, logged by the caller if it cares, never uncaught: a garbage
    // datagram costs at most a retransmit.
    ++counters_.decode_errors;
    return false;
  }
}

}  // namespace asyncrd::net
