// Datagram vocabulary for service mode: what the first byte of every UDP
// datagram means, and varint helpers for the headers that follow.
//
// Three disjoint first-byte ranges keep the planes unambiguous:
//
//   0x81..0x8D  encoded wire frames (sim/wire.h: wire_bit | core tag) —
//               never appear as a datagram's first byte; they ride inside
//               dg_data envelopes;
//   0xE7/0xE8   ARQ envelopes (sim/reliable_link.h rl_data_tag/rl_ack_tag)
//               — the data plane;
//   0xC1..0xC9  the control plane (loadgen <-> discoveryd orchestration).
//
// Data plane (node -> node, via the owning processes' data sockets):
//
//   dg_data: [0xE7][varint src][varint dst][varint seq][wire frame...]
//   dg_ack:  [0xE8][varint src][varint dst][varint ack]
//
// src/dst are node ids; seq/ack are the ARQ channel sequence numbers.  The
// embedded wire frame is validated (core::wire::validate_frame) before the
// ARQ layer sees it, so a malformed or hostile datagram is counted and
// dropped at the door — it can cost a retransmit, never a crash.
//
// Control plane (all varint fields, always over the loadgen's control
// socket endpoint, which discoveryd pins as the only trusted source):
//
//   dg_hello:     [proc]                  child -> loadgen, from the DATA
//                                         socket (recvfrom teaches loadgen
//                                         the child's data endpoint)
//   dg_portmap:   [P][port * P]           loadgen -> child
//   dg_start:     []                      loadgen -> child
//   dg_status_req:[]                      loadgen -> child
//   dg_status:    [proc][progress][outstanding][decode_errors]
//   dg_finalize:  [finalize_magic]        loadgen -> child
//   dg_state:     [proc][node][status][flags][next][id_set done]
//   dg_state_end: [proc][total_messages][wire_frames][wire_bytes]
//                 [decode_errors][now]
//   dg_stop:      []                      loadgen -> child
//
// Every control message is idempotent (children re-send dg_hello until
// mapped, loadgen re-sends dg_finalize until dg_state_end arrives), so the
// control plane tolerates UDP loss without its own ARQ.
#pragma once

#include <cstdint>

#include "sim/reliable_link.h"
#include "sim/wire.h"

namespace asyncrd::net {

// Data plane: the ARQ dispatch tags double as datagram tags.
inline constexpr std::uint8_t dg_data = sim::rl_data_tag;  // 0xE7
inline constexpr std::uint8_t dg_ack = sim::rl_ack_tag;    // 0xE8

// Control plane.
inline constexpr std::uint8_t dg_hello = 0xC1;
inline constexpr std::uint8_t dg_portmap = 0xC2;
inline constexpr std::uint8_t dg_start = 0xC3;
inline constexpr std::uint8_t dg_status_req = 0xC4;
inline constexpr std::uint8_t dg_status = 0xC5;
inline constexpr std::uint8_t dg_finalize = 0xC6;
inline constexpr std::uint8_t dg_state = 0xC7;
inline constexpr std::uint8_t dg_state_end = 0xC8;
inline constexpr std::uint8_t dg_stop = 0xC9;

/// True for first bytes the control plane owns.
inline bool is_control_tag(std::uint8_t b) noexcept {
  return b >= dg_hello && b <= dg_stop;
}

/// Guards dg_finalize against a stray control-looking datagram that made it
/// past the endpoint check: finalization flushes state and is the one
/// control action worth double-locking.
inline constexpr std::uint64_t finalize_magic = 0x52'44'46'49'4Eull;  // "RDFIN"

/// dg_state flag bits (member_state booleans, core/checker.h).
inline constexpr std::uint8_t state_flag_deferred = 0x01;
inline constexpr std::uint8_t state_flag_pending = 0x02;
inline constexpr std::uint8_t state_flag_more_empty = 0x04;
inline constexpr std::uint8_t state_flag_unaware_empty = 0x08;

}  // namespace asyncrd::net
