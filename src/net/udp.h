// Thin RAII wrapper over a non-blocking IPv4/UDP socket (service mode).
//
// Service mode (docs/DESIGN.md §11) runs the discovery engine over real
// datagrams instead of the simulator's calendar queue.  Everything here is
// deliberately minimal: bind to loopback, send a datagram, drain pending
// datagrams, poll for readability.  The protocol — ARQ envelopes, wire
// frames, the control plane — lives above, in net/envelope.h and
// net/udp_transport.h; this file knows only bytes and endpoints.
//
// Loss model: UDP gives us exactly the lossy/duplicating wire the
// fault_plan simulates, so the reliable-link ARQ (sim/reliable_link.h) runs
// unmodified on top.  A send that the kernel refuses (full socket buffer)
// is reported as `false` and treated by callers as a wire drop — the ARQ
// retransmit path recovers it, same as any other lost datagram.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asyncrd::net {

/// IPv4 endpoint, host byte order.
struct endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  bool operator==(const endpoint& o) const noexcept {
    return ip == o.ip && port == o.port;
  }
  bool operator!=(const endpoint& o) const noexcept { return !(*this == o); }
};

inline constexpr std::uint32_t loopback_ip = 0x7F00'0001;  // 127.0.0.1

inline endpoint loopback(std::uint16_t port) noexcept {
  return {loopback_ip, port};
}

/// Largest datagram the receive path accepts.  Well above any frame the
/// protocol emits for the cluster sizes service mode targets; a datagram
/// the kernel truncates past this is malformed by definition and the
/// caller counts it as a decode drop.
inline constexpr std::size_t max_datagram = 65507;

class udp_socket {
 public:
  /// Creates an unbound non-blocking socket; throws std::runtime_error if
  /// the kernel refuses (fd exhaustion).
  udp_socket();
  ~udp_socket();

  udp_socket(const udp_socket&) = delete;
  udp_socket& operator=(const udp_socket&) = delete;

  /// Binds to 127.0.0.1:port (port 0 = kernel-assigned ephemeral port).
  /// Throws std::runtime_error on failure.
  void bind_loopback(std::uint16_t port = 0);

  /// The bound port (0 before bind_loopback).
  std::uint16_t port() const noexcept { return port_; }
  int fd() const noexcept { return fd_; }

  /// True if the kernel accepted the datagram; false on EWOULDBLOCK or any
  /// transient refusal (the caller treats it as a wire drop).
  bool send_to(const endpoint& to, const std::uint8_t* data, std::size_t len);

  /// Receives one pending datagram into buf.  Returns its length (possibly
  /// 0 for an empty datagram), or -1 when nothing is pending.  A datagram
  /// longer than cap is consumed and returned truncated with length cap +
  /// 1 sentinel semantics avoided: callers pass cap >= max_datagram, so
  /// truncation only happens for datagrams no valid peer sends.
  std::ptrdiff_t recv_from(endpoint& from, std::uint8_t* buf, std::size_t cap);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocks until fd is readable or timeout_ms elapses.  Returns true when
/// readable, false on timeout.  timeout_ms == 0 polls without blocking.
bool wait_readable(int fd, int timeout_ms);

}  // namespace asyncrd::net
