// Shared `--gen KIND:N[:EXTRA[:SEED]]` topology-spec parser.
//
// Service mode derives one graph in several places — every discoveryd
// process and the loadgen orchestrator must construct the *identical*
// topology from the spec string alone (the graph is never shipped over the
// wire) — so the parser lives here rather than per binary.  The grammar
// matches examples/discovery_cli.cpp's --gen flag exactly; all numeric
// fields go through the checked parser (common/parse.h), so a malformed
// spec yields a named error, never an uncaught std::stoull.
#pragma once

#include <optional>
#include <sstream>
#include <string>

#include "common/parse.h"
#include "graph/topology.h"

namespace asyncrd::net {

struct genspec_result {
  graph::digraph graph;
  std::string error;  ///< non-empty iff parsing failed
  bool ok() const noexcept { return error.empty(); }
};

inline genspec_result parse_genspec(const std::string& spec) {
  genspec_result out;
  std::istringstream ss(spec);
  std::string kind, tok;
  std::getline(ss, kind, ':');
  std::size_t n = 0, extra = 0;
  std::uint64_t seed = 1;
  const auto field = [&](const char* what,
                         std::uint64_t& into) -> bool {
    const auto v = parse_u64(tok);
    if (!v) {
      out.error = std::string("--gen ") + what +
                  ": expected a non-negative integer, got '" + tok + "'";
      return false;
    }
    into = *v;
    return true;
  };
  std::uint64_t n64 = 0, extra64 = 0;
  if (std::getline(ss, tok, ':') && !field("N", n64)) return out;
  if (std::getline(ss, tok, ':') && !field("EXTRA", extra64)) return out;
  if (std::getline(ss, tok, ':') && !field("SEED", seed)) return out;
  n = static_cast<std::size_t>(n64);
  extra = static_cast<std::size_t>(extra64);
  if (n == 0) {
    out.error = "--gen needs KIND:N";
    return out;
  }
  if (kind == "random")
    out.graph = graph::random_weakly_connected(n, extra, seed);
  else if (kind == "tree")
    out.graph = graph::directed_binary_tree(n);
  else if (kind == "path")
    out.graph = graph::directed_path(n);
  else if (kind == "star_in")
    out.graph = graph::star_in(n);
  else if (kind == "star_out")
    out.graph = graph::star_out(n);
  else if (kind == "clique")
    out.graph = graph::clique(n);
  else
    out.error = "unknown --gen kind '" + kind + "'";
  return out;
}

}  // namespace asyncrd::net
