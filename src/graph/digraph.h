// Directed knowledge graphs (paper §1).
//
// G = (V, E0) where an edge (u -> v) means "u initially knows id(v)".  The
// resource-discovery runner hands each node its out-neighborhood as the
// initial `local` set; the graph itself also provides the connectivity
// queries the spec is phrased in (weakly connected components).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "common/ids.h"

namespace asyncrd::graph {

class digraph {
 public:
  /// Adds an isolated node (no-op if present).
  void add_node(node_id v);

  /// Adds edge (u -> v); adds endpoints implicitly.  Self-loops and
  /// duplicate edges are ignored (a node always knows itself; E is a set).
  void add_edge(node_id u, node_id v);

  bool has_node(node_id v) const { return adj_.contains(v); }
  bool has_edge(node_id u, node_id v) const;

  std::size_t node_count() const noexcept { return adj_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Out-neighborhood of v: the ids v initially knows.
  const std::set<node_id>& out(node_id v) const;

  std::vector<node_id> nodes() const;

  /// Weakly connected components (ignoring edge direction), each sorted.
  std::vector<std::vector<node_id>> weak_components() const;

  bool is_weakly_connected() const;

  /// Strongly connected components (Tarjan), each sorted.
  std::vector<std::vector<node_id>> strong_components() const;

  bool is_strongly_connected() const;

  /// Component size per node (for the Bounded model, where "every node
  /// knows the number of nodes in its weakly connected component").
  std::map<node_id, std::size_t> weak_component_sizes() const;

 private:
  std::map<node_id, std::set<node_id>> adj_;
  std::size_t edge_count_ = 0;
  static const std::set<node_id> empty_set_;
};

}  // namespace asyncrd::graph
