// Topology generators for experiments and tests.
//
// Each generator returns a knowledge graph (initial edge set E0).  The
// lower-bound experiment (Theorem 1) uses the directed complete binary tree
// T(i); the scaling experiments (Theorems 5-7) sweep random weakly-connected
// digraphs of varying density; Lemma 3.1's reduction network is built in
// core/uf_reduction.h because its structure is derived from an operation
// sequence, not from a size parameter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "graph/digraph.h"

namespace asyncrd::graph {

/// T(levels): complete rooted binary tree with 2^levels - 1 nodes, all edges
/// directed toward the leaves (Theorem 1's adversarial topology).  Node 0 is
/// the root; node v's children are 2v+1 and 2v+2 (heap layout).
digraph directed_binary_tree(std::size_t levels);

/// Internal (non-leaf) nodes of T(levels) in post-order (children before
/// parents) — the order in which Theorem 1's adversary releases stalled
/// senders.
std::vector<node_id> binary_tree_internal_postorder(std::size_t levels);

/// 0 -> 1 -> 2 -> ... -> n-1.
digraph directed_path(std::size_t n);

/// Center 0 knows everyone: 0 -> i for all i >= 1.
digraph star_out(std::size_t n);

/// Everyone knows center 0: i -> 0 for all i >= 1.
digraph star_in(std::size_t n);

/// Complete digraph on n nodes (both directions).
digraph clique(std::size_t n);

/// Bidirectional ring (strongly connected; used by the strongly-connected
/// leader-election baseline contrast).
digraph ring(std::size_t n);

/// Random weakly connected digraph: a random arborescence with random edge
/// orientations guarantees weak connectivity; `extra_edges` additional
/// random directed edges control density.  Ids are a random permutation of
/// 0..n-1 so that id order is uncorrelated with structure.
digraph random_weakly_connected(std::size_t n, std::size_t extra_edges,
                                std::uint64_t seed);

/// G(n, p) Erdős–Rényi digraph with weak connectivity repaired by chaining
/// components with single edges.
digraph erdos_renyi_connected(std::size_t n, double p, std::uint64_t seed);

/// Preferential attachment: node i (in random arrival order) picks k
/// targets among earlier arrivals with probability proportional to degree.
/// Weakly connected by construction.
digraph preferential_attachment(std::size_t n, std::size_t k,
                                std::uint64_t seed);

/// Disjoint union of `parts` copies of random weakly connected graphs of
/// size part_n each — multi-component safety tests.
digraph multi_component(std::size_t parts, std::size_t part_n,
                        std::size_t extra_edges_per_part, std::uint64_t seed);

/// d-dimensional hypercube with each undirected edge given one random
/// orientation: weakly connected, diameter d, 2^d nodes.
digraph hypercube(std::size_t dims, std::uint64_t seed);

/// rows x cols grid, edges directed right and down (a DAG with one source).
digraph grid(std::size_t rows, std::size_t cols);

/// Layered DAG: `layers` layers of `width` nodes; each node knows `fanout`
/// random nodes of the next layer.  Weakly connected by construction
/// (missing links are repaired along the layer order).
digraph layered_dag(std::size_t layers, std::size_t width, std::size_t fanout,
                    std::uint64_t seed);

/// Two cliques of size k joined by a single directed bridge — the classic
/// "bowtie" where the bridge endpoint is the only cross-cluster knowledge.
digraph bowtie(std::size_t k);

}  // namespace asyncrd::graph
