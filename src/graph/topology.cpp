#include "graph/topology.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace asyncrd::graph {

digraph directed_binary_tree(std::size_t levels) {
  if (levels == 0) throw std::invalid_argument("levels must be >= 1");
  const std::size_t n = (std::size_t{1} << levels) - 1;
  digraph g;
  for (node_id v = 0; v < n; ++v) {
    g.add_node(v);
    const std::size_t left = 2 * static_cast<std::size_t>(v) + 1;
    const std::size_t right = left + 1;
    if (left < n) g.add_edge(v, static_cast<node_id>(left));
    if (right < n) g.add_edge(v, static_cast<node_id>(right));
  }
  return g;
}

namespace {

void postorder_rec(node_id v, std::size_t n, std::vector<node_id>& out) {
  const std::size_t left = 2 * static_cast<std::size_t>(v) + 1;
  if (left >= n) return;  // leaf
  postorder_rec(static_cast<node_id>(left), n, out);
  if (left + 1 < n) postorder_rec(static_cast<node_id>(left + 1), n, out);
  out.push_back(v);
}

}  // namespace

std::vector<node_id> binary_tree_internal_postorder(std::size_t levels) {
  const std::size_t n = (std::size_t{1} << levels) - 1;
  std::vector<node_id> out;
  if (n >= 3) postorder_rec(0, n, out);
  return out;
}

digraph directed_path(std::size_t n) {
  digraph g;
  for (node_id v = 0; v < n; ++v) {
    g.add_node(v);
    if (v + 1 < n) g.add_edge(v, v + 1);
  }
  return g;
}

digraph star_out(std::size_t n) {
  digraph g;
  g.add_node(0);
  for (node_id v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

digraph star_in(std::size_t n) {
  digraph g;
  g.add_node(0);
  for (node_id v = 1; v < n; ++v) g.add_edge(v, 0);
  return g;
}

digraph clique(std::size_t n) {
  digraph g;
  for (node_id u = 0; u < n; ++u) {
    g.add_node(u);
    for (node_id v = 0; v < n; ++v)
      if (u != v) g.add_edge(u, v);
  }
  return g;
}

digraph ring(std::size_t n) {
  digraph g;
  for (node_id v = 0; v < n; ++v) {
    g.add_node(v);
    if (n >= 2) {
      g.add_edge(v, static_cast<node_id>((v + 1) % n));
      g.add_edge(static_cast<node_id>((v + 1) % n), v);
    }
  }
  return g;
}

digraph random_weakly_connected(std::size_t n, std::size_t extra_edges,
                                std::uint64_t seed) {
  if (n == 0) return {};
  rng r(seed);

  std::vector<node_id> label(n);
  std::iota(label.begin(), label.end(), node_id{0});
  r.shuffle(label);

  digraph g;
  g.add_node(label[0]);
  // Random recursive tree with random orientation: weakly connected.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = static_cast<std::size_t>(r.below(i));
    if (r.chance(0.5))
      g.add_edge(label[i], label[j]);
    else
      g.add_edge(label[j], label[i]);
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * (extra_edges + 1) + 100;
  while (added < extra_edges && attempts++ < max_attempts) {
    const node_id u = label[static_cast<std::size_t>(r.below(n))];
    const node_id v = label[static_cast<std::size_t>(r.below(n))];
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

digraph erdos_renyi_connected(std::size_t n, double p, std::uint64_t seed) {
  rng r(seed);
  digraph g;
  for (node_id v = 0; v < n; ++v) g.add_node(v);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = 0; v < n; ++v)
      if (u != v && r.chance(p)) g.add_edge(u, v);

  // Repair: chain the weakly connected components with single edges.
  const auto comps = g.weak_components();
  for (std::size_t i = 1; i < comps.size(); ++i)
    g.add_edge(comps[i - 1].front(), comps[i].front());
  return g;
}

digraph preferential_attachment(std::size_t n, std::size_t k,
                                std::uint64_t seed) {
  if (n == 0) return {};
  rng r(seed);
  digraph g;
  g.add_node(0);
  std::vector<node_id> degree_urn{0};  // one entry per incident edge endpoint
  for (node_id v = 1; v < n; ++v) {
    g.add_node(v);
    const std::size_t links = std::min<std::size_t>(k, v);
    std::set<node_id> chosen;
    while (chosen.size() < links) {
      node_id target;
      if (degree_urn.empty() || r.chance(0.25))
        target = static_cast<node_id>(r.below(v));  // uniform fallback mix-in
      else
        target = degree_urn[static_cast<std::size_t>(r.below(degree_urn.size()))];
      if (target == v) continue;
      chosen.insert(target);
    }
    for (const node_id t : chosen) {
      g.add_edge(v, t);
      degree_urn.push_back(v);
      degree_urn.push_back(t);
    }
  }
  return g;
}

digraph hypercube(std::size_t dims, std::uint64_t seed) {
  rng r(seed);
  digraph g;
  const std::size_t n = std::size_t{1} << dims;
  for (node_id v = 0; v < n; ++v) g.add_node(v);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t d = 0; d < dims; ++d) {
      const std::size_t w = v ^ (std::size_t{1} << d);
      if (w < v) continue;  // each undirected edge once
      if (r.chance(0.5))
        g.add_edge(static_cast<node_id>(v), static_cast<node_id>(w));
      else
        g.add_edge(static_cast<node_id>(w), static_cast<node_id>(v));
    }
  }
  return g;
}

digraph grid(std::size_t rows, std::size_t cols) {
  digraph g;
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<node_id>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_node(at(r, c));
      if (c + 1 < cols) g.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.add_edge(at(r, c), at(r + 1, c));
    }
  return g;
}

digraph layered_dag(std::size_t layers, std::size_t width, std::size_t fanout,
                    std::uint64_t seed) {
  rng r(seed);
  digraph g;
  const auto at = [width](std::size_t layer, std::size_t i) {
    return static_cast<node_id>(layer * width + i);
  };
  for (std::size_t l = 0; l < layers; ++l)
    for (std::size_t i = 0; i < width; ++i) {
      g.add_node(at(l, i));
      if (l == 0) continue;
      const std::size_t links = std::min<std::size_t>(fanout, width);
      for (std::size_t f = 0; f < links; ++f)
        g.add_edge(at(l - 1, static_cast<std::size_t>(r.below(width))),
                   at(l, i));
    }
  // Repair weak connectivity within each layer pair (random fanout can
  // leave isolated columns).
  const auto comps = g.weak_components();
  for (std::size_t i = 1; i < comps.size(); ++i)
    g.add_edge(comps[i - 1].front(), comps[i].front());
  return g;
}

digraph bowtie(std::size_t k) {
  digraph g;
  for (node_id u = 0; u < k; ++u)
    for (node_id v = 0; v < k; ++v) {
      if (u != v) {
        g.add_edge(u, v);
        g.add_edge(static_cast<node_id>(k + u), static_cast<node_id>(k + v));
      }
    }
  if (k > 0) g.add_edge(0, static_cast<node_id>(k));  // the bridge
  return g;
}

digraph multi_component(std::size_t parts, std::size_t part_n,
                        std::size_t extra_edges_per_part, std::uint64_t seed) {
  digraph g;
  rng r(seed);
  for (std::size_t p = 0; p < parts; ++p) {
    const digraph part =
        random_weakly_connected(part_n, extra_edges_per_part, r.next());
    const node_id base = static_cast<node_id>(p * part_n);
    for (const node_id u : part.nodes()) {
      g.add_node(base + u);
      for (const node_id v : part.out(u)) g.add_edge(base + u, base + v);
    }
  }
  return g;
}

}  // namespace asyncrd::graph
