#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <stack>
#include <stdexcept>

namespace asyncrd::graph {

const std::set<node_id> digraph::empty_set_{};

void digraph::add_node(node_id v) { adj_.try_emplace(v); }

void digraph::add_edge(node_id u, node_id v) {
  if (u == v) {
    add_node(u);
    return;
  }
  add_node(v);
  auto& outs = adj_[u];
  if (outs.insert(v).second) ++edge_count_;
}

bool digraph::has_edge(node_id u, node_id v) const {
  const auto it = adj_.find(u);
  return it != adj_.end() && it->second.contains(v);
}

const std::set<node_id>& digraph::out(node_id v) const {
  const auto it = adj_.find(v);
  return it == adj_.end() ? empty_set_ : it->second;
}

std::vector<node_id> digraph::nodes() const {
  std::vector<node_id> out;
  out.reserve(adj_.size());
  for (const auto& [v, outs] : adj_) out.push_back(v);
  return out;
}

std::vector<std::vector<node_id>> digraph::weak_components() const {
  // Union-find over the undirected shadow of the graph.
  std::map<node_id, node_id> parent;
  for (const auto& [v, outs] : adj_) parent[v] = v;

  const auto find = [&](node_id x) {
    node_id root = x;
    while (parent[root] != root) root = parent[root];
    while (parent[x] != root) {
      const node_id next = parent[x];
      parent[x] = root;
      x = next;
    }
    return root;
  };

  for (const auto& [u, outs] : adj_)
    for (const node_id v : outs) parent[find(u)] = find(v);

  std::map<node_id, std::vector<node_id>> groups;
  for (const auto& [v, outs] : adj_) groups[find(v)].push_back(v);

  std::vector<std::vector<node_id>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

bool digraph::is_weakly_connected() const {
  return adj_.size() <= 1 || weak_components().size() == 1;
}

std::vector<std::vector<node_id>> digraph::strong_components() const {
  // Iterative Tarjan SCC.
  std::map<node_id, std::size_t> index, lowlink;
  std::set<node_id> on_stack;
  std::vector<node_id> scc_stack;
  std::vector<std::vector<node_id>> result;
  std::size_t next_index = 0;

  struct frame {
    node_id v;
    std::set<node_id>::const_iterator it;
  };

  for (const auto& [start, start_outs] : adj_) {
    if (index.contains(start)) continue;
    std::stack<frame> call;
    index[start] = lowlink[start] = next_index++;
    scc_stack.push_back(start);
    on_stack.insert(start);
    call.push({start, out(start).begin()});

    while (!call.empty()) {
      frame& f = call.top();
      if (f.it != out(f.v).end()) {
        const node_id w = *f.it++;
        if (!index.contains(w)) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack.insert(w);
          call.push({w, out(w).begin()});
        } else if (on_stack.contains(w)) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const node_id v = f.v;
        call.pop();
        if (!call.empty())
          lowlink[call.top().v] = std::min(lowlink[call.top().v], lowlink[v]);
        if (lowlink[v] == index[v]) {
          std::vector<node_id> comp;
          for (;;) {
            const node_id w = scc_stack.back();
            scc_stack.pop_back();
            on_stack.erase(w);
            comp.push_back(w);
            if (w == v) break;
          }
          std::sort(comp.begin(), comp.end());
          result.push_back(std::move(comp));
        }
      }
    }
  }
  return result;
}

bool digraph::is_strongly_connected() const {
  return adj_.size() <= 1 || strong_components().size() == 1;
}

std::map<node_id, std::size_t> digraph::weak_component_sizes() const {
  std::map<node_id, std::size_t> sizes;
  for (const auto& comp : weak_components())
    for (const node_id v : comp) sizes[v] = comp.size();
  return sizes;
}

}  // namespace asyncrd::graph
