// Reading and writing knowledge graphs.
//
// Edge-list format (one directive per line):
//   # comment                 (also "//"; blank lines ignored)
//   <u> <v>                   directed edge: u initially knows v
//   node <v>                  isolated node declaration
//
// Plus a Graphviz DOT exporter for visualizing E0 and discovery outcomes.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.h"

namespace asyncrd::graph {

/// Parses the edge-list format; throws std::runtime_error with a
/// line-numbered message on malformed input.
digraph read_edge_list(std::istream& in);

/// Convenience: read from a file path.
digraph read_edge_list_file(const std::string& path);

/// Writes the graph in the same format (stable order: by node id).
void write_edge_list(const digraph& g, std::ostream& out);

/// Graphviz DOT (directed).  Optional per-node annotation callback result
/// is placed in the node label under the id.
std::string to_dot(const digraph& g);

}  // namespace asyncrd::graph
