#include "graph/graphio.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace asyncrd::graph {

namespace {

bool is_comment_or_blank(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') continue;
    if (c == '#') return true;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') return true;
    return false;
  }
  return true;  // blank
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  std::ostringstream ss;
  ss << "edge list parse error at line " << line_no << ": " << why;
  throw std::runtime_error(ss.str());
}

}  // namespace

digraph read_edge_list(std::istream& in) {
  digraph g;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "node") {
      unsigned long long v = 0;
      if (!(ls >> v)) fail(line_no, "expected node id after 'node'");
      g.add_node(static_cast<node_id>(v));
      continue;
    }
    unsigned long long u = 0, v = 0;
    try {
      u = std::stoull(first);
    } catch (const std::exception&) {
      fail(line_no, "expected a node id, got '" + first + "'");
    }
    if (!(ls >> v)) fail(line_no, "expected destination node id");
    std::string extra;
    if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
    g.add_edge(static_cast<node_id>(u), static_cast<node_id>(v));
  }
  return g;
}

digraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(const digraph& g, std::ostream& out) {
  out << "# asyncrd knowledge graph: " << g.node_count() << " nodes, "
      << g.edge_count() << " edges\n";
  for (const node_id v : g.nodes()) {
    if (g.out(v).empty()) {
      bool has_in_edge = false;
      for (const node_id u : g.nodes()) {
        if (g.has_edge(u, v)) {
          has_in_edge = true;
          break;
        }
      }
      if (!has_in_edge) out << "node " << v << '\n';
    }
    for (const node_id w : g.out(v)) out << v << ' ' << w << '\n';
  }
}

std::string to_dot(const digraph& g) {
  std::ostringstream ss;
  ss << "digraph knowledge {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (const node_id v : g.nodes()) ss << "  n" << v << " [label=\"" << v
                                       << "\"];\n";
  for (const node_id v : g.nodes())
    for (const node_id w : g.out(v)) ss << "  n" << v << " -> n" << w << ";\n";
  ss << "}\n";
  return ss.str();
}

}  // namespace asyncrd::graph
