// Umbrella header: everything a downstream user of the library needs.
//
//   #include "asyncrd.h"
//
//   asyncrd::graph::digraph g;               // who initially knows whom
//   g.add_edge(0, 1);
//   asyncrd::sim::random_delay_scheduler sched(1);
//   asyncrd::core::config cfg;               // pick a variant + knobs
//   asyncrd::core::discovery_run run(g, cfg, sched);
//   run.wake_all(); run.run();
//   asyncrd::core::check_final_state(run, g);  // the paper's spec, as code
//
// See README.md for the tour and DESIGN.md / EXPERIMENTS.md for the
// paper-reproduction map.
#pragma once

#include "common/bitmath.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/table.h"

#include "sim/event_log.h"
#include "sim/load_observer.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

#include "graph/digraph.h"
#include "graph/graphio.h"
#include "graph/topology.h"

#include "unionfind/ackermann.h"
#include "unionfind/dsu.h"

#include "core/adversary.h"
#include "core/checker.h"
#include "core/messages.h"
#include "core/node.h"
#include "core/regroup.h"
#include "core/runner.h"
#include "core/status.h"
#include "core/trace.h"
#include "core/uf_reduction.h"

#include "telemetry/critical_path.h"
#include "telemetry/histogram.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/perfetto.h"
#include "telemetry/report.h"
#include "telemetry/tracer.h"

#include "baselines/absorption.h"
#include "baselines/baseline_result.h"
#include "baselines/dfs_election.h"
#include "baselines/flooding.h"
#include "baselines/name_dropper.h"
#include "baselines/pointer_doubling.h"

#include "overlay/dht.h"
#include "overlay/ring.h"
