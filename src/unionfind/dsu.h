// Sequential disjoint-set (Union-Find) structures.
//
// Used three ways in this repository:
//   1. as the reference oracle for Lemma 3.1's reduction (the distributed
//      Ad-hoc execution must agree with a classical DSU on every find);
//   2. to generate the adversarial union/find sequences that drive the
//      Theorem 2 lower-bound experiment;
//   3. as the ablation baseline: the core engine's release path implements
//      Tarjan-style path compression and its phase rule implements union by
//      rank, so bench_ablation_unionfind contrasts both systems with the
//      same policy knobs on/off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asyncrd::uf {

/// How roots are chosen when uniting two trees.
enum class link_policy {
  by_rank,  ///< classic union by rank (the paper's phase mechanism)
  naive,    ///< always link first argument's root under second's — ablation
};

/// Whether find() compresses the path it traverses.
enum class compress_policy {
  full,  ///< Tarjan path compression (the paper's release messages)
  none,  ///< plain pointer chasing — ablation
};

class dsu {
 public:
  explicit dsu(std::size_t n, link_policy lp = link_policy::by_rank,
               compress_policy cp = compress_policy::full);

  std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's set.
  std::size_t find(std::size_t x);

  /// Unites the sets of a and b; returns false iff already united.
  bool unite(std::size_t a, std::size_t b);

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  std::size_t component_count() const noexcept { return components_; }

  /// Total parent-pointer hops performed by find() so far — the sequential
  /// analogue of the distributed algorithm's search/release message count.
  std::uint64_t find_steps() const noexcept { return find_steps_; }

  /// Number of find() calls so far.
  std::uint64_t find_calls() const noexcept { return find_calls_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t components_;
  std::uint64_t find_steps_ = 0;
  std::uint64_t find_calls_ = 0;
  link_policy link_;
  compress_policy compress_;
};

/// One operation of a union/find schedule (Lemma 3.1's sequence U).
struct uf_op {
  enum class kind : std::uint8_t { unite, find };
  kind op;
  std::size_t a = 0;
  std::size_t b = 0;  // unused for find
};

/// Random schedule: n-1 unites (always joining distinct sets, so all n sets
/// end merged) interleaved with `finds` find operations, deterministic in
/// the seed.
std::vector<uf_op> random_schedule(std::size_t n, std::size_t finds,
                                   std::uint64_t seed);

/// An adversarial schedule in the spirit of Tarjan's Omega(n alpha(n, n))
/// construction: builds binomial-tree-like union structure and then probes
/// deep leaves round-robin, maximizing pointer-chain work for bounded-
/// compression structures.
std::vector<uf_op> adversarial_schedule(std::size_t n, std::size_t finds);

}  // namespace asyncrd::uf
