#include "unionfind/ackermann.h"

#include <cassert>
#include <cmath>
#include <map>

namespace asyncrd::uf {

namespace {

std::uint64_t ack_rec(std::uint64_t m, std::uint64_t n,
                      std::map<std::pair<std::uint64_t, std::uint64_t>,
                               std::uint64_t>& memo) {
  if (m == 0) return n >= ackermann_cap - 1 ? ackermann_cap : n + 1;
  // Closed forms for the first rows keep the recursion shallow.
  if (m == 1) return n >= ackermann_cap - 2 ? ackermann_cap : n + 2;
  if (m == 2) return n >= (ackermann_cap - 3) / 2 ? ackermann_cap : 2 * n + 3;
  if (m == 3) {
    // A(3, n) = 2^(n+3) - 3.
    if (n + 3 >= 62) return ackermann_cap;
    return (std::uint64_t{1} << (n + 3)) - 3;
  }
  const auto key = std::make_pair(m, n);
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  std::uint64_t result;
  if (n == 0) {
    result = ack_rec(m - 1, 1, memo);
  } else {
    const std::uint64_t inner = ack_rec(m, n - 1, memo);
    result = inner >= ackermann_cap ? ackermann_cap
                                    : ack_rec(m - 1, inner, memo);
  }
  memo[key] = result;
  return result;
}

}  // namespace

std::uint64_t ackermann(std::uint64_t m, std::uint64_t n) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> memo;
  return ack_rec(m, n, memo);
}

unsigned inverse_ackermann(std::uint64_t m, std::uint64_t n) {
  assert(n >= 1);
  const double log_n = n <= 1 ? 0.0 : std::log2(static_cast<double>(n));
  const std::uint64_t q = m / n;
  for (unsigned i = 1;; ++i) {
    const std::uint64_t a = ackermann(i, q);
    if (static_cast<double>(a) > log_n) return i;
    // alpha is <= 4 for any log n < A(4, 0) = A(3, 1) = 13; the loop always
    // terminates quickly because A(i, q) reaches the cap within a few rows.
    assert(i < 64);
  }
}

}  // namespace asyncrd::uf
