#include "unionfind/dsu.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace asyncrd::uf {

dsu::dsu(std::size_t n, link_policy lp, compress_policy cp)
    : parent_(n), rank_(n, 0), components_(n), link_(lp), compress_(cp) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t dsu::find(std::size_t x) {
  assert(x < parent_.size());
  ++find_calls_;
  std::size_t root = x;
  while (parent_[root] != root) {
    root = parent_[root];
    ++find_steps_;
  }
  if (compress_ == compress_policy::full) {
    while (parent_[x] != root) {
      const std::size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
  }
  return root;
}

bool dsu::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (link_ == link_policy::by_rank) {
    if (rank_[ra] > rank_[rb]) std::swap(ra, rb);
    parent_[ra] = rb;
    if (rank_[ra] == rank_[rb]) ++rank_[rb];
  } else {
    parent_[ra] = rb;
  }
  --components_;
  return true;
}

std::vector<uf_op> random_schedule(std::size_t n, std::size_t finds,
                                   std::uint64_t seed) {
  if (n == 0) return {};
  rng r(seed);
  // Track live set representatives so every unite joins two distinct sets.
  dsu tracker(n);
  std::vector<std::size_t> reps(n);
  std::iota(reps.begin(), reps.end(), std::size_t{0});

  std::vector<uf_op> unites;
  unites.reserve(n - 1);
  while (reps.size() > 1) {
    const std::size_t i = static_cast<std::size_t>(r.below(reps.size()));
    std::size_t j = static_cast<std::size_t>(r.below(reps.size() - 1));
    if (j >= i) ++j;
    unites.push_back({uf_op::kind::unite, reps[i], reps[j]});
    tracker.unite(reps[i], reps[j]);
    // Both arguments were roots before the unite; exactly one survives.
    const std::size_t root = tracker.find(reps[i]);
    const std::size_t gone = (root == reps[i]) ? j : i;
    reps.erase(reps.begin() + static_cast<std::ptrdiff_t>(gone));
  }

  // Interleave finds uniformly between unites.
  std::vector<uf_op> schedule;
  schedule.reserve(unites.size() + finds);
  std::size_t remaining_finds = finds;
  const std::size_t slots = unites.size() + 1;
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t here =
        s + 1 == slots ? remaining_finds
                       : std::min<std::size_t>(remaining_finds, finds / slots + 1);
    for (std::size_t f = 0; f < here; ++f)
      schedule.push_back(
          {uf_op::kind::find, static_cast<std::size_t>(r.below(n)), 0});
    remaining_finds -= here;
    if (s < unites.size()) schedule.push_back(unites[s]);
  }
  return schedule;
}

std::vector<uf_op> adversarial_schedule(std::size_t n, std::size_t finds) {
  if (n == 0) return {};
  std::vector<uf_op> schedule;
  // Binomial merge pattern: round k unites blocks of size 2^k pairwise,
  // which builds maximally deep rank trees; finds then probe round-robin
  // over all elements, repeatedly re-deepening the work per probe.
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t base = 0; base + width < n; base += 2 * width)
      schedule.push_back({uf_op::kind::unite, base, base + width});
    // Interleave a sweep of finds between merge rounds.
    const std::size_t sweep = std::min<std::size_t>(finds, n);
    for (std::size_t f = 0; f < sweep && schedule.size() < n + finds; ++f)
      schedule.push_back({uf_op::kind::find, (f * 7919) % n, 0});
  }
  std::size_t probe = 0;
  while (schedule.size() < n - 1 + finds) {
    schedule.push_back({uf_op::kind::find, probe, 0});
    probe = (probe + 1) % n;
  }
  return schedule;
}

}  // namespace asyncrd::uf
