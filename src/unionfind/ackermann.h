// Ackermann's function and its inverse, exactly as defined in the paper's
// footnote 1:
//
//   A(0, n) = n + 1
//   A(m, 0) = A(m-1, 1)                        (m > 0)
//   A(m, n) = A(m-1, A(m, n-1))                (m, n > 0)
//
//   alpha(m, n) = min{ i >= 1 : A(i, floor(m/n)) > log n }
//
// A grows so fast that values are saturated at a cap; the inverse only ever
// needs comparisons against log n <= 64.
#pragma once

#include <cstdint>

namespace asyncrd::uf {

/// Saturation value: any Ackermann value >= this is reported as exactly this.
inline constexpr std::uint64_t ackermann_cap = std::uint64_t{1} << 62;

/// Saturating A(m, n).
std::uint64_t ackermann(std::uint64_t m, std::uint64_t n);

/// The paper's alpha(m, n).  Requires n >= 1; m may be any value (the
/// quotient floor(m/n) is what matters).  Result is tiny: <= 4 for every
/// physically realizable input.
unsigned inverse_ackermann(std::uint64_t m, std::uint64_t n);

}  // namespace asyncrd::uf
