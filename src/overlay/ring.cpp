#include "overlay/ring.h"

#include <algorithm>
#include <stdexcept>

namespace asyncrd::overlay {

ring_overlay::ring_overlay(std::vector<node_id> census) {
  rebuild(std::move(census));
}

void ring_overlay::rebuild(std::vector<node_id> census) {
  std::sort(census.begin(), census.end());
  census.erase(std::unique(census.begin(), census.end()), census.end());
  ring_ = std::move(census);
}

bool ring_overlay::contains(node_id v) const {
  return std::binary_search(ring_.begin(), ring_.end(), v);
}

std::size_t ring_overlay::index_of(node_id member) const {
  const auto it = std::lower_bound(ring_.begin(), ring_.end(), member);
  if (it == ring_.end() || *it != member)
    throw std::invalid_argument("not a ring member");
  return static_cast<std::size_t>(it - ring_.begin());
}

std::uint64_t ring_overlay::clockwise(key_t a, key_t b) noexcept {
  return static_cast<std::uint32_t>(b - a);  // mod 2^32 wraparound
}

node_id ring_overlay::successor_of(key_t key) const {
  if (ring_.empty()) throw std::logic_error("empty ring");
  // First member >= key, wrapping to the smallest member.
  const auto it = std::lower_bound(ring_.begin(), ring_.end(), key);
  return it == ring_.end() ? ring_.front() : *it;
}

node_id ring_overlay::successor(node_id member) const {
  const std::size_t i = index_of(member);
  return ring_[(i + 1) % ring_.size()];
}

node_id ring_overlay::predecessor(node_id member) const {
  const std::size_t i = index_of(member);
  return ring_[(i + ring_.size() - 1) % ring_.size()];
}

finger_table ring_overlay::fingers_of(node_id member) const {
  finger_table ft;
  ft.owner = member;
  ft.successor = successor(member);
  ft.predecessor = predecessor(member);
  ft.fingers.reserve(32);
  for (std::size_t k = 0; k < 32; ++k) {
    const key_t target = static_cast<key_t>(
        member + (static_cast<std::uint64_t>(1) << k));
    ft.fingers.push_back(successor_of(target));
  }
  return ft;
}

lookup_result ring_overlay::lookup(node_id from, key_t key) const {
  lookup_result res;
  if (ring_.empty()) return res;
  res.home = successor_of(key);
  node_id cur = from;
  res.path.push_back(cur);
  // Chord greedy routing: while cur is not the home, jump to the finger
  // that gets closest to (but not past) the key's home.
  std::size_t guard = 0;
  while (cur != res.home && guard++ <= ring_.size() + 33) {
    // If the key lies between cur and cur's successor, the successor owns
    // it — final hop.
    const node_id succ = successor(cur);
    if (clockwise(static_cast<key_t>(cur) + 1, key) <=
        clockwise(static_cast<key_t>(cur) + 1, static_cast<key_t>(succ))) {
      cur = succ;
      res.path.push_back(cur);
      break;
    }
    // Otherwise: closest preceding finger strictly between cur and key.
    const finger_table ft = fingers_of(cur);
    node_id next_hop = succ;
    for (std::size_t k = ft.fingers.size(); k-- > 0;) {
      const node_id f = ft.fingers[k];
      if (f == cur) continue;
      if (clockwise(static_cast<key_t>(cur) + 1, static_cast<key_t>(f)) <
          clockwise(static_cast<key_t>(cur) + 1, key)) {
        next_hop = f;
        break;
      }
    }
    cur = next_hop;
    res.path.push_back(cur);
  }
  return res;
}

}  // namespace asyncrd::overlay
